"""E-F3b: regenerate Fig. 3b -- the AVP localization timing model.

Prints the synthesized DAG of the LIDAR-localization pipeline: 6
subscriber callbacks in 5 nodes joined by one AND junction.
"""

from conftest import fig3_scale

from repro.core import format_edges, format_exec_table
from repro.experiments import run_fig3b


def test_bench_fig3b(benchmark, bench_header):
    _, avp_duration = fig3_scale()
    result = benchmark.pedantic(
        lambda: run_fig3b(duration_ns=avp_duration), rounds=1, iterations=1
    )
    bench_header("Fig. 3b -- AVP localization DAG")
    print(format_edges(result.dag))
    print()
    print(format_exec_table(result.dag))
    print()
    for name, ok in result.checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    assert result.all_passed
    assert result.dag.num_vertices == 7
    assert result.dag.num_edges == 6

"""Ablation: per-caller service replication vs a naive shared vertex.

The paper argues (Sec. I / Sec. VI) that modeling a service invoked by
n clients as ONE vertex creates spurious chains -- e.g. SC3 -> SV3 ->
CL4, mixing two callers.  This bench synthesizes the SYN model both
ways and counts chains: the naive model must contain caller-crossing
chains that the replicated model provably excludes.
"""

from conftest import fig3_scale

from repro.analysis import enumerate_chains
from repro.apps import build_syn
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once


def test_bench_ablation_service(benchmark, bench_header):
    syn_duration, _ = fig3_scale()
    config = RunConfig(duration_ns=syn_duration, base_seed=42, num_cpus=4)
    result = run_once(lambda w, i: build_syn(w), config)
    pids = result.apps.pids

    def both_models():
        replicated = synthesize_from_trace(result.trace, pids=pids)
        naive = synthesize_from_trace(result.trace, pids=pids, split_services=False)
        return replicated, naive

    replicated, naive = benchmark.pedantic(both_models, rounds=1, iterations=1)

    replicated_chains = enumerate_chains(replicated)
    naive_chains = enumerate_chains(naive)
    bench_header("Ablation -- service modeling (paper Sec. IV)")
    print(f"replicated model: {len(replicated.find_vertices(cb_id='SV3'))} SV3 "
          f"vertices, {len(replicated_chains)} chains")
    print(f"naive model:      {len(naive.find_vertices(cb_id='SV3'))} SV3 "
          f"vertices, {len(naive_chains)} chains")

    def crossing(chains, dag):
        bad = []
        for chain in chains:
            ids = [dag.vertex(k).cb_id for k in chain.keys]
            if "SC3" in ids and "CL4" in ids:
                bad.append(" -> ".join(ids))
            if "CL2" in ids and "CL3" in ids:
                bad.append(" -> ".join(ids))
        return bad

    naive_bad = crossing(naive_chains, naive)
    replicated_bad = crossing(replicated_chains, replicated)
    print(f"caller-crossing chains (naive):      {len(naive_bad)}")
    for chain in naive_bad:
        print(f"    {chain}")
    print(f"caller-crossing chains (replicated): {len(replicated_bad)}")

    assert len(replicated.find_vertices(cb_id="SV3")) == 2
    assert len(naive.find_vertices(cb_id="SV3")) == 1
    assert naive_bad, "naive model must create spurious chains"
    assert not replicated_bad, "replicated model must not cross callers"
    assert len(naive_chains) > len(replicated_chains)

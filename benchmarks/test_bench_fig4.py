"""E-F4: regenerate Fig. 4 -- estimates vs number of runs.

Prefix-merges the per-run DAGs of the Table II experiment and prints the
mBCET / mACET / mWCET evolution for cb1, cb2, cb5 and cb6.  Asserts the
paper's qualitative findings: prefix WCET estimates are non-decreasing
and keep growing for many runs before plateauing, while the averages
stabilise almost immediately.
"""

import pytest
from conftest import table2_scale

from repro.experiments import Table2Config, fig4_from_table2, run_table2


def test_bench_fig4(benchmark, bench_header):
    runs, duration = table2_scale()
    table2 = run_table2(Table2Config(runs=runs, duration_ns=duration))
    result = benchmark.pedantic(
        lambda: fig4_from_table2(table2), rounds=1, iterations=1
    )
    bench_header(f"Fig. 4 -- estimation of timing attributes over {runs} runs")
    print(result.table())
    print()
    for cb in sorted(result.series):
        series = result.series[cb]
        print(
            f"{cb}: mWCET growth {100 * series.mwcet_growth():.1f}% "
            f"(paper: ~10% for cb2), stable from run "
            f"{series.runs_to_converge()} (paper: ~23 for cb2)"
        )

    for cb, series in result.series.items():
        mwcets = [s.mwcet for s in series.stats]
        assert all(b >= a for a, b in zip(mwcets, mwcets[1:])), cb
        macets = [s.macet for s in series.stats]
        # mACET changes negligibly over the 2nd half of the runs.
        half = len(macets) // 2
        assert max(macets[half:]) <= min(macets[half:]) * 1.08, cb

    cb2 = result.series["cb2"]
    assert cb2.mwcet_growth() > 0.01, "cb2 mWCET must grow with more runs"
    # The estimates improve with more traces: at least one callback's
    # WCET estimate keeps moving well past the first few runs (which
    # callback converges last varies with scale and seed).
    slowest = max(s.runs_to_converge() for s in result.series.values())
    assert slowest > 5, "some mWCET estimate must converge late"

"""E-F3a: regenerate Fig. 3a -- the SYN timing model.

Prints the synthesized vertex/edge list of the synthetic application and
checks each structural scenario (i)-(v) from Sec. VI.
"""

from conftest import fig3_scale

from repro.core import format_edges
from repro.experiments import run_fig3a


def test_bench_fig3a(benchmark, bench_header):
    syn_duration, _ = fig3_scale()
    result = benchmark.pedantic(
        lambda: run_fig3a(duration_ns=syn_duration), rounds=1, iterations=1
    )
    bench_header("Fig. 3a -- SYN callbacks and precedence relations")
    print(f"vertices: {result.dag.num_vertices} (paper figure: 18 incl. "
          f"duplicated SV3 and the '&' junction)")
    print(f"edges:    {result.dag.num_edges}")
    print()
    print(format_edges(result.dag))
    print()
    for name, ok in result.checks:
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
    assert result.all_passed
    assert result.dag.num_vertices == 18
    assert result.dag.num_edges == 16

"""Ablation: in-kernel PID filtering of sched_switch events.

Sec. III-B: recording every sched_switch event costs hundreds of MB per
second on a busy machine; filtering by the ROS2 PIDs (shared via a BPF
map from the ROS2-INIT tracer) reduces the footprint "by an order of
three or more".  This bench runs the same workload with filtering on
and off and compares kernel-trace volume.
"""

from conftest import overhead_scale

from repro.experiments import run_overhead
from repro.tracing import SCHED_EVENT_BYTES


def test_bench_ablation_filtering(benchmark, bench_header):
    duration = overhead_scale()

    def both_runs():
        filtered = run_overhead(duration_ns=duration, kernel_filter=True)
        unfiltered = run_overhead(duration_ns=duration, kernel_filter=False)
        return filtered, unfiltered

    filtered, unfiltered = benchmark.pedantic(both_runs, rounds=1, iterations=1)
    bench_header("Ablation -- kernel-event PID filtering (paper Sec. III-B)")

    filtered_mb = filtered.sched_recorded * SCHED_EVENT_BYTES / 1e6
    unfiltered_mb = unfiltered.sched_recorded * SCHED_EVENT_BYTES / 1e6
    reduction = unfiltered.sched_recorded / max(1, filtered.sched_recorded)
    print(f"filtered:   {filtered.sched_recorded:>8} sched events "
          f"({filtered_mb:.2f} MB)")
    print(f"unfiltered: {unfiltered.sched_recorded:>8} sched events "
          f"({unfiltered_mb:.2f} MB)")
    print(f"footprint reduction: {reduction:.1f}x (paper: 3x or more)")

    assert unfiltered.sched_recorded > filtered.sched_recorded
    assert reduction >= 3.0

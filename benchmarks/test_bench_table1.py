"""E-T1: regenerate Table I -- the inserted probes.

Rebuilds the probe inventory from the live tracing session and verifies
all sixteen probe points attach to the expected middleware symbols.
"""

from repro.experiments import run_table1


def test_bench_table1(benchmark, bench_header):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    bench_header("Table I -- inserted probes in ROS2 Foxy")
    print(result.table())
    if result.unexpected:
        print(f"unexpected probe rows: {result.unexpected}")
    assert result.complete, f"missing probes: {result.missing}"
    assert len(result.rows) == 16

"""Perf harness smoke run: the benchmarks behind ``repro perf``.

Runs the full suite at the reduced ``smoke`` scale (a couple of
seconds), prints the report for comparison with the committed
``BENCH_8.smoke.json`` baseline, and sanity-checks the
machine-independent speedup ratios.  CI's perf-smoke job additionally runs
``repro perf --check BENCH_8.smoke.json`` to fail on >2x regressions.

Set ``REPRO_FULL=1`` to run at the ``full`` scale instead.
"""

import json
import os
import pathlib

import pytest

from repro.perf import SCALES, check_regression, format_report, run_perf_suite

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SCALE = "full" if os.environ.get("REPRO_FULL", "") == "1" else "smoke"

#: Baselines are per-scale: speedup ratios shrink with trace size, so a
#: smoke run is only comparable to the committed smoke-scale baseline.
BASELINE_PATH = REPO_ROOT / ("BENCH_8.smoke.json" if SCALE == "smoke" else "BENCH_8.json")


@pytest.fixture(scope="module")
def suite():
    return run_perf_suite(SCALE)


def test_report_prints(suite, capsys):
    with capsys.disabled():
        print()
        print(format_report(suite))


def test_synthesis_is_faster_than_legacy(suite):
    """The TraceIndex pipeline must beat the frozen pre-change one."""
    assert suite["micro"]["synthesis"]["merged"]["speedup"] > 1.0


def test_sim_stack_not_slower_than_legacy(suite):
    # Generous floor: shared layers already carry PR-2 optimizations,
    # so the frozen stack is a conservative baseline.
    assert suite["micro"]["sim"]["speedup_vs_legacy"] > 0.8


def test_sim_call_counts_are_measured_not_folklore(suite):
    """The flattened dispatch must do far fewer Python calls per trace
    event than the legacy trampoline stack (ROADMAP's ~48 calls/event).
    Call counts are deterministic for a fixed workload, so the floors
    here are tight even at smoke scale."""
    sim = suite["micro"]["sim"]
    assert sim["python_calls"] > 0
    assert sim["calls_per_event"] < sim["legacy_calls_per_event"]
    assert sim["call_reduction_vs_legacy"] > 1.5
    assert sim["calls_per_event"] < 30


def test_batch_and_scaling_report_sane_values(suite):
    batch = suite["macro"]["table2_batch"]
    scaling = suite["macro"]["jobs_scaling"]
    assert batch["new_s"] > 0
    assert scaling["serial_s"] > 0 and scaling["parallel_s"] > 0
    assert 0 < scaling["efficiency"] <= 1.5


def test_store_reports_sane_values(suite):
    store = suite["store"]
    assert store["decode"]["speedup_vs_json"] > 1.0, "binary decode slower than gzip-JSON"
    assert store["encode"]["binary_bytes"] > 0
    # Store-backed serial synthesis re-reads segments from disk, so it
    # costs more than the in-memory pipeline at smoke scale (decode
    # dominates the tiny synthesis workload); the columnar walk keeps
    # even that within a small factor.
    assert store["synthesis"]["store_overhead"] < 4.0


def test_v2_format_holds_its_ground_vs_v1(suite):
    """Typed payload columns must not lose to JSON-interned payloads on
    the identical workload (generous floors: smoke runs are noisy)."""
    v1 = suite["store"]["format_v1"]
    assert suite["store"]["format_version"] == 3
    assert v1["v2_synthesis_speedup"] > 0.9, "v2 store synthesis slower than v1"
    assert v1["v2_bytes_ratio"] < 1.2, "v2 segments grew past v1 size"


def test_v3_format_holds_its_ground_vs_v2(suite):
    """Per-section compression must stay near v2 wall-clock on whole
    reads (very generous floors: smoke segments are tiny, and many
    small zlib streams cost more than one big one) without growing the
    files, while buying the selective reads checked below."""
    v2 = suite["store"]["format_v2"]
    assert v2["v3_synthesis_speedup"] > 0.4, "v3 store synthesis collapsed vs v2"
    assert v2["v3_decode_speedup"] > 0.5, "v3 decode collapsed vs v2"
    assert v2["v3_bytes_ratio"] < 1.25, "v3 segments grew well past v2 size"


def test_selective_reads_inflate_a_strict_subset(suite):
    """Deterministic byte counters, not timings: the v3 section layout
    must let partial reads skip most of the body."""
    sel = suite["store"]["selective_read"]
    assert sel["open_bytes"] < sel["walk_bytes"] < sel["full_decode_bytes"]
    assert sel["analysis_bytes"] < sel["full_decode_bytes"] / 2
    assert sel["pid_subset_bytes"] < sel["full_decode_bytes"]
    assert sel["walk_fraction"] < 0.9


def test_service_ingest_beats_per_commit_rebuild(suite):
    """In-order arrivals must take the extend fast path, and the
    incremental maintenance must beat rebuilding from scratch at every
    commit (both sides do identical model extraction per commit; only
    the rebuild re-consumes every prior segment's columns)."""
    ingest = suite["service"]["ingest"]
    assert ingest["extends"] == ingest["runs"]
    assert ingest["rebuilds"] == 0
    assert ingest["speedup_vs_rebuild"] > 1.0


def test_no_regression_vs_committed_baseline(suite):
    """The >2x gate CI enforces, exercised in-process as well."""
    if not BASELINE_PATH.exists():
        pytest.skip("no committed BENCH_8 baseline")
    committed = json.loads(BASELINE_PATH.read_text())
    failures = check_regression(suite, committed, factor=2.0)
    assert failures == [], "\n".join(failures)

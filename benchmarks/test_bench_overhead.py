"""E-OVH: regenerate the tracing-overhead numbers (Sec. VI).

Paper, for 60 s of SYN + AVP: ~9 MB of trace data; probes use 0.008 CPU
cores = ~0.3 % of the application load.  Also reproduces the kernel-
trace footprint reduction of PID filtering (paper: 3x or more).
"""

from conftest import overhead_scale

from repro.experiments import run_overhead


def test_bench_overhead(benchmark, bench_header):
    duration = overhead_scale()
    result = benchmark.pedantic(
        lambda: run_overhead(duration_ns=duration), rounds=1, iterations=1
    )
    bench_header(f"Tracing overheads over {duration/1e9:.0f} s of SYN + AVP")
    print(result.summary())
    print()
    print(f"paper reference: 9 MB / 60 s, probes at 0.008 cores (~0.3% of app load)")

    report = result.report
    # Same order of magnitude as the paper's 9 MB / 60 s.
    mb_per_minute = report.trace_mb * (60e9 / report.elapsed_ns)
    assert 1.0 < mb_per_minute < 30.0
    # Probe CPU usage is far below the application load.
    assert report.probe_cores < 0.05
    assert report.probe_share_of_app < 0.01
    # PID filtering shrinks the kernel trace by "an order of three".
    assert result.filter_reduction >= 3.0

"""Ablation: Alg. 2 sched-folding vs naive end-minus-start measurement.

Alg. 2 subtracts preemption windows from a callback's start..end span.
This bench runs SYN under heavy co-located interference, measures every
callback both ways, and quantifies the inflation a naive measurement
would report -- the error Alg. 2 exists to remove.  With constant
designed loads, Alg. 2's samples must match the design *exactly*.
"""

from repro.apps import build_syn
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC


def test_bench_ablation_exectime(benchmark, bench_header):
    # Two SYN instances competing for 2 CPUs: massive preemption.
    def builder(world, i):
        return build_syn(world, load_factor=2.0, affinity=[0, 1])

    config = RunConfig(duration_ns=10 * SEC, base_seed=5, num_cpus=2)
    result = run_once(builder, config)
    app = result.apps

    dag = benchmark.pedantic(
        lambda: synthesize_from_trace(result.trace, pids=app.pids),
        rounds=1,
        iterations=1,
    )
    bench_header("Ablation -- execution-time measurement (paper Alg. 2)")
    header = (f"{'CB':<7} {'designed':>10} {'Alg.2 max':>10} "
              f"{'naive max':>10} {'inflation':>10}")
    print(header)
    print("-" * len(header))

    inflations = []
    for vertex in sorted(dag.vertices(), key=lambda v: v.key):
        if vertex.is_and_junction or not vertex.exec_times:
            continue
        designed = app.designed_exec_time(vertex.cb_id)
        alg2_max = max(vertex.exec_times)
        naive_max = max(vertex.response_times)
        inflation = naive_max / designed
        inflations.append(inflation)
        print(f"{vertex.cb_id:<7} {designed/1e6:>9.2f}m {alg2_max/1e6:>9.2f}m "
              f"{naive_max/1e6:>9.2f}m {inflation:>9.2f}x")
        # Alg. 2 reports the designed constant exactly, every instance.
        assert set(vertex.exec_times) == {designed}, vertex.cb_id
        # Naive measurement can only be >= the true execution time.
        assert naive_max >= designed

    print(f"\nworst naive inflation: {max(inflations):.2f}x")
    # Under this contention level, a naive measurement must be visibly
    # wrong for at least some callbacks.
    assert max(inflations) > 1.5

"""Ablation: AND-junction sync modeling vs plain edges.

Sec. IV models an m-input data synchronization as m reader tasks plus a
zero-WCET 'AND' junction task.  Without the junction, the fused-output
subscribers appear directly connected to *each* sync member, which a
downstream analysis reads as OR triggering: every member publication
would start the chain, doubling the apparent activation rate of the
downstream pipeline.
"""

from conftest import fig3_scale

from repro.analysis import enumerate_chains
from repro.apps import build_avp
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once


def test_bench_ablation_sync(benchmark, bench_header):
    _, avp_duration = fig3_scale()
    config = RunConfig(duration_ns=avp_duration, base_seed=7, num_cpus=4)
    result = run_once(lambda w, i: build_avp(w), config)
    pids = result.apps.pids

    def both_models():
        with_junction = synthesize_from_trace(result.trace, pids=pids)
        without = synthesize_from_trace(result.trace, pids=pids, model_sync=False)
        return with_junction, without

    with_junction, without = benchmark.pedantic(both_models, rounds=1, iterations=1)
    bench_header("Ablation -- data-synchronization modeling (paper Sec. IV)")

    junctions = [v for v in with_junction.vertices() if v.is_and_junction]
    print(f"with junction:    {with_junction.num_vertices} vertices "
          f"({len(junctions)} AND junction), {with_junction.num_edges} edges")
    print(f"without junction: {without.num_vertices} vertices, "
          f"{without.num_edges} edges")

    cb5 = "voxel_grid_cloud_node/cb5"
    preds_with = {v.key for v in with_junction.predecessors(cb5)}
    preds_without = {v.key for v in without.predecessors(cb5)}
    print(f"cb5 predecessors with junction:    {sorted(preds_with)}")
    print(f"cb5 predecessors without junction: {sorted(preds_without)}")

    # With the junction: cb5 is fed by exactly one AND task.
    assert preds_with == {"point_cloud_fusion/&"}
    assert not with_junction.vertex(cb5).is_or_junction
    # Without: whichever members published the fused topic connect
    # directly, and (once both have been "last" at least once) cb5 is
    # wrongly marked as OR-triggered by multiple publishers.
    assert preds_without <= {"point_cloud_fusion/cb3", "point_cloud_fusion/cb4"}
    assert preds_without, "fused topic must have a publisher"
    if len(preds_without) > 1:
        assert without.vertex(cb5).is_or_junction
    # The junction model never inflates chain counts.
    assert len(enumerate_chains(with_junction)) <= max(
        1, len(enumerate_chains(without))
    )

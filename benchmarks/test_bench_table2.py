"""E-T2: regenerate Table II -- execution times of the AVP callbacks.

Runs AVP + SYN concurrently (SYN load sweeping across runs), one DAG per
run, merged; prints the measured mBCET / mACET / mWCET next to the
paper's values and asserts the qualitative shape: cb2 > cb1 everywhere,
cb6 has the widest spread, and the fusion pair splits into one loaded
(cb3) and one mostly-idle (cb4) member.
"""

import pytest
from conftest import table2_scale

from repro.experiments import Table2Config, run_table2


@pytest.fixture(scope="module")
def table2_result():
    runs, duration = table2_scale()
    return run_table2(Table2Config(runs=runs, duration_ns=duration))


def test_bench_table2(benchmark, bench_header):
    runs, duration = table2_scale()
    result = benchmark.pedantic(
        lambda: run_table2(Table2Config(runs=runs, duration_ns=duration)),
        rounds=1,
        iterations=1,
    )
    bench_header(
        f"Table II -- execution times (ms) over {runs} runs x {duration/1e9:.0f} s"
    )
    print(result.table())
    print()
    print("paper-vs-measured:")
    print(result.comparison())

    # Shape assertions (who is bigger, by roughly what factor).
    cb1 = result.measured_ms("cb1")
    cb2 = result.measured_ms("cb2")
    cb3 = result.measured_ms("cb3")
    cb4 = result.measured_ms("cb4")
    cb5 = result.measured_ms("cb5")
    cb6 = result.measured_ms("cb6")
    assert all(b > a for a, b in zip(cb1, cb2)), "front filter dominates rear"
    assert cb6[2] / cb6[0] > 10, "NDT spread is an order of magnitude"
    assert cb6[2] > cb2[2] > cb1[2] > cb5[2], "WCET ordering"
    assert cb4[1] < cb3[1] / 2, "rear fusion member mostly idle"
    # Absolute closeness for the well-conditioned callbacks.
    for cb, ours in (("cb1", cb1), ("cb2", cb2), ("cb5", cb5)):
        ref = result.reference_ms[cb]
        for r, o in zip(ref, ours):
            assert o == pytest.approx(r, rel=0.15), (cb, ref, ours)

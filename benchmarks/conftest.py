"""Shared benchmark configuration.

Benchmarks default to a reduced scale so the whole harness completes in
a couple of minutes; set ``REPRO_FULL=1`` to run at the paper's scale
(50 runs x 80 s for Table II / Fig. 4, 60 s for the overhead study).
Every benchmark prints the regenerated table/series next to the paper's
reported values.
"""

import os

import pytest

from repro.sim import SEC

FULL = os.environ.get("REPRO_FULL", "") == "1"


def table2_scale():
    """(runs, duration_ns) for the Table II / Fig. 4 experiments."""
    if FULL:
        return 50, 80 * SEC
    return 50, 10 * SEC


def overhead_scale():
    """Duration of the overhead experiment."""
    return 60 * SEC if FULL else 15 * SEC


def fig3_scale():
    """Durations for the DAG-synthesis experiments."""
    if FULL:
        return 12 * SEC, 80 * SEC
    return 12 * SEC, 20 * SEC


@pytest.fixture(scope="session")
def bench_header():
    def print_header(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    return print_header

"""Tests for the multi-run processing strategies of Sec. V / Fig. 2.

Strategy 1 (merge traces, synthesize once) and strategy 2 (DAG per
trace, merge DAGs) must agree on structure and on the execution-time
sample population when runs have disjoint clock/PID bases -- which the
staggered runner guarantees, mirroring a real machine's monotonic
uptime clock and advancing PID counter.
"""

import pytest

from repro.apps import build_avp, build_syn
from repro.core import (
    STRATEGY_MERGE_DAGS,
    STRATEGY_MERGE_TRACES,
    dag_from_merged_traces,
    dag_from_runs,
    diff_dags,
    synthesize_from_database,
)
from repro.experiments import RunConfig, collect_database, run_many
from repro.sim import SEC
from repro.tracing import Trace


@pytest.fixture(scope="module")
def avp_runs():
    config = RunConfig(duration_ns=4 * SEC, base_seed=300, num_cpus=4)
    results = run_many(lambda w, i: build_avp(w), runs=3, config=config)
    return results, collect_database(results)


class TestStaggering:
    def test_runs_have_disjoint_pid_ranges(self, avp_runs):
        results, _ = avp_runs
        ranges = [set(r.trace.pid_map) for r in results]
        for i, a in enumerate(ranges):
            for b in ranges[i + 1:]:
                assert not (a & b)

    def test_runs_have_disjoint_time_ranges(self, avp_runs):
        results, _ = avp_runs
        spans = [(r.trace.start_ts, r.trace.stop_ts) for r in results]
        spans.sort()
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 < s2

    def test_stagger_disabled_overlaps(self):
        config = RunConfig(
            duration_ns=2 * SEC, base_seed=301, num_cpus=2, stagger_runs=False
        )
        results = run_many(lambda w, i: build_avp(w), runs=2, config=config)
        assert set(results[0].trace.pid_map) == set(results[1].trace.pid_map)


class TestStrategyEquivalence:
    def test_structure_identical(self, avp_runs):
        results, database = avp_runs
        merged_traces = synthesize_from_database(database, STRATEGY_MERGE_TRACES)
        merged_dags = synthesize_from_database(database, STRATEGY_MERGE_DAGS)
        # Strategy 1 vertices are keyed by per-run node names (same) --
        # but per-run PIDs differ, so a node appears once per run in the
        # merged-trace model.  Collapse by (node, cb_id) for comparison.
        def shape(dag):
            vertices = {
                (v.node, v.cb_id, v.cb_type)
                for v in dag.vertices()
            }
            edges = {
                (dag.vertex(e.src).node, dag.vertex(e.src).cb_id,
                 dag.vertex(e.dst).node, dag.vertex(e.dst).cb_id)
                for e in dag.edges()
            }
            return vertices, edges

        assert shape(merged_traces) == shape(merged_dags)

    def test_sample_population_identical(self, avp_runs):
        results, database = avp_runs
        merged_traces = synthesize_from_database(database, STRATEGY_MERGE_TRACES)
        merged_dags = synthesize_from_database(database, STRATEGY_MERGE_DAGS)

        def samples(dag, cb_id):
            values = []
            for v in dag.find_vertices(cb_id=cb_id):
                values.extend(v.exec_times)
            return sorted(values)

        for cb in ("cb1", "cb2", "cb5", "cb6"):
            assert samples(merged_traces, cb) == samples(merged_dags, cb)

    def test_unknown_strategy_rejected(self, avp_runs):
        _, database = avp_runs
        with pytest.raises(ValueError):
            synthesize_from_database(database, "bogus")


class TestMixedStrategy:
    def test_merge_traces_within_merge_dags_across(self):
        """Fig. 2 option (iii): merge segments within a run, DAGs across
        runs."""
        config = RunConfig(
            duration_ns=4 * SEC,
            base_seed=320,
            num_cpus=4,
            segment_every_ns=1 * SEC,
        )
        results = run_many(lambda w, i: build_syn(w), runs=2, config=config)
        assert all(len(r.session.segments) >= 4 for r in results)
        dag = dag_from_runs([r.trace for r in results],
                            pids=results[0].apps.pids + results[1].apps.pids)
        # DAG merge across runs unions same-keyed vertices: still two SV3
        # vertices (one per caller), with samples from both runs.
        sv3 = dag.find_vertices(cb_id="SV3")
        assert len(sv3) == 2
        from repro.core import synthesize_from_trace

        single = synthesize_from_trace(results[0].trace, pids=results[0].apps.pids)
        merged_samples = sum(len(v.exec_times) for v in sv3)
        single_samples = sum(
            len(v.exec_times) for v in single.find_vertices(cb_id="SV3")
        )
        assert merged_samples > single_samples


class TestTraceMerge:
    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            Trace.merge([])

    def test_merge_preserves_event_counts(self, avp_runs):
        results, database = avp_runs
        merged = database.merged()
        assert len(merged.ros_events) == sum(
            len(r.trace.ros_events) for r in results
        )
        ts = [e.ts for e in merged.ros_events]
        assert ts == sorted(ts)

"""One end-to-end smoke test over the entire paper pipeline.

A miniature version of the complete evaluation: SYN + AVP concurrently,
several runs, segmented collection, trace database, per-run DAGs,
merged model, every Sec. VI artefact touched once.  Guards the headline
path against regressions in any layer.
"""

import pytest

from repro.analysis import (
    callback_loads,
    chain_response_bound,
    enumerate_chains,
    measure_chain_latencies,
)
from repro.apps import build_avp, build_syn
from repro.core import (
    dag_from_runs,
    dag_to_json,
    dag_from_json,
    diff_dags,
    synthesize_from_trace,
    to_dot,
)
from repro.experiments import (
    AVP_AFFINITY,
    SYN_AFFINITY,
    RunConfig,
    check_avp_dag,
    check_syn_dag,
    collect_database,
    run_many,
)
from repro.sim import SEC
from repro.tracing import load_database, save_database


@pytest.fixture(scope="module")
def full_runs():
    def builder(world, run_index):
        avp = build_avp(world, affinity=AVP_AFFINITY)
        syn = build_syn(world, load_factor=1.0 + 0.5 * run_index, affinity=SYN_AFFINITY)
        return (avp, syn)

    config = RunConfig(
        duration_ns=4 * SEC,
        base_seed=9000,
        num_cpus=4,
        segment_every_ns=1 * SEC,
    )
    return run_many(builder, runs=3, config=config)


class TestFullPipeline:
    def test_both_apps_recovered_per_run(self, full_runs):
        for result in full_runs:
            avp, syn = result.apps
            avp_dag = synthesize_from_trace(result.trace, pids=avp.pids)
            syn_dag = synthesize_from_trace(result.trace, pids=syn.pids)
            assert all(ok for _, ok in check_avp_dag(avp_dag))
            assert all(ok for _, ok in check_syn_dag(syn_dag))

    def test_merged_model_round_trips_and_exports(self, full_runs):
        avp_pids = full_runs[0].apps[0].pids
        dags = [
            synthesize_from_trace(r.trace, pids=r.apps[0].pids) for r in full_runs
        ]
        merged = dag_from_runs([r.trace for r in full_runs], pids=avp_pids)
        # Merging per-run DAGs gives the same model (first run's pids
        # only restrict the first synthesis; use per-run pids for both).
        from repro.core import merge_dags

        merged2 = merge_dags(dags)
        assert diff_dags(merged2, merged2, drift_threshold=0.0).is_empty
        clone = dag_from_json(dag_to_json(merged2))
        assert diff_dags(merged2, clone, drift_threshold=0.0).is_empty
        assert to_dot(merged2).startswith("digraph")

    def test_database_storage_and_reanalysis(self, full_runs, tmp_path):
        database = collect_database(full_runs)
        save_database(database, str(tmp_path / "db"))
        restored = load_database(str(tmp_path / "db"))
        assert len(restored) == 3
        avp = full_runs[0].apps[0]
        dag = synthesize_from_trace(restored.get("run000"), pids=avp.pids)
        assert all(ok for _, ok in check_avp_dag(dag))

    def test_downstream_analyses_consume_the_model(self, full_runs):
        result = full_runs[0]
        avp = result.apps[0]
        dag = synthesize_from_trace(result.trace, pids=avp.pids)
        chains = enumerate_chains(dag)
        assert len(chains) == 2
        for chain in chains:
            assert chain_response_bound(dag, chain, comm_latency_ns=50_000) > 0
        loads = callback_loads(dag)
        assert loads and loads[0].load < 1.0
        latencies = measure_chain_latencies(
            result.trace,
            ["lidar_rear/points_raw", "lidar_rear/points_filtered"],
        )
        assert latencies

    def test_interference_does_not_corrupt_avp_measurements(self, full_runs):
        """SYN load varies across runs, but every AVP sample must stay
        within its workload model's support: Alg. 2 removes interference."""
        for result in full_runs:
            avp = result.apps[0]
            dag = synthesize_from_trace(result.trace, pids=avp.pids)
            for cb in ("cb1", "cb2", "cb5", "cb6"):
                low, high = avp.workloads[cb].bounds()
                samples = dag.vertex(avp.cb_keys[cb]).exec_times
                assert samples
                assert low <= min(samples) and max(samples) <= high

"""Tests for the parallel batch runner.

The central property: results are a pure function of (scenario, params,
runs, seed) -- the worker count shards only wall-clock work, never the
outcome.  ``--jobs 1`` runs in-process, ``--jobs N`` forks, and both
must produce byte-identical merged DAGs, per-run DAGs, exec-stat tables
and trace databases.
"""

import pytest

from repro.core import dag_to_json
from repro.experiments import (
    BatchConfig,
    RunConfig,
    Table2Config,
    run_batch,
    run_once,
    run_table2,
)
from repro.experiments.batch import _shard
from repro.scenarios import build_scenario_spec
from repro.sim import SEC


def small_config(**overrides):
    defaults = dict(duration_ns=2 * SEC, base_seed=500)
    defaults.update(overrides)
    return BatchConfig(**defaults)


class TestDeterminism:
    @pytest.fixture(scope="class")
    def serial(self):
        return run_batch(
            "deep-pipeline", runs=4, jobs=1,
            config=small_config(collect_traces=True),
        )

    @pytest.fixture(scope="class")
    def parallel(self):
        return run_batch(
            "deep-pipeline", runs=4, jobs=4,
            config=small_config(collect_traces=True),
        )

    def test_merged_dags_identical(self, serial, parallel):
        assert dag_to_json(serial.merged_dag) == dag_to_json(parallel.merged_dag)

    def test_exec_tables_identical(self, serial, parallel):
        assert serial.table() == parallel.table()

    def test_per_run_dags_identical(self, serial, parallel):
        assert len(serial.per_run_dags) == len(parallel.per_run_dags) == 4
        for dag_a, dag_b in zip(serial.per_run_dags, parallel.per_run_dags):
            assert dag_to_json(dag_a) == dag_to_json(dag_b)

    def test_trace_databases_identical(self, serial, parallel):
        assert serial.database.run_ids() == parallel.database.run_ids()
        for run_id in serial.database.run_ids():
            assert (
                serial.database.get(run_id).to_dict()
                == parallel.database.get(run_id).to_dict()
            )

    def test_more_jobs_than_runs_clamped(self):
        result = run_batch("deep-pipeline", runs=2, jobs=8, config=small_config())
        assert result.jobs == 2
        assert len(result.per_run_dags) == 2


class TestBatchSemantics:
    def test_per_run_seeding_matches_run_once(self):
        """A batch run equals the same run executed standalone."""
        batch = run_batch("syn", runs=2, jobs=1, config=small_config())
        spec = build_scenario_spec("syn")
        config = RunConfig(duration_ns=2 * SEC, base_seed=500, num_cpus=4)
        from repro.core import synthesize_from_trace

        for run_index in (0, 1):
            result = run_once(
                lambda w, i: spec.build(w), config, run_index=run_index
            )
            dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
            assert dag_to_json(dag) == dag_to_json(batch.per_run_dags[run_index])

    def test_merged_topology_matches_ground_truth(self):
        result = run_batch("service-mesh", runs=3, jobs=3, config=small_config())
        spec = result.spec
        assert {v.key for v in result.merged_dag.vertices()} == spec.expected_vertex_keys()
        assert {(e.src, e.dst) for e in result.merged_dag.edges()} == spec.expected_edge_pairs()

    def test_samples_accumulate_across_runs(self):
        one = run_batch("deep-pipeline", runs=1, jobs=1, config=small_config())
        three = run_batch("deep-pipeline", runs=3, jobs=1, config=small_config())
        key = "stage_0/SRC"
        assert len(three.merged_dag.vertex(key).exec_times) == 3 * len(
            one.merged_dag.vertex(key).exec_times
        )

    def test_collect_traces_off_by_default(self):
        """Workers must not pickle traces back when only DAGs are used."""
        result = run_batch("deep-pipeline", runs=2, jobs=1, config=small_config())
        assert len(result.database) == 0
        assert len(result.per_run_dags) == 2

    def test_collect_traces_opt_in(self):
        result = run_batch(
            "deep-pipeline", runs=2, jobs=2,
            config=small_config(collect_traces=True),
        )
        assert result.database.run_ids() == ["run000", "run001"]

    def test_scenario_params_forwarded(self):
        result = run_batch(
            "deep-pipeline", runs=1, jobs=1,
            config=small_config(scenario_params={"depth": 2}),
        )
        assert result.merged_dag.num_vertices == 3  # SRC + S1 + S2

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            run_batch("deep-pipeline", runs=0)
        with pytest.raises(ValueError):
            run_batch("deep-pipeline", runs=1, jobs=0)
        with pytest.raises(ValueError, match="duration"):
            run_batch("deep-pipeline", runs=1,
                      config=BatchConfig(duration_ns=-SEC))
        with pytest.raises(KeyError):
            run_batch("no-such-scenario", runs=1)

    def test_shard_round_robin_covers_all_runs(self):
        shards = _shard(list(range(10)), 3)
        assert sorted(i for shard in shards for i in shard) == list(range(10))
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1


class TestTable2ThroughBatch:
    """The paper artefact is now just a registry entry + the batch runner."""

    def test_jobs_do_not_change_table2(self):
        config = dict(runs=3, duration_ns=2 * SEC)
        serial = run_table2(Table2Config(jobs=1, **config))
        parallel = run_table2(Table2Config(jobs=3, **config))
        assert serial.table() == parallel.table()
        assert dag_to_json(serial.merged_dag) == dag_to_json(parallel.merged_dag)

    def test_syn_load_sweep_reaches_factory(self):
        """The interference sweep parameterizes the scenario per run."""
        spec_first = build_scenario_spec(
            "avp-interference", run_index=0, runs=3, syn_load_range=(0.5, 2.5)
        )
        spec_last = build_scenario_spec(
            "avp-interference", run_index=2, runs=3, syn_load_range=(0.5, 2.5)
        )
        # SYN timer loads scale with the per-run factor (0.5 vs 2.5).
        t1_first = next(t for t in spec_first.timers if t.label == "T1")
        t1_last = next(t for t in spec_last.timers if t.label == "T1")
        assert t1_last.work.duration == 5 * t1_first.work.duration

"""Unit tests for the TimingDag data model and its invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DagValidationError, DagVertex, TimingDag
from repro.sim import MSEC


def vertex(key, node="n", cb_type="subscriber", **kwargs):
    return DagVertex(key=key, node=node, cb_id=key.split("/")[-1], cb_type=cb_type, **kwargs)


def chain_dag(n=4):
    dag = TimingDag()
    for i in range(n):
        dag.add_vertex(vertex(f"n/v{i}"))
    for i in range(n - 1):
        dag.add_edge(f"n/v{i}", f"n/v{i+1}", topic=f"/t{i}")
    return dag


class TestConstruction:
    def test_duplicate_vertex_rejected(self):
        dag = TimingDag()
        dag.add_vertex(vertex("n/a"))
        with pytest.raises(DagValidationError):
            dag.add_vertex(vertex("n/a"))

    def test_edge_to_unknown_vertex_rejected(self):
        dag = TimingDag()
        dag.add_vertex(vertex("n/a"))
        with pytest.raises(DagValidationError):
            dag.add_edge("n/a", "n/missing", "/t")
        with pytest.raises(DagValidationError):
            dag.add_edge("n/missing", "n/a", "/t")

    def test_duplicate_edge_is_idempotent(self):
        dag = chain_dag(2)
        dag.add_edge("n/v0", "n/v1", topic="/t0")
        assert dag.num_edges == 1

    def test_parallel_edges_different_topics(self):
        dag = chain_dag(2)
        dag.add_edge("n/v0", "n/v1", topic="/other")
        assert dag.num_edges == 2


class TestTraversal:
    def test_successors_predecessors(self):
        dag = chain_dag(3)
        assert [v.key for v in dag.successors("n/v0")] == ["n/v1"]
        assert [v.key for v in dag.predecessors("n/v2")] == ["n/v1"]

    def test_sources_and_sinks(self):
        dag = chain_dag(3)
        assert [v.key for v in dag.sources()] == ["n/v0"]
        assert [v.key for v in dag.sinks()] == ["n/v2"]

    def test_topological_order_respects_edges(self):
        dag = chain_dag(5)
        order = [v.key for v in dag.topological_order()]
        assert order == [f"n/v{i}" for i in range(5)]

    def test_cycle_detected(self):
        dag = chain_dag(3)
        dag.add_edge("n/v2", "n/v0", topic="/back")
        with pytest.raises(DagValidationError):
            dag.topological_order()

    def test_find_vertices_filters(self):
        dag = TimingDag()
        dag.add_vertex(vertex("a/x", node="a", cb_type="timer"))
        dag.add_vertex(vertex("b/x", node="b", cb_type="subscriber"))
        assert len(dag.find_vertices(cb_id="x")) == 2
        assert len(dag.find_vertices(cb_id="x", node="a")) == 1
        assert len(dag.find_vertices(cb_type="timer")) == 1


class TestValidation:
    def test_and_junction_needs_two_inputs(self):
        dag = TimingDag()
        dag.add_vertex(vertex("n/a"))
        dag.add_vertex(vertex("n/&", cb_type="and_junction"))
        dag.add_edge("n/a", "n/&", topic="&")
        with pytest.raises(DagValidationError):
            dag.validate()

    def test_and_junction_nonzero_exec_rejected(self):
        dag = TimingDag()
        dag.add_vertex(vertex("n/a"))
        dag.add_vertex(vertex("n/b"))
        dag.add_vertex(vertex("n/&", cb_type="and_junction", exec_times=[5]))
        dag.add_edge("n/a", "n/&", topic="&")
        dag.add_edge("n/b", "n/&", topic="&")
        with pytest.raises(DagValidationError):
            dag.validate()

    def test_valid_junction_passes(self):
        dag = TimingDag()
        dag.add_vertex(vertex("n/a"))
        dag.add_vertex(vertex("n/b"))
        dag.add_vertex(vertex("n/&", cb_type="and_junction"))
        dag.add_edge("n/a", "n/&", topic="&")
        dag.add_edge("n/b", "n/&", topic="&")
        dag.validate()


class TestVertexProperties:
    def test_exec_stats_empty(self):
        v = vertex("n/a")
        assert v.exec_stats.count == 0
        assert v.exec_stats.mwcet == 0

    def test_exec_stats_from_samples(self):
        v = vertex("n/a", exec_times=[MSEC, 2 * MSEC, 3 * MSEC])
        stats = v.exec_stats
        assert stats.mbcet == MSEC
        assert stats.mwcet == 3 * MSEC
        assert stats.macet == pytest.approx(2 * MSEC)

    def test_period_estimation(self):
        v = vertex("n/a", start_times=[0, 100, 200, 305, 400])
        assert v.period_ns == pytest.approx(100, abs=5)

    def test_period_none_for_single_start(self):
        assert vertex("n/a", start_times=[5]).period_ns is None

    def test_label(self):
        assert vertex("n/a").label() == "a"
        assert vertex("n/&", cb_type="and_junction").label() == "n/&"


class TestTopologicalProperty:
    @given(
        n=st.integers(min_value=1, max_value=12),
        edge_bits=st.lists(st.booleans(), min_size=0, max_size=66),
    )
    @settings(max_examples=100)
    def test_random_forward_dags_always_validate(self, n, edge_bits):
        """Edges only from lower to higher index -> never a cycle."""
        dag = TimingDag()
        for i in range(n):
            dag.add_vertex(vertex(f"n/v{i}"))
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for bit, (i, j) in zip(edge_bits, pairs):
            if bit:
                dag.add_edge(f"n/v{i}", f"n/v{j}", topic=f"/t{i}_{j}")
        order = {v.key: pos for pos, v in enumerate(dag.topological_order())}
        for edge in dag.edges():
            assert order[edge.src] < order[edge.dst]

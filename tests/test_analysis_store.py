"""Out-of-core analysis equivalence: the PR's acceptance pins.

Every analysis the package computes in memory must give value-identical
results when streamed from a trace store: the DAG-based reports
(chains, activation models, loads) ride on the already-pinned
``synthesize_from_store``, and the trace-based reports (chain latency,
waiting time, per-topic DDS latency) ride on the new row-stream
:class:`LatencyIndex` -- both checked against the in-memory reference
on all registry scenarios.
"""

import pytest

from repro.analysis import (
    LatencyIndex,
    StoreAnalysis,
    activation_models,
    activation_models_from_store,
    callback_loads,
    callback_loads_from_store,
    communication_latencies,
    communication_latencies_from_store,
    enumerate_chains,
    enumerate_chains_from_store,
    latency_index_from_store,
    measure_chain_latencies,
    measure_chain_latencies_from_store,
    measure_waiting_times,
    measure_waiting_times_from_store,
    node_loads,
    node_loads_from_store,
)
from repro.core import dag_to_json, synthesize_from_trace
from repro.core.index import CODE_DDS_WRITE, PROBE_CODES
from repro.experiments.batch import BatchConfig
from repro.experiments.runner import run_once
from repro.ros2 import Node
from repro.scenarios import build_scenario_spec, scenario_names
from repro.sim.kernel import MSEC, SEC
from repro.store import TraceStore, record_batch
from repro.tracing import TracingSession
from repro.tracing.session import Trace
from repro.world import World

DURATION_NS = int(1.0 * SEC)
RUNS = 2


def _reference_traces(name):
    """The in-memory traces the store contents reproduce (built exactly
    as the record workers build them)."""
    config = BatchConfig(duration_ns=DURATION_NS)
    traces = []
    for run_index in range(RUNS):
        spec = build_scenario_spec(
            name, run_index=run_index, runs=RUNS, duration_ns=DURATION_NS
        )
        run_config = config.run_config(DURATION_NS, spec.num_cpus)
        traces.append(
            run_once(
                lambda world, i, spec=spec: spec.build(world),
                run_config,
                run_index=run_index,
            ).trace
        )
    return traces


def _write_topics(trace):
    """Every topic the merged trace publishes on, in first-seen order."""
    topics = []
    for event in trace.ros_events:
        if PROBE_CODES.get(event.probe) == CODE_DDS_WRITE:
            topic = event.data.get("topic")
            if topic not in topics:
                topics.append(topic)
    return topics


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """Recorded store + merged in-memory reference, per scenario."""
    root = tmp_path_factory.mktemp("analysis_stores")
    result = {}
    for name in scenario_names():
        directory = str(root / name)
        record_batch(
            name, runs=RUNS, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        merged = Trace.merge(_reference_traces(name))
        result[name] = (TraceStore(directory), merged)
    return result


class TestModelReportEquivalence:
    """DAG-based analyses: store path == in-memory path, all scenarios."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_chains_identical(self, stores, name):
        store, merged = stores[name]
        expected = enumerate_chains(synthesize_from_trace(merged))
        actual = enumerate_chains_from_store(store)
        assert [c.keys for c in actual] == [c.keys for c in expected], name

    @pytest.mark.parametrize("name", scenario_names())
    def test_activation_models_identical(self, stores, name):
        store, merged = stores[name]
        expected = activation_models(synthesize_from_trace(merged))
        assert activation_models_from_store(store) == expected, name

    @pytest.mark.parametrize("name", scenario_names())
    def test_loads_identical(self, stores, name):
        store, merged = stores[name]
        dag = synthesize_from_trace(merged)
        assert callback_loads_from_store(store) == callback_loads(dag), name
        assert node_loads_from_store(store) == node_loads(dag), name


class TestLatencyEquivalence:
    """Trace-based analyses: the streamed index == the in-memory index,
    value for value, on every published topic of every scenario."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_communication_latencies_identical(self, stores, name):
        store, merged = stores[name]
        topics = _write_topics(merged)
        assert topics, name
        for topic in topics:
            assert communication_latencies_from_store(
                store, topic
            ) == communication_latencies(merged, topic), (name, topic)

    @pytest.mark.parametrize("name", scenario_names())
    def test_single_hop_chain_latencies_identical(self, stores, name):
        store, merged = stores[name]
        for topic in _write_topics(merged):
            expected = measure_chain_latencies(merged, [topic])
            actual = measure_chain_latencies_from_store(store, [topic])
            assert actual == expected, (name, topic)

    @pytest.mark.parametrize("name", scenario_names())
    def test_two_hop_chain_latencies_identical(self, stores, name):
        store, merged = stores[name]
        topics = _write_topics(merged)
        for pair in zip(topics, topics[1:]):
            expected = measure_chain_latencies(merged, list(pair))
            actual = measure_chain_latencies_from_store(store, list(pair))
            assert actual == expected, (name, pair)

    @pytest.mark.parametrize("name", scenario_names())
    def test_index_lookup_structures_identical(self, stores, name):
        """The streamed index's public lookups agree with the in-memory
        index on every topic and PID."""
        store, merged = stores[name]
        streamed = latency_index_from_store(store)
        reference = LatencyIndex.from_trace(merged)
        for topic in _write_topics(merged):
            assert streamed.writes_on(topic) == reference.writes_on(topic)
            assert streamed.takes_on(topic) == reference.takes_on(topic)
        for pid in merged.pid_map:
            assert streamed.cb_starts(pid) == reference.cb_starts(pid), (
                name, pid,
            )

    def test_pid_filter_restricts_index(self, stores):
        store, merged = stores["syn"]
        pids = sorted(merged.pid_map)
        keep, drop = pids[0], pids[-1]
        filtered = latency_index_from_store(store, pids=[keep])
        full = latency_index_from_store(store)
        assert filtered.cb_starts(keep) == full.cb_starts(keep)
        assert filtered.cb_starts(drop) == []
        assert filtered.window_containing(drop, merged.stop_ts // 2) is None


class TestStoreAnalysisHandle:
    def test_reports_share_one_synthesis(self, stores):
        store, merged = stores["syn"]
        analysis = StoreAnalysis(store)
        dag = analysis.dag
        assert analysis.dag is dag  # cached, not re-synthesized
        assert dag_to_json(dag) == dag_to_json(synthesize_from_trace(merged))
        assert [c.keys for c in analysis.chains()] == [
            c.keys for c in enumerate_chains(dag)
        ]

    def test_jobs_do_not_change_reports(self, stores):
        store, _ = stores["syn"]
        serial = StoreAnalysis(store, jobs=1)
        sharded = StoreAnalysis(store, jobs=2)
        assert dag_to_json(serial.dag) == dag_to_json(sharded.dag)
        assert serial.activation_models() == sharded.activation_models()

    def test_accepts_directory_path(self, stores):
        store, _ = stores["syn"]
        by_path = StoreAnalysis(store.directory)
        by_handle = StoreAnalysis(store)
        assert dag_to_json(by_path.dag) == dag_to_json(by_handle.dag)


class TestWaitingTimesFromStore:
    """Wakeup streams survive the store round trip -- including the
    cross-run merge (record_batch itself never records wakeups, so the
    store is built directly from wakeup-recording sessions)."""

    @staticmethod
    def _wakeup_trace(seed):
        world = World(num_cpus=1, seed=seed)
        node = Node(world, "n")
        node.create_timer(
            50 * MSEC, lambda api, msg: (yield api.compute(5 * MSEC))
        )
        rival = Node(world, "rival", priority=10)
        rival.create_timer(
            20 * MSEC, lambda api, msg: (yield api.compute(10 * MSEC))
        )
        session = TracingSession(world, record_wakeups=True)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=2 * SEC)
        session.stop_runtime()
        return session.trace(), node.pid

    def test_waiting_times_identical(self, tmp_path):
        trace, pid = self._wakeup_trace(seed=5)
        store = TraceStore.create(str(tmp_path / "wakeups"))
        store.add_trace("run000", trace)
        expected = measure_waiting_times(trace, pid)
        assert expected  # the scenario produces real contention
        assert measure_waiting_times_from_store(store, pid) == expected

    def test_multi_run_wakeup_merge(self, tmp_path):
        """Two overlapping runs (both start near t=0) force the k-way
        heap-merge path for rows and wakeups alike."""
        t1, pid1 = self._wakeup_trace(seed=5)
        t2, _ = self._wakeup_trace(seed=6)
        store = TraceStore.create(str(tmp_path / "wakeups2"))
        store.add_trace("run000", t1)
        store.add_trace("run001", t2)
        merged = Trace.merge([t1, t2])
        assert measure_waiting_times_from_store(store, pid1) == (
            measure_waiting_times(merged, pid1)
        )
        index = latency_index_from_store(store)
        reference = LatencyIndex.from_trace(merged)
        for pid in merged.pid_map:
            assert index.wakeups(pid) == reference.wakeups(pid)
            assert index.cb_starts(pid) == reference.cb_starts(pid)

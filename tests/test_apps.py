"""Tests for the evaluation workloads: SYN, AVP and the generator."""

import pytest

from repro.apps import (
    ALL_CALLBACKS,
    BASE_LOADS_MS,
    GeneratorConfig,
    build_avp,
    build_syn,
    default_workloads,
    generate_app,
)
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC, ms
from repro.world import World


def synthesize(builder, duration=8 * SEC, seed=11, num_cpus=4):
    config = RunConfig(duration_ns=duration, base_seed=seed, num_cpus=num_cpus)
    result = run_once(builder, config)
    apps = result.apps
    pids = apps.pids if hasattr(apps, "pids") else None
    return synthesize_from_trace(result.trace, pids=pids), result


class TestSynApp:
    def test_all_sixteen_callbacks_appear(self):
        dag, _ = synthesize(lambda w, i: build_syn(w))
        cb_ids = {v.cb_id for v in dag.vertices() if not v.is_and_junction}
        assert cb_ids == set(ALL_CALLBACKS)

    def test_measured_equals_designed_for_every_callback(self):
        """Constant loads: every measured sample equals the designed
        execution time (the paper's measurement validation)."""
        dag, result = synthesize(lambda w, i: build_syn(w))
        app = result.apps
        for vertex in dag.vertices():
            if vertex.is_and_junction:
                continue
            designed = app.designed_exec_time(vertex.cb_id)
            assert vertex.exec_times, vertex.key
            assert set(vertex.exec_times) == {designed}, vertex.key

    def test_load_factor_scales_execution_times(self):
        dag, result = synthesize(lambda w, i: build_syn(w, load_factor=2.0))
        t1 = dag.find_vertices(cb_id="T1")[0]
        assert set(t1.exec_times) == {2 * ms(BASE_LOADS_MS["T1"])}

    def test_invalid_load_factor_rejected(self):
        world = World()
        with pytest.raises(ValueError):
            build_syn(world, load_factor=0.0)

    def test_six_nodes(self):
        world = World()
        app = build_syn(world)
        assert len(app.nodes) == 6
        assert len(set(app.node_names())) == 6

    def test_sv3_invoked_from_both_callers(self):
        dag, _ = synthesize(lambda w, i: build_syn(w), duration=10 * SEC)
        sv3 = dag.find_vertices(cb_id="SV3")
        callers = {dag.predecessors(v.key)[0].cb_id for v in sv3}
        assert callers == {"SC3", "CL2"}


class TestAvpApp:
    def test_five_nodes_six_callbacks(self):
        dag, result = synthesize(lambda w, i: build_avp(w))
        app = result.apps
        assert len(app.nodes) == 5
        cbs = [v for v in dag.vertices() if not v.is_and_junction]
        assert {v.cb_id for v in cbs} == {"cb1", "cb2", "cb3", "cb4", "cb5", "cb6"}

    def test_sensors_not_in_dag(self):
        """External LIDAR publishers must not appear as vertices."""
        dag, _ = synthesize(lambda w, i: build_avp(w))
        assert all(v.cb_type != "timer" for v in dag.vertices())

    def test_exec_times_within_model_bounds(self):
        dag, result = synthesize(lambda w, i: build_avp(w))
        app = result.apps
        for cb, model_key in (("cb1", "cb1"), ("cb2", "cb2"), ("cb5", "cb5"), ("cb6", "cb6")):
            low, high = app.workloads[model_key].bounds()
            samples = dag.vertex(app.cb_keys[cb]).exec_times
            assert samples
            assert min(samples) >= low
            assert max(samples) <= high

    def test_pipeline_produces_pose_updates(self):
        dag, result = synthesize(lambda w, i: build_avp(w), duration=10 * SEC)
        app = result.apps
        cb6 = dag.vertex(app.cb_keys["cb6"])
        # 10 Hz feed for 10 s -> close to 100 localization callbacks.
        assert cb6.invocations if hasattr(cb6, "invocations") else len(cb6.start_times) > 50

    def test_fusion_runs_at_sensor_rate(self):
        dag, result = synthesize(lambda w, i: build_avp(w), duration=10 * SEC)
        app = result.apps
        cb5 = dag.vertex(app.cb_keys["cb5"])
        period = cb5.period_ns
        assert period == pytest.approx(100 * ms(1), rel=0.1)

    def test_workload_keys_complete(self):
        w = default_workloads()
        assert {"cb1", "cb2", "cb5", "cb6", "fusion",
                "fusion_input_front", "fusion_input_rear"} <= set(w)


class TestGenerator:
    def test_generated_topology_recovered(self):
        config = GeneratorConfig(num_nodes=4, num_chains=3, chain_length=3)

        def builder(world, i):
            return generate_app(world, config, seed=5)

        dag, result = synthesize(builder, duration=8 * SEC)
        app = result.apps
        # Every expected (label, label) edge appears in the DAG.
        actual = {
            (dag.vertex(e.src).cb_id, dag.vertex(e.dst).cb_id) for e in dag.edges()
        }
        assert app.expected_edges <= actual

    def test_all_generated_callbacks_traced(self):
        config = GeneratorConfig(num_nodes=3, num_chains=2, chain_length=4)

        def builder(world, i):
            return generate_app(world, config, seed=9)

        dag, result = synthesize(builder, duration=8 * SEC)
        app = result.apps
        observed = {v.cb_id for v in dag.vertices() if not v.is_and_junction}
        assert set(app.labels) <= observed

    def test_generated_dag_is_acyclic(self):
        config = GeneratorConfig(num_nodes=5, num_chains=4, chain_length=4,
                                 service_probability=0.5)

        def builder(world, i):
            return generate_app(world, config, seed=13)

        dag, _ = synthesize(builder, duration=6 * SEC)
        dag.validate()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_determinism(self, seed):
        def build_and_dump(run_seed):
            def builder(world, i):
                return generate_app(world, GeneratorConfig(), seed=run_seed)

            dag, _ = synthesize(builder, duration=4 * SEC, seed=99)
            from repro.core import dag_to_json

            return dag_to_json(dag)

        assert build_and_dump(seed) == build_and_dump(seed)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_nodes=0)
        with pytest.raises(ValueError):
            GeneratorConfig(service_probability=1.5)

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3a"])
        assert args.duration == 12.0
        assert args.seed == 42

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "P16" in out and "uretprobe" in out

    def test_fig3a_with_artifacts(self, capsys, tmp_path):
        dot = tmp_path / "syn.dot"
        js = tmp_path / "syn.json"
        code = main(["fig3a", "--duration", "6", "--dot", str(dot), "--json", str(js)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
        assert dot.read_text().startswith("digraph")
        model = json.loads(js.read_text())
        assert len(model["vertices"]) == 18

    def test_fig3b(self, capsys):
        assert main(["fig3b", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "p2d_ndt_localizer_node" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--runs", "3", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "paper mWCET" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--runs", "3", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "mWCET growth" in out

    def test_overhead_small(self, capsys):
        assert main(["overhead", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "MB trace data" in out

"""Tests for the command-line interface."""

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.scenarios import scenario_names

GOLDEN_DIR = Path(__file__).parent / "data"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig3a"])
        assert args.duration == 12.0
        assert args.seed == 42

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "P16" in out and "uretprobe" in out

    def test_fig3a_with_artifacts(self, capsys, tmp_path):
        dot = tmp_path / "syn.dot"
        js = tmp_path / "syn.json"
        code = main(["fig3a", "--duration", "6", "--dot", str(dot), "--json", str(js)])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out
        assert dot.read_text().startswith("digraph")
        model = json.loads(js.read_text())
        assert len(model["vertices"]) == 18

    def test_fig3b(self, capsys):
        assert main(["fig3b", "--duration", "6"]) == 0
        out = capsys.readouterr().out
        assert "p2d_ndt_localizer_node" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--runs", "3", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "paper mWCET" in out

    def test_fig4_small(self, capsys):
        assert main(["fig4", "--runs", "3", "--duration", "3"]) == 0
        out = capsys.readouterr().out
        assert "mWCET growth" in out

    def test_overhead_small(self, capsys):
        assert main(["overhead", "--duration", "4"]) == 0
        out = capsys.readouterr().out
        assert "MB trace data" in out


class TestScenariosCommand:
    def test_lists_every_registered_scenario(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_lists_topology_sizes(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        # header plus one row per scenario
        assert "nodes" in out and "edges" in out

    def test_json_listing_is_machine_readable(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in doc["scenarios"]}
        assert set(by_name) == set(scenario_names())
        for entry in doc["scenarios"]:
            assert entry["nodes"] >= 1
            assert entry["policy"] == "priority"
            assert entry["num_cpus"] >= 1
            assert isinstance(entry["tags"], list)
        assert by_name["avp"]["callbacks"] == 6


class TestBatchCommand:
    def test_unknown_scenario_fails_loudly(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            main(["batch", "no-such-scenario", "--runs", "1"])

    def test_batch_runs_and_reports(self, capsys):
        code = main(["batch", "service-mesh", "--runs", "2", "--jobs", "2",
                     "--duration", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 runs" in out
        assert "gateway" in out and "mWCET" in out

    def test_batch_artifact_writing(self, capsys, tmp_path):
        dot = tmp_path / "mesh.dot"
        js = tmp_path / "mesh.json"
        code = main(["batch", "deep-pipeline", "--runs", "2", "--duration", "2",
                     "--dot", str(dot), "--json", str(js)])
        assert code == 0
        assert dot.read_text().startswith("digraph")
        model = json.loads(js.read_text())
        assert len(model["vertices"]) == 9  # SRC + S1..S8
        assert len(model["edges"]) == 8

    def test_batch_policy_override(self, capsys):
        code = main(["batch", "deep-pipeline", "--runs", "1", "--duration", "2",
                     "--policy", "edf"])
        assert code == 0
        out = capsys.readouterr().out
        assert "policy edf" in out and "S8" in out

    def test_zero_runs_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "syn", "--runs", "0"])
        assert excinfo.value.code == 2

    def test_unknown_policy_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "syn", "--policy", "lottery"])
        assert excinfo.value.code == 2

    def test_negative_jobs_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["batch", "syn", "--jobs", "-2"])
        assert excinfo.value.code == 2

    def test_batch_dot_matches_golden(self, capsys, tmp_path):
        """Golden-file regression: the merged small-DAG artefact is
        byte-stable across worker counts and code changes."""
        golden = (GOLDEN_DIR / "deep_pipeline_batch.dot").read_text()
        for jobs in ("1", "2"):
            dot = tmp_path / f"deep{jobs}.dot"
            code = main(["batch", "deep-pipeline", "--runs", "2",
                         "--duration", "2", "--seed", "1000",
                         "--jobs", jobs, "--dot", str(dot)])
            assert code == 0
            assert dot.read_text() == golden

    def test_table2_jobs_flag(self, capsys):
        assert main(["table2", "--runs", "2", "--duration", "2",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "paper mWCET" in out


class TestSynthesizeUsageErrors:
    """Unknown --strategy / malformed --pids are argparse-level usage
    errors (exit code 2), not raw KeyError/ValueError tracebacks."""

    def test_unknown_strategy_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["synthesize", str(tmp_path), "--strategy", "merge-everything"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "merge-traces" in err and "merge-dags" in err

    def test_malformed_pids_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["synthesize", str(tmp_path), "--pids", "1,x"])
        assert excinfo.value.code == 2
        assert "invalid PID 'x'" in capsys.readouterr().err

    def test_empty_pids_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["synthesize", str(tmp_path), "--pids", " , "])
        assert excinfo.value.code == 2
        assert "no PIDs" in capsys.readouterr().err

    def test_valid_pids_parse_with_whitespace_and_blanks(self):
        args = build_parser().parse_args(
            ["synthesize", "store", "--pids", "1, 2,,3"]
        )
        assert args.pids == [1, 2, 3]


class TestRecordOverwriteProtection:
    def test_record_collision_refused_then_forced(self, capsys, tmp_path):
        store_dir = str(tmp_path / "store")
        args = ["record", "syn", "--runs", "1", "--out", store_dir,
                "--duration", "1"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "run000" in err and "--force" in err
        assert main(args + ["--force"]) == 0
        assert "run000" in capsys.readouterr().out


@pytest.fixture(scope="module")
def recorded_store(tmp_path_factory):
    """One small recorded store shared by the diff/analyze CLI tests."""
    directory = str(tmp_path_factory.mktemp("cli_store") / "syn")
    assert main(["record", "syn", "--runs", "2", "--duration", "2",
                 "--out", directory]) == 0
    return directory


class TestDiffCommand:
    def test_self_compare_exits_zero(self, capsys, recorded_store):
        assert main(["diff", recorded_store, recorded_store]) == 0
        out = capsys.readouterr().out
        assert "identical" in out
        assert "OK:" in out and "[ok]" in out

    def test_json_model_side(self, capsys, recorded_store, tmp_path):
        model = tmp_path / "model.json"
        assert main(["synthesize", recorded_store, "--json", str(model)]) == 0
        capsys.readouterr()
        assert main(["diff", str(model), recorded_store]) == 0
        assert main(["diff", recorded_store, str(model)]) == 0

    def test_gate_failure_exits_one(self, capsys, recorded_store):
        """A self-compare under an impossible gate (ratio 1.0 > 0.5)
        fails every gate: the CI 'perturbed' leg."""
        assert main(["diff", recorded_store, recorded_store,
                     "--gate-factor", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "[FAIL]" in out and "REGRESSION" in out

    def test_fail_on_never_masks_gate_failure(self, capsys, recorded_store):
        assert main(["diff", recorded_store, recorded_store,
                     "--gate-factor", "0.5", "--fail-on", "never"]) == 0

    def test_fail_on_structure_ignores_gates(self, capsys, recorded_store):
        assert main(["diff", recorded_store, recorded_store,
                     "--gate-factor", "0.5", "--fail-on", "structure"]) == 0

    def test_structural_difference_exits_one(self, capsys, recorded_store,
                                             tmp_path):
        other = str(tmp_path / "mesh")
        assert main(["record", "service-mesh", "--runs", "1",
                     "--duration", "2", "--out", other]) == 0
        capsys.readouterr()
        assert main(["diff", recorded_store, other]) == 1
        out = capsys.readouterr().out
        assert "+ vertex" in out and "- vertex" in out

    def test_run_selection(self, capsys, recorded_store):
        assert main(["diff", recorded_store, recorded_store,
                     "--old-run", "run000", "--new-run", "run001"]) == 0

    def test_unknown_run_exits_two(self, capsys, recorded_store):
        assert main(["diff", recorded_store, recorded_store,
                     "--old-run", "nope"]) == 2
        assert "not in" in capsys.readouterr().err

    def test_missing_store_exits_two(self, capsys, tmp_path):
        assert main(["diff", str(tmp_path / "a"), str(tmp_path / "b")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_json_report(self, capsys, recorded_store, tmp_path):
        report = tmp_path / "diff.json"
        assert main(["diff", recorded_store, recorded_store,
                     "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert payload["regression"] is False
        assert payload["gates"] and all(
            not g["exceeded"] for g in payload["gates"]
        )
        assert payload["added_vertices"] == []


class TestAnalyzeCommand:
    def test_default_reports(self, capsys, recorded_store):
        assert main(["analyze", recorded_store]) == 0
        out = capsys.readouterr().out
        assert "== chains" in out
        assert "== activation models" in out
        assert "== callback loads" in out

    def test_latency_report_via_topics(self, capsys, recorded_store):
        assert main(["analyze", recorded_store, "--report", "latency",
                     "--topics", "/t1"]) == 0
        out = capsys.readouterr().out
        assert "== chain latency over /t1" in out
        assert "mean" in out

    def test_topics_flag_implies_latency(self, capsys, recorded_store):
        assert main(["analyze", recorded_store, "--topics", "/t1"]) == 0
        assert "== chain latency" in capsys.readouterr().out

    def test_sinks_flag_truncates_chains(self, capsys, recorded_store):
        assert main(["analyze", recorded_store, "--report", "chains",
                     "--sinks", "syn_n3/SC1"]) == 0
        out = capsys.readouterr().out
        assert "== chains" in out and "SC1" in out

    def test_latency_without_topics_exits_two(self, capsys, recorded_store):
        assert main(["analyze", recorded_store, "--report", "latency"]) == 2
        assert "--topics" in capsys.readouterr().err

    def test_waiting_without_pid_exits_two(self, capsys, recorded_store):
        assert main(["analyze", recorded_store, "--report", "waiting"]) == 2
        assert "--waiting-pid" in capsys.readouterr().err

    def test_unknown_report_exits_two(self, capsys, recorded_store):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", recorded_store, "--report", "bogus"])
        assert excinfo.value.code == 2
        assert "unknown report" in capsys.readouterr().err

    def test_missing_store_exits_two(self, capsys, tmp_path):
        assert main(["analyze", str(tmp_path / "none")]) == 2
        assert "error:" in capsys.readouterr().err

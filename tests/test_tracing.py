"""Tests for the eBPF substrate and the three tracers: probe firing,
srcTS stash, PID filtering, buffer rotation and overhead accounting."""

import pytest

from repro.sim import MSEC, SEC
from repro.ros2 import Msg, Node
from repro.tracing import (
    Bpf,
    BpfError,
    BpfMap,
    P1_CREATE_NODE,
    P2_TIMER_START,
    P3_TIMER_CALL,
    P4_TIMER_END,
    P5_SUB_START,
    P6_TAKE,
    P16_DDS_WRITE,
    PerfBuffer,
    ROS2_PIDS_MAP,
    TraceEvent,
    TracingSession,
    measure_overhead,
)
from repro.world import World


def traced_pub_sub(seed=1, duration=SEC):
    """One talker (timer + publish) and one listener, fully traced."""
    world = World(num_cpus=2, seed=seed)
    talker = Node(world, "talker")
    listener = Node(world, "listener")
    pub = talker.create_publisher("/chatter")

    def timer_cb(api, msg):
        yield api.compute(2 * MSEC)
        api.publish(pub, Msg(stamp=api.now))

    def sub_cb(api, msg):
        yield api.compute(1 * MSEC)

    talker.create_timer(100 * MSEC, timer_cb, label="T1")
    listener.create_subscription("/chatter", sub_cb, label="SC1")

    session = TracingSession(world)
    session.start_init()
    world.launch()
    world.run(for_ns=MSEC)  # let nodes announce themselves
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=duration)
    session.stop_runtime()
    return world, session, talker, listener


class TestBpfPrimitives:
    def test_map_bounded(self):
        table = BpfMap("m", max_entries=2)
        table.update("a", 1)
        table.update("b", 2)
        with pytest.raises(BpfError):
            table.update("c", 3)

    def test_lru_map_evicts(self):
        table = BpfMap("m", max_entries=2, lru=True)
        table.update("a", 1)
        table.update("b", 2)
        table.lookup("a")  # refresh 'a'
        table.update("c", 3)  # evicts 'b'
        assert "a" in table and "c" in table and "b" not in table

    def test_perf_buffer_overflow_counts_lost(self):
        buffer = PerfBuffer("b", capacity=2)
        assert buffer.submit("e1")
        assert buffer.submit("e2")
        assert not buffer.submit("e3")
        assert buffer.lost == 1
        assert len(buffer.poll()) == 2
        assert buffer.submit("e4")  # space again after poll

    def test_attach_unknown_symbol_fails(self):
        world = World()
        bpf = Bpf(world.symbols, world.tracepoints)
        with pytest.raises(Exception):
            bpf.attach_uprobe("libfoo:bar", lambda ctx, args: None)

    def test_attach_unknown_tracepoint_fails(self):
        world = World()
        bpf = Bpf(world.symbols, world.tracepoints)
        with pytest.raises(BpfError):
            bpf.attach_tracepoint("net:rx", lambda rec: None)


class TestInitTracer:
    def test_discovers_node_pids(self):
        world, session, talker, listener = traced_pub_sub()
        pid_map = session.pid_map()
        assert pid_map[talker.pid] == "talker"
        assert pid_map[listener.pid] == "listener"

    def test_pid_map_shared_with_kernel_tracer(self):
        world, session, talker, listener = traced_pub_sub()
        shared = session.bpf.get_table(ROS2_PIDS_MAP)
        assert talker.pid in shared and listener.pid in shared


class TestRuntimeTracer:
    def test_timer_event_sequence(self):
        world, session, talker, _ = traced_pub_sub()
        trace = session.trace()
        events = trace.events_for_pid(talker.pid)
        probes = [e.probe for e in events if e.probe != P1_CREATE_NODE]
        # Tracing may have attached mid-callback: align to the first full
        # instance, then expect the repeating pattern
        # timer start, timer id, dds write, timer end.
        first = probes.index(P2_TIMER_START)
        pattern = probes[first : first + 4]
        assert pattern == [P2_TIMER_START, P3_TIMER_CALL, P16_DDS_WRITE, P4_TIMER_END]

    def test_timer_cb_id_in_p3(self):
        world, session, talker, _ = traced_pub_sub()
        trace = session.trace()
        p3 = [e for e in trace.events_for_pid(talker.pid) if e.probe == P3_TIMER_CALL]
        assert p3 and all(e.get("cb_id") == "T1" for e in p3)

    def test_take_event_carries_src_ts_and_topic(self):
        """The srcTS entry/exit stash produces filled src_ts values that
        equal the publisher's dds_write timestamps."""
        world, session, talker, listener = traced_pub_sub()
        trace = session.trace()
        takes = [e for e in trace.events_for_pid(listener.pid) if e.probe == P6_TAKE]
        writes = [e for e in trace.events_for_pid(talker.pid) if e.probe == P16_DDS_WRITE]
        assert takes and writes
        write_ts = {e.get("src_ts") for e in writes}
        for take in takes:
            assert take.get("topic") == "/chatter"
            assert take.get("cb_id") == "SC1"
            assert take.get("src_ts") in write_ts

    def test_dds_write_event_fields(self):
        world, session, talker, _ = traced_pub_sub()
        trace = session.trace()
        writes = [e for e in trace.ros_events if e.probe == P16_DDS_WRITE]
        assert writes
        assert all(e.get("topic") == "/chatter" for e in writes)
        assert all(e.get("kind") == "data" for e in writes)
        assert all(e.get("src_ts") == e.ts for e in writes)

    def test_start_end_pairs_balanced(self):
        world, session, talker, listener = traced_pub_sub()
        trace = session.trace()
        for pid in (talker.pid, listener.pid):
            events = trace.events_for_pid(pid)
            starts = sum(1 for e in events if e.is_cb_start())
            ends = sum(1 for e in events if e.is_cb_end())
            assert starts == ends or starts == ends + 1  # run may cut mid-CB


class TestKernelTracer:
    def test_sched_events_only_for_ros2_pids(self):
        world, session, talker, listener = traced_pub_sub()
        trace = session.trace()
        assert trace.sched_events
        ros2 = {talker.pid, listener.pid}
        for record in trace.sched_events:
            assert record.prev_pid in ros2 or record.next_pid in ros2

    def test_filtering_reduces_footprint(self):
        """With an extra untraced busy thread, PID filtering must drop
        events -- the 'order of three' reduction claim's mechanism."""
        world = World(num_cpus=1, seed=3)
        node = Node(world, "only")
        node.create_timer(50 * MSEC, lambda api, msg: (yield api.compute(5 * MSEC)))
        # Untraced interference: plain threads sharing the CPU.
        from repro.sim import Compute

        def busy():
            while True:
                yield Compute(3 * MSEC)

        world.scheduler.spawn(busy(), name="noise1")
        world.scheduler.spawn(busy(), name="noise2")
        session = TracingSession(world)
        session.start_init()
        world.launch()
        world.run(for_ns=10 * MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=2 * SEC)
        session.stop_runtime()
        kt = session.kernel_tracer
        assert kt.seen > 0
        recorded = sum(len(s.sched_events) for s in session.segments)
        assert recorded < kt.seen


class TestSegmentedCollection:
    def test_rotation_preserves_all_events(self):
        world = World(num_cpus=2, seed=5)
        node = Node(world, "n")
        node.create_timer(10 * MSEC, lambda api, msg: (yield api.compute(MSEC)))
        session = TracingSession(world)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        for _ in range(5):
            world.run(for_ns=200 * MSEC)
            session.rotate()
        session.stop_runtime()
        assert len(session.segments) >= 5
        trace = session.trace()
        starts = [e for e in trace.ros_events if e.probe == P2_TIMER_START]
        assert len(starts) == pytest.approx(100, abs=3)
        # Chronological order after merging segments.
        ts = [e.ts for e in trace.ros_events]
        assert ts == sorted(ts)


class TestOverheadAccounting:
    def test_overhead_report(self):
        world, session, talker, listener = traced_pub_sub()
        report = measure_overhead(
            [session.bpf], world, elapsed_ns=SEC, app_pids=[talker.pid, listener.pid]
        )
        assert report.trace_bytes > 0
        assert report.probe_run_cnt > 0
        assert 0 < report.probe_cores < 0.01
        assert report.app_cores > 0
        assert "MB" in report.summary()

    def test_probe_stats_accumulate(self):
        world, session, *_ = traced_pub_sub()
        stats = session.bpf.program_stats()
        by_name = {s["name"]: s for s in stats}
        assert by_name["P2"]["run_cnt"] > 0
        assert by_name["P16"]["run_cnt"] > 0
        assert all(s["run_time_ns"] >= s["run_cnt"] for s in stats if s["run_cnt"])


class TestTracePersistence:
    def test_trace_round_trips_through_dict(self):
        world, session, *_ = traced_pub_sub()
        trace = session.trace()
        clone = type(trace).from_dict(trace.to_dict())
        assert len(clone.ros_events) == len(trace.ros_events)
        assert len(clone.sched_events) == len(trace.sched_events)
        assert clone.pid_map == trace.pid_map
        assert clone.ros_events[0] == trace.ros_events[0]

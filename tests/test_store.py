"""The binary trace store: format round trips, mixed directories,
spooled recording, and the storage-layer error satellite."""

import gzip
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.batch import BatchConfig
from repro.experiments.runner import RunConfig, run_once
from repro.scenarios import build_scenario_spec
from repro.sim.kernel import SEC
from repro.sim.scheduler import SchedSwitch, SchedWakeup
from repro.store import (
    SEGMENT_SUFFIX,
    SegmentReader,
    SegmentSpool,
    StoreDatabase,
    StoreError,
    StoreFormatError,
    TraceStore,
    convert_database,
    encode_trace,
    merge_ros_streams,
    merge_sched_streams,
    merge_wakeup_streams,
    record_batch,
    record_run,
    save_database_binary,
    write_segment,
)
from repro.store.reader import read_pid_map
from repro.tracing.events import TraceEvent
from repro.tracing.session import Trace, TraceDatabase
from repro.tracing.storage import TRACE_SUFFIX, load_database, save_database, save_trace

DURATION_NS = int(1.0 * SEC)


def traced_run(name, run_index=0):
    # duration_ns forwarded like the batch/record workers do, so these
    # references are comparable with record_run output.
    spec = build_scenario_spec(
        name, run_index=run_index, runs=3, duration_ns=DURATION_NS
    )
    config = RunConfig(duration_ns=DURATION_NS, num_cpus=spec.num_cpus)
    return run_once(lambda world, i: spec.build(world), config, run_index=run_index)


@pytest.fixture(scope="module")
def sample_traces():
    return {
        name: traced_run(name).trace
        for name in ("syn", "sensor-fusion", "service-mesh")
    }


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------


class TestRoundTrip:
    @pytest.mark.parametrize("compress", [True, False])
    def test_scenario_traces_round_trip(self, sample_traces, tmp_path, compress):
        for name, trace in sample_traces.items():
            path = str(tmp_path / f"{name}{SEGMENT_SUFFIX}")
            write_segment(trace, path, compress=compress)
            restored = SegmentReader.open(path).to_trace()
            assert restored.to_dict() == trace.to_dict(), name

    def test_binary_json_binary_lossless(self, sample_traces, tmp_path):
        """binary -> Trace -> JSON -> Trace -> binary is a fixed point."""
        trace = sample_traces["syn"]
        first = encode_trace(trace)
        once = SegmentReader(first).to_trace()
        via_json = Trace.from_dict(json.loads(json.dumps(once.to_dict())))
        second = encode_trace(via_json)
        assert first == second
        assert SegmentReader(second).to_trace().to_dict() == trace.to_dict()

    def test_prefix_pid_map_matches_full_decode(self, sample_traces, tmp_path):
        for compress in (True, False):
            path = str(tmp_path / f"pm-{compress}{SEGMENT_SUFFIX}")
            write_segment(sample_traces["service-mesh"], path, compress=compress)
            assert read_pid_map(path) == sample_traces["service-mesh"].pid_map

    def test_pid_selection_matches_filter(self, sample_traces):
        trace = sample_traces["sensor-fusion"]
        reader = SegmentReader(encode_trace(trace))
        pids = trace.pids()[:2]
        selected = list(reader.iter_ros(pids=pids))
        expected = [e for e in trace.ros_events if e.pid in set(pids)]
        assert selected == expected

    def test_compression_shrinks_segments(self, sample_traces):
        trace = sample_traces["syn"]
        assert len(encode_trace(trace, compress=True)) < len(
            encode_trace(trace, compress=False)
        )

    def test_ros_pids_scans_the_event_column(self, sample_traces):
        trace = sample_traces["syn"]
        reader = SegmentReader(encode_trace(trace))
        assert reader.ros_pids() == sorted({e.pid for e in trace.ros_events})

    def test_merged_streams_match_trace_merge(self, sample_traces):
        """All three merge_*_streams agree with Trace.merge, per stream."""
        traces = [sample_traces["syn"], sample_traces["sensor-fusion"]]
        readers = [SegmentReader(encode_trace(t)) for t in traces]
        merged = Trace.merge(traces)
        assert list(merge_ros_streams(readers)) == merged.ros_events
        assert list(merge_sched_streams(readers)) == merged.sched_events
        assert list(merge_wakeup_streams(readers)) == merged.wakeup_events


# -- property-style round trips over synthetic traces -----------------------

_payloads = st.dictionaries(
    st.sampled_from(["topic", "cb_id", "src_ts", "kind", "will_dispatch", "x"]),
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
        st.text(max_size=8),
    ),
    max_size=4,
)


@st.composite
def synthetic_traces(draw):
    n = draw(st.integers(min_value=0, max_value=30))
    ros = sorted(
        (
            TraceEvent(
                ts=draw(st.integers(min_value=0, max_value=10 ** 12)),
                pid=draw(st.integers(min_value=1, max_value=5)),
                probe=draw(st.sampled_from(["p:a", "p:b", "dds_write_impl"])),
                data=draw(_payloads),
            )
            for _ in range(n)
        ),
        key=lambda e: e.ts,
    )
    m = draw(st.integers(min_value=0, max_value=15))
    sched = sorted(
        (
            SchedSwitch(
                ts=draw(st.integers(min_value=0, max_value=10 ** 12)),
                cpu=draw(st.integers(min_value=0, max_value=3)),
                prev_pid=draw(st.integers(min_value=0, max_value=5)),
                prev_comm=draw(st.text(max_size=6)),
                prev_prio=draw(st.integers(min_value=-1, max_value=99)),
                prev_state=draw(st.sampled_from(["R", "S", "D"])),
                next_pid=draw(st.integers(min_value=0, max_value=5)),
                next_comm=draw(st.text(max_size=6)),
                next_prio=draw(st.integers(min_value=-1, max_value=99)),
            )
            for _ in range(m)
        ),
        key=lambda e: e.ts,
    )
    k = draw(st.integers(min_value=0, max_value=5))
    wakeups = sorted(
        (
            SchedWakeup(
                ts=draw(st.integers(min_value=0, max_value=10 ** 12)),
                cpu=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=3))),
                pid=draw(st.integers(min_value=1, max_value=5)),
                comm=draw(st.text(max_size=6)),
                prio=draw(st.integers(min_value=-1, max_value=99)),
            )
            for _ in range(k)
        ),
        key=lambda e: e.ts,
    )
    pid_map = draw(
        st.dictionaries(
            st.integers(min_value=1, max_value=5),
            st.one_of(st.none(), st.text(max_size=10)),
            max_size=5,
        )
    )
    return Trace(
        ros_events=ros,
        sched_events=sched,
        wakeup_events=wakeups,
        pid_map=pid_map,
        start_ts=draw(st.integers(min_value=0, max_value=10 ** 12)),
        stop_ts=draw(st.integers(min_value=0, max_value=10 ** 12)),
    )


class TestPropertyRoundTrip:
    @given(trace=synthetic_traces(), compress=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_traces_round_trip(self, trace, compress):
        restored = SegmentReader(encode_trace(trace, compress=compress)).to_trace()
        assert restored.to_dict() == trace.to_dict()

    @given(trace=synthetic_traces())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_agrees_with_json_storage(self, trace):
        """Binary and the legacy JSON serialization describe one trace."""
        via_binary = SegmentReader(encode_trace(trace)).to_trace()
        via_json = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert via_binary.to_dict() == via_json.to_dict()


# ---------------------------------------------------------------------------
# Store directories: mixed formats, conversion, store-backed database
# ---------------------------------------------------------------------------


class TestTraceStore:
    def test_mixed_directory_loads_both_formats(self, sample_traces, tmp_path):
        directory = str(tmp_path / "mixed")
        os.makedirs(directory)
        legacy = sample_traces["syn"]
        binary = sample_traces["sensor-fusion"]
        save_trace(legacy, os.path.join(directory, f"legacy{TRACE_SUFFIX}"))
        write_segment(binary, os.path.join(directory, f"binary{SEGMENT_SUFFIX}"))
        store = TraceStore(directory)
        assert store.run_ids() == ["binary", "legacy"]
        assert not store.is_binary("legacy")
        assert store.is_binary("binary")
        assert store.load("legacy").to_dict() == legacy.to_dict()
        assert store.load("binary").to_dict() == binary.to_dict()
        merged = store.merged_trace()
        assert merged.to_dict() == Trace.merge([binary, legacy]).to_dict()

    def test_binary_shadows_legacy_same_run(self, sample_traces, tmp_path):
        directory = str(tmp_path / "shadow")
        os.makedirs(directory)
        save_trace(sample_traces["syn"], os.path.join(directory, f"r{TRACE_SUFFIX}"))
        write_segment(
            sample_traces["sensor-fusion"],
            os.path.join(directory, f"r{SEGMENT_SUFFIX}"),
        )
        store = TraceStore(directory)
        assert store.run_ids() == ["r"]
        assert store.is_binary("r")
        assert store.load("r").to_dict() == sample_traces["sensor-fusion"].to_dict()

    def test_empty_store_raises_unless_allowed(self, tmp_path):
        directory = str(tmp_path / "empty")
        os.makedirs(directory)
        with pytest.raises(StoreError):
            TraceStore(directory)
        assert TraceStore(directory, allow_empty=True).run_ids() == []
        with pytest.raises(FileNotFoundError):
            TraceStore(str(tmp_path / "missing"))

    def test_convert_legacy_is_idempotent(self, sample_traces, tmp_path):
        directory = str(tmp_path / "convert")
        database = TraceDatabase()
        database.add("run000", sample_traces["syn"])
        database.add("run001", sample_traces["sensor-fusion"])
        save_database(database, directory)
        written = convert_database(directory)
        assert len(written) == 2
        store = TraceStore(directory)
        assert all(store.is_binary(r) for r in store.run_ids())
        assert store.convert_legacy() == []  # nothing left to convert
        for run_id in database.run_ids():
            assert store.load(run_id).to_dict() == database.get(run_id).to_dict()
        # legacy originals still on disk unless remove=True
        assert any(n.endswith(TRACE_SUFFIX) for n in os.listdir(directory))
        store.convert_legacy(remove=True)  # no-op: already all binary

    def test_save_database_binary(self, sample_traces, tmp_path):
        database = TraceDatabase()
        database.add("a", sample_traces["syn"])
        paths = save_database_binary(database, str(tmp_path / "db"))
        assert len(paths) == 1 and paths[0].endswith(SEGMENT_SUFFIX)
        assert TraceStore(str(tmp_path / "db")).load("a").to_dict() == (
            sample_traces["syn"].to_dict()
        )

    def test_store_database_lazy_and_write_through(self, sample_traces, tmp_path):
        directory = str(tmp_path / "sdb")
        database = StoreDatabase(TraceStore.create(directory))
        database.add("run000", sample_traces["syn"])
        assert os.path.exists(os.path.join(directory, f"run000{SEGMENT_SUFFIX}"))
        with pytest.raises(ValueError):
            database.add("run000", sample_traces["syn"])
        # a fresh handle materializes lazily from disk
        fresh = StoreDatabase(directory)
        assert fresh.run_ids() == ["run000"]
        assert fresh.get("run000").to_dict() == sample_traces["syn"].to_dict()
        assert fresh.merged().to_dict() == Trace.merge(
            [sample_traces["syn"]]
        ).to_dict()
        assert len(fresh) == 1


class TestFormatErrors:
    def test_bad_magic(self):
        with pytest.raises(StoreFormatError):
            SegmentReader(b"NOTASEGM" + b"\x00" * 64)

    def test_truncated_header(self):
        with pytest.raises(StoreFormatError):
            SegmentReader(b"\x00" * 8)

    def test_truncated_body(self, sample_traces):
        raw = encode_trace(sample_traces["syn"], compress=False)
        with pytest.raises(StoreFormatError):
            SegmentReader(raw[: len(raw) // 2])

    def test_bad_version(self, sample_traces):
        raw = bytearray(encode_trace(sample_traces["syn"]))
        raw[8] = 99  # version u16 lives right after the 8-byte magic
        with pytest.raises(StoreFormatError):
            SegmentReader(bytes(raw))


# ---------------------------------------------------------------------------
# Spooled recording == in-memory tracing
# ---------------------------------------------------------------------------


class TestSpooledRecording:
    @pytest.mark.parametrize("name", ["syn", "deep-pipeline"])
    def test_record_run_matches_run_once(self, name, tmp_path):
        config = BatchConfig(duration_ns=DURATION_NS)
        recorded = record_run(name, 0, 3, config, str(tmp_path))
        stored = SegmentReader.open(recorded.path).to_trace()
        reference = traced_run(name).trace
        assert stored.to_dict() == reference.to_dict()
        assert recorded.ros_events == len(reference.ros_events)
        assert recorded.sched_events == len(reference.sched_events)

    def test_rotation_interval_does_not_change_the_trace(self, tmp_path):
        fine = record_run(
            "syn", 0, 3,
            BatchConfig(duration_ns=DURATION_NS, segment_every_ns=DURATION_NS // 7),
            str(tmp_path / "fine"),
        )
        coarse = record_run(
            "syn", 0, 3,
            BatchConfig(duration_ns=DURATION_NS),
            str(tmp_path / "coarse"),
        )
        fine_trace = SegmentReader.open(fine.path).to_trace()
        coarse_trace = SegmentReader.open(coarse.path).to_trace()
        assert fine_trace.to_dict() == coarse_trace.to_dict()

    def test_negative_rotation_interval_rejected(self, tmp_path):
        """A negative spool interval must fail fast, not loop forever."""
        from repro.store import record_batch

        config = BatchConfig(duration_ns=DURATION_NS, segment_every_ns=-1)
        with pytest.raises(ValueError, match="segment_every_ns"):
            record_batch("syn", runs=1, directory=str(tmp_path), config=config)
        with pytest.raises(ValueError, match="segment_every_ns"):
            record_run("syn", 0, 1, config, str(tmp_path))

    def test_spool_bounds_live_objects(self, sample_traces):
        """add_segment + the spool never keeps event objects around."""
        spool = SegmentSpool()
        spool.add_trace(sample_traces["syn"])
        assert spool.num_ros == len(sample_traces["syn"].ros_events)
        assert spool.num_sched == len(sample_traces["syn"].sched_events)


# ---------------------------------------------------------------------------
# Satellite: storage.load_database must not silently return empty
# ---------------------------------------------------------------------------


class TestLoadDatabaseEmptySatellite:
    def test_empty_directory_raises(self, tmp_path):
        directory = str(tmp_path / "db")
        os.makedirs(directory)
        with pytest.raises(ValueError, match="no .*traces"):
            load_database(directory)

    def test_allow_empty_escape_hatch(self, tmp_path):
        directory = str(tmp_path / "db")
        os.makedirs(directory)
        assert len(load_database(directory, allow_empty=True)) == 0

    def test_error_hints_at_binary_store(self, sample_traces, tmp_path):
        directory = str(tmp_path / "db")
        os.makedirs(directory)
        write_segment(
            sample_traces["syn"], os.path.join(directory, f"r{SEGMENT_SUFFIX}")
        )
        with pytest.raises(ValueError, match="TraceStore"):
            load_database(directory)

    def test_missing_directory_still_filenotfound(self):
        with pytest.raises(FileNotFoundError):
            load_database("/nonexistent/trace/dir")

    def test_populated_directory_unchanged(self, sample_traces, tmp_path):
        directory = str(tmp_path / "db")
        database = TraceDatabase()
        database.add("run000", sample_traces["syn"])
        save_database(database, directory)
        assert len(load_database(directory)) == 1


# ---------------------------------------------------------------------------
# Run-shadowing satellites: add_trace / record overwrite protection
# ---------------------------------------------------------------------------


class TestRunShadowing:
    def test_add_trace_refuses_existing_binary_run(self, sample_traces, tmp_path):
        store = TraceStore.create(str(tmp_path))
        store.add_trace("run000", sample_traces["syn"])
        with pytest.raises(ValueError, match="run000.*already stored"):
            store.add_trace("run000", sample_traces["sensor-fusion"])

    def test_add_trace_refuses_legacy_only_run(self, sample_traces, tmp_path):
        """A binary add over a legacy-only run would silently shadow the
        JSON content (binary wins name resolution) -- it must raise."""
        save_trace(sample_traces["syn"], str(tmp_path / f"run000{TRACE_SUFFIX}"))
        store = TraceStore(str(tmp_path))
        with pytest.raises(ValueError, match="run000.*already stored"):
            store.add_trace("run000", sample_traces["sensor-fusion"])
        # The legacy content is untouched and still resolves.
        assert store.load("run000").to_dict() == sample_traces["syn"].to_dict()
        assert not (tmp_path / f"run000{SEGMENT_SUFFIX}").exists()

    def test_record_batch_refuses_existing_runs(self, tmp_path):
        directory = str(tmp_path / "store")
        config = BatchConfig(duration_ns=DURATION_NS)
        record_batch("syn", runs=2, directory=directory, config=config)
        before = {
            run_id: TraceStore(directory).load(run_id).to_dict()
            for run_id in TraceStore(directory).run_ids()
        }
        with pytest.raises(ValueError, match="run000, run001"):
            record_batch(
                "syn", runs=2, directory=directory,
                config=BatchConfig(duration_ns=DURATION_NS, base_seed=999),
            )
        after = TraceStore(directory)
        assert {
            run_id: after.load(run_id).to_dict() for run_id in after.run_ids()
        } == before

    def test_record_batch_force_overwrites(self, tmp_path):
        directory = str(tmp_path / "store")
        record_batch(
            "syn", runs=1, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        result = record_batch(
            "syn", runs=2, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS), force=True,
        )
        assert result.run_ids == ["run000", "run001"]
        assert TraceStore(directory).run_ids() == ["run000", "run001"]

    def test_record_batch_into_disjoint_ids_is_allowed(self, sample_traces, tmp_path):
        """Only *colliding* run ids refuse; unrelated stored runs are
        left alone and the store grows."""
        directory = str(tmp_path / "store")
        store = TraceStore.create(directory)
        store.add_trace("run999", sample_traces["service-mesh"])
        record_batch(
            "syn", runs=1, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        assert TraceStore(directory).run_ids() == ["run000", "run999"]


class TestLegacyReaderCache:
    def test_legacy_open_is_cached_per_handle(self, sample_traces, tmp_path):
        save_trace(sample_traces["syn"], str(tmp_path / f"run000{TRACE_SUFFIX}"))
        store = TraceStore(str(tmp_path))
        assert store.open("run000") is store.open("run000")

    def test_union_pid_map_reuses_cached_legacy_reader(self, sample_traces, tmp_path):
        save_trace(sample_traces["syn"], str(tmp_path / f"run000{TRACE_SUFFIX}"))
        write_segment(
            sample_traces["sensor-fusion"],
            str(tmp_path / f"run001{SEGMENT_SUFFIX}"),
        )
        store = TraceStore(str(tmp_path))
        union = store.union_pid_map()
        expected = dict(sample_traces["syn"].pid_map)
        expected.update(sample_traces["sensor-fusion"].pid_map)
        assert union == expected
        # The planning pass loaded the legacy run; synthesis readers
        # reuse that instance instead of re-decoding the JSON.
        assert store.open("run000") is store.open("run000")

    def test_convert_legacy_drops_cached_reader(self, sample_traces, tmp_path):
        save_trace(sample_traces["syn"], str(tmp_path / f"run000{TRACE_SUFFIX}"))
        store = TraceStore(str(tmp_path))
        cached = store.open("run000")
        store.convert_legacy()
        reader = store.open("run000")
        assert reader is not cached
        assert isinstance(reader, SegmentReader)

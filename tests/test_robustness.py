"""Robustness tests: buffer overflow, map exhaustion, degenerate traces,
and end-to-end behaviour under adverse tracing conditions."""

import pytest

from repro.apps import build_avp
from repro.core import SchedIndex, extract_all, synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.ros2 import Msg, Node
from repro.sim import MSEC, SEC
from repro.tracing import Trace, TracingSession
from repro.world import World


class TestBufferOverflow:
    def test_lost_events_counted_and_pipeline_survives(self):
        """A tiny RT buffer drops events; synthesis must still produce a
        (partial) model without crashing."""
        world = World(num_cpus=2, seed=9)
        node = Node(world, "chatty")
        pub = node.create_publisher("/x")

        def cb(api, msg):
            yield api.compute(MSEC)
            api.publish(pub, Msg(stamp=api.now))

        node.create_timer(10 * MSEC, cb, label="T")
        sink = Node(world, "sink")
        sink.create_subscription("/x", lambda api, m: (yield api.compute(MSEC)), label="S")
        session = TracingSession(world, rt_buffer_capacity=64)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=5 * SEC)  # >> 64 events without rotation
        session.stop_runtime()
        assert session.rt_tracer.buffer.lost > 0
        dag = synthesize_from_trace(session.trace())
        assert dag.num_vertices >= 1  # partial but usable

    def test_rotation_prevents_loss(self):
        world = World(num_cpus=2, seed=9)
        node = Node(world, "chatty2")
        node.create_timer(10 * MSEC, lambda api, m: (yield api.compute(MSEC)), label="T")
        session = TracingSession(world, rt_buffer_capacity=256)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        for _ in range(10):
            world.run(for_ns=500 * MSEC)
            session.rotate()
        session.stop_runtime()
        assert session.rt_tracer.buffer.lost == 0
        starts = [e for e in session.trace().ros_events if e.is_cb_start()]
        assert len(starts) >= 490


class TestDegenerateTraces:
    def test_empty_trace_yields_empty_model(self):
        dag = synthesize_from_trace(Trace())
        assert dag.num_vertices == 0
        dag.validate()

    def test_trace_with_only_sched_events(self):
        world = World(num_cpus=1, seed=2)
        node = Node(world, "n")
        node.create_timer(50 * MSEC, lambda api, m: (yield api.compute(MSEC)))
        session = TracingSession(world)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=SEC)
        session.stop_runtime()
        trace = session.trace()
        stripped = Trace(
            ros_events=[],
            sched_events=trace.sched_events,
            pid_map=trace.pid_map,
        )
        dag = synthesize_from_trace(stripped)
        assert dag.num_vertices == 0

    def test_extract_all_unknown_pid(self):
        trace = Trace(pid_map={42: "ghost"})
        cblists = extract_all(trace)
        assert len(cblists) == 1
        assert len(cblists[0]) == 0

    def test_sched_index_empty(self):
        index = SchedIndex([])
        assert index.pids() == []
        assert index.exec_time(0, 100, 1) == 100


class TestWarmupArtifacts:
    def test_mid_callback_attach_produces_clean_model(self):
        """Attaching the runtime tracers mid-execution leaves partial
        instances that Alg. 1 must silently drop."""
        config = RunConfig(duration_ns=5 * SEC, warmup_ns=37 * MSEC, base_seed=8)
        result = run_once(lambda w, i: build_avp(w), config)
        dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
        dag.validate()
        # All six callbacks present despite the odd attach point.
        cb_ids = {v.cb_id for v in dag.vertices() if not v.is_and_junction}
        assert cb_ids == {"cb1", "cb2", "cb3", "cb4", "cb5", "cb6"}

    @pytest.mark.parametrize("warmup_ms", [0, 1, 13, 53, 101])
    def test_any_attach_point_is_safe(self, warmup_ms):
        config = RunConfig(
            duration_ns=3 * SEC, warmup_ns=warmup_ms * MSEC, base_seed=12
        )
        result = run_once(lambda w, i: build_avp(w), config)
        dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
        dag.validate()
        for vertex in dag.vertices():
            for sample, response in zip(vertex.exec_times, vertex.response_times):
                assert 0 <= sample <= response


class TestSrcTsStash:
    def test_concurrent_takes_use_per_pid_slots(self):
        """Two nodes taking simultaneously must not cross their srcTS
        stash entries (the BPF map is keyed by PID)."""
        world = World(num_cpus=2, seed=4, dds_latency_ns=0)
        src = Node(world, "src")
        a = Node(world, "a")
        b = Node(world, "b")
        pa = src.create_publisher("/fan")

        def feed(api, msg):
            api.publish(pa, Msg(stamp=api.now))
            return None

        src.create_timer(50 * MSEC, feed)
        a.create_subscription("/fan", lambda api, m: (yield api.compute(MSEC)), label="A")
        b.create_subscription("/fan", lambda api, m: (yield api.compute(MSEC)), label="B")
        session = TracingSession(world)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=2 * SEC)
        session.stop_runtime()
        trace = session.trace()
        from repro.tracing import P6_TAKE, P16_DDS_WRITE

        write_ts = {
            e.get("src_ts") for e in trace.ros_events if e.probe == P16_DDS_WRITE
        }
        takes = [e for e in trace.ros_events if e.probe == P6_TAKE]
        assert takes
        assert all(t.get("src_ts") in write_ts for t in takes)

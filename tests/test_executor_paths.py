"""Tests for executor dispatch paths and callback conventions:
plain-function callbacks, generator callbacks with return values,
None callbacks, and the CallbackApi surface."""

import pytest

from repro.ros2 import Msg, Node
from repro.sim import Constant, MSEC, SEC
from repro.world import World


def make_world(**kwargs):
    kwargs.setdefault("num_cpus", 2)
    kwargs.setdefault("seed", 1)
    return World(**kwargs)


class TestCallbackConventions:
    def test_plain_function_callback(self):
        """Non-generator callbacks run instantaneously (no compute)."""
        world = make_world()
        node = Node(world, "n")
        hits = []
        node.create_timer(100 * MSEC, lambda api, msg: hits.append(api.now))
        world.launch()
        world.run(for_ns=SEC - MSEC)
        assert len(hits) == 10
        assert hits == [i * 100 * MSEC for i in range(10)]

    def test_generator_callback_with_return_value_service(self):
        world = make_world()
        server = Node(world, "server")
        caller = Node(world, "caller")
        got = []

        def handler(api, request):
            yield api.compute(MSEC)
            return request.upper()

        server.create_service("/up", handler)
        client = caller.create_client("/up", lambda api, d: got.append(d))
        caller.create_timer(100 * MSEC, lambda api, m: api.call(client, "abc") and None)
        world.launch()
        world.run(for_ns=SEC)
        assert got and set(got) == {"ABC"}

    def test_plain_function_service_handler(self):
        world = make_world()
        server = Node(world, "server")
        caller = Node(world, "caller")
        got = []
        server.create_service("/neg", lambda api, request: -request)
        client = caller.create_client("/neg", lambda api, d: got.append(d))
        caller.create_timer(100 * MSEC, lambda api, m: api.call(client, 5) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert got and set(got) == {-5}

    def test_none_subscription_callback_consumes_silently(self):
        world = make_world()
        src = Node(world, "src")
        sink = Node(world, "sink")
        pub = src.create_publisher("/t")
        src.create_timer(50 * MSEC, lambda api, m: api.publish(pub) and None)
        sub = sink.create_subscription("/t", callback=None)
        world.launch()
        world.run(for_ns=SEC)
        assert sub.taken >= 19  # data consumed even without a callback

    def test_api_work_uses_model(self):
        world = make_world()
        node = Node(world, "n")
        durations = []

        def cb(api, msg):
            before = api.now
            yield api.work(Constant(3 * MSEC))
            durations.append(api.now - before)

        node.create_timer(100 * MSEC, cb)
        world.launch()
        world.run(for_ns=500 * MSEC)
        assert set(durations) == {3 * MSEC}

    def test_api_now_tracks_simulated_clock(self):
        world = make_world()
        node = Node(world, "n")
        observed = []

        def cb(api, msg):
            observed.append(api.now)
            yield api.compute(MSEC)
            observed.append(api.now)

        node.create_timer(100 * MSEC, cb)
        world.launch()
        world.run(for_ns=150 * MSEC)
        assert observed[1] - observed[0] == MSEC


class TestDispatchBookkeeping:
    def test_dispatch_counter(self):
        world = make_world()
        node = Node(world, "n")
        node.create_timer(100 * MSEC, lambda api, m: None)
        world.launch()
        world.run(for_ns=SEC - MSEC)
        assert node.executor.dispatches == 10

    def test_timer_tick_and_dispatch_counters(self):
        world = make_world(num_cpus=1)
        node = Node(world, "n")
        blocker = Node(world, "blocker", affinity=[0])
        node.affinity = [0]
        timer = node.create_timer(100 * MSEC, lambda api, m: None)
        # A heavy callback delays the node's executor; ticks keep firing.
        blocker.create_timer(
            100 * MSEC, lambda api, m: (yield api.compute(80 * MSEC)), phase_ns=0
        )
        world.launch()
        world.run(for_ns=SEC)
        assert timer.ticks >= timer.dispatched

    def test_service_served_counter(self):
        world = make_world()
        server = Node(world, "server")
        caller = Node(world, "caller")
        service = server.create_service("/s", lambda api, r: r)
        client = caller.create_client("/s")
        caller.create_timer(100 * MSEC, lambda api, m: api.call(client) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert service.served >= 9
        assert client.calls >= 9
        # No callback registered on the client: dispatch gate still pops
        # pending sequence numbers.
        assert client.dispatched == 0 or client.callback is None

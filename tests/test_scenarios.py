"""Ground-truth tests for the scenario subsystem.

Every registered scenario is traced and its synthesized DAG compared
*exactly* -- vertex keys, edge pairs, OR markings -- against the
topology the declarative spec predicts.  The spec is the oracle: a
regression in the tracers, extraction, or synthesis shows up as a
mismatch in at least one scenario.
"""

import pytest

from repro.apps import avp_spec, syn_spec
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.experiments.fig3 import EXPECTED_SYN_EDGES
from repro.scenarios import (
    ClientSpec,
    NodeSpec,
    ScenarioError,
    ScenarioSpec,
    ServiceSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    TimerSpec,
    build_scenario_spec,
    combine_specs,
    get_scenario,
    scenario_names,
)
from repro.sim import SEC, ms
from repro.sim.workload import Constant

ALL_SCENARIOS = scenario_names()


def trace_scenario(spec, duration_ns=4 * SEC, seed=123):
    config = RunConfig(
        duration_ns=duration_ns, base_seed=seed, num_cpus=spec.num_cpus
    )
    result = run_once(lambda world, i: spec.build(world), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return dag, result.apps


class TestRegistry:
    def test_at_least_six_scenarios(self):
        assert len(ALL_SCENARIOS) >= 6

    def test_paper_applications_registered(self):
        assert {"avp", "syn", "avp-interference"} <= set(ALL_SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("does-not-exist")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(TypeError, match="does not accept"):
            build_scenario_spec("syn", bogus_parameter=1)

    def test_factory_parameters_forwarded(self):
        spec = build_scenario_spec("deep-pipeline", depth=3)
        assert len(spec.subscriptions) == 3

    def test_entries_have_summaries(self):
        for name in ALL_SCENARIOS:
            assert get_scenario(name).summary


class TestGroundTruth:
    """The tentpole guarantee: spec-declared topology == synthesized DAG."""

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_topology_recovered_exactly(self, name):
        spec = build_scenario_spec(name)
        dag, _ = trace_scenario(spec)
        dag.validate()
        assert {v.key for v in dag.vertices()} == spec.expected_vertex_keys()
        assert {(e.src, e.dst) for e in dag.edges()} == spec.expected_edge_pairs()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_or_junctions_marked_exactly(self, name):
        spec = build_scenario_spec(name)
        dag, _ = trace_scenario(spec)
        marked = {v.key for v in dag.vertices() if v.is_or_junction}
        assert marked == spec.expected_or_junctions()

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_every_callback_measured(self, name):
        spec = build_scenario_spec(name)
        dag, _ = trace_scenario(spec)
        for vertex in dag.vertices():
            if vertex.is_and_junction:
                continue
            assert vertex.exec_times, vertex.key
            assert all(t > 0 for t in vertex.exec_times), vertex.key


class TestSpecDerivations:
    def test_syn_spec_matches_fig3_ground_truth(self):
        assert syn_spec().expected_edge_pairs() == set(EXPECTED_SYN_EDGES)

    def test_syn_spec_vertex_count(self):
        # 16 callbacks + SV3 replicated for its 2 callers + AND junction.
        assert len(syn_spec().expected_vertex_keys()) == 18

    def test_avp_trace_nodes_filter(self):
        avp = avp_spec()
        syn = syn_spec()
        combined = combine_specs(
            "combined", "avp+syn", [avp, syn], trace_nodes=avp.node_names()
        )
        assert combined.expected_vertex_keys() == avp.expected_vertex_keys()
        assert combined.expected_edge_pairs() == avp.expected_edge_pairs()

    def test_sensor_fusion_declares_or_junction(self):
        spec = build_scenario_spec("sensor-fusion")
        assert spec.expected_or_junctions() == {"motion_planner/PLAN"}

    def test_service_mesh_replicates_shared_services(self):
        spec = build_scenario_spec("service-mesh")
        replicas = [k for k in spec.expected_vertex_keys() if "@" in k]
        # gateway and auth are each invoked by two distinct callers.
        assert len(replicas) == 4

    def test_or_marking_on_sync_member_with_two_publishers(self):
        """A multi-publisher topic feeding a synchronizer input must be
        predicted as OR-marked -- and the synthesis must agree."""
        spec = ScenarioSpec(
            name="or-sync", description="",
            nodes=(NodeSpec("a"), NodeSpec("b"), NodeSpec("f")),
            timers=(
                TimerSpec("a", "TA", ms(90), Constant(ms(1)),
                          publishes=("/t", "/u")),
                TimerSpec("b", "TB", ms(110), Constant(ms(1)),
                          publishes=("/t",)),
            ),
            synchronizers=(
                SynchronizerSpec(
                    "f",
                    inputs=(SyncInputSpec("M1", "/t"), SyncInputSpec("M2", "/u")),
                    slop_ns=ms(200),
                ),
            ),
        )
        assert spec.expected_or_junctions() == {"f/M1"}
        dag, _ = trace_scenario(spec)
        marked = {v.key for v in dag.vertices() if v.is_or_junction}
        assert marked == spec.expected_or_junctions()


def minimal_nodes():
    return (NodeSpec("a"), NodeSpec("b"))


class TestSpecValidation:
    def test_duplicate_labels_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            timers=(
                TimerSpec("a", "X", ms(100), Constant(ms(1)), publishes=("/t",)),
                TimerSpec("b", "X", ms(100), Constant(ms(1)), publishes=("/u",)),
            ),
        )
        with pytest.raises(ScenarioError, match="duplicate callback labels"):
            spec.validate()

    def test_unknown_node_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            timers=(TimerSpec("ghost", "T", ms(100), Constant(ms(1))),),
        )
        with pytest.raises(ScenarioError, match="unknown node"):
            spec.validate()

    def test_subscription_without_publisher_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            subscriptions=(
                SubscriptionSpec("a", "S", "/nothing", Constant(ms(1))),
            ),
        )
        with pytest.raises(ScenarioError, match="nothing publishes"):
            spec.validate()

    def test_client_without_service_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            timers=(TimerSpec("a", "T", ms(100), Constant(ms(1)), calls="C"),),
            clients=(ClientSpec("a", "C", "/missing", Constant(ms(1))),),
        )
        with pytest.raises(ScenarioError, match="unknown service"):
            spec.validate()

    def test_uncalled_client_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            services=(ServiceSpec("b", "SV", "/svc", Constant(ms(1))),),
            clients=(ClientSpec("a", "C", "/svc", Constant(ms(1))),),
        )
        with pytest.raises(ScenarioError, match="never called"):
            spec.validate()

    def test_single_input_synchronizer_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            timers=(TimerSpec("a", "T", ms(100), Constant(ms(1)), publishes=("/x",)),),
            synchronizers=(
                SynchronizerSpec("b", inputs=(SyncInputSpec("S", "/x"),)),
            ),
        )
        with pytest.raises(ScenarioError, match=">= 2 inputs"):
            spec.validate()

    def test_two_synchronizers_on_one_node_rejected(self):
        timers = (
            TimerSpec("a", "T", ms(100), Constant(ms(1)), publishes=("/x", "/y")),
        )
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(), timers=timers,
            synchronizers=(
                SynchronizerSpec("b", inputs=(
                    SyncInputSpec("S1", "/x"), SyncInputSpec("S2", "/y"))),
                SynchronizerSpec("b", inputs=(
                    SyncInputSpec("S3", "/x"), SyncInputSpec("S4", "/y"))),
            ),
        )
        with pytest.raises(ScenarioError, match="one synchronizer per node"):
            spec.validate()

    def test_trace_nodes_must_exist(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            trace_nodes=("ghost",),
        )
        with pytest.raises(ScenarioError, match="trace_nodes"):
            spec.validate()

    def test_client_with_two_callers_rejected(self):
        spec = ScenarioSpec(
            name="bad", description="", nodes=minimal_nodes(),
            services=(ServiceSpec("b", "SV", "/svc", Constant(ms(1))),),
            timers=(
                TimerSpec("a", "T1", ms(100), Constant(ms(1)), calls="C"),
                TimerSpec("a", "T2", ms(130), Constant(ms(1)), calls="C"),
            ),
            clients=(ClientSpec("a", "C", "/svc", Constant(ms(1))),),
        )
        with pytest.raises(ScenarioError, match="more than one callback"):
            spec._callers()

"""Unit tests for the DAG-synthesis rules on hand-built CBlists."""

import pytest

from repro.core import CallbackInstance, CBList, synthesize_dag
from repro.core.synthesis import junction_key, vertex_key


def cblist(pid, node, *instances):
    cbl = CBList(pid=pid, node=node)
    for inst in instances:
        cbl.add(inst)
    return cbl


def inst(cb_id, cb_type="subscriber", intopic=None, outtopics=(), sync=False,
         start=0, end=10, exec_time=5):
    return CallbackInstance(
        cb_type=cb_type,
        start=start,
        end=end,
        cb_id=cb_id,
        intopic=intopic,
        outtopics=list(outtopics),
        is_sync_subscriber=sync,
        exec_time=exec_time,
    )


class TestEdgeRules:
    def test_topic_match_creates_edge(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("T", cb_type="timer", outtopics=["/x"])),
            cblist(2, "b", inst("S", intopic="/x")),
        ])
        assert dag.has_edge("a/T", "b/S", "/x")

    def test_no_edge_without_match(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("T", cb_type="timer", outtopics=["/x"])),
            cblist(2, "b", inst("S", intopic="/y")),
        ])
        assert dag.num_edges == 0

    def test_no_self_edge(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("S", intopic="/loop", outtopics=["/loop"])),
        ])
        assert dag.num_edges == 0

    def test_divergence_multiple_outputs(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("T", cb_type="timer", outtopics=["/x", "/y"])),
            cblist(2, "b", inst("S1", intopic="/x"), inst("S2", intopic="/y")),
        ])
        assert dag.has_edge("a/T", "b/S1", "/x")
        assert dag.has_edge("a/T", "b/S2", "/y")


class TestOrJunctionRule:
    def test_two_publishers_mark_or(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("T1", cb_type="timer", outtopics=["/x"])),
            cblist(2, "b", inst("T2", cb_type="timer", outtopics=["/x"])),
            cblist(3, "c", inst("S", intopic="/x")),
        ])
        assert dag.vertex("c/S").is_or_junction
        assert len(dag.predecessors("c/S")) == 2

    def test_single_publisher_no_or(self):
        dag = synthesize_dag([
            cblist(1, "a", inst("T1", cb_type="timer", outtopics=["/x"])),
            cblist(3, "c", inst("S", intopic="/x")),
        ])
        assert not dag.vertex("c/S").is_or_junction


class TestSyncJunctionRule:
    def make_sync_lists(self, include_downstream=True):
        lists = [
            cblist(
                1,
                "fusion",
                inst("M1", intopic="/f1", sync=True, outtopics=["/out"]),
                inst("M2", intopic="/f2", sync=True),
            ),
        ]
        if include_downstream:
            lists.append(cblist(2, "sink", inst("D", intopic="/out")))
        return lists

    def test_junction_inserted(self):
        dag = synthesize_dag(self.make_sync_lists())
        jkey = junction_key("fusion")
        assert dag.has_vertex(jkey)
        assert dag.has_edge("fusion/M1", jkey)
        assert dag.has_edge("fusion/M2", jkey)
        assert dag.has_edge(jkey, "sink/D", "/out")

    def test_member_outputs_rerouted(self):
        dag = synthesize_dag(self.make_sync_lists())
        assert not dag.has_edge("fusion/M1", "sink/D")

    def test_member_never_last_has_no_output(self):
        """A member whose data never arrives last publishes nothing; the
        junction output still comes from the union."""
        dag = synthesize_dag(self.make_sync_lists())
        assert dag.vertex(junction_key("fusion")).outtopics == ["/out"]

    def test_single_sync_member_no_junction(self):
        dag = synthesize_dag([
            cblist(1, "fusion", inst("M1", intopic="/f1", sync=True, outtopics=["/out"])),
            cblist(2, "sink", inst("D", intopic="/out")),
        ])
        assert not dag.has_vertex(junction_key("fusion"))
        assert dag.has_edge("fusion/M1", "sink/D", "/out")

    def test_model_sync_disabled(self):
        dag = synthesize_dag(self.make_sync_lists(), model_sync=False)
        assert not dag.has_vertex(junction_key("fusion"))
        assert dag.has_edge("fusion/M1", "sink/D", "/out")


class TestServiceReplication:
    def make_service_lists(self):
        return [
            cblist(
                1,
                "server",
                inst("SV", cb_type="service", intopic="/rq#A", outtopics=["/rp#CA"]),
                inst("SV", cb_type="service", intopic="/rq#B", outtopics=["/rp#CB"]),
            ),
            cblist(2, "na", inst("A", cb_type="timer", outtopics=["/rq#A"]),
                   inst("CA", cb_type="client", intopic="/rp#CA")),
            cblist(3, "nb", inst("B", cb_type="timer", outtopics=["/rq#B"]),
                   inst("CB", cb_type="client", intopic="/rp#CB")),
        ]

    def test_replicated_vertices_and_disjoint_chains(self):
        dag = synthesize_dag(self.make_service_lists())
        sv = dag.find_vertices(cb_id="SV")
        assert len(sv) == 2
        for vertex in sv:
            preds = dag.predecessors(vertex.key)
            succs = dag.successors(vertex.key)
            assert len(preds) == 1 and len(succs) == 1
            assert (preds[0].cb_id, succs[0].cb_id) in {("A", "CA"), ("B", "CB")}

    def test_naive_mode_folds_vertices(self):
        dag = synthesize_dag(self.make_service_lists(), split_services=False)
        sv = dag.find_vertices(cb_id="SV")
        assert len(sv) == 1
        assert len(dag.predecessors(sv[0].key)) == 2
        assert len(dag.successors(sv[0].key)) == 2

    def test_naive_mode_merges_samples(self):
        dag = synthesize_dag(self.make_service_lists(), split_services=False)
        sv = dag.find_vertices(cb_id="SV")[0]
        assert len(sv.exec_times) == 2

    def test_vertex_key_scheme(self):
        lists = self.make_service_lists()
        records = {r.cb_id: r for r in lists[0]}
        assert "@" in vertex_key(records["SV"])
        assert vertex_key(records["SV"], split_services=False) == "server/SV"

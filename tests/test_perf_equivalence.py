"""Equivalence pins for the PR-2 performance overhaul.

Three layers of guarantees, each against the frozen pre-change
implementations in :mod:`repro._legacy`:

1. **golden synthesis** -- for every registry scenario, the optimized
   TraceIndex pipeline must produce byte-identical DAG JSON, exec-time
   tables and DOT exports;
2. **full-stack sim** -- the optimized kernel/scheduler/tracer stack
   must emit bit-identical traces;
3. **Alg. 2 properties** -- the columnar ``SchedIndex`` must agree with
   both the literal ``get_exec_time`` and the frozen object-walking
   index on arbitrary event soups.

Plus the batch determinism re-check: ``--jobs`` must not change results
now that synthesis flows through ``TraceIndex``.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro._legacy import LegacySchedIndex, legacy_extract_all
from repro._legacy.tracing.session import TracingSession as LegacyTracingSession
from repro._legacy.world import World as LegacyWorld
from repro.core import (
    SchedIndex,
    dag_to_json,
    format_exec_table,
    get_exec_time,
    synthesize_dag,
    synthesize_from_trace,
    to_dot,
)
from repro.core.merge import dag_from_merged_traces, merge_dags
from repro.experiments import BatchConfig, RunConfig, run_batch, run_once
from repro.scenarios import build_scenario_spec, scenario_names
from repro.sim import SEC, HeapKernel, SchedSwitch, SimKernel
from repro.sim.policies import POLICY_NAMES
from repro.tracing.session import Trace, TracingSession
from repro.world import World

DURATION_NS = int(1.5 * SEC)


def _traced_run(
    name,
    run_index=0,
    world_cls=World,
    session_cls=TracingSession,
    **world_kwargs,
):
    spec = build_scenario_spec(name, run_index=run_index, runs=3)
    config = RunConfig(duration_ns=DURATION_NS, num_cpus=spec.num_cpus)
    world = world_cls(
        num_cpus=config.num_cpus,
        seed=config.seed_for(run_index),
        timeslice=config.timeslice_ns,
        dds_latency_ns=config.dds_latency_ns,
        start_time_ns=config.time_base_for(run_index),
        first_pid=config.pid_base_for(run_index),
        **world_kwargs,
    )
    spec.build(world)
    session = session_cls(world, kernel_filter=config.kernel_filter)
    session.start_init()
    world.launch()
    world.run(for_ns=config.warmup_ns)
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=DURATION_NS)
    session.stop_runtime()
    return session.trace()


@pytest.fixture(scope="module")
def traces_by_scenario():
    return {name: _traced_run(name) for name in scenario_names()}


class TestGoldenSynthesisEquivalence:
    """Optimized pipeline == frozen pre-change pipeline, byte for byte."""

    @pytest.fixture(scope="class", autouse=True)
    def _dags(self, traces_by_scenario):
        type(self).new_dags = {
            name: synthesize_from_trace(trace)
            for name, trace in traces_by_scenario.items()
        }
        type(self).legacy_dags = {
            name: synthesize_dag(legacy_extract_all(trace))
            for name, trace in traces_by_scenario.items()
        }

    @pytest.mark.parametrize("name", scenario_names())
    def test_dag_json_identical(self, name):
        assert dag_to_json(self.new_dags[name]) == dag_to_json(
            self.legacy_dags[name]
        )

    @pytest.mark.parametrize("name", scenario_names())
    def test_exec_table_identical(self, name):
        assert format_exec_table(self.new_dags[name]) == format_exec_table(
            self.legacy_dags[name]
        )

    @pytest.mark.parametrize("name", scenario_names())
    def test_dot_identical(self, name):
        assert to_dot(self.new_dags[name]) == to_dot(self.legacy_dags[name])


class TestMergedTraceEquivalence:
    """Strategy 1 (merge traces, then synthesize): the O(P*N) path."""

    def test_merged_synthesis_identical(self):
        traces = [_traced_run("avp-interference", run_index=i) for i in range(2)]
        new_dag = dag_from_merged_traces(traces)
        legacy_dag = synthesize_dag(legacy_extract_all(Trace.merge(traces)))
        assert dag_to_json(new_dag) == dag_to_json(legacy_dag)

    def test_trace_merge_round_trips_serialization(self):
        traces = [_traced_run("syn", run_index=i) for i in range(2)]
        merged = Trace.merge(traces)
        restored = Trace.from_dict(
            json.loads(json.dumps(merged.to_dict()))
        )
        assert restored.to_dict() == merged.to_dict()


class TestFullStackSimEquivalence:
    """New kernel/scheduler/tracing stack == frozen stack, bit for bit."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_traces_identical(self, name, traces_by_scenario):
        legacy_trace = _traced_run(
            name, world_cls=LegacyWorld, session_cls=LegacyTracingSession
        )
        assert traces_by_scenario[name].to_dict() == legacy_trace.to_dict()


class TestPolicyMatrixEquivalence:
    """The slab-kernel fast path stays bit-identical across the PR 9
    policy matrix.

    The frozen legacy stack predates pluggable policies (its default is
    the priority/RR policy pinned against it above), so for the other
    three policies the pin is the flagged reference substrate: the same
    world with ``kernel_cls=HeapKernel`` -- handle objects and
    ``pending``-recheck run loop instead of the slab's parallel arrays
    and generation tags.  Every lazy-arming and token-cancel path in the
    scheduler runs on both kernels here.
    """

    @pytest.mark.parametrize("name", ["avp-interference", "service-mesh"])
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_slab_kernel_matches_heap_reference(self, name, policy):
        slab = _traced_run(name, sched_policy=policy, kernel_cls=SimKernel)
        reference = _traced_run(name, sched_policy=policy, kernel_cls=HeapKernel)
        assert slab.to_dict() == reference.to_dict()

    def test_default_policy_is_the_legacy_pinned_one(self):
        """``sched_policy="priority"`` == the default-policy stack that
        the legacy comparison above pins, closing the matrix: priority
        is pinned to legacy, and every policy is pinned to the reference
        kernel."""
        explicit = _traced_run("avp-interference", sched_policy="priority")
        default = _traced_run("avp-interference")
        assert explicit.to_dict() == default.to_dict()


class TestBatchDeterminismThroughTraceIndex:
    def test_jobs_do_not_change_results(self):
        config = BatchConfig(duration_ns=DURATION_NS, base_seed=321)
        serial = run_batch("sensor-fusion", runs=2, jobs=1, config=config)
        parallel = run_batch("sensor-fusion", runs=2, jobs=2, config=config)
        assert dag_to_json(serial.merged_dag) == dag_to_json(parallel.merged_dag)
        assert serial.table() == parallel.table()

    def test_golden_exec_table_stability(self, traces_by_scenario):
        """Exec tables are reproducible run-to-run (same seeds)."""
        for name, trace in traces_by_scenario.items():
            again = _traced_run(name)
            assert format_exec_table(
                synthesize_from_trace(again)
            ) == format_exec_table(synthesize_from_trace(trace)), name


def switch(ts, prev_pid, next_pid, cpu=0):
    return SchedSwitch(ts, cpu, prev_pid, f"p{prev_pid}", 0, "R",
                       next_pid, f"p{next_pid}", 0)


@st.composite
def event_soup(draw):
    """Arbitrary-but-causally-plausible switch sequences on one CPU."""
    pids = [1, 2, 3]
    t = 0
    current = draw(st.sampled_from(pids))
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        t += draw(st.integers(min_value=1, max_value=500))
        nxt = draw(st.sampled_from([p for p in pids if p != current]))
        events.append(switch(t, current, nxt))
        current = nxt
    return events


class TestColumnarSchedIndexProperties:
    @given(
        soup=event_soup(),
        start=st.integers(min_value=0, max_value=5000),
        width=st.integers(min_value=0, max_value=5000),
        pid=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=200)
    def test_columnar_equals_literal(self, soup, start, width, pid):
        end = start + width
        assert SchedIndex(soup).exec_time(start, end, pid) == get_exec_time(
            start, end, pid, soup
        )

    @given(
        soup=event_soup(),
        start=st.integers(min_value=0, max_value=5000),
        width=st.integers(min_value=0, max_value=5000),
        pid=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=200)
    def test_columnar_equals_frozen_object_index(self, soup, start, width, pid):
        end = start + width
        assert SchedIndex(soup).exec_time(start, end, pid) == LegacySchedIndex(
            soup
        ).exec_time(start, end, pid)

    @given(soup=event_soup(), pid=st.sampled_from([1, 2, 3]))
    @settings(max_examples=100)
    def test_events_for_matches_frozen_index(self, soup, pid):
        assert SchedIndex(soup).events_for(pid) == LegacySchedIndex(
            soup
        ).events_for(pid)


class TestMergeSemantics:
    def test_heap_merge_matches_sort(self):
        """K-way merge output == the old extend-then-sort, ties included."""
        a = _traced_run("syn", run_index=0)
        b = _traced_run("syn", run_index=1)
        merged = Trace.merge([a, b])
        flat = sorted(a.ros_events + b.ros_events, key=lambda e: e.ts)
        assert merged.ros_events == flat

    def test_merged_dag_strategies_consistent(self):
        traces = [_traced_run("deep-pipeline", run_index=i) for i in range(2)]
        per_run = [synthesize_from_trace(t) for t in traces]
        merged = merge_dags(per_run)
        assert merged.num_vertices == per_run[0].num_vertices

"""Live synthesis service: incremental maintenance + ingestion pins.

The service's core contract: a :class:`LiveSynthesizer` fed stored
segments one at a time -- in run order or in shuffled arrival orders --
is byte-identical (DAG JSON, exec tables, golden DOT) to a from-scratch
``synthesize_from_store`` over the same committed runs at *every*
commit point, for every registry scenario; with a retention window, it
matches the batch synthesis of the truncated store.  Plus the ingestion
edge: validation, atomic commits, drop-dir hold-then-reject, store
refresh against a second writer process, and the spool's atomic
``finish_path``.
"""

import os
import random
import shutil
import subprocess
import sys
import zlib

import pytest

from repro.core import dag_to_json, format_exec_table, to_dot
from repro.experiments.batch import BatchConfig
from repro.scenarios import scenario_names
from repro.sim.kernel import SEC
from repro.store import TraceStore, record_batch, synthesize_from_store
from repro.store.format import SEGMENT_SUFFIX
from repro.store.writer import SegmentSpool
from repro.service import (
    DropDirWatcher,
    IngestError,
    IngestSpool,
    LiveSynthesizer,
    ServiceCounters,
)

DURATION_NS = int(1.0 * SEC)
RUNS = 3


def _signature(dag):
    """The three byte-level renderings the equivalence contract pins."""
    return dag_to_json(dag), format_exec_table(dag), to_dot(dag)


def _arrival_orders(name, run_ids):
    """The arrival orders exercised per scenario: run order plus a
    deterministic per-scenario shuffle forced to differ from it
    (crc32-seeded -- ``hash()`` is salted across interpreters)."""
    in_order = sorted(run_ids)
    rng = random.Random(zlib.crc32(name.encode()))
    shuffled = list(in_order)
    while shuffled == in_order:
        rng.shuffle(shuffled)
    return [in_order, shuffled]


@pytest.fixture(scope="module")
def sources(tmp_path_factory):
    """One recorded source store per registry scenario; tests copy its
    segment files into fresh target stores to simulate arrivals."""
    root = tmp_path_factory.mktemp("service_sources")
    result = {}
    for name in scenario_names():
        directory = str(root / name)
        record_batch(
            name, runs=RUNS, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        result[name] = directory
    return result


def _deliver(source_dir, target_dir, run_id):
    """One segment 'arrives': its file appears in the target store."""
    name = run_id + SEGMENT_SUFFIX
    shutil.copy(os.path.join(source_dir, name), os.path.join(target_dir, name))


class TestIncrementalEquivalence:
    """Incremental == batch, byte for byte, at every commit point."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_every_commit_point_matches_batch(self, sources, name, tmp_path):
        run_ids = sorted(TraceStore(sources[name]).run_ids())
        for case, order in enumerate(_arrival_orders(name, run_ids)):
            target = str(tmp_path / f"order{case}")
            live = LiveSynthesizer(TraceStore.create(target))
            for run_id in order:
                _deliver(sources[name], target, run_id)
                assert live.refresh() == [run_id]
                batch = synthesize_from_store(TraceStore(target), jobs=1)
                assert _signature(live.model()) == _signature(batch), (
                    name, order, run_id,
                )

    def test_in_order_arrivals_never_rebuild(self, sources, tmp_path):
        source = sources["syn"]
        target = str(tmp_path / "inorder")
        counters = ServiceCounters()
        live = LiveSynthesizer(TraceStore.create(target), counters=counters)
        for run_id in sorted(TraceStore(source).run_ids()):
            _deliver(source, target, run_id)
            live.refresh()
        assert counters.extends == RUNS
        assert counters.rebuilds == 0
        assert counters.segments_ingested == RUNS
        assert counters.events_indexed > 0

    def test_out_of_order_arrival_rebuilds(self, sources, tmp_path):
        source = sources["syn"]
        target = str(tmp_path / "ooo")
        counters = ServiceCounters()
        live = LiveSynthesizer(TraceStore.create(target), counters=counters)
        for run_id in ["run001", "run000", "run002"]:
            _deliver(source, target, run_id)
            live.refresh()
        assert counters.rebuilds >= 1
        batch = synthesize_from_store(TraceStore(target), jobs=1)
        assert _signature(live.model()) == _signature(batch)

    def test_ingest_rejects_duplicates_and_unknown_runs(self, sources, tmp_path):
        source = sources["syn"]
        target = str(tmp_path / "dup")
        live = LiveSynthesizer(TraceStore.create(target))
        _deliver(source, target, "run000")
        live.refresh()
        with pytest.raises(ValueError, match="already ingested"):
            live.ingest("run000")
        with pytest.raises(ValueError, match="not in store"):
            live.ingest("run999")

    def test_retain_window_validation(self, tmp_path):
        with pytest.raises(ValueError, match="retain_window"):
            LiveSynthesizer(
                TraceStore.create(str(tmp_path / "s")), retain_window=0
            )


class TestEvictionWindow:
    """retain_window=N == batch synthesis of the N newest runs."""

    def test_eviction_matches_truncated_batch_store(self, sources, tmp_path):
        source = sources["syn"]
        run_ids = sorted(TraceStore(source).run_ids())
        target = str(tmp_path / "window")
        counters = ServiceCounters()
        live = LiveSynthesizer(
            TraceStore.create(target), retain_window=2, counters=counters
        )
        for arrived, run_id in enumerate(run_ids, start=1):
            _deliver(source, target, run_id)
            live.refresh()
            retained = run_ids[max(0, arrived - 2):arrived]
            assert live.run_ids == retained
            # The reference store holds exactly the retained runs.
            truncated = str(tmp_path / f"window_ref{arrived}")
            os.makedirs(truncated)
            for keep in retained:
                _deliver(source, truncated, keep)
            batch = synthesize_from_store(TraceStore(truncated), jobs=1)
            assert _signature(live.model()) == _signature(batch), run_id
        assert counters.runs_evicted == 1
        assert counters.rows_evicted > 0
        # The evicted run's file stays on disk and is never re-ingested.
        assert "run000" in TraceStore(target)
        assert live.refresh() == []
        assert live.run_ids == run_ids[-2:]


class TestIngestSpool:
    """Validation and atomic commits of externally produced segments."""

    @pytest.fixture()
    def blob(self, sources):
        path = TraceStore(sources["syn"]).path_of("run000")
        with open(path, "rb") as handle:
            return handle.read()

    def test_commit_lands_and_is_readable(self, blob, tmp_path):
        store = TraceStore.create(str(tmp_path / "s"))
        spool = IngestSpool(store)
        result = spool.commit_bytes("pushed", blob)
        assert result.run_id == "pushed"
        assert result.events > 0
        assert result.bytes_written == len(blob)
        assert "pushed" in store
        assert store.open("pushed").ros_ts_range() is not None
        assert spool.committed == 1

    def test_rejects_garbage_truncation_and_bad_magic(self, blob, tmp_path):
        store = TraceStore.create(str(tmp_path / "s"))
        spool = IngestSpool(store)
        with pytest.raises(IngestError, match="truncated"):
            spool.validate_bytes("r", b"not a segment")
        with pytest.raises(IngestError):
            spool.validate_bytes("r", b"XXXX" + blob[4:])
        with pytest.raises(IngestError):
            spool.validate_bytes("r", blob[: len(blob) // 2])
        assert "r" not in store

    def test_rejects_duplicates_and_path_escaping_run_ids(self, blob, tmp_path):
        store = TraceStore.create(str(tmp_path / "s"))
        spool = IngestSpool(store)
        spool.commit_bytes("run000", blob)
        with pytest.raises(IngestError, match="already stored"):
            spool.commit_bytes("run000", blob)
        for bad in ("../evil", "a/b", "", ".hidden"):
            with pytest.raises(IngestError, match="invalid run id"):
                spool.validate_bytes(bad, blob)

    def test_failed_commits_leave_no_staging_files(self, blob, tmp_path):
        directory = str(tmp_path / "s")
        store = TraceStore.create(directory)
        spool = IngestSpool(store)
        with pytest.raises(IngestError):
            spool.commit_bytes("bad", blob[:100])
        spool.commit_bytes("good", blob)
        leftovers = [n for n in os.listdir(directory) if n.endswith(".tmp")]
        assert leftovers == []
        assert sorted(store.run_ids()) == ["good"]


class TestDropDirWatcher:
    """Drop-dir files are held one stable poll before rejection."""

    def test_partial_file_held_then_rejected(self, sources, tmp_path):
        store = TraceStore.create(str(tmp_path / "s"))
        drop = str(tmp_path / "drop")
        rejections = []
        watcher = DropDirWatcher(
            IngestSpool(store), drop,
            on_reject=lambda run_id, error: rejections.append(run_id),
        )
        with open(TraceStore(sources["syn"]).path_of("run000"), "rb") as handle:
            blob = handle.read()
        partial = os.path.join(drop, "part" + SEGMENT_SUFFIX)
        with open(partial, "wb") as handle:
            handle.write(blob[: len(blob) // 2])
        # First poll: invalid but possibly still being written -- held.
        assert watcher.poll() == []
        assert watcher.rejected == 0 and os.path.exists(partial)
        # Second poll, bytes unchanged: rejected and renamed aside.
        assert watcher.poll() == []
        assert watcher.rejected == 1
        assert rejections == ["part"]
        assert not os.path.exists(partial)
        assert os.path.exists(partial + ".rejected")
        # A valid drop commits and its source is removed.
        whole = os.path.join(drop, "whole" + SEGMENT_SUFFIX)
        with open(whole, "wb") as handle:
            handle.write(blob)
        results = watcher.poll()
        assert [r.run_id for r in results] == ["whole"]
        assert not os.path.exists(whole)
        assert "whole" in store

    def test_growing_file_is_not_rejected(self, sources, tmp_path):
        store = TraceStore.create(str(tmp_path / "s"))
        drop = str(tmp_path / "drop")
        watcher = DropDirWatcher(IngestSpool(store), drop)
        with open(TraceStore(sources["syn"]).path_of("run000"), "rb") as handle:
            blob = handle.read()
        path = os.path.join(drop, "slow" + SEGMENT_SUFFIX)
        with open(path, "wb") as handle:
            handle.write(blob[:100])
        assert watcher.poll() == []
        with open(path, "ab") as handle:  # the producer keeps writing
            handle.write(blob[100 : len(blob) // 2])
        assert watcher.poll() == []
        assert watcher.rejected == 0
        with open(path, "wb") as handle:
            handle.write(blob)
        assert [r.run_id for r in watcher.poll()] == ["slow"]
        assert watcher.rejected == 0


class TestStoreRefresh:
    """TraceStore.refresh picks up runs a second process committed."""

    def test_refresh_sees_second_writer_process(self, tmp_path):
        directory = str(tmp_path / "shared")
        store = TraceStore.create(directory)
        assert store.run_ids() == []
        subprocess.run(
            [sys.executable, "-m", "repro", "record", "syn",
             "--runs", "2", "--duration", "1", "--out", directory],
            check=True, capture_output=True,
        )
        # The handle predates the writes; refresh reconciles it.
        assert store.run_ids() == []
        assert store.refresh() == ["run000", "run001"]
        assert store.refresh() == []
        assert store.run_ids() == ["run000", "run001"]
        assert store.open("run001").ros_ts_range() is not None

    def test_refresh_is_incremental(self, sources, tmp_path):
        directory = str(tmp_path / "inc")
        store = TraceStore.create(directory)
        _deliver(sources["syn"], directory, "run000")
        assert store.refresh() == ["run000"]
        _deliver(sources["syn"], directory, "run001")
        _deliver(sources["syn"], directory, "run002")
        assert store.refresh() == ["run001", "run002"]


class TestFinishPathAtomicity:
    """The recorder's spool commit is tmp-file + rename."""

    def test_failed_finish_leaves_nothing(self, tmp_path, monkeypatch):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        path = os.path.join(directory, "run000" + SEGMENT_SUFFIX)
        spool = SegmentSpool()

        def boom(*args, **kwargs):
            raise RuntimeError("disk full")

        monkeypatch.setattr(SegmentSpool, "finish", boom)
        with pytest.raises(RuntimeError, match="disk full"):
            spool.finish_path(path, {}, 0, 1)
        assert os.listdir(directory) == []

    def test_successful_finish_leaves_only_the_segment(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        path = os.path.join(directory, "run000" + SEGMENT_SUFFIX)
        written = SegmentSpool().finish_path(path, {}, 0, 1)
        assert written > 0
        assert os.listdir(directory) == ["run000" + SEGMENT_SUFFIX]

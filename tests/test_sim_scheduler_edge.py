"""Edge-case tests for the scheduler: explicit PIDs, RR rotation,
timeslice boundaries, migration, and configuration validation."""

import pytest

from repro.sim import (
    Block,
    Compute,
    MSEC,
    SchedPolicy,
    SimKernel,
    Scheduler,
    ThreadState,
)


def make(num_cpus=1, timeslice=4 * MSEC, first_pid=1):
    kernel = SimKernel()
    sched = Scheduler(kernel, num_cpus=num_cpus, timeslice=timeslice, first_pid=first_pid)
    return kernel, sched


def burn(duration):
    def activity():
        yield Compute(duration)

    return activity()


class TestConfiguration:
    def test_zero_cpus_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(SimKernel(), num_cpus=0)

    def test_zero_timeslice_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(SimKernel(), timeslice=0)

    def test_first_pid_zero_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(SimKernel(), first_pid=0)

    def test_pid_base_respected(self):
        kernel, sched = make(first_pid=5000)
        thread = sched.spawn(burn(MSEC))
        assert thread.pid == 5000

    def test_explicit_pid(self):
        kernel, sched = make()
        thread = sched.spawn(burn(MSEC), pid=77)
        assert thread.pid == 77
        next_thread = sched.spawn(burn(MSEC))
        assert next_thread.pid == 78

    def test_duplicate_pid_rejected(self):
        kernel, sched = make()
        sched.spawn(burn(MSEC), pid=5)
        with pytest.raises(ValueError):
            sched.spawn(burn(MSEC), pid=5)

    def test_get_thread(self):
        kernel, sched = make()
        thread = sched.spawn(burn(MSEC))
        assert sched.get_thread(thread.pid) is thread


class TestRoundRobin:
    def test_equal_priority_rotation_interleaves(self):
        kernel, sched = make(num_cpus=1, timeslice=MSEC)
        records = []
        sched.on_sched_switch(records.append)
        a = sched.spawn(burn(5 * MSEC), name="a")
        b = sched.spawn(burn(5 * MSEC), name="b")
        kernel.run()
        # With a 1 ms slice and 5 ms demands, several handovers occur.
        handovers = [
            r for r in records
            if {r.prev_pid, r.next_pid} == {a.pid, b.pid}
        ]
        assert len(handovers) >= 4

    def test_fifo_ignores_timeslice(self):
        kernel, sched = make(num_cpus=1, timeslice=MSEC)
        records = []
        sched.on_sched_switch(records.append)
        a = sched.spawn(burn(5 * MSEC), policy=SchedPolicy.FIFO, priority=100)
        b = sched.spawn(burn(5 * MSEC), policy=SchedPolicy.FIFO, priority=100)
        kernel.run()
        handovers = [
            r for r in records
            if {r.prev_pid, r.next_pid} == {a.pid, b.pid}
        ]
        assert len(handovers) == 1  # a runs to completion, then b

    def test_lone_thread_keeps_running_across_slices(self):
        kernel, sched = make(num_cpus=1, timeslice=MSEC)
        records = []
        sched.on_sched_switch(records.append)
        thread = sched.spawn(burn(10 * MSEC))
        kernel.run()
        # Only the initial dispatch and the final retirement.
        assert len([r for r in records if thread.pid in (r.prev_pid, r.next_pid)]) == 2


class TestMigration:
    def test_preempted_thread_migrates_to_free_cpu(self):
        kernel, sched = make(num_cpus=2)
        records = []
        sched.on_sched_switch(records.append)
        low = sched.spawn(burn(10 * MSEC), priority=0, affinity=None, name="low")

        # A high-priority thread later claims the CPU 'low' runs on;
        # 'low' should migrate to the other (idle) CPU.
        def high():
            yield Block()
            yield Compute(5 * MSEC)

        hi = sched.spawn(high(), priority=50, policy=SchedPolicy.FIFO, affinity=[0])
        kernel.schedule_at(2 * MSEC, lambda: sched.wakeup(hi))
        kernel.run()
        # All demands met despite the preemption.
        assert low.cpu_time == 10 * MSEC
        assert hi.cpu_time == 5 * MSEC
        cpus_used_by_low = {r.cpu for r in records if r.next_pid == low.pid}
        assert len(cpus_used_by_low) >= 2  # migrated off cpu0

    def test_affinity_prevents_migration(self):
        kernel, sched = make(num_cpus=2)
        records = []
        sched.on_sched_switch(records.append)
        pinned = sched.spawn(burn(10 * MSEC), affinity=[0], name="pinned")

        def high():
            yield Block()
            yield Compute(5 * MSEC)

        hi = sched.spawn(high(), priority=50, policy=SchedPolicy.FIFO, affinity=[0])
        kernel.schedule_at(2 * MSEC, lambda: sched.wakeup(hi))
        kernel.run()
        cpus_used = {r.cpu for r in records if r.next_pid == pinned.pid}
        assert cpus_used == {0}
        # pinned finishes late: 10 ms demand + 5 ms preemption.
        assert pinned.cpu_time == 10 * MSEC
        assert kernel.now == 15 * MSEC


class TestStates:
    def test_state_transitions(self):
        kernel, sched = make()

        def activity():
            yield Compute(MSEC)
            yield Block()
            yield Compute(MSEC)

        thread = sched.spawn(activity())
        assert thread.state == ThreadState.NEW
        kernel.run(until=MSEC)
        assert thread.state == ThreadState.BLOCKED
        sched.wakeup(thread)
        kernel.run()
        assert thread.state == ThreadState.DEAD

    def test_bad_yield_type_raises(self):
        kernel, sched = make()

        def activity():
            yield "garbage"

        sched.spawn(activity())
        with pytest.raises(TypeError):
            kernel.run()

    def test_compute_negative_rejected(self):
        with pytest.raises(ValueError):
            Compute(-5)

"""Tests for the World container and the symbol-table uprobe machinery."""

import pytest

from repro.ros2 import Node
from repro.sim import Compute, MSEC, SEC
from repro.tracing import Bpf, ProbeContext, SymbolLookupError, SymbolTable
from repro.world import World


class TestWorld:
    def test_run_requires_exactly_one_bound(self):
        world = World()
        with pytest.raises(ValueError):
            world.run()
        with pytest.raises(ValueError):
            world.run(for_ns=1, until=2)

    def test_launch_twice_rejected(self):
        world = World()
        Node(world, "n")
        world.launch()
        with pytest.raises(RuntimeError):
            world.launch()

    def test_run_advances_clock(self):
        world = World()
        world.run(for_ns=5 * SEC)
        assert world.now == 5 * SEC
        world.run(until=7 * SEC)
        assert world.now == 7 * SEC

    def test_seed_controls_rng(self):
        a = World(seed=5).rng.integers(0, 1 << 30)
        b = World(seed=5).rng.integers(0, 1 << 30)
        c = World(seed=6).rng.integers(0, 1 << 30)
        assert a == b
        assert a != c

    def test_fresh_rng_independent(self):
        world = World(seed=5)
        r1 = world.fresh_rng(1).integers(0, 1 << 30)
        r2 = world.fresh_rng(1).integers(0, 1 << 30)
        assert r1 == r2

    def test_probe_context_outside_thread_is_pid0(self):
        world = World()
        ctx = world._probe_context()
        assert ctx.pid == 0

    def test_probe_context_inside_thread(self):
        world = World()
        seen = []

        def activity():
            seen.append(world._probe_context())
            yield Compute(MSEC)

        thread = world.scheduler.spawn(activity(), name="probe-me")
        world.kernel.run()
        assert seen[0].pid == thread.pid
        assert seen[0].comm == "probe-me"

    def test_tracepoint_registry(self):
        world = World()
        assert "sched:sched_switch" in world.tracepoints
        assert "sched:sched_wakeup" in world.tracepoints


class TestSymbolTable:
    def make_table(self):
        return SymbolTable(lambda: ProbeContext(ts=123, pid=9, cpu=0, comm="x"))

    def test_register_idempotent(self):
        table = self.make_table()
        first = table.register("lib", "fn")
        second = table.register("lib", "fn")
        assert first is second

    def test_lookup_unknown_raises(self):
        with pytest.raises(SymbolLookupError):
            self.make_table().lookup("libfoo:bar")

    def test_entry_and_exit_probes_fire(self):
        table = self.make_table()
        table.register("lib", "fn")
        fired = []
        table.attach_entry("lib:fn", lambda ctx, args: fired.append(("entry", args)))
        table.attach_exit("lib:fn", lambda ctx, args, ret: fired.append(("exit", ret)))
        result = table.call("lib:fn", lambda a, b: a + b, 2, 3)
        assert result == 5
        assert fired == [("entry", (2, 3)), ("exit", 5)]

    def test_detach_stops_firing(self):
        table = self.make_table()
        table.register("lib", "fn")
        fired = []
        detach = table.attach_entry("lib:fn", lambda ctx, args: fired.append(1))
        table.call("lib:fn", lambda: None)
        detach()
        table.call("lib:fn", lambda: None)
        assert fired == [1]
        detach()  # idempotent

    def test_uninstrumented_call_has_no_overhead_path(self):
        table = self.make_table()
        table.register("lib", "fn")
        assert table.call("lib:fn", lambda: 42) == 42

    def test_generator_function_exit_probe_fires_after_completion(self):
        table = self.make_table()
        table.register("lib", "gen")
        order = []

        def gen_fn(n):
            order.append("body-start")
            yield Compute(n)
            order.append("body-end")
            return n * 2

        table.attach_entry("lib:gen", lambda ctx, args: order.append("entry"))
        table.attach_exit("lib:gen", lambda ctx, args, ret: order.append(("exit", ret)))

        gen = table.call_gen("lib:gen", gen_fn, 7)
        request = next(gen)
        assert isinstance(request, Compute)
        with pytest.raises(StopIteration) as stop:
            gen.send(None)
        assert stop.value.value == 14
        assert order == ["entry", "body-start", "body-end", ("exit", 14)]


class TestBpfDetails:
    def test_detach_all_keeps_stats(self):
        world = World()
        world.symbols.register("lib", "fn")
        bpf = Bpf(world.symbols, world.tracepoints)
        program = bpf.attach_uprobe("lib:fn", lambda ctx, args: None)
        world.symbols.call("lib:fn", lambda: None)
        assert program.run_cnt == 1
        bpf.detach_all()
        world.symbols.call("lib:fn", lambda: None)
        assert program.run_cnt == 1  # no longer firing, stats retained

    def test_shared_tables(self):
        world = World()
        bpf = Bpf(world.symbols, world.tracepoints)
        a = bpf.get_table("pids")
        b = bpf.get_table("pids")
        assert a is b

    def test_program_stats_shape(self):
        world = World()
        world.symbols.register("lib", "fn")
        bpf = Bpf(world.symbols, world.tracepoints)
        bpf.attach_uprobe("lib:fn", lambda ctx, args: None, name="myprobe")
        stats = bpf.program_stats()
        assert stats[0]["name"] == "myprobe"
        assert stats[0]["kind"] == "uprobe"

    def test_tracepoint_attach_and_fire(self):
        world = World()
        bpf = Bpf(world.symbols, world.tracepoints)
        records = []
        bpf.attach_tracepoint("sched:sched_switch", records.append)

        def activity():
            yield Compute(MSEC)

        world.scheduler.spawn(activity())
        world.kernel.run()
        assert records  # at least the initial dispatch switch

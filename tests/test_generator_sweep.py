"""Deterministic sweep over the random-app generator's config space.

Complements the hypothesis-based tests in
``test_generator_properties.py`` with a fixed matrix -- every
``service_probability`` x ``chain_length`` combination -- asserting the
synthesis recovers the generated ground truth *exactly*: the edge set
(as label pairs) equals ``expected_edges`` and every generated callback
appears, with no spurious extras.
"""

import pytest

from repro.apps import GeneratorConfig, generate_app
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC

SERVICE_PROBABILITIES = (0.0, 0.3, 1.0)
CHAIN_LENGTHS = (1, 2, 3, 4)


def run_sweep_case(service_probability, chain_length, app_seed=17, world_seed=31):
    config = GeneratorConfig(
        num_nodes=3,
        num_chains=2,
        chain_length=chain_length,
        service_probability=service_probability,
    )
    run_config = RunConfig(duration_ns=3 * SEC, base_seed=world_seed, num_cpus=4)
    result = run_once(
        lambda world, i: generate_app(world, config, seed=app_seed), run_config
    )
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return dag, result.apps


class TestGeneratorSweep:
    @pytest.mark.parametrize("service_probability", SERVICE_PROBABILITIES)
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    def test_expected_edges_recovered_exactly(
        self, service_probability, chain_length
    ):
        dag, app = run_sweep_case(service_probability, chain_length)
        dag.validate()
        actual = {
            (dag.vertex(e.src).cb_id, dag.vertex(e.dst).cb_id)
            for e in dag.edges()
        }
        assert actual == app.expected_edges

    @pytest.mark.parametrize("service_probability", SERVICE_PROBABILITIES)
    @pytest.mark.parametrize("chain_length", CHAIN_LENGTHS)
    def test_callback_inventory_exact(self, service_probability, chain_length):
        dag, app = run_sweep_case(service_probability, chain_length)
        observed = {v.cb_id for v in dag.vertices() if not v.is_and_junction}
        assert observed == set(app.labels)

    def test_full_service_chains_have_expected_shape(self):
        """With service_probability=1 every interior hop is a
        subscriber -> service -> client triple."""
        _, app = run_sweep_case(1.0, 4)
        # 2 chains x (chain_length - 2) interior hops, each with a service.
        assert len(app.service_labels) == 4
        for sv in app.service_labels:
            assert any(src == sv or dst == sv for src, dst in app.expected_edges)

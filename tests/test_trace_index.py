"""Unit tests for the single-pass TraceIndex layer."""

import pytest

from repro.core import SchedIndex, TraceIndex, is_sorted_by_ts
from repro.core.extraction import EventIndex
from repro.core.index import (
    CODE_CB_END,
    CODE_CB_START,
    CODE_DDS_WRITE,
    CODE_OTHER,
    CODE_TAKE,
    PROBE_CODES,
)
from repro.sim import SchedSwitch
from repro.tracing.events import (
    P2_TIMER_START,
    P4_TIMER_END,
    P6_TAKE,
    P16_DDS_WRITE,
    TraceEvent,
)


def ev(ts, pid, probe, **data):
    return TraceEvent(ts, pid, probe, data)


class TestSingleSortInvariant:
    def test_sorted_input_is_not_copied_out_of_order(self):
        events = [ev(10, 1, P2_TIMER_START), ev(20, 1, P4_TIMER_END)]
        index = TraceIndex(events)
        assert [e.ts for e in index.ros_events] == [10, 20]

    def test_unsorted_input_sorted_once(self):
        events = [ev(20, 1, P4_TIMER_END), ev(10, 1, P2_TIMER_START)]
        index = TraceIndex(events)
        assert [e.ts for e in index.ros_events] == [10, 20]
        assert is_sorted_by_ts(index.ros_events)

    def test_equal_timestamps_keep_input_order(self):
        a, b = ev(10, 1, P2_TIMER_START), ev(10, 1, P4_TIMER_END)
        index = TraceIndex([a, b])
        assert index.ros_events == [a, b]

    def test_input_list_not_mutated(self):
        events = [ev(20, 1, P4_TIMER_END), ev(10, 1, P2_TIMER_START)]
        TraceIndex(events)
        assert [e.ts for e in events] == [20, 10]


class TestPerPidViews:
    def test_views_partition_the_stream(self):
        events = [
            ev(10, 1, P2_TIMER_START),
            ev(11, 2, P2_TIMER_START),
            ev(12, 1, P4_TIMER_END),
            ev(13, 2, P4_TIMER_END),
        ]
        index = TraceIndex(events)
        assert index.pids() == [1, 2]
        assert [e.ts for e in index.ros_for_pid(1)] == [10, 12]
        assert [e.ts for e in index.ros_for_pid(2)] == [11, 13]
        assert index.ros_for_pid(99) == []

    def test_walk_codes_parallel_to_events(self):
        events = [
            ev(10, 1, P2_TIMER_START),
            ev(11, 1, P6_TAKE, cb_id="S1", topic="t"),
            ev(12, 1, P16_DDS_WRITE, topic="u", src_ts=12, kind="data"),
            ev(13, 1, P4_TIMER_END),
            ev(14, 1, "unknown_probe"),
        ]
        index = TraceIndex(events)
        walked, codes = index.walk_for_pid(1)
        assert walked == index.ros_for_pid(1)
        assert list(codes) == [
            CODE_CB_START, CODE_TAKE, CODE_DDS_WRITE, CODE_CB_END, CODE_OTHER
        ]

    def test_walk_for_unknown_pid_empty(self):
        events, codes = TraceIndex([]).walk_for_pid(5)
        assert events == [] and len(codes) == 0

    def test_probe_code_table_covers_every_table1_alg1_probe(self):
        from repro.tracing.events import PROBE_TABLE, P1_CREATE_NODE

        for probe in PROBE_TABLE:
            if probe == P1_CREATE_NODE:
                continue  # P1 is TR-IN only; Alg. 1 ignores it
            assert probe in PROBE_CODES


class TestCrossNodeTables:
    def test_write_association_is_positional(self):
        # Two identical write events (equal by value) must keep distinct
        # writer-CB associations -- the id()-free replacement for the
        # old identity-keyed side table.
        events = [
            ev(10, 1, P6_TAKE, cb_id="A", topic="t"),
            ev(20, 1, P16_DDS_WRITE, topic="u", src_ts=1, kind="request"),
            ev(20, 1, P2_TIMER_START),
            ev(20, 1, P6_TAKE, cb_id="B", topic="t"),
            ev(20, 1, P16_DDS_WRITE, topic="u", src_ts=1, kind="request"),
        ]
        index = TraceIndex(events)
        (i1, e1), (i2, e2) = index.writes[("u", 1)]
        assert e1 == e2  # value-identical events...
        assert index.writer_cb[i1] == "A"  # ...with distinct associations
        assert index.writer_cb[i2] == "B"

    def test_event_index_cursors_are_per_instance(self):
        events = [
            ev(10, 1, P6_TAKE, cb_id="A", topic="t"),
            ev(11, 1, P16_DDS_WRITE, topic="u", src_ts=1, kind="request"),
            ev(13, 2, P6_TAKE, cb_id="B", topic="t"),
            ev(14, 2, P16_DDS_WRITE, topic="u", src_ts=1, kind="request"),
        ]
        index = TraceIndex(events)
        take = ev(20, 3, "rmw_take_request", topic="u", src_ts=1)
        first = EventIndex(trace_index=index)
        assert first.find_caller(take) == "A"
        assert first.find_caller(take) == "B"  # cursor advanced
        # A fresh EventIndex over the same TraceIndex starts over.
        assert EventIndex(trace_index=index).find_caller(take) == "A"


def switch(ts, prev_pid, next_pid):
    return SchedSwitch(ts, 0, prev_pid, f"p{prev_pid}", 0, "R",
                       next_pid, f"p{next_pid}", 0)


class TestColumnarSchedIndex:
    def test_events_for_reconstructs_sorted_bucket(self):
        events = [switch(30, 1, 2), switch(10, 2, 1), switch(20, 1, 3)]
        index = SchedIndex(events)
        assert [e.ts for e in index.events_for(1)] == [10, 20, 30]
        assert index.events_for(42) == []

    def test_sched_index_shared_through_trace_index(self):
        sched = [switch(10, 1, 2), switch(20, 2, 1)]
        index = TraceIndex([], sched)
        assert index.sched.exec_time(0, 30, 1) == 20  # 0-10 and 20-30

    def test_unsorted_sched_events_sorted_per_bucket(self):
        events = [switch(20, 1, 2), switch(10, 2, 1)]
        index = SchedIndex(events)
        assert index.exec_time(0, 30, 1) == 20


class TestInlinedSubmitCopies:
    """Pin the hand-inlined PerfBuffer.submit copies to the original."""

    def _events(self):
        return [
            ev(i, 1, P6_TAKE, cb_id="A", topic="t" * (i % 3)) for i in range(8)
        ] + [ev(9, 1, P2_TIMER_START)]

    def test_probes_submit_matches_perf_buffer_submit(self):
        from repro.tracing.bpf import PerfBuffer
        from repro.tracing.overhead import event_size_bytes
        from repro.tracing.probes import _submit

        reference = PerfBuffer("ref", capacity=6)
        inlined = PerfBuffer("inl", capacity=6)
        for event in self._events():
            reference.submit(event, size=event_size_bytes(event))
            _submit(inlined, event)
        assert inlined.submitted == reference.submitted
        assert inlined.lost == reference.lost
        assert inlined.bytes_submitted == reference.bytes_submitted
        assert inlined.poll() == reference.poll()

    def test_tracer_on_switch_matches_perf_buffer_submit(self):
        from repro.tracing.bpf import Bpf, PerfBuffer
        from repro.tracing.overhead import SCHED_EVENT_BYTES
        from repro.tracing.tracers import KernelTracer

        records = [switch(i, 1, 2) for i in range(8)]
        reference = PerfBuffer("ref", capacity=6)
        for record in records:
            reference.submit(record, size=SCHED_EVENT_BYTES)

        tracer = KernelTracer(Bpf(symbols=None), filtered=False)
        tracer.buffer = PerfBuffer("inl", capacity=6)
        for record in records:
            tracer._on_switch(record)
        assert tracer.buffer.submitted == reference.submitted
        assert tracer.buffer.lost == reference.lost
        assert tracer.buffer.bytes_submitted == reference.bytes_submitted
        assert tracer.buffer.poll() == reference.poll()


class TestKernelCompaction:
    def test_cancelled_majority_is_compacted(self):
        from repro.sim.kernel import SimKernel

        kernel = SimKernel()
        handles = [kernel.schedule_at(i + 1, lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        # Once cancellations exceeded half the queue the heap was
        # rebuilt, shedding the dead entries present at that point.
        assert len(kernel._queue) < 200
        assert kernel.pending_count() == 50

    def test_compaction_preserves_firing_order(self):
        from repro.sim.kernel import SimKernel

        kernel = SimKernel()
        fired = []
        keep = []
        for i in range(200):
            handle = kernel.schedule_at(
                i + 1, lambda i=i: fired.append(i)
            )
            if i % 4 == 0:
                keep.append(i)
            else:
                handle.cancel()
        kernel.run()
        assert fired == keep

    def test_compaction_keeps_cancelled_counter_exact(self):
        """Regression: the entry whose cancel triggers a compaction must
        be dropped by that compaction, or the counter drifts negative."""
        from repro.sim.kernel import SimKernel

        kernel = SimKernel()
        handles = [kernel.schedule_at(i + 1, lambda: None) for i in range(200)]
        for handle in handles[:101]:  # 101st cancel triggers the rebuild
            handle.cancel()
        # Slab representation: a heap entry (time, prio, seq, slot) is
        # live iff the slot still holds its sequence number.
        assert all(kernel._slot_seq[e[3]] == e[2] for e in kernel._queue)
        assert kernel._cancelled_in_queue == 0
        kernel.run()
        assert kernel._cancelled_in_queue == 0

    def test_cancel_after_fire_is_noop(self):
        from repro.sim.kernel import SimKernel

        kernel = SimKernel()
        handle = kernel.schedule_at(1, lambda: None)
        kernel.run()
        handle.cancel()  # must not underflow the cancelled counter
        assert kernel.pending_count() == 0
        kernel.schedule_at(kernel.now + 1, lambda: None)
        assert kernel.pending_count() == 1

    def test_small_queues_not_compacted(self):
        from repro.sim.kernel import SimKernel

        kernel = SimKernel()
        handles = [kernel.schedule_at(i + 1, lambda: None) for i in range(10)]
        for handle in handles:
            handle.cancel()
        # Below the compaction floor the entries drain lazily instead.
        assert len(kernel._queue) == 10
        assert kernel.pending_count() == 0

"""Property-based tests on scheduler invariants.

Random thread populations are generated and the resulting sched_switch
stream is checked against the invariants the timing-model synthesis
relies on: per-PID run-state alternation, CPU-time conservation, and
single-occupancy per CPU.
"""

from hypothesis import given, settings, strategies as st

from repro.sim import Block, Compute, MSEC, SchedPolicy, SimKernel, Scheduler


@st.composite
def thread_population(draw):
    """A set of compute-burst threads with random shapes."""
    threads = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        bursts = draw(
            st.lists(st.integers(min_value=1, max_value=8 * MSEC), min_size=1, max_size=4)
        )
        priority = draw(st.sampled_from([0, 0, 0, 10, 100]))
        policy = draw(st.sampled_from([SchedPolicy.OTHER, SchedPolicy.FIFO]))
        start = draw(st.integers(min_value=0, max_value=4 * MSEC))
        threads.append((bursts, priority, policy, start))
    num_cpus = draw(st.integers(min_value=1, max_value=3))
    return threads, num_cpus


def run_population(population):
    threads, num_cpus = population
    kernel = SimKernel()
    sched = Scheduler(kernel, num_cpus=num_cpus, timeslice=2 * MSEC)
    records = []
    sched.on_sched_switch(records.append)
    spawned = []

    def make_activity(bursts):
        def activity():
            for burst in bursts:
                yield Compute(burst)

        return activity()

    for bursts, priority, policy, start in threads:
        spawned.append(
            (
                sched.spawn(
                    make_activity(bursts),
                    priority=priority,
                    policy=policy,
                    start=start,
                ),
                sum(bursts),
            )
        )
    kernel.run()
    return sched, records, spawned


class TestSchedulerInvariants:
    @given(thread_population())
    @settings(max_examples=60, deadline=None)
    def test_all_threads_complete_with_exact_cpu_time(self, population):
        sched, records, spawned = run_population(population)
        for thread, demand in spawned:
            assert thread.cpu_time == demand

    @given(thread_population())
    @settings(max_examples=60, deadline=None)
    def test_per_pid_run_state_alternates(self, population):
        """For each PID the sched_switch stream alternates strictly
        between switch-in and switch-out -- the invariant Alg. 2's
        folding depends on."""
        sched, records, spawned = run_population(population)
        for thread, _ in spawned:
            running = False
            for record in records:
                if record.next_pid == thread.pid:
                    assert not running, f"double switch-in for {thread.pid}"
                    running = True
                elif record.prev_pid == thread.pid:
                    assert running, f"switch-out while not running {thread.pid}"
                    running = False
            assert not running  # everything ends descheduled

    @given(thread_population())
    @settings(max_examples=60, deadline=None)
    def test_sched_switch_reconstructs_cpu_time(self, population):
        sched, records, spawned = run_population(population)
        for thread, demand in spawned:
            total, start = 0, None
            for record in records:
                if record.next_pid == thread.pid:
                    start = record.ts
                elif record.prev_pid == thread.pid and start is not None:
                    total += record.ts - start
                    start = None
            assert total == demand

    @given(thread_population())
    @settings(max_examples=60, deadline=None)
    def test_single_occupancy_per_cpu(self, population):
        """Replaying switches per CPU: prev must equal the occupant."""
        sched, records, spawned = run_population(population)
        occupant = {}
        for record in records:
            cpu = record.cpu
            expected = occupant.get(cpu, 0)
            assert record.prev_pid == expected, (
                f"cpu{cpu}: switch away from {record.prev_pid} "
                f"but occupant was {expected}"
            )
            occupant[cpu] = record.next_pid

    @given(thread_population())
    @settings(max_examples=60, deadline=None)
    def test_timestamps_monotonic(self, population):
        sched, records, spawned = run_population(population)
        ts = [r.ts for r in records]
        assert ts == sorted(ts)

    @given(thread_population())
    @settings(max_examples=40, deadline=None)
    def test_busy_accounting_matches_demands(self, population):
        sched, records, spawned = run_population(population)
        total_busy = sum(cpu.busy_time for cpu in sched.cpus)
        total_demand = sum(demand for _, demand in spawned)
        assert total_busy == total_demand

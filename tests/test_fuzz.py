"""Tests for the self-checking scenario fuzzer: determinism, validity,
JSON round-trips, the self-check oracle, and the CLI surface."""

import json

import pytest

from repro.cli import main
from repro.scenarios.fuzz import (
    FuzzVerdict,
    check_sample,
    check_spec,
    run_fuzz,
    sample_spec,
    spec_from_json,
    spec_to_json,
    world_seed_for,
)
from repro.sim.policies import POLICY_NAMES

FUZZ_SEED = 2024
SWEEP = 24  # full policy rotation x 6


class TestSamplingDeterminism:
    def test_same_seed_same_index_byte_identical(self):
        for index in range(6):
            first = json.dumps(spec_to_json(sample_spec(FUZZ_SEED, index)),
                               sort_keys=True)
            second = json.dumps(spec_to_json(sample_spec(FUZZ_SEED, index)),
                                sort_keys=True)
            assert first == second

    def test_sequence_byte_identical_across_processes_worth_of_state(self):
        # Sampling index i must not depend on having sampled 0..i-1
        # (workers jump straight to their shard's indices).
        forward = [
            json.dumps(spec_to_json(sample_spec(FUZZ_SEED, i)), sort_keys=True)
            for i in range(8)
        ]
        backward = [
            json.dumps(spec_to_json(sample_spec(FUZZ_SEED, i)), sort_keys=True)
            for i in reversed(range(8))
        ]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = json.dumps(spec_to_json(sample_spec(1, 0)), sort_keys=True)
        b = json.dumps(spec_to_json(sample_spec(2, 0)), sort_keys=True)
        assert a != b

    def test_policy_rotation_covers_all_policies(self):
        policies = {sample_spec(FUZZ_SEED, i).policy for i in range(len(POLICY_NAMES))}
        assert policies == set(POLICY_NAMES)

    def test_topology_independent_of_policy_subset(self):
        # Restricting the rotation changes only the policy field, never
        # the sampled topology.
        full = sample_spec(FUZZ_SEED, 1)
        restricted = sample_spec(FUZZ_SEED, 1, policies=("edf",))
        a, b = spec_to_json(full), spec_to_json(restricted)
        a.pop("policy"), b.pop("policy")
        a.pop("description"), b.pop("description")
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestSampledValidity:
    def test_sweep_validates(self):
        for index in range(SWEEP):
            spec = sample_spec(FUZZ_SEED, index)
            spec.validate()  # raises on any inconsistency
            assert spec.policy in POLICY_NAMES
            assert 1 <= spec.num_cpus <= 3
            assert spec.timers  # at least one root activation source

    def test_every_subscription_topic_is_published(self):
        for index in range(SWEEP):
            spec = sample_spec(FUZZ_SEED, index)
            published = {
                t
                for s in (*spec.timers, *spec.subscriptions, *spec.clients)
                for t in s.publishes
            }
            published |= {t for y in spec.synchronizers for t in y.publishes}
            published |= {e.topic for e in spec.external_publishers}
            for sub in spec.subscriptions:
                assert sub.topic in published


class TestJsonRoundTrip:
    def test_round_trip_is_identity(self):
        for index in range(SWEEP):
            spec = sample_spec(FUZZ_SEED, index)
            dumped = spec_to_json(spec)
            rebuilt = spec_to_json(spec_from_json(dumped))
            assert json.dumps(dumped, sort_keys=True) == json.dumps(
                rebuilt, sort_keys=True
            )

    def test_round_trip_survives_json_text(self):
        spec = sample_spec(FUZZ_SEED, 3)
        text = json.dumps(spec_to_json(spec))
        rebuilt = spec_from_json(json.loads(text))
        assert rebuilt.name == spec.name
        assert rebuilt.policy == spec.policy
        assert rebuilt.num_cpus == spec.num_cpus
        assert len(rebuilt.timers) == len(spec.timers)

    def test_unknown_workload_kind_rejected(self):
        data = spec_to_json(sample_spec(FUZZ_SEED, 0))
        data["timers"][0]["work"] = {"kind": "pareto"}
        with pytest.raises(ValueError, match="unknown workload kind"):
            spec_from_json(data)


class TestSelfCheck:
    def test_small_sweep_all_pass(self):
        report = run_fuzz(FUZZ_SEED, 8, jobs=1)
        assert report.count == 8
        assert [v.index for v in report.verdicts] == list(range(8))
        assert not report.failures

    def test_jobs_do_not_change_verdicts(self):
        serial = run_fuzz(FUZZ_SEED, 8, jobs=1)
        parallel = run_fuzz(FUZZ_SEED, 8, jobs=4)
        assert [
            (v.index, v.policy, v.scenario, v.ok, v.mismatches)
            for v in serial.verdicts
        ] == [
            (v.index, v.policy, v.scenario, v.ok, v.mismatches)
            for v in parallel.verdicts
        ]

    def test_by_policy_counts(self):
        report = run_fuzz(FUZZ_SEED, len(POLICY_NAMES), jobs=1)
        stats = report.by_policy()
        assert set(stats) == set(POLICY_NAMES)
        assert all(counts == (1, 0) for counts in stats.values())

    def test_check_detects_broken_oracle(self):
        # Corrupt the spec after sampling: claim an extra vertex that
        # the trace can never contain -> the self-check must flag it.
        spec = sample_spec(FUZZ_SEED, 0)
        ok, _ = check_spec(spec, base_seed=world_seed_for(FUZZ_SEED, 0))
        assert ok

        class Corrupted(type(spec)):
            def expected_vertex_keys(self):
                return super().expected_vertex_keys() | {"ghost/CB"}

        broken = Corrupted(**{
            field: getattr(spec, field) for field in spec.__dataclass_fields__
        })
        ok, mismatches = check_spec(broken, base_seed=world_seed_for(FUZZ_SEED, 0))
        assert not ok
        assert any("ghost/CB" in line for line in mismatches)

    def test_failing_verdict_carries_replayable_spec(self):
        verdict = FuzzVerdict(
            index=0, seed=1, policy="edf", scenario="x", ok=False,
            mismatches=("missing vertex: a",),
            spec_json=json.dumps(spec_to_json(sample_spec(1, 0))),
        )
        rebuilt = spec_from_json(json.loads(verdict.spec_json))
        rebuilt.validate()

    def test_run_fuzz_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            run_fuzz(1, 0)
        with pytest.raises(ValueError):
            run_fuzz(1, 1, jobs=0)
        with pytest.raises(ValueError, match="unknown policies"):
            run_fuzz(1, 1, policies=("sporadic-server",))


class TestFuzzCli:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--seed", "9", "--count", "4"]) == 0
        out = capsys.readouterr().out
        assert "all 4 sampled scenario(s) passed" in out

    def test_policy_subset(self, capsys):
        assert main(["fuzz", "--seed", "9", "--count", "2",
                     "--policy", "edf", "--policy", "cfs"]) == 0
        out = capsys.readouterr().out
        assert "over cfs, edf" in out or "over edf, cfs" in out

    def test_replay_round_trip(self, capsys, tmp_path):
        spec = sample_spec(11, 2)
        dump = tmp_path / "dump.json"
        dump.write_text(json.dumps({
            "seed": 11,
            "index": 2,
            "world_seed": world_seed_for(11, 2),
            "spec": spec_to_json(spec),
        }))
        assert main(["fuzz", "--replay", str(dump)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_replay_bare_spec_document(self, capsys, tmp_path):
        dump = tmp_path / "bare.json"
        dump.write_text(json.dumps(spec_to_json(sample_spec(11, 0))))
        assert main(["fuzz", "--replay", str(dump)]) == 0

    def test_replay_missing_file_exits_two(self, capsys, tmp_path):
        assert main(["fuzz", "--replay", str(tmp_path / "nope.json")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_zero_count_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--count", "0"])
        assert excinfo.value.code == 2

    def test_unknown_policy_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--policy", "lottery"])
        assert excinfo.value.code == 2

    def test_zero_jobs_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fuzz", "--jobs", "0"])
        assert excinfo.value.code == 2

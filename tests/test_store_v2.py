"""Trace format v2 (typed payload columns): round trips, the v1 -> v2
conversion/upgrade path, mixed-version synthesis equivalence, the
committed golden v1 fixture, format-error diagnostics, and the
store-info / usage-error CLI satellites."""

import os
import shutil
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core import dag_to_json, synthesize_from_trace, to_dot
from repro.experiments.batch import BatchConfig
from repro.experiments.runner import RunConfig, run_once
from repro.scenarios import build_scenario_spec
from repro.sim.kernel import SEC
from repro.store import (
    SEGMENT_SUFFIX,
    SegmentReader,
    StoreFormatError,
    TraceStore,
    encode_trace,
    peek_header,
    record_batch,
    synthesize_from_store,
    write_segment,
)
from repro.store.format import SHAPE_JSON, VERSION_V1, VERSION_V2
from repro.tracing.events import TraceEvent
from repro.tracing.session import Trace
from repro.tracing.storage import TRACE_SUFFIX, load_trace, save_trace

DATA_DIR = Path(__file__).parent / "data"
DURATION_NS = int(1.0 * SEC)


def traced_run(name, run_index=0, runs=3):
    spec = build_scenario_spec(
        name, run_index=run_index, runs=runs, duration_ns=DURATION_NS
    )
    config = RunConfig(duration_ns=DURATION_NS, num_cpus=spec.num_cpus)
    return run_once(
        lambda world, i: spec.build(world), config, run_index=run_index
    ).trace


@pytest.fixture(scope="module")
def syn_trace():
    return traced_run("syn")


@pytest.fixture(scope="module")
def fusion_traces():
    return [traced_run("sensor-fusion", i) for i in range(3)]


# ---------------------------------------------------------------------------
# v2 round trips + encoding properties
# ---------------------------------------------------------------------------


class TestFormatV2:
    def test_v2_still_writable(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path, format_version=2)
        assert peek_header(path)[0] == VERSION_V2 == 2
        reader = SegmentReader.open(path)
        assert reader.version == 2
        assert reader.to_trace().to_dict() == syn_trace.to_dict()

    def test_v1_escape_hatch_still_writable(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path, format_version=1)
        assert peek_header(path)[0] == VERSION_V1
        assert SegmentReader.open(path).to_trace().to_dict() == syn_trace.to_dict()

    @pytest.mark.parametrize("compress", [True, False])
    def test_v1_v2_describe_one_trace(self, syn_trace, compress):
        via_v1 = SegmentReader(
            encode_trace(syn_trace, compress=compress, format_version=1)
        ).to_trace()
        via_v2 = SegmentReader(
            encode_trace(syn_trace, compress=compress, format_version=2)
        ).to_trace()
        assert via_v1.to_dict() == via_v2.to_dict() == syn_trace.to_dict()

    def test_v2_scenario_segments_are_smaller(self, syn_trace):
        """Typed columns beat per-row JSON strings on the domain's
        ID-heavy payloads (the whole point of the format)."""
        v1 = len(encode_trace(syn_trace, format_version=1))
        v2 = len(encode_trace(syn_trace, format_version=2))
        assert v2 < v1

    def test_payload_key_order_preserved(self):
        """Shapes are keyed by ordered (key, type) tuples, so dict
        insertion order survives the round trip exactly."""
        events = [
            TraceEvent(10, 1, "p", {"b": 1, "a": "x"}),
            TraceEvent(20, 1, "p", {"a": "y", "b": 2}),
        ]
        trace = Trace(ros_events=events, pid_map={1: "n"}, start_ts=0, stop_ts=30)
        restored = SegmentReader(encode_trace(trace)).to_trace()
        assert [list(e.data) for e in restored.ros_events] == [["b", "a"], ["a", "b"]]

    def test_schema_fallback_rows_round_trip(self):
        """Payloads outside the closed schema (nested containers, huge
        ints) take the per-row JSON fallback and still round-trip."""
        events = [
            TraceEvent(10, 1, "p", {"nested": {"a": [1, 2]}, "cb_id": "x"}),
            TraceEvent(20, 1, "p", {"big": 1 << 70}),
            TraceEvent(30, 1, "p", {"cb_id": "x", "src_ts": 5}),  # typed row
        ]
        trace = Trace(ros_events=events, pid_map={1: None}, start_ts=0, stop_ts=40)
        raw = encode_trace(trace, compress=False)
        reader = SegmentReader(raw)
        restored = reader.to_trace()
        assert restored.to_dict() == trace.to_dict()
        shape_col = reader._ros[3]
        assert shape_col[0] == SHAPE_JSON and shape_col[1] == SHAPE_JSON
        assert shape_col[2] not in (SHAPE_JSON,)

    def test_typed_values_keep_python_types(self):
        """ints stay int, bools stay bool, floats stay float, None stays
        None -- the closed schema is type-exact, not JSON-coerced."""
        data = {"i": -7, "b": True, "f": 0.25, "n": None, "s": "ü"}
        trace = Trace(
            ros_events=[TraceEvent(1, 1, "p", data)],
            pid_map={1: "n"}, start_ts=0, stop_ts=2,
        )
        restored = SegmentReader(encode_trace(trace)).to_trace()
        out = restored.ros_events[0].data
        assert out == data
        assert isinstance(out["i"], int) and not isinstance(out["i"], bool)
        assert out["b"] is True
        assert isinstance(out["f"], float)
        assert out["n"] is None

    @given(
        payloads=st.lists(
            st.dictionaries(
                st.text(max_size=6),
                st.one_of(
                    st.none(),
                    st.booleans(),
                    st.integers(min_value=-(2 ** 70), max_value=2 ** 70),
                    st.floats(allow_nan=False),
                    st.text(max_size=8),
                    st.lists(st.integers(), max_size=3),
                ),
                max_size=4,
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_payloads_round_trip(self, payloads):
        events = [
            TraceEvent(ts=10 * i, pid=1 + (i % 3), probe="p:x", data=data)
            for i, data in enumerate(payloads)
        ]
        trace = Trace(
            ros_events=events, pid_map={1: "a", 2: None}, start_ts=0, stop_ts=10,
        )
        for compress in (False, True):
            restored = SegmentReader(
                encode_trace(trace, compress=compress)
            ).to_trace()
            assert restored.to_dict() == trace.to_dict()


# ---------------------------------------------------------------------------
# Conversion + upgrade paths
# ---------------------------------------------------------------------------


class TestUpgradePath:
    def _v1_store(self, traces, directory):
        os.makedirs(directory, exist_ok=True)
        for index, trace in enumerate(traces):
            write_segment(
                trace,
                os.path.join(directory, f"run{index:03d}{SEGMENT_SUFFIX}"),
                format_version=1,
            )
        return TraceStore(directory)

    def test_upgrade_v1_to_v2_round_trip(self, fusion_traces, tmp_path):
        store = self._v1_store(fusion_traces, str(tmp_path / "s"))
        before = {r: store.load(r).to_dict() for r in store.run_ids()}
        written = store.convert_legacy(upgrade=True, format_version=2)
        assert len(written) == len(fusion_traces)
        assert all(store.format_version(r) == 2 for r in store.run_ids())
        assert {r: store.load(r).to_dict() for r in store.run_ids()} == before

    def test_upgrade_is_idempotent(self, fusion_traces, tmp_path):
        store = self._v1_store(fusion_traces[:1], str(tmp_path / "s"))
        assert len(store.convert_legacy(upgrade=True)) == 1
        assert store.convert_legacy(upgrade=True) == []
        # and without upgrade, binary runs are never touched
        assert store.convert_legacy() == []

    def test_convert_legacy_json_writes_v2(self, fusion_traces, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        save_trace(fusion_traces[0], os.path.join(directory, f"a{TRACE_SUFFIX}"))
        store = TraceStore(directory)
        store.convert_legacy(format_version=2)
        assert store.format_version("a") == 2
        assert store.load("a").to_dict() == fusion_traces[0].to_dict()

    def test_upgrade_preserves_synthesis_bytes(self, fusion_traces, tmp_path):
        store = self._v1_store(fusion_traces, str(tmp_path / "s"))
        expected = synthesize_from_trace(Trace.merge(fusion_traces))
        before = synthesize_from_store(store, jobs=1)
        store.convert_legacy(upgrade=True)
        after = synthesize_from_store(TraceStore(str(tmp_path / "s")), jobs=1)
        assert dag_to_json(before) == dag_to_json(expected)
        assert dag_to_json(after) == dag_to_json(expected)
        assert to_dot(after) == to_dot(expected)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_mixed_v1_v2_legacy_store_synthesis(self, fusion_traces, tmp_path, jobs):
        """One run per format in one directory: v1 segment, v2 segment,
        legacy gzip-JSON -- synthesis stays byte-identical to the
        in-memory pipeline at any jobs value."""
        directory = str(tmp_path / "mixed")
        os.makedirs(directory)
        write_segment(
            fusion_traces[0],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
            format_version=1,
        )
        write_segment(
            fusion_traces[1],
            os.path.join(directory, f"run001{SEGMENT_SUFFIX}"),
            format_version=2,
        )
        save_trace(
            fusion_traces[2], os.path.join(directory, f"run002{TRACE_SUFFIX}")
        )
        store = TraceStore(directory)
        assert [store.format_version(r) for r in store.run_ids()] == [1, 2, None]
        expected = synthesize_from_trace(Trace.merge(fusion_traces))
        actual = synthesize_from_store(store, jobs=jobs)
        assert dag_to_json(actual) == dag_to_json(expected)
        assert to_dot(actual) == to_dot(expected)


# ---------------------------------------------------------------------------
# Golden v1 fixture: v1 readability can never silently regress
# ---------------------------------------------------------------------------


class TestGoldenV1Fixture:
    def test_committed_v1_segment_decodes(self):
        """The committed v1 bytes must stay readable forever; the
        gzip-JSON companion decodes through an independent code path."""
        reader = SegmentReader.open(str(DATA_DIR / "golden_v1.trace.bin"))
        assert reader.version == 1
        expected = load_trace(str(DATA_DIR / "golden_v1.trace.json.gz"))
        assert reader.to_trace().to_dict() == expected.to_dict()

    def test_committed_v1_segment_upgrades(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        shutil.copy(
            DATA_DIR / "golden_v1.trace.bin",
            os.path.join(directory, f"golden{SEGMENT_SUFFIX}"),
        )
        store = TraceStore(directory)
        store.convert_legacy(upgrade=True, format_version=2)
        assert store.format_version("golden") == 2
        expected = load_trace(str(DATA_DIR / "golden_v1.trace.json.gz"))
        assert store.load("golden").to_dict() == expected.to_dict()


# ---------------------------------------------------------------------------
# Format-error diagnostics + the strict flag
# ---------------------------------------------------------------------------


class TestFormatErrorDiagnostics:
    def test_truncated_file_names_path(self, syn_trace, tmp_path):
        path = str(tmp_path / f"cut{SEGMENT_SUFFIX}")
        raw = encode_trace(syn_trace, compress=False)
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 3])
        with pytest.raises(StoreFormatError) as excinfo:
            SegmentReader.open(path)
        assert path in str(excinfo.value)

    def test_corrupt_zlib_body_names_path(self, syn_trace, tmp_path):
        path = str(tmp_path / f"zl{SEGMENT_SUFFIX}")
        raw = bytearray(encode_trace(syn_trace, compress=True))
        raw[60:70] = b"\x00" * 10  # stomp inside the deflate stream
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(StoreFormatError) as excinfo:
            SegmentReader.open(path)
        message = str(excinfo.value)
        assert path in message and "zlib" in message

    def test_unknown_version_names_path_and_version(self, syn_trace, tmp_path):
        path = str(tmp_path / f"v9{SEGMENT_SUFFIX}")
        raw = bytearray(encode_trace(syn_trace))
        raw[8] = 99  # version u16 lives right after the 8-byte magic
        with open(path, "wb") as handle:
            handle.write(bytes(raw))
        with pytest.raises(StoreFormatError) as excinfo:
            SegmentReader.open(path)
        message = str(excinfo.value)
        assert path in message and "99" in message

    def test_truncated_header_offset_context(self):
        with pytest.raises(StoreFormatError, match="header"):
            SegmentReader(b"\x00" * 4)

    def _store_with_corruption(self, syn_trace, tmp_path, strict):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(syn_trace, os.path.join(directory, f"good{SEGMENT_SUFFIX}"))
        with open(os.path.join(directory, f"bad{SEGMENT_SUFFIX}"), "wb") as handle:
            handle.write(b"garbage-not-a-segment")
        return TraceStore(directory, strict=strict)

    def test_strict_store_raises(self, syn_trace, tmp_path):
        store = self._store_with_corruption(syn_trace, tmp_path, strict=True)
        with pytest.raises(StoreFormatError):
            store.readers()
        with pytest.raises(StoreFormatError):
            store.run_infos()

    def test_lenient_store_skips_with_warning(self, syn_trace, tmp_path):
        store = self._store_with_corruption(syn_trace, tmp_path, strict=False)
        with pytest.warns(RuntimeWarning, match="bad"):
            readers = store.readers()
        assert len(readers) == 1
        with pytest.warns(RuntimeWarning):
            assert store.union_pid_map() == syn_trace.pid_map
        with pytest.warns(RuntimeWarning):
            infos = store.run_infos()
        assert [info.run_id for info in infos] == ["good"]
        # per-run open stays loud even on a lenient handle
        with pytest.raises(StoreFormatError):
            store.open("bad")

    def test_lenient_store_skips_in_sharded_workers(self, syn_trace, tmp_path):
        """The strict flag rides into the worker pool: jobs>1 synthesis
        over a lenient store skips the same unreadable run the serial
        path skips, instead of failing in a worker."""
        store = self._store_with_corruption(syn_trace, tmp_path, strict=False)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            serial = synthesize_from_store(store, jobs=1)
            sharded = synthesize_from_store(store, jobs=2)
        expected = synthesize_from_trace(syn_trace)
        assert dag_to_json(serial) == dag_to_json(expected)
        assert dag_to_json(sharded) == dag_to_json(expected)

    def test_corrupt_legacy_json_is_a_format_error(self, syn_trace, tmp_path):
        """Corrupt .trace.json.gz runs diagnose like corrupt segments:
        StoreFormatError with the path, skippable under strict=False."""
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(syn_trace, os.path.join(directory, f"good{SEGMENT_SUFFIX}"))
        bad_path = os.path.join(directory, f"bad{TRACE_SUFFIX}")
        with open(bad_path, "wb") as handle:
            handle.write(b"\x1f\x8b-not-really-gzip")
        with pytest.raises(StoreFormatError) as excinfo:
            TraceStore(directory).readers()
        assert bad_path in str(excinfo.value)
        lenient = TraceStore(directory, strict=False)
        with pytest.warns(RuntimeWarning, match="bad"):
            assert len(lenient.readers()) == 1
        with pytest.warns(RuntimeWarning):
            assert [info.run_id for info in lenient.run_infos()] == ["good"]

    def test_interrupted_upgrade_leaves_original_intact(self, syn_trace, tmp_path, monkeypatch):
        """The v1->v2 upgrade stages to a temp file and os.replace()s,
        so a failed rewrite never truncates the only copy of a run."""
        import repro.store.database as database_module

        directory = str(tmp_path / "s")
        os.makedirs(directory)
        path = os.path.join(directory, f"run000{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path, format_version=1)
        original = open(path, "rb").read()

        def exploding_write(trace, target, compress=True, format_version=2):
            with open(target, "wb") as handle:
                handle.write(b"partial")
            raise OSError("disk full")

        monkeypatch.setattr(database_module, "write_segment", exploding_write)
        store = TraceStore(directory)
        with pytest.raises(OSError, match="disk full"):
            store.convert_legacy(upgrade=True)
        assert open(path, "rb").read() == original
        assert SegmentReader.open(path).version == 1


# ---------------------------------------------------------------------------
# CLI satellites: usage errors + store-info
# ---------------------------------------------------------------------------


class TestCliUsageErrors:
    @pytest.mark.parametrize(
        "argv",
        [
            ["synthesize", "somewhere", "--jobs", "0"],
            ["synthesize", "somewhere", "--jobs", "-3"],
            ["synthesize", "somewhere", "--jobs", "two"],
            ["record", "syn", "--out", "somewhere", "--jobs", "0"],
            ["record", "syn", "--out", "somewhere", "--format-version", "4"],
        ],
    )
    def test_bad_arguments_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        assert "usage" in capsys.readouterr().err


class TestStoreInfoCli:
    def test_mixed_store_listing(self, fusion_traces, tmp_path, capsys):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(
            fusion_traces[0],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
            format_version=1,
        )
        write_segment(
            fusion_traces[1],
            os.path.join(directory, f"run001{SEGMENT_SUFFIX}"),
            format_version=2,
        )
        save_trace(
            fusion_traces[2], os.path.join(directory, f"run002{TRACE_SUFFIX}")
        )
        assert main(["store-info", directory]) == 0
        out = capsys.readouterr().out
        assert "3 run(s)" in out
        assert " v1 " in out and " v2 " in out and " json " in out
        assert "B/event" in out and "formats: json, v1, v2" in out

    def test_missing_directory_exits_2(self, capsys):
        assert main(["store-info", "/nonexistent/store"]) == 2
        assert "error" in capsys.readouterr().err

    def test_no_strict_skips_corrupt_run(self, syn_trace, tmp_path, capsys):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(syn_trace, os.path.join(directory, f"good{SEGMENT_SUFFIX}"))
        with open(os.path.join(directory, f"bad{SEGMENT_SUFFIX}"), "wb") as handle:
            handle.write(b"nope")
        assert main(["store-info", directory]) == 2  # strict default fails
        assert "bad" in capsys.readouterr().err
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert main(["store-info", directory, "--no-strict"]) == 0
        out = capsys.readouterr().out
        assert "good" in out and "1 run(s)" in out


class TestConvertCli:
    def test_convert_upgrade_cli(self, fusion_traces, tmp_path, capsys):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(
            fusion_traces[0],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
            format_version=1,
        )
        save_trace(
            fusion_traces[1], os.path.join(directory, f"run001{TRACE_SUFFIX}")
        )
        assert main(
            ["convert", directory, "--upgrade", "--remove",
             "--format-version", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 run(s) -> format v2" in out
        store = TraceStore(directory)
        assert [store.format_version(r) for r in store.run_ids()] == [2, 2]
        assert not any(
            name.endswith(TRACE_SUFFIX) for name in os.listdir(directory)
        )
        # idempotent second pass
        assert main(
            ["convert", directory, "--upgrade", "--format-version", "2"]
        ) == 0
        assert "nothing to convert" in capsys.readouterr().out

"""Tests for model diffing, trace storage, and jitter analysis."""

import os

import pytest

from repro.analysis import (
    activation_model,
    activation_models,
    format_activations,
    response_jitter,
)
from repro.apps import build_avp
from repro.core import (
    DagVertex,
    TimingDag,
    diff_dags,
    percentile_gates,
    synthesize_from_trace,
)
from repro.experiments import RunConfig, collect_database, run_many, run_once
from repro.sim import MSEC, SEC
from repro.tracing import load_database, load_trace, save_database, save_trace


def vertex(key, exec_times=(), start_times=(), response_times=(), **kwargs):
    return DagVertex(
        key=key,
        node=key.split("/")[0],
        cb_id=key.split("/")[-1],
        cb_type=kwargs.pop("cb_type", "subscriber"),
        exec_times=list(exec_times),
        start_times=list(start_times),
        response_times=list(response_times),
        **kwargs,
    )


def dag_with(*vertices, edges=()):
    dag = TimingDag()
    for v in vertices:
        dag.add_vertex(v)
    for src, dst, topic in edges:
        dag.add_edge(src, dst, topic)
    return dag


class TestDiff:
    def test_identical_models(self):
        a = dag_with(vertex("n/a", exec_times=[MSEC]))
        b = dag_with(vertex("n/a", exec_times=[MSEC]))
        diff = diff_dags(a, b)
        assert diff.is_empty
        assert "identical" in diff.summary()

    def test_added_and_removed_vertices(self):
        a = dag_with(vertex("n/a"), vertex("n/b"))
        b = dag_with(vertex("n/a"), vertex("n/c"))
        diff = diff_dags(a, b)
        assert diff.added_vertices == ["n/c"]
        assert diff.removed_vertices == ["n/b"]
        assert not diff.structurally_equal

    def test_edge_changes(self):
        a = dag_with(vertex("n/a"), vertex("n/b"), edges=[("n/a", "n/b", "/t")])
        b = dag_with(vertex("n/a"), vertex("n/b"))
        diff = diff_dags(a, b)
        assert diff.removed_edges == [("n/a", "n/b", "/t")]
        assert "- edge" in diff.summary()

    def test_drift_detection(self):
        a = dag_with(vertex("n/a", exec_times=[10 * MSEC] * 5))
        b = dag_with(vertex("n/a", exec_times=[14 * MSEC] * 5))
        diff = diff_dags(a, b, drift_threshold=0.10)
        assert len(diff.drifted) == 1
        assert diff.drifted[0].mwcet_ratio == pytest.approx(1.4)

    def test_small_drift_ignored(self):
        a = dag_with(vertex("n/a", exec_times=[10 * MSEC] * 5))
        b = dag_with(vertex("n/a", exec_times=[int(10.5 * MSEC)] * 5))
        assert diff_dags(a, b, drift_threshold=0.10).is_empty

    def test_unmeasured_vertices_not_drifted(self):
        a = dag_with(vertex("n/a"))
        b = dag_with(vertex("n/a", exec_times=[MSEC]))
        assert not diff_dags(a, b).drifted

    def test_vanished_callback_lands_in_no_data(self):
        """A callback that stopped executing is reported, not silently
        skipped (regression: the zero-count guard used to drop it)."""
        a = dag_with(vertex("n/a", exec_times=[MSEC] * 3))
        b = dag_with(vertex("n/a"))
        diff = diff_dags(a, b)
        assert not diff.is_empty
        assert len(diff.no_data) == 1
        gap = diff.no_data[0]
        assert gap.key == "n/a" and gap.vanished
        assert gap.old_count == 3 and gap.new_count == 0
        assert "stopped executing" in diff.summary()

    def test_appeared_callback_lands_in_no_data(self):
        a = dag_with(vertex("n/a"))
        b = dag_with(vertex("n/a", exec_times=[MSEC] * 2))
        diff = diff_dags(a, b)
        assert len(diff.no_data) == 1
        assert not diff.no_data[0].vanished
        assert "started executing" in diff.summary()

    def test_never_measured_still_ignored(self):
        a = dag_with(vertex("n/a"))
        b = dag_with(vertex("n/a"))
        diff = diff_dags(a, b)
        assert diff.is_empty and not diff.no_data

    def test_invalid_threshold(self):
        a = dag_with(vertex("n/a"))
        with pytest.raises(ValueError):
            diff_dags(a, a, drift_threshold=-1)

    def test_diff_across_real_runs(self):
        """Two seeds of the same app: same structure, some stat drift."""
        config = RunConfig(duration_ns=5 * SEC, base_seed=100, num_cpus=4)
        r1 = run_once(lambda w, i: build_avp(w), config, run_index=0)
        r2 = run_once(lambda w, i: build_avp(w), config, run_index=1)
        d1 = synthesize_from_trace(r1.trace, pids=r1.apps.pids)
        d2 = synthesize_from_trace(r2.trace, pids=r2.apps.pids)
        diff = diff_dags(d1, d2, drift_threshold=0.0)
        assert diff.structurally_equal
        assert diff.drifted  # exec times differ run to run


class TestPercentileGates:
    def test_identical_models_pass(self):
        a = dag_with(vertex("n/a", exec_times=[MSEC, 2 * MSEC, 3 * MSEC]))
        b = dag_with(vertex("n/a", exec_times=[MSEC, 2 * MSEC, 3 * MSEC]))
        gates = percentile_gates(a, b)
        assert len(gates) == 1
        gate = gates[0]
        assert gate.ratio == pytest.approx(1.0)
        assert not gate.exceeded
        assert "[ok]" in gate.describe()

    def test_grown_tail_fails_gate(self):
        a = dag_with(vertex("n/a", exec_times=[MSEC] * 99 + [2 * MSEC]))
        b = dag_with(vertex("n/a", exec_times=[MSEC] * 99 + [10 * MSEC]))
        (gate,) = percentile_gates(a, b, percentile=99.9, max_ratio=1.2)
        assert gate.exceeded
        assert gate.ratio > 4
        assert "[FAIL]" in gate.describe()

    def test_median_gate_ignores_tail(self):
        """The same pair passes at p50: only the tail moved."""
        a = dag_with(vertex("n/a", exec_times=[MSEC] * 99 + [2 * MSEC]))
        b = dag_with(vertex("n/a", exec_times=[MSEC] * 99 + [10 * MSEC]))
        (gate,) = percentile_gates(a, b, percentile=50, max_ratio=1.2)
        assert not gate.exceeded

    def test_unmeasured_vertices_skipped(self):
        a = dag_with(vertex("n/a", exec_times=[MSEC]), vertex("n/b"))
        b = dag_with(vertex("n/a"), vertex("n/b", exec_times=[MSEC]))
        # n/a has no new-side samples, n/b no old-side samples: no gates
        # (those are diff_dags no_data findings).
        assert percentile_gates(a, b) == []

    def test_gates_sorted_by_key(self):
        a = dag_with(
            vertex("n/z", exec_times=[MSEC]), vertex("n/a", exec_times=[MSEC])
        )
        gates = percentile_gates(a, a)
        assert [g.key for g in gates] == ["n/a", "n/z"]

    def test_invalid_parameters(self):
        a = dag_with(vertex("n/a", exec_times=[MSEC]))
        with pytest.raises(ValueError):
            percentile_gates(a, a, percentile=0)
        with pytest.raises(ValueError):
            percentile_gates(a, a, percentile=101)
        with pytest.raises(ValueError):
            percentile_gates(a, a, max_ratio=0)

    def test_gate_on_real_drift(self):
        """Two seeds of the same app: every shared callback gets a gate
        and none explodes past a generous factor."""
        config = RunConfig(duration_ns=3 * SEC, base_seed=300, num_cpus=4)
        r1 = run_once(lambda w, i: build_avp(w), config, run_index=0)
        r2 = run_once(lambda w, i: build_avp(w), config, run_index=1)
        d1 = synthesize_from_trace(r1.trace, pids=r1.apps.pids)
        d2 = synthesize_from_trace(r2.trace, pids=r2.apps.pids)
        gates = percentile_gates(d1, d2, percentile=95, max_ratio=3.0)
        assert gates
        assert not any(g.exceeded for g in gates)


class TestStorage:
    def make_database(self):
        config = RunConfig(duration_ns=2 * SEC, base_seed=55, num_cpus=2)
        results = run_many(lambda w, i: build_avp(w), runs=2, config=config)
        return collect_database(results), results

    def test_trace_round_trip(self, tmp_path):
        database, results = self.make_database()
        path = str(tmp_path / "run.trace.json.gz")
        trace = database.get("run000")
        save_trace(trace, path)
        clone = load_trace(path)
        assert len(clone.ros_events) == len(trace.ros_events)
        assert clone.pid_map == trace.pid_map

    def test_database_round_trip(self, tmp_path):
        database, results = self.make_database()
        directory = str(tmp_path / "traces")
        paths = save_database(database, directory)
        assert len(paths) == 2
        clone = load_database(directory)
        assert clone.run_ids() == database.run_ids()
        # Re-synthesis from the stored traces gives the same model.
        pids = results[0].apps.pids
        original = synthesize_from_trace(database.get("run000"), pids=pids)
        restored = synthesize_from_trace(clone.get("run000"), pids=pids)
        assert diff_dags(original, restored, drift_threshold=0.0).is_empty

    def test_load_missing_directory(self):
        with pytest.raises(FileNotFoundError):
            load_database("/nonexistent/trace/dir")

    def test_unrelated_files_ignored(self, tmp_path):
        database, _ = self.make_database()
        directory = str(tmp_path / "traces")
        save_database(database, directory)
        (tmp_path / "traces" / "README.txt").write_text("not a trace")
        assert len(load_database(directory)) == 2


class TestJitter:
    def test_perfect_period_zero_jitter(self):
        v = vertex("n/t", start_times=[0, 100, 200, 300], cb_type="timer")
        model = activation_model(v)
        assert model.period_ns == 100
        assert model.jitter_ns == 0
        assert model.min_gap_ns == model.max_gap_ns == 100

    def test_jitter_measured(self):
        v = vertex("n/t", start_times=[0, 100, 230, 300], cb_type="timer")
        model = activation_model(v)
        assert model.jitter_ns == 30
        assert model.max_gap_ns == 130
        assert model.min_gap_ns == 70

    def test_insufficient_data(self):
        model = activation_model(vertex("n/t", start_times=[5]))
        assert model.period_ns is None
        assert model.relative_jitter is None

    def test_response_jitter(self):
        v = vertex("n/s", response_times=[5, 9, 7])
        rj = response_jitter(v)
        assert rj.best_ns == 5
        assert rj.worst_ns == 9
        assert rj.spread_ns == 4

    def test_response_jitter_none_without_samples(self):
        assert response_jitter(vertex("n/s")) is None

    def test_report_on_real_model(self):
        config = RunConfig(duration_ns=5 * SEC, base_seed=77, num_cpus=4)
        result = run_once(lambda w, i: build_avp(w), config)
        dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
        models = activation_models(dag)
        assert models
        cb1 = next(m for m in models if m.key.endswith("cb1"))
        # 10 Hz LIDAR with 0.5 ms sensor jitter.
        assert cb1.period_ns == pytest.approx(100 * MSEC, rel=0.05)
        assert cb1.relative_jitter < 0.5
        assert "period" in format_activations(dag)

"""Detailed ROS2-substrate tests: QoS drops, executor semantics,
synchronizer edge cases, DDS behaviour."""

import pytest

from repro.ros2 import (
    DEFAULT_QOS,
    ExternalPublisher,
    Msg,
    Node,
    QoSProfile,
    reply_topic,
    request_topic,
)
from repro.sim import Constant, MSEC, SEC
from repro.world import World


def make_world(**kwargs):
    kwargs.setdefault("num_cpus", 2)
    kwargs.setdefault("seed", 3)
    return World(**kwargs)


class TestQoS:
    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            QoSProfile(depth=0)

    def test_keep_last_drops_oldest(self):
        """A slow subscriber with depth 2 keeps only the newest samples."""
        world = make_world(num_cpus=1)
        producer = Node(world, "producer")
        consumer = Node(world, "consumer", start_delay_ns=0)
        pub = producer.create_publisher("/burst")
        got = []

        def burst(api, msg):
            for _ in range(6):
                api.publish(pub, Msg(stamp=api.now))
            yield api.compute(MSEC)

        def slow(api, msg):
            got.append(msg.stamp)
            yield api.compute(50 * MSEC)

        producer.create_timer(500 * MSEC, burst, label="B")
        sub = consumer.create_subscription("/burst", slow, qos=QoSProfile(depth=2))
        world.launch()
        world.run(for_ns=490 * MSEC)
        # 6 published, queue depth 2 + the one consumed early.
        assert sub.reader.dropped >= 3
        assert len(got) <= 3

    def test_default_depth_keeps_bursts(self):
        world = make_world()
        producer = Node(world, "p2")
        consumer = Node(world, "c2")
        pub = producer.create_publisher("/burst2")
        got = []

        def burst(api, msg):
            for _ in range(6):
                api.publish(pub, Msg(stamp=api.now))
            return None

        producer.create_timer(500 * MSEC, burst)
        consumer.create_subscription("/burst2", lambda api, m: got.append(m.stamp))
        world.launch()
        world.run(for_ns=400 * MSEC)
        assert len(got) == 6


class TestExecutorSemantics:
    def test_one_callback_at_a_time(self):
        """Callbacks of one node never overlap (single-threaded executor)."""
        world = make_world()
        node = Node(world, "busy")
        windows = []

        def make_cb(tag, duration):
            def cb(api, msg):
                start = api.now
                yield api.compute(duration)
                windows.append((tag, start, api.now))

            return cb

        node.create_timer(30 * MSEC, make_cb("t1", 10 * MSEC))
        node.create_timer(45 * MSEC, make_cb("t2", 12 * MSEC))
        world.launch()
        world.run(for_ns=2 * SEC)
        spans = sorted((s, e) for _, s, e in windows)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2  # no overlap

    def test_timer_before_subscription_priority(self):
        """rclcpp wait-set order: ready timers dispatch before ready subs."""
        world = make_world(num_cpus=1, dds_latency_ns=0)
        node = Node(world, "orderly")
        other = Node(world, "feeder")
        pub = other.create_publisher("/x")
        order = []

        def blocker(api, msg):
            # Long callback so both timer and sub become ready during it.
            yield api.compute(50 * MSEC)

        def on_timer(api, msg):
            order.append("timer")
            yield api.compute(MSEC)

        def on_sub(api, msg):
            order.append("sub")
            yield api.compute(MSEC)

        node.create_timer(200 * MSEC, blocker, label="BLOCK", phase_ns=0)
        node.create_timer(200 * MSEC, on_timer, label="TM", phase_ns=10 * MSEC)
        node.create_subscription("/x", on_sub)
        other.create_timer(200 * MSEC, lambda api, m: api.publish(pub) and None,
                           phase_ns=5 * MSEC)
        world.launch()
        world.run(for_ns=190 * MSEC)
        # During BLOCK (0..50ms) both the publication (5ms) and TM (10ms)
        # became ready; the timer dispatches first.
        assert order[:2] == ["timer", "sub"]

    def test_executor_drains_backlog(self):
        world = make_world(num_cpus=2, dds_latency_ns=0)
        fast = Node(world, "fast")
        slow = Node(world, "slow")
        pub = fast.create_publisher("/q")
        fast.create_timer(10 * MSEC, lambda api, m: api.publish(pub) and None)
        seen = []
        slow.create_subscription(
            "/q", lambda api, m: seen.append(api.now), qos=QoSProfile(depth=100)
        )
        world.launch()
        world.run(for_ns=SEC)
        assert len(seen) >= 99


class TestServiceTopics:
    def test_topic_naming(self):
        assert request_topic("/sv") == "/svRequest"
        assert reply_topic("/sv") == "/svReply"

    def test_sequence_numbers_distinguish_calls(self):
        world = make_world()
        server = Node(world, "srv")
        caller = Node(world, "cli")
        seen = []

        def handler(api, request):
            return request

        server.create_service("/echo", handler)
        client = caller.create_client("/echo", lambda api, d: seen.append(d))
        count = {"n": 0}

        def call(api, msg):
            count["n"] += 1
            api.call(client, count["n"])
            return None

        caller.create_timer(50 * MSEC, call)
        world.launch()
        world.run(for_ns=SEC)
        assert seen == sorted(seen)
        assert len(seen) >= 19

    def test_malformed_request_detected(self):
        world = make_world()
        server = Node(world, "srv")
        server.create_service("/echo", lambda api, r: r)
        # Write a non-envelope payload straight onto the request topic.
        writer = world.dds.create_writer(request_topic("/echo"), kind="request")
        world.kernel.schedule_at(10 * MSEC, lambda: world.dds.write(writer, "garbage"))
        world.launch()
        with pytest.raises(TypeError):
            world.run(for_ns=SEC)


class TestSynchronizerEdgeCases:
    def test_needs_two_subscriptions(self):
        world = make_world()
        node = Node(world, "f")
        s1 = node.create_subscription("/a")
        with pytest.raises(ValueError):
            node.create_synchronizer([s1], lambda api, msgs: None)

    def test_members_must_share_node(self):
        world = make_world()
        n1 = Node(world, "f1")
        n2 = Node(world, "f2")
        s1 = n1.create_subscription("/a")
        s2 = n2.create_subscription("/b")
        with pytest.raises(ValueError):
            from repro.ros2 import TimeSynchronizer

            TimeSynchronizer([s1, s2], lambda api, msgs: None)

    def test_unstamped_message_rejected(self):
        world = make_world(dds_latency_ns=0)
        node = Node(world, "f")
        s1 = node.create_subscription("/a")
        s2 = node.create_subscription("/b")
        node.create_synchronizer([s1, s2], lambda api, msgs: None)
        src = Node(world, "src")
        pa = src.create_publisher("/a")
        src.create_timer(50 * MSEC, lambda api, m: api.publish(pa, Msg(stamp=None)) and None)
        world.launch()
        with pytest.raises(ValueError):
            world.run(for_ns=SEC)

    def test_mismatched_stamps_never_fuse_exact_policy(self):
        world = make_world(dds_latency_ns=0)
        node = Node(world, "f")
        s1 = node.create_subscription("/a")
        s2 = node.create_subscription("/b")
        fused = []
        sync = node.create_synchronizer([s1, s2], lambda api, msgs: fused.append(msgs))
        src = Node(world, "src")
        pa = src.create_publisher("/a")
        pb = src.create_publisher("/b")

        def feed(api, msg):
            api.publish(pa, Msg(stamp=api.now))
            api.publish(pb, Msg(stamp=api.now + 1))  # off by one ns
            return None

        src.create_timer(50 * MSEC, feed)
        world.launch()
        world.run(for_ns=SEC)
        assert fused == []
        assert sync.matches == 0

    def test_queue_size_bounds_memory(self):
        world = make_world(dds_latency_ns=0)
        node = Node(world, "f")
        s1 = node.create_subscription("/a")
        s2 = node.create_subscription("/b")
        sync = node.create_synchronizer(
            [s1, s2], lambda api, msgs: None, queue_size=3
        )
        src = Node(world, "src")
        pa = src.create_publisher("/a")  # only /a ever publishes
        src.create_timer(10 * MSEC, lambda api, m: api.publish(pa, Msg(stamp=api.now)) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert len(sync._queues[s1]) <= 3


class TestDds:
    def test_write_returns_src_ts(self):
        world = make_world()
        node = Node(world, "w")
        pub = node.create_publisher("/t")
        stamps = []

        def cb(api, msg):
            yield api.compute(MSEC)
            stamps.append(api.publish(pub, Msg(stamp=api.now)))

        node.create_timer(100 * MSEC, cb)
        world.launch()
        world.run(for_ns=500 * MSEC)
        assert stamps
        assert stamps == sorted(stamps)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            World(dds_latency_ns=-1)

    def test_duplicate_node_name_rejected(self):
        world = make_world()
        Node(world, "dup")
        with pytest.raises(ValueError):
            Node(world, "dup")

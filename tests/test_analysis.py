"""Tests for the analysis layer: chains, latency, load, response time."""

import pytest

from repro.analysis import (
    AnalysisError,
    LatencyIndex,
    assert_feasible,
    callback_loads,
    callback_response_bound,
    chain_response_bound,
    chain_wcet,
    chains_through,
    check_binding,
    communication_latencies,
    enumerate_chains,
    format_chains,
    format_loads,
    measure_chain_latencies,
    measure_waiting_times,
    node_loads,
    suggest_binding,
    waiting_times,
)
from repro.core.index import CODE_CB_END, CODE_CB_START
from repro.apps import build_avp, build_syn
from repro.core import DagVertex, TimingDag, synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.ros2 import Msg, Node
from repro.sim import MSEC, SEC
from repro.tracing import TracingSession
from repro.world import World


@pytest.fixture(scope="module")
def avp_model():
    config = RunConfig(duration_ns=10 * SEC, base_seed=21, num_cpus=4)
    result = run_once(lambda w, i: build_avp(w), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return dag, result


@pytest.fixture(scope="module")
def syn_model():
    config = RunConfig(duration_ns=10 * SEC, base_seed=22, num_cpus=4)
    result = run_once(lambda w, i: build_syn(w), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return dag, result


class TestChains:
    def test_avp_single_chain_pair(self, avp_model):
        dag, _ = avp_model
        chains = enumerate_chains(dag)
        # Two sources (cb1, cb2) joining at the AND junction -> 2 chains.
        assert len(chains) == 2
        sinks = {c.sink for c in chains}
        assert sinks == {"p2d_ndt_localizer_node/cb6"}

    def test_chain_wcet_positive(self, avp_model):
        dag, _ = avp_model
        for chain in enumerate_chains(dag):
            assert chain_wcet(dag, chain) > 0

    def test_syn_chains_do_not_cross_service(self, syn_model):
        dag, _ = syn_model
        for vertex in dag.find_vertices(cb_id="SV3"):
            through = chains_through(dag, vertex.key)
            # Each SV3 vertex lies on chains of exactly one caller.
            callers = {c.keys[0] for c in through}
            assert len(callers) == 1

    def test_naive_shared_service_creates_nxn_chains(self):
        """The paper's motivating example: one shared SV3 vertex yields
        2x2 chains; the replicated model yields 2."""
        dag = TimingDag()
        for key in ("A", "B", "SV", "CA", "CB"):
            dag.add_vertex(DagVertex(key=key, node="n", cb_id=key, cb_type="timer"))
        dag.add_edge("A", "SV", "t1")
        dag.add_edge("B", "SV", "t2")
        dag.add_edge("SV", "CA", "r1")
        dag.add_edge("SV", "CB", "r2")
        assert len(enumerate_chains(dag)) == 4  # 2 spurious

    def test_format_chains(self, avp_model):
        dag, _ = avp_model
        text = format_chains(dag, enumerate_chains(dag))
        assert "cb6" in text and "ms" in text

    def test_explicit_sink_terminates_despite_successors(self):
        """``sinks=`` must end the chain at that vertex even when the
        graph continues past it (regression: mid-graph sinks used to be
        walked through, yielding chains that overshot the requested
        analysis horizon)."""
        dag = TimingDag()
        for key in ("A", "M", "Z"):
            dag.add_vertex(DagVertex(key=key, node="n", cb_id=key, cb_type="timer"))
        dag.add_edge("A", "M", "t1")
        dag.add_edge("M", "Z", "t2")
        chains = enumerate_chains(dag, sinks=["M"])
        assert [c.keys for c in chains] == [("A", "M")]

    def test_explicit_sink_on_fanout_vertex(self):
        dag = TimingDag()
        for key in ("A", "B", "SV", "CA", "CB"):
            dag.add_vertex(DagVertex(key=key, node="n", cb_id=key, cb_type="timer"))
        dag.add_edge("A", "SV", "t1")
        dag.add_edge("B", "SV", "t2")
        dag.add_edge("SV", "CA", "r1")
        dag.add_edge("SV", "CB", "r2")
        # Stopping at the shared service: one chain per caller, none of
        # the 2x2 fan-out past it.
        chains = enumerate_chains(dag, sinks=["SV"])
        assert sorted(c.keys for c in chains) == [("A", "SV"), ("B", "SV")]

    def test_graph_sinks_unchanged_by_fix(self, avp_model):
        """Default behavior (no explicit sinks) is untouched."""
        dag, _ = avp_model
        implicit = enumerate_chains(dag)
        explicit = enumerate_chains(dag, sinks=["p2d_ndt_localizer_node/cb6"])
        assert [c.keys for c in implicit] == [c.keys for c in explicit]


class TestLatency:
    def test_avp_end_to_end_latency(self, avp_model):
        dag, result = avp_model
        topics = [
            "lidar_front/points_raw",
            "lidar_front/points_filtered",
            "lidars/points_fused",
            "lidars/points_fused_downsampled",
        ]
        latencies = measure_chain_latencies(result.trace, topics)
        assert len(latencies) > 20
        values_ms = [l.latency_ns / 1e6 for l in latencies]
        # Front path: ~27 ms filter + fusion + ~8.5 ms voxel + ~24 ms NDT.
        assert 40 < min(values_ms)
        assert max(values_ms) < 250

    def test_latency_monotonic_fields(self, avp_model):
        _, result = avp_model
        latencies = measure_chain_latencies(
            result.trace, ["lidar_rear/points_raw", "lidar_rear/points_filtered"]
        )
        assert latencies
        assert all(l.end_ts > l.start_ts for l in latencies)

    def test_unknown_topic_gives_no_latencies(self, avp_model):
        _, result = avp_model
        assert measure_chain_latencies(result.trace, ["/nonexistent"]) == []

    def test_communication_latency_equals_dds_config(self, avp_model):
        _, result = avp_model
        values = communication_latencies(result.trace, "lidars/points_fused")
        assert values
        # One-way DDS latency is 50 us; takes happen at or after delivery.
        assert min(values) >= 50_000

    def test_waiting_times_need_wakeup_recording(self, avp_model):
        _, result = avp_model
        # Default session does not record wakeups.
        pid = result.apps.nodes[0].pid
        assert measure_waiting_times(result.trace, pid) == []

    def test_waiting_times_with_wakeups(self):
        world = World(num_cpus=1, seed=5)
        node = Node(world, "n")
        node.create_timer(50 * MSEC, lambda api, msg: (yield api.compute(5 * MSEC)))
        rival = Node(world, "rival", priority=10)
        rival.create_timer(
            20 * MSEC, lambda api, msg: (yield api.compute(10 * MSEC))
        )
        session = TracingSession(world, record_wakeups=True)
        session.start_init()
        world.launch()
        world.run(for_ns=MSEC)
        session.stop_init()
        session.start_runtime()
        world.run(for_ns=3 * SEC)
        session.stop_runtime()
        trace = session.trace()
        waits = measure_waiting_times(trace, node.pid)
        assert waits
        assert all(w.waiting_ns >= 0 for w in waits)
        # The low-priority node is sometimes kept waiting by the rival.
        assert max(w.waiting_ns for w in waits) > 0
        # The index-based front end is the same computation.
        index = LatencyIndex.from_trace(trace)
        assert waiting_times(index, node.pid) == waits


class TestLatencyIndex:
    """The single-pass row-stream index behind all latency analyses."""

    @staticmethod
    def window_rows(windows, pid=1):
        rows = []
        for start, end in windows:
            rows.append((start, pid, CODE_CB_START, None))
            rows.append((end, pid, CODE_CB_END, None))
        return rows

    def test_window_containing_basic(self):
        index = LatencyIndex(self.window_rows([(10, 20), (30, 40)]))
        assert index.window_containing(1, 15) == (10, 20)
        assert index.window_containing(1, 30) == (30, 40)
        assert index.window_containing(1, 40) == (30, 40)
        assert index.window_containing(1, 25) is None
        assert index.window_containing(1, 5) is None
        assert index.window_containing(99, 15) is None

    def test_unsorted_windows_are_defensively_sorted(self):
        """Windows arriving out of start order (possible when per-run
        streams are concatenated without a merge) must not break the
        bisect lookup."""
        rows = self.window_rows([(100, 200)]) + self.window_rows([(50, 80)])
        index = LatencyIndex(rows)
        assert index.window_containing(1, 60) == (50, 80)
        assert index.window_containing(1, 150) == (100, 200)
        assert index.window_containing(1, 90) is None

    def test_window_lookup_matches_linear_scan(self, avp_model):
        """The precomputed-starts bisect agrees with the O(W) reference
        scan on a real trace, at every probe point."""
        _, result = avp_model
        index = LatencyIndex.from_trace(result.trace)
        for pid in result.apps.pids:
            windows = index._windows.get(pid, [])
            for probe in [w[0] for w in windows[:50]] + [
                w[1] + 1 for w in windows[:50]
            ]:
                reference = None
                for window in windows:
                    if window[0] <= probe <= window[1]:
                        reference = window
                assert index.window_containing(pid, probe) == reference

    def test_wakeups_and_cb_starts_recorded(self):
        rows = self.window_rows([(10, 20), (30, 40)])
        index = LatencyIndex(rows, wakeups=[(8, 1), (28, 1), (5, 2)])
        assert index.cb_starts(1) == [10, 30]
        assert index.wakeups(1) == [8, 28]
        assert index.wakeups(2) == [5]
        waits = waiting_times(index, 1)
        assert [(w.wakeup_ts, w.start_ts) for w in waits] == [(8, 10), (28, 30)]
        assert [w.waiting_ns for w in waits] == [2, 2]


class TestLoad:
    def test_cb2_load_matches_paper_claim(self, avp_model):
        """Sec. VI: cb2 averages ~27 % of a core at 10 Hz."""
        dag, result = avp_model
        loads = {l.key: l.load for l in callback_loads(dag)}
        cb2 = loads["filter_transform_vlp16_front/cb2"]
        assert cb2 == pytest.approx(0.27, abs=0.03)

    def test_node_loads_aggregate(self, avp_model):
        dag, _ = avp_model
        per_node = node_loads(dag)
        assert per_node["point_cloud_fusion"] > 0
        assert sum(per_node.values()) < 1.5

    def test_suggest_binding_respects_threshold(self, avp_model):
        dag, _ = avp_model
        binding = suggest_binding(dag, num_cpus=2, threshold=0.8)
        per_cpu = check_binding(dag, binding, num_cpus=2, threshold=0.8)
        assert all(load <= 0.8 for load in per_cpu.values())

    def test_binding_infeasible_raises(self, avp_model):
        dag, _ = avp_model
        with pytest.raises(ValueError):
            suggest_binding(dag, num_cpus=1, threshold=0.3)

    def test_check_binding_missing_node_raises(self, avp_model):
        dag, _ = avp_model
        with pytest.raises(ValueError):
            check_binding(dag, {}, num_cpus=4)

    def test_format_loads(self, avp_model):
        dag, _ = avp_model
        assert "%" in format_loads(dag)


class TestResponseTime:
    def test_bounds_exceed_wcet(self, avp_model):
        dag, _ = avp_model
        for vertex in dag.vertices():
            bound = callback_response_bound(dag, vertex.key)
            assert bound.response_bound >= vertex.exec_stats.mwcet

    def test_chain_bound_exceeds_sum_of_wcets(self, avp_model):
        dag, _ = avp_model
        for chain in enumerate_chains(dag):
            bound = chain_response_bound(dag, chain, comm_latency_ns=50_000)
            assert bound >= chain_wcet(dag, chain)

    def test_feasibility_check_passes_for_avp(self, avp_model):
        dag, _ = avp_model
        loads = assert_feasible(dag)
        assert loads

    def test_infeasible_model_raises(self):
        dag = TimingDag()
        dag.add_vertex(
            DagVertex(
                key="n/x",
                node="n",
                cb_id="x",
                cb_type="timer",
                exec_times=[90 * MSEC] * 10,
                start_times=[i * 100 * MSEC for i in range(10)],
            )
        )
        dag.add_vertex(
            DagVertex(
                key="n/y",
                node="n",
                cb_id="y",
                cb_type="timer",
                exec_times=[50 * MSEC] * 10,
                start_times=[i * 100 * MSEC for i in range(10)],
            )
        )
        with pytest.raises(AnalysisError):
            assert_feasible(dag)

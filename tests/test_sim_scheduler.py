"""Tests for the CPU scheduler substrate: dispatch, preemption,
timeslicing, affinity, and sched_switch emission semantics."""

import pytest

from repro.sim import (
    Block,
    Compute,
    MSEC,
    SchedPolicy,
    SimKernel,
    Scheduler,
    ThreadState,
    YieldCpu,
)


def make(num_cpus=1, timeslice=4 * MSEC):
    kernel = SimKernel()
    sched = Scheduler(kernel, num_cpus=num_cpus, timeslice=timeslice)
    return kernel, sched


def record_switches(sched):
    records = []
    sched.on_sched_switch(records.append)
    return records


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self):
        kernel, sched = make()
        done = []

        def activity():
            yield Compute(5 * MSEC)
            done.append(kernel.now)

        thread = sched.spawn(activity(), name="worker")
        kernel.run()
        assert done == [5 * MSEC]
        assert thread.state == ThreadState.DEAD
        assert thread.cpu_time == 5 * MSEC

    def test_sequential_computes_accumulate(self):
        kernel, sched = make()
        marks = []

        def activity():
            yield Compute(1 * MSEC)
            marks.append(kernel.now)
            yield Compute(2 * MSEC)
            marks.append(kernel.now)

        sched.spawn(activity())
        kernel.run()
        assert marks == [1 * MSEC, 3 * MSEC]

    def test_zero_compute_is_instantaneous(self):
        kernel, sched = make()
        marks = []

        def activity():
            yield Compute(0)
            marks.append(kernel.now)

        sched.spawn(activity())
        kernel.run()
        assert marks == [0]

    def test_spawn_start_delay(self):
        kernel, sched = make()
        marks = []

        def activity():
            marks.append(kernel.now)
            yield Compute(MSEC)

        sched.spawn(activity(), start=7 * MSEC)
        kernel.run()
        assert marks == [7 * MSEC]

    def test_two_threads_share_one_cpu_round_robin(self):
        kernel, sched = make(num_cpus=1, timeslice=1 * MSEC)
        t1 = sched.spawn(self._burn(10 * MSEC), name="a")
        t2 = sched.spawn(self._burn(10 * MSEC), name="b")
        kernel.run()
        # Both finish; total wall time is the sum of demands.
        assert t1.state == ThreadState.DEAD
        assert t2.state == ThreadState.DEAD
        assert kernel.now == 20 * MSEC
        assert t1.cpu_time == 10 * MSEC
        assert t2.cpu_time == 10 * MSEC

    @staticmethod
    def _burn(duration):
        def activity():
            yield Compute(duration)

        return activity()


class TestBlockingAndWakeup:
    def test_block_until_wakeup(self):
        kernel, sched = make()
        got = []

        def activity():
            payload = yield Block()
            got.append((kernel.now, payload))

        thread = sched.spawn(activity())
        kernel.schedule_at(3 * MSEC, lambda: sched.wakeup(thread, "ping"))
        kernel.run()
        assert got == [(3 * MSEC, "ping")]

    def test_wakeup_before_block_is_not_lost(self):
        kernel, sched = make()
        got = []

        def activity():
            yield Compute(5 * MSEC)  # wakeup arrives while running
            payload = yield Block()
            got.append((kernel.now, payload))

        thread = sched.spawn(activity())
        kernel.schedule_at(1 * MSEC, lambda: sched.wakeup(thread, 42))
        kernel.run()
        assert got == [(5 * MSEC, 42)]

    def test_wakeup_dead_thread_is_ignored(self):
        kernel, sched = make()

        def activity():
            yield Compute(MSEC)

        thread = sched.spawn(activity())
        kernel.run()
        sched.wakeup(thread)  # must not raise

    def test_wakeups_coalesce(self):
        kernel, sched = make()
        got = []

        def activity():
            payload = yield Block()
            got.append(payload)
            payload = yield Block()
            got.append(payload)

        thread = sched.spawn(activity())
        kernel.schedule_at(MSEC, lambda: sched.wakeup(thread, "a"))
        kernel.schedule_at(2 * MSEC, lambda: sched.wakeup(thread, "b"))
        kernel.run()
        assert got[0] == "a"
        assert got[1] == "b"


class TestPriorityPreemption:
    def test_high_priority_preempts_low(self):
        kernel, sched = make(num_cpus=1)
        marks = []

        def low():
            yield Compute(10 * MSEC)
            marks.append(("low-done", kernel.now))

        def high():
            payload = yield Block()
            yield Compute(2 * MSEC)
            marks.append(("high-done", kernel.now))

        sched.spawn(low(), priority=0, name="low")
        hi = sched.spawn(high(), priority=100, policy=SchedPolicy.FIFO, name="high")
        kernel.schedule_at(4 * MSEC, lambda: sched.wakeup(hi))
        kernel.run()
        assert ("high-done", 6 * MSEC) in marks
        assert ("low-done", 12 * MSEC) in marks

    def test_preempted_thread_cpu_time_excludes_preemption(self):
        kernel, sched = make(num_cpus=1)

        def low():
            yield Compute(10 * MSEC)

        def high():
            yield Block()
            yield Compute(3 * MSEC)

        lo = sched.spawn(low(), priority=0)
        hi = sched.spawn(high(), priority=100, policy=SchedPolicy.FIFO)
        kernel.schedule_at(2 * MSEC, lambda: sched.wakeup(hi))
        kernel.run()
        assert lo.cpu_time == 10 * MSEC
        assert hi.cpu_time == 3 * MSEC
        assert kernel.now == 13 * MSEC

    def test_fifo_threads_not_timesliced(self):
        kernel, sched = make(num_cpus=1, timeslice=MSEC)
        order = []

        def worker(tag, duration):
            yield Compute(duration)
            order.append(tag)

        sched.spawn(worker("first", 5 * MSEC), priority=100, policy=SchedPolicy.FIFO)
        sched.spawn(worker("second", 5 * MSEC), priority=100, policy=SchedPolicy.FIFO)
        kernel.run()
        # FIFO: first runs to completion despite equal priority.
        assert order == ["first", "second"]


class TestAffinity:
    def test_thread_respects_affinity(self):
        kernel, sched = make(num_cpus=2)
        cpus_seen = []

        def activity():
            yield Compute(MSEC)
            cpus_seen.append("done")

        thread = sched.spawn(activity(), affinity=[1])
        records = record_switches(sched)
        kernel.run()
        assert cpus_seen == ["done"]
        run_cpus = {r.cpu for r in records if r.next_pid == thread.pid}
        assert run_cpus == {1}

    def test_affinity_out_of_range_rejected(self):
        kernel, sched = make(num_cpus=2)
        with pytest.raises(ValueError):
            sched.spawn(iter(()), affinity=[5])

    def test_two_cpus_run_threads_in_parallel(self):
        kernel, sched = make(num_cpus=2)
        t1 = sched.spawn(self._burn(10 * MSEC))
        t2 = sched.spawn(self._burn(10 * MSEC))
        kernel.run()
        assert kernel.now == 10 * MSEC  # true parallelism
        assert t1.cpu_time == t2.cpu_time == 10 * MSEC

    @staticmethod
    def _burn(duration):
        def activity():
            yield Compute(duration)

        return activity()


class TestSchedSwitchEmission:
    def test_switch_records_on_block_and_resume(self):
        kernel, sched = make()
        records = record_switches(sched)

        def activity():
            yield Compute(2 * MSEC)
            yield Block()

        thread = sched.spawn(activity())
        kernel.schedule_at(5 * MSEC, lambda: sched.wakeup(thread))
        kernel.run()
        # swapper->T at 0, T->swapper at 2ms (state S), swapper->T at 5ms,
        # T->swapper at 5ms (dead).
        pid = thread.pid
        transitions = [(r.ts, r.prev_pid, r.next_pid, r.prev_state) for r in records]
        assert (0, 0, pid, "R") in transitions
        assert (2 * MSEC, pid, 0, "S") in transitions
        assert (5 * MSEC, 0, pid, "R") in transitions

    def test_preemption_emits_runnable_prev_state(self):
        kernel, sched = make(num_cpus=1)
        records = record_switches(sched)

        def low():
            yield Compute(10 * MSEC)

        def high():
            yield Block()
            yield Compute(MSEC)

        lo = sched.spawn(low(), priority=0)
        hi = sched.spawn(high(), priority=100, policy=SchedPolicy.FIFO)
        kernel.schedule_at(3 * MSEC, lambda: sched.wakeup(hi))
        kernel.run()
        preempt = [r for r in records if r.prev_pid == lo.pid and r.next_pid == hi.pid]
        assert len(preempt) == 1
        assert preempt[0].prev_state == "R"
        assert preempt[0].ts == 3 * MSEC

    def test_exec_segments_reconstruct_cpu_time(self):
        """The invariant Alg. 2 relies on: summing [next_pid==P .. prev_pid==P]
        windows over sched_switch equals the thread's real CPU time."""
        kernel, sched = make(num_cpus=1, timeslice=MSEC)
        records = record_switches(sched)
        threads = [sched.spawn(self._burn(7 * MSEC)) for _ in range(3)]
        kernel.run()
        for thread in threads:
            total, start = 0, None
            for r in records:
                if r.next_pid == thread.pid:
                    start = r.ts
                elif r.prev_pid == thread.pid and start is not None:
                    total += r.ts - start
                    start = None
            assert total == thread.cpu_time == 7 * MSEC

    @staticmethod
    def _burn(duration):
        def activity():
            yield Compute(duration)

        return activity()


class TestYieldCpu:
    def test_yield_rotates_equal_priority(self):
        kernel, sched = make(num_cpus=1)
        order = []

        def polite(tag):
            yield Compute(MSEC)
            order.append(tag + "-1")
            yield YieldCpu()
            yield Compute(MSEC)
            order.append(tag + "-2")

        sched.spawn(polite("a"))
        sched.spawn(polite("b"))
        kernel.run()
        assert order == ["a-1", "b-1", "a-2", "b-2"]


class TestUtilization:
    def test_utilization_fraction(self):
        kernel, sched = make(num_cpus=2)

        def activity():
            yield Compute(5 * MSEC)

        sched.spawn(activity(), affinity=[0])
        kernel.run(until=10 * MSEC)
        util = sched.utilization()
        assert util[0] == pytest.approx(0.5)
        assert util[1] == 0.0

"""Trace format v3 (per-section compression): round trips, selective
section I/O counters, the v1/v2 -> v3 upgrade path, the committed
golden v3 fixture, the uncompressed segment cache, per-section error
diagnostics, the ``store-info --json`` satellite, and walk_fastpath /
no-numpy equivalence properties."""

import json
import os
import shutil
import struct
import zlib
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main
from repro.core import dag_to_json, synthesize_from_trace, to_dot
from repro.core import npcompat
from repro.experiments.runner import RunConfig, run_once
from repro.scenarios import build_scenario_spec
from repro.sim.kernel import SEC
from repro.store import (
    SEGMENT_SUFFIX,
    InMemorySegment,
    SegmentReader,
    StoreFormatError,
    StoreTraceIndex,
    TraceStore,
    encode_trace,
    peek_header,
    synthesize_from_store,
    write_segment,
)
from repro.store.format import (
    HEADER,
    SECTION_COMP_ZLIB,
    SECTION_ENTRY,
    SHAPE_JSON,
    VERSION,
    VERSION_V1,
    VERSION_V2,
)
from repro.store.reader import peek_sections, read_pid_map
from repro.tracing.events import (
    CB_START_PROBES,
    P3_TIMER_CALL,
    P6_TAKE,
    P16_DDS_WRITE,
    TraceEvent,
)
from repro.tracing.session import Trace
from repro.tracing.storage import TRACE_SUFFIX, load_trace, save_trace

DATA_DIR = Path(__file__).parent / "data"
DURATION_NS = int(1.0 * SEC)


def traced_run(name, run_index=0, runs=4):
    spec = build_scenario_spec(
        name, run_index=run_index, runs=runs, duration_ns=DURATION_NS
    )
    config = RunConfig(duration_ns=DURATION_NS, num_cpus=spec.num_cpus)
    return run_once(
        lambda world, i: spec.build(world), config, run_index=run_index
    ).trace


@pytest.fixture(scope="module")
def syn_trace():
    return traced_run("syn")


@pytest.fixture(scope="module")
def fusion_traces():
    return [traced_run("sensor-fusion", i) for i in range(4)]


def _body_start(path):
    entries = peek_sections(path)
    return HEADER.size + 4 + len(entries) * SECTION_ENTRY.size, entries


# ---------------------------------------------------------------------------
# v3 round trips + the section directory
# ---------------------------------------------------------------------------


class TestFormatV3:
    def test_default_write_is_v3(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path)
        assert peek_header(path)[0] == VERSION == 3
        reader = SegmentReader.open(path)
        assert reader.version == 3
        assert reader.to_trace().to_dict() == syn_trace.to_dict()

    @pytest.mark.parametrize("compress", [True, False])
    def test_all_versions_describe_one_trace(self, syn_trace, compress):
        dicts = {
            v: SegmentReader(
                encode_trace(syn_trace, compress=compress, format_version=v)
            ).to_trace().to_dict()
            for v in (1, 2, 3)
        }
        assert dicts[1] == dicts[2] == dicts[3] == syn_trace.to_dict()

    def test_section_directory_covers_the_body(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path)
        body_start, entries = _body_start(path)
        assert entries, "v3 segment must carry a section directory"
        names = {entry.name for entry in entries}
        assert "pid_map" in names and "string table" in names
        assert any(name.startswith("ros column") for name in names)
        # sections tile the body exactly: sorted by offset, no gaps
        ordered = sorted(entries, key=lambda entry: entry.offset)
        expected = 0
        for entry in ordered:
            assert entry.offset == expected
            expected += entry.comp_len
        assert body_start + expected == os.path.getsize(path)

    def test_v1_v2_have_no_section_directory(self, syn_trace, tmp_path):
        for version in (1, 2):
            path = str(tmp_path / f"v{version}{SEGMENT_SUFFIX}")
            write_segment(syn_trace, path, format_version=version)
            assert peek_sections(path) == []

    def test_writer_keeps_incompressible_sections_raw(self, syn_trace, tmp_path):
        """Uncompressed writes mark every section raw; no stream should
        be stored deflated when deflate does not shrink it."""
        path = str(tmp_path / f"raw{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path, compress=False)
        _, entries = _body_start(path)
        assert all(entry.comp == 0 for entry in entries)
        assert all(entry.comp_len == entry.raw_len for entry in entries)


# ---------------------------------------------------------------------------
# Selective I/O: the bytes_inflated counter
# ---------------------------------------------------------------------------


class TestSelectiveIO:
    def test_read_pid_map_matches_trace_without_body(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path)
        assert read_pid_map(path) == syn_trace.pid_map

    def test_partial_reads_inflate_strict_subsets(self, syn_trace, tmp_path):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path)

        full = SegmentReader.open(path)
        full.to_trace()
        opened = SegmentReader.open(path)
        walk = SegmentReader.open(path)
        for _ in walk.walk_rows(0):
            pass
        analysis = SegmentReader.open(path)
        analysis.sched_pid_columns()
        for _ in analysis.wakeup_ts_pid_rows():
            pass

        assert 0 < full.bytes_inflated <= full.body_bytes
        assert opened.bytes_inflated < walk.bytes_inflated < full.bytes_inflated
        assert analysis.bytes_inflated < full.bytes_inflated

    def test_pid_subset_walk_inflates_less_than_full_decode(
        self, syn_trace, tmp_path
    ):
        path = str(tmp_path / f"run{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path)
        pids = sorted(syn_trace.pid_map)
        reader = SegmentReader.open(path)
        StoreTraceIndex([reader], wanted_pids=pids[:1])
        baseline = SegmentReader.open(path)
        baseline.to_trace()
        assert reader.bytes_inflated < baseline.bytes_inflated

    def test_uncompressed_segment_inflates_nothing(self, syn_trace, tmp_path):
        path = str(tmp_path / f"raw{SEGMENT_SUFFIX}")
        write_segment(syn_trace, path, compress=False)
        reader = SegmentReader.open(path)
        assert reader.to_trace().to_dict() == syn_trace.to_dict()
        assert reader.bytes_inflated == 0


# ---------------------------------------------------------------------------
# Upgrade paths + mixed-version stores
# ---------------------------------------------------------------------------


class TestUpgradeToV3:
    def _store(self, traces, directory, version):
        os.makedirs(directory, exist_ok=True)
        for index, trace in enumerate(traces):
            write_segment(
                trace,
                os.path.join(directory, f"run{index:03d}{SEGMENT_SUFFIX}"),
                format_version=version,
            )
        return TraceStore(directory)

    @pytest.mark.parametrize("source_version", [1, 2])
    def test_upgrade_to_v3_round_trip(
        self, fusion_traces, tmp_path, source_version
    ):
        store = self._store(
            fusion_traces[:3], str(tmp_path / "s"), source_version
        )
        before = {r: store.load(r).to_dict() for r in store.run_ids()}
        written = store.convert_legacy(upgrade=True)
        assert len(written) == 3
        assert all(store.format_version(r) == 3 for r in store.run_ids())
        assert {r: store.load(r).to_dict() for r in store.run_ids()} == before
        # idempotent: v3 segments are current, nothing to do
        assert store.convert_legacy(upgrade=True) == []

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_mixed_v1_v2_v3_legacy_store_synthesis(
        self, fusion_traces, tmp_path, jobs
    ):
        """One run per format in one directory -- synthesis stays
        byte-identical to the in-memory pipeline at any jobs value."""
        directory = str(tmp_path / "mixed")
        os.makedirs(directory)
        for index, version in enumerate((1, 2, 3)):
            write_segment(
                fusion_traces[index],
                os.path.join(directory, f"run{index:03d}{SEGMENT_SUFFIX}"),
                format_version=version,
            )
        save_trace(
            fusion_traces[3], os.path.join(directory, f"run003{TRACE_SUFFIX}")
        )
        store = TraceStore(directory)
        assert [store.format_version(r) for r in store.run_ids()] == [1, 2, 3, None]
        expected = synthesize_from_trace(Trace.merge(fusion_traces))
        actual = synthesize_from_store(store, jobs=jobs)
        assert dag_to_json(actual) == dag_to_json(expected)
        assert to_dot(actual) == to_dot(expected)


# ---------------------------------------------------------------------------
# Golden v3 fixture: committed v3 bytes can never silently regress
# ---------------------------------------------------------------------------


class TestGoldenV3Fixture:
    def test_committed_v3_segment_decodes(self):
        """The committed v3 bytes must stay readable forever; they
        describe the same trace as the golden v1 fixture pair, tying
        all committed format generations to one ground truth."""
        reader = SegmentReader.open(str(DATA_DIR / "golden_v3.trace.bin"))
        assert reader.version == 3
        expected = load_trace(str(DATA_DIR / "golden_v1.trace.json.gz"))
        assert reader.to_trace().to_dict() == expected.to_dict()

    def test_committed_v1_segment_upgrades_to_v3(self, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        shutil.copy(
            DATA_DIR / "golden_v1.trace.bin",
            os.path.join(directory, f"golden{SEGMENT_SUFFIX}"),
        )
        store = TraceStore(directory)
        store.convert_legacy(upgrade=True)
        assert store.format_version("golden") == 3
        expected = load_trace(str(DATA_DIR / "golden_v1.trace.json.gz"))
        assert store.load("golden").to_dict() == expected.to_dict()

    def test_committed_v3_sections_stay_selective(self):
        path = str(DATA_DIR / "golden_v3.trace.bin")
        entries = peek_sections(path)
        assert any(entry.comp == SECTION_COMP_ZLIB for entry in entries)
        reader = SegmentReader.open(path)
        for _ in reader.walk_rows(0):
            pass
        assert 0 < reader.bytes_inflated < reader.body_bytes


# ---------------------------------------------------------------------------
# The uncompressed segment cache
# ---------------------------------------------------------------------------


class TestSegmentCache:
    def _recorded_store(self, traces, directory, cache_dir=None):
        os.makedirs(directory, exist_ok=True)
        for index, trace in enumerate(traces):
            write_segment(
                trace, os.path.join(directory, f"run{index:03d}{SEGMENT_SUFFIX}")
            )
        return TraceStore(directory, cache_dir=cache_dir)

    def test_cached_open_is_equivalent_and_inflates_nothing(
        self, fusion_traces, tmp_path
    ):
        directory = str(tmp_path / "s")
        cache = str(tmp_path / "cache")
        plain = self._recorded_store(fusion_traces[:2], directory)
        cached = TraceStore(directory, cache_dir=cache)
        for run_id in plain.run_ids():
            assert (
                cached.load(run_id).to_dict() == plain.load(run_id).to_dict()
            )
        reader = cached.open(plain.run_ids()[0])
        reader.to_trace()
        assert reader.bytes_inflated == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_cached_synthesis_is_byte_identical(
        self, fusion_traces, tmp_path, jobs
    ):
        directory = str(tmp_path / "s")
        cache = str(tmp_path / "cache")
        self._recorded_store(fusion_traces[:3], directory)
        expected = synthesize_from_trace(Trace.merge(fusion_traces[:3]))
        actual = synthesize_from_store(
            TraceStore(directory, cache_dir=cache), jobs=jobs
        )
        assert dag_to_json(actual) == dag_to_json(expected)
        assert to_dot(actual) == to_dot(expected)

    def test_warm_cache_is_idempotent(self, fusion_traces, tmp_path):
        directory = str(tmp_path / "s")
        cache = str(tmp_path / "cache")
        store = self._recorded_store(fusion_traces[:2], directory, cache)
        first = store.warm_cache()
        assert len(first) == 2
        assert sorted(os.listdir(cache)) == sorted(
            os.path.basename(p) for p in first
        )
        assert store.warm_cache() == first  # reuses, no rewrite

    def test_warm_cache_without_cache_dir_raises(self, fusion_traces, tmp_path):
        store = self._recorded_store(fusion_traces[:1], str(tmp_path / "s"))
        with pytest.raises(Exception, match="cache"):
            store.warm_cache()

    def test_stale_cache_entries_are_swept(self, fusion_traces, tmp_path):
        directory = str(tmp_path / "s")
        cache = str(tmp_path / "cache")
        store = self._recorded_store(fusion_traces[:1], directory, cache)
        store.warm_cache()
        (old_entry,) = os.listdir(cache)
        # rewrite the run with different content: size/mtime key changes
        write_segment(
            fusion_traces[1],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
        )
        fresh = TraceStore(directory, cache_dir=cache)
        assert fresh.load("run000").to_dict() == fusion_traces[1].to_dict()
        entries = os.listdir(cache)
        assert len(entries) == 1 and entries[0] != old_entry

    def test_convert_cache_cli(self, fusion_traces, tmp_path, capsys):
        directory = str(tmp_path / "s")
        cache = str(tmp_path / "cache")
        os.makedirs(directory)
        write_segment(
            fusion_traces[0],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
            format_version=1,
        )
        assert main(
            ["convert", directory, "--upgrade", "--cache", cache]
        ) == 0
        out = capsys.readouterr().out
        assert "format v3" in out
        assert "cached 1 uncompressed segment(s)" in out
        assert len(os.listdir(cache)) == 1


# ---------------------------------------------------------------------------
# Per-section error diagnostics
# ---------------------------------------------------------------------------


class TestSectionErrorDiagnostics:
    def _write(self, trace, tmp_path, name="seg"):
        path = str(tmp_path / f"{name}{SEGMENT_SUFFIX}")
        write_segment(trace, path)
        return path

    def test_corrupt_section_names_path_section_and_offset(
        self, syn_trace, tmp_path
    ):
        path = self._write(syn_trace, tmp_path)
        body_start, entries = _body_start(path)
        entry = next(
            e for e in entries
            if e.comp == SECTION_COMP_ZLIB and e.comp_len > 20
        )
        with open(path, "r+b") as handle:
            handle.seek(body_start + entry.offset + 5)
            handle.write(b"\x00" * 10)
        with pytest.raises(StoreFormatError) as excinfo:
            SegmentReader.open(path).to_trace()
        message = str(excinfo.value)
        assert path in message
        assert entry.name in message
        assert str(body_start + entry.offset) in message

    def test_truncated_section_names_path_section_and_offset(
        self, syn_trace, tmp_path
    ):
        path = self._write(syn_trace, tmp_path)
        body_start, entries = _body_start(path)
        last = max(
            (entry for entry in entries if entry.comp_len > 0),
            key=lambda entry: entry.offset,
        )
        cut = body_start + last.offset + last.comp_len // 2
        with open(path, "r+b") as handle:
            handle.truncate(cut)
        # the directory-vs-file-size check catches this at open();
        # either way the diagnostic names the path and the truncation
        with pytest.raises(StoreFormatError) as excinfo:
            SegmentReader.open(path).to_trace()
        message = str(excinfo.value)
        assert path in message and "truncated" in message

    def test_section_errors_never_leak_raw_exceptions(self, syn_trace, tmp_path):
        """Stomping any deflated section stream must diagnose as
        StoreFormatError, never a bare zlib.error / struct.error.
        (Raw sections hold plain values -- garbage there is semantic,
        not a stream decode failure, and out of this contract.)"""
        pristine = self._write(syn_trace, tmp_path)
        body_start, entries = _body_start(pristine)
        raw = open(pristine, "rb").read()
        for index, entry in enumerate(entries):
            if entry.comp != SECTION_COMP_ZLIB or entry.comp_len < 4:
                continue
            stomped = bytearray(raw)
            start = body_start + entry.offset
            middle = start + entry.comp_len // 2
            stomped[middle:middle + 4] = b"\xff\x00\xff\x00"
            path = str(tmp_path / f"stomp{index}{SEGMENT_SUFFIX}")
            with open(path, "wb") as handle:
                handle.write(bytes(stomped))
            try:
                reader = SegmentReader.open(path)
                reader.to_trace()
                for _ in reader.walk_rows(0):
                    pass
            except StoreFormatError:
                pass  # the only acceptable failure type
            except (zlib.error, struct.error) as error:  # pragma: no cover
                pytest.fail(
                    f"section {entry.name}: raw {type(error).__name__} leaked"
                )

    def test_corrupt_pid_map_section_diagnoses_in_read_pid_map(
        self, syn_trace, tmp_path
    ):
        path = self._write(syn_trace, tmp_path)
        body_start, entries = _body_start(path)
        entry = next(e for e in entries if e.name == "pid_map")
        with open(path, "r+b") as handle:
            handle.seek(body_start + entry.offset + 2)
            handle.write(b"\xff" * min(8, max(1, entry.comp_len - 2)))
        with pytest.raises(StoreFormatError) as excinfo:
            read_pid_map(path)
        assert "pid_map" in str(excinfo.value)


# ---------------------------------------------------------------------------
# store-info --json
# ---------------------------------------------------------------------------


class TestStoreInfoJson:
    def test_json_document_is_stable_and_sectioned(
        self, fusion_traces, tmp_path, capsys
    ):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(
            fusion_traces[0],
            os.path.join(directory, f"run000{SEGMENT_SUFFIX}"),
        )
        write_segment(
            fusion_traces[1],
            os.path.join(directory, f"run001{SEGMENT_SUFFIX}"),
            format_version=2,
        )
        assert main(["store-info", directory, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["directory"] == directory
        assert [run["run_id"] for run in payload["runs"]] == ["run000", "run001"]
        v3_run, v2_run = payload["runs"]
        assert v3_run["format_version"] == 3
        assert v3_run["events"] > 0 and v3_run["bytes_per_event"] > 0
        names = [section["name"] for section in v3_run["sections"]]
        assert "pid_map" in names and "string table" in names
        stored = sum(section["stored_bytes"] for section in v3_run["sections"])
        assert stored <= v3_run["size_bytes"]
        assert "sections" not in v2_run  # v1/v2 have no directory
        assert payload["total_events"] == sum(
            run["events"] for run in payload["runs"]
        )


# ---------------------------------------------------------------------------
# walk_fastpath reassembly + InMemorySegment parity (property tests)
# ---------------------------------------------------------------------------


PROBES = st.sampled_from(
    [
        sorted(CB_START_PROBES)[0],
        P3_TIMER_CALL,
        P6_TAKE,
        P16_DDS_WRITE,
        "custom:probe",  # code 0: dropped by walks, kept by round trips
    ]
)

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.text(max_size=6),
)

# Association fields ("cb_id", "topic", "src_ts") must stay hashable --
# Alg. 1 keys its write/dispatch tables on them -- so nested containers
# (which force the SHAPE_JSON fallback rows) ride on a neutral key.
PAYLOADS = st.dictionaries(
    st.sampled_from(["cb_id", "topic", "src_ts"]), _SCALARS, max_size=3
).flatmap(
    lambda base: st.one_of(
        st.just(base),
        st.fixed_dictionaries(
            {"odd key": st.lists(st.integers(), max_size=2)}
        ).map(lambda extra: {**base, **extra}),
    )
)


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    single_pid = draw(st.booleans())
    events = []
    ts = 0
    for _ in range(n):
        ts += draw(st.integers(min_value=0, max_value=50))
        pid = 7 if single_pid else draw(st.integers(min_value=1, max_value=3))
        events.append(
            TraceEvent(ts, pid, draw(PROBES), draw(PAYLOADS))
        )
    return Trace(
        ros_events=events,
        pid_map={1: "a", 2: None, 3: "c", 7: "solo"},
        start_ts=0,
        stop_ts=ts + 1,
    )


def _rows_from_fastpath(reader, order):
    """Reassemble walk rows from the raw fastpath columns -- an
    independent re-derivation the generator must match exactly."""
    from repro.core.index import (
        CODE_CB_START,
        CODE_TAKE_TYPE_ERASED,
        CODE_TIMER_CALL,
    )

    kind, cols = reader.walk_fastpath()
    out = []
    if kind == 2:
        (
            ts_col, pid_col, probe_col, shape_col, vidx_col,
            codes, start_types, shapes, json_payload,
        ) = cols
        n_shapes = len(shapes)
        for i in range(len(ts_col)):
            string_id = probe_col[i]
            code = codes[string_id]
            if CODE_TIMER_CALL <= code <= CODE_TAKE_TYPE_ERASED:
                sid = shape_col[i]
                if sid < n_shapes:
                    aux = shapes[sid].rows()[vidx_col[i]]
                elif sid == SHAPE_JSON:
                    aux = json_payload(vidx_col[i])
                else:
                    aux = {}
            elif code == CODE_CB_START:
                aux = start_types[string_id]
            else:
                aux = None
            out.append((ts_col[i], order, i, pid_col[i], code, aux))
        return out
    (
        ts_col, pid_col, probe_col, data_col,
        codes, start_types, _payload_cache, payload,
    ) = cols
    for i in range(len(ts_col)):
        string_id = probe_col[i]
        code = codes[string_id]
        if CODE_TIMER_CALL <= code <= CODE_TAKE_TYPE_ERASED:
            aux = payload(data_col[i])
        elif code == CODE_CB_START:
            aux = start_types[string_id]
        else:
            aux = None
        out.append((ts_col[i], order, i, pid_col[i], code, aux))
    return out


class TestWalkFastpathProperties:
    @given(trace=traces())
    @settings(max_examples=60, deadline=None)
    def test_fastpath_reassembles_to_walk_rows(self, trace):
        reference = list(InMemorySegment(trace).walk_rows(0))
        for version in (1, 2, 3):
            reader = SegmentReader(
                encode_trace(trace, format_version=version)
            )
            assert list(reader.walk_rows(0)) == reference
            assert _rows_from_fastpath(reader, 0) == reference

    @given(trace=traces())
    @settings(max_examples=30, deadline=None)
    def test_store_index_ignores_numpy_availability(self, trace, ):
        def build(version):
            return StoreTraceIndex(
                [SegmentReader(encode_trace(trace, format_version=version))]
            )

        saved_np, saved_floor = npcompat.np, npcompat.MIN_VECTOR_ROWS
        try:
            npcompat.MIN_VECTOR_ROWS = 1  # force vector path when numpy
            vectored = {v: build(v) for v in (2, 3)}
            npcompat.np = None  # scalar path
            scalar = {v: build(v) for v in (2, 3)}
        finally:
            npcompat.np, npcompat.MIN_VECTOR_ROWS = saved_np, saved_floor
        for version in (2, 3):
            a, b = vectored[version], scalar[version]
            assert a.pids() == b.pids()
            for pid in a.pids():
                assert a.walk_for_pid(pid) == b.walk_for_pid(pid)
            assert a.writes == b.writes
            assert a.writer_cb == b.writer_cb
            assert a.take_responses == b.take_responses
            assert a.dispatch_after == b.dispatch_after


class TestNoNumpySynthesis:
    def test_scenario_synthesis_matches_without_numpy(self, syn_trace, tmp_path):
        directory = str(tmp_path / "s")
        os.makedirs(directory)
        write_segment(
            syn_trace, os.path.join(directory, f"run000{SEGMENT_SUFFIX}")
        )
        expected = synthesize_from_trace(syn_trace)
        saved = npcompat.np
        try:
            npcompat.np = None
            degraded = synthesize_from_store(TraceStore(directory), jobs=1)
        finally:
            npcompat.np = saved
        vectored = synthesize_from_store(TraceStore(directory), jobs=1)
        assert dag_to_json(degraded) == dag_to_json(expected)
        assert dag_to_json(vectored) == dag_to_json(expected)

    def test_exec_time_vector_floor_forced(self, syn_trace):
        """Every Alg. 2 window answered by the vectorized integral must
        equal the scalar fold on a real scenario's sched stream."""
        from repro.core.exec_time import SchedIndex

        index = SchedIndex(syn_trace.sched_events)
        saved = npcompat.MIN_VECTOR_ROWS
        windows = []
        for pid in index.pids()[:6]:
            times, _flags = index._buckets[pid]
            if len(times) < 2:
                continue
            windows.append((times[0], times[-1], pid))
            mid = len(times) // 2
            windows.append((times[mid] - 1, times[mid] + 1, pid))
        try:
            npcompat.MIN_VECTOR_ROWS = 10 ** 9  # scalar everywhere
            scalar = [index.exec_time(*w) for w in windows]
            npcompat.MIN_VECTOR_ROWS = 0  # vector everywhere
            vector = [
                SchedIndex(syn_trace.sched_events).exec_time(*w)
                for w in windows
            ]
        finally:
            npcompat.MIN_VECTOR_ROWS = saved
        assert scalar == vector

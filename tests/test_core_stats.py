"""Unit + property tests for statistics and prefix evolution."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ExecStats, estimate_period, prefix_stats, utilization
from repro.sim import MSEC


class TestExecStats:
    def test_basic(self):
        stats = ExecStats.from_samples([MSEC, 3 * MSEC, 2 * MSEC])
        assert stats.count == 3
        assert stats.mbcet == MSEC
        assert stats.mwcet == 3 * MSEC
        assert stats.macet == pytest.approx(2 * MSEC)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ExecStats.from_samples([])

    def test_ms_conversion(self):
        stats = ExecStats.from_samples([2 * MSEC]).ms()
        assert stats.mbcet == pytest.approx(2.0)

    def test_str_rendering(self):
        text = str(ExecStats.from_samples([MSEC, 2 * MSEC]))
        assert "ms" in text and "n=2" in text

    def test_zero_sentinel(self):
        assert ExecStats.ZERO.count == 0
        assert ExecStats.ZERO.mwcet == 0

    @given(st.lists(st.integers(min_value=0, max_value=10**9), min_size=1, max_size=100))
    @settings(max_examples=100)
    def test_ordering_invariant(self, samples):
        stats = ExecStats.from_samples(samples)
        assert stats.mbcet <= stats.macet <= stats.mwcet


class TestPeriodEstimation:
    def test_exact_period(self):
        assert estimate_period([0, 100, 200, 300]) == 100

    def test_median_robust_to_outlier(self):
        # One delayed invocation does not skew the estimate.
        assert estimate_period([0, 100, 200, 390, 400, 500]) == 100

    def test_none_for_short_series(self):
        assert estimate_period([]) is None
        assert estimate_period([5]) is None

    def test_unsorted_input(self):
        assert estimate_period([300, 100, 0, 200]) == 100


class TestUtilization:
    def test_basic(self):
        stats = ExecStats.from_samples([27 * MSEC])
        assert utilization(stats, 100 * MSEC) == pytest.approx(0.27)

    def test_none_without_period(self):
        stats = ExecStats.from_samples([MSEC])
        assert utilization(stats, None) is None
        assert utilization(stats, 0) is None


class TestPrefixStats:
    def test_growing_window(self):
        series = prefix_stats([[10], [30], [20]])
        assert [s.mwcet for s in series] == [10, 30, 30]
        assert [s.mbcet for s in series] == [10, 10, 10]
        assert [s.count for s in series] == [1, 2, 3]

    def test_empty_runs_carry_previous(self):
        series = prefix_stats([[5], [], [7]])
        assert [s.mwcet for s in series] == [5, 5, 7]

    def test_all_empty(self):
        series = prefix_stats([[], []])
        assert all(s.count == 0 for s in series)

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=10**6), max_size=20),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=100)
    def test_monotonicity_properties(self, per_run):
        """The Fig. 4 invariants for arbitrary sample histories."""
        series = prefix_stats(per_run)
        mwcets = [s.mwcet for s in series if s.count]
        assert all(b >= a for a, b in zip(mwcets, mwcets[1:]))
        mbcets = [s.mbcet for s in series if s.count]
        assert all(b <= a for a, b in zip(mbcets, mbcets[1:]))
        counts = [s.count for s in series]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

"""Integration tests for the ROS2 middleware substrate: pub/sub, timers,
services, clients, and message synchronization."""

import pytest

from repro.sim import Compute, MSEC, SEC
from repro.ros2 import ExternalPublisher, Msg, Node
from repro.world import World


def make_world(**kwargs):
    kwargs.setdefault("num_cpus", 2)
    kwargs.setdefault("seed", 42)
    return World(**kwargs)


class TestTimerAndPubSub:
    def test_timer_fires_periodically(self):
        world = make_world()
        node = Node(world, "ticker")
        fired = []

        def cb(api, msg):
            fired.append(api.now)
            yield api.compute(MSEC)

        node.create_timer(100 * MSEC, cb, label="T1")
        world.launch()
        world.run(for_ns=1 * SEC)
        # Ticks at 0, 100ms, ..., 1000ms inclusive -> 11 invocations.
        assert len(fired) == 11
        # Invocations are roughly periodic.
        gaps = [b - a for a, b in zip(fired, fired[1:])]
        assert all(g == 100 * MSEC for g in gaps)

    def test_pub_sub_delivery(self):
        world = make_world()
        publisher_node = Node(world, "talker")
        subscriber_node = Node(world, "listener")
        pub = publisher_node.create_publisher("/chatter")
        received = []

        def timer_cb(api, msg):
            yield api.compute(MSEC)
            api.publish(pub, Msg(stamp=api.now, data="hello"))

        def sub_cb(api, msg):
            received.append((api.now, msg.data))
            yield api.compute(MSEC)

        publisher_node.create_timer(100 * MSEC, timer_cb)
        subscriber_node.create_subscription("/chatter", sub_cb)
        world.launch()
        world.run(for_ns=1 * SEC)
        assert len(received) == 10
        assert all(data == "hello" for _, data in received)

    def test_subscriber_runs_after_dds_latency(self):
        world = make_world(dds_latency_ns=5 * MSEC)
        talker = Node(world, "talker")
        listener = Node(world, "listener")
        pub = talker.create_publisher("/x")
        got = []

        def timer_cb(api, msg):
            api.publish(pub, Msg(stamp=api.now))
            return None

        listener.create_subscription("/x", lambda api, msg: got.append(api.now))
        talker.create_timer(100 * MSEC, timer_cb)
        world.launch()
        world.run(for_ns=250 * MSEC)
        assert got and got[0] >= 5 * MSEC

    def test_fanout_to_multiple_subscribers(self):
        world = make_world()
        talker = Node(world, "talker")
        pub = talker.create_publisher("/clp3")
        talker.create_timer(100 * MSEC, lambda api, msg: api.publish(pub) and None)
        seen = {"a": 0, "b": 0}
        node_a = Node(world, "a")
        node_b = Node(world, "b")
        node_a.create_subscription("/clp3", lambda api, msg: seen.__setitem__("a", seen["a"] + 1))
        node_b.create_subscription("/clp3", lambda api, msg: seen.__setitem__("b", seen["b"] + 1))
        world.launch()
        world.run(for_ns=SEC)
        assert seen["a"] == seen["b"] == 10


class TestServices:
    def test_service_round_trip(self):
        world = make_world()
        server = Node(world, "server")
        caller = Node(world, "caller")
        responses = []

        def handler(api, request):
            yield api.compute(2 * MSEC)
            return request * 2

        server.create_service("/double", handler, label="SV")
        client = caller.create_client(
            "/double", lambda api, data: responses.append(data), label="CL"
        )
        caller.create_timer(100 * MSEC, lambda api, msg: api.call(client, 21) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert responses
        assert all(r == 42 for r in responses)

    def test_response_broadcast_dispatches_only_caller(self):
        """Two clients of one service: the response reaches both nodes but
        only the caller's client callback runs."""
        world = make_world()
        server = Node(world, "server")
        n1 = Node(world, "caller1")
        n2 = Node(world, "caller2")

        def handler(api, request):
            return request

        server.create_service("/svc", handler)
        hits = {"c1": 0, "c2": 0}
        c1 = n1.create_client("/svc", lambda api, d: hits.__setitem__("c1", hits["c1"] + 1))
        c2 = n2.create_client("/svc", lambda api, d: hits.__setitem__("c2", hits["c2"] + 1))
        # Only caller1 invokes the service.
        n1.create_timer(100 * MSEC, lambda api, msg: api.call(c1, 1) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert hits["c1"] == 10
        assert hits["c2"] == 0
        # ... although caller2's reader did receive the broadcast responses.
        assert c2.reader.received == 10

    def test_service_called_from_two_clients(self):
        world = make_world()
        server = Node(world, "server")
        n1 = Node(world, "caller1")
        n2 = Node(world, "caller2")
        got = {"c1": [], "c2": []}

        def handler(api, request):
            return request + 1

        server.create_service("/inc", handler)
        c1 = n1.create_client("/inc", lambda api, d: got["c1"].append(d))
        c2 = n2.create_client("/inc", lambda api, d: got["c2"].append(d))
        n1.create_timer(100 * MSEC, lambda api, msg: api.call(c1, 10) and None)
        n2.create_timer(150 * MSEC, lambda api, msg: api.call(c2, 20) and None)
        world.launch()
        world.run(for_ns=SEC)
        assert got["c1"] and set(got["c1"]) == {11}
        assert got["c2"] and set(got["c2"]) == {21}


class TestSynchronizer:
    def test_exact_sync_joins_matching_stamps(self):
        world = make_world()
        fusion = Node(world, "fusion")
        s1 = fusion.create_subscription("/f1")
        s2 = fusion.create_subscription("/f2")
        fused = []

        def sync_cb(api, msgs):
            fused.append(tuple(m.stamp for m in msgs))
            yield api.compute(MSEC)

        fusion.create_synchronizer([s1, s2], sync_cb)
        src = Node(world, "src")
        p1 = src.create_publisher("/f1")
        p2 = src.create_publisher("/f2")

        def timer_cb(api, msg):
            stamp = api.now
            api.publish(p1, Msg(stamp=stamp, data="a"))
            api.publish(p2, Msg(stamp=stamp, data="b"))
            return None

        src.create_timer(100 * MSEC, timer_cb)
        world.launch()
        world.run(for_ns=SEC)
        assert len(fused) == 10
        assert all(a == b for a, b in fused)

    def test_approximate_sync_within_slop(self):
        world = make_world()
        fusion = Node(world, "fusion")
        s1 = fusion.create_subscription("/a")
        s2 = fusion.create_subscription("/b")
        fused = []
        fusion.create_synchronizer([s1, s2], lambda api, msgs: fused.append(msgs), slop_ns=50 * MSEC)
        ExternalPublisher(world, "/a", period_ns=100 * MSEC, phase_ns=0).start()
        ExternalPublisher(world, "/b", period_ns=100 * MSEC, phase_ns=7 * MSEC).start()
        world.launch()
        world.run(for_ns=SEC)
        assert len(fused) >= 8

    def test_sync_callback_runs_in_last_arriving_subscriber(self):
        world = make_world(dds_latency_ns=0)
        fusion = Node(world, "fusion")
        s_early = fusion.create_subscription("/early")
        s_late = fusion.create_subscription("/late")
        winners = []

        def sync_cb(api, msgs):
            return None

        sync = fusion.create_synchronizer([s_early, s_late], sync_cb)
        original_add = sync.add

        def spying_add(sub, msg, api):
            before = sync.matches
            result = yield from original_add(sub, msg, api)
            if sync.matches > before:
                winners.append(sub.cb_id)
            return result

        sync.add = spying_add
        src = Node(world, "src")
        pe = src.create_publisher("/early")
        pl = src.create_publisher("/late")

        def timer_cb(api, msg):
            stamp = api.now
            api.publish(pe, Msg(stamp=stamp))
            return None

        def timer_cb_late(api, msg):
            # publish /late 20 ms after /early, with the matching stamp
            stamp = api.now - 20 * MSEC
            api.publish(pl, Msg(stamp=stamp))
            return None

        src.create_timer(100 * MSEC, timer_cb, phase_ns=0)
        src.create_timer(100 * MSEC, timer_cb_late, phase_ns=20 * MSEC)
        fusion.create_synchronizer  # no-op reference to appease linting
        sync.slop_ns = 0
        world.launch()
        world.run(for_ns=SEC)
        assert winners and all(w == s_late.cb_id for w in winners)


class TestExternalPublisher:
    def test_external_publisher_feeds_subscription(self):
        world = make_world()
        node = Node(world, "consumer")
        got = []
        node.create_subscription("/lidar", lambda api, msg: got.append(msg.stamp))
        ExternalPublisher(world, "/lidar", period_ns=100 * MSEC).start()
        world.launch()
        world.run(for_ns=SEC)
        assert len(got) == 10

    def test_jitter_bounds(self):
        world = make_world()
        pub = ExternalPublisher(world, "/x", period_ns=100 * MSEC, jitter_ns=10 * MSEC)
        stamps = []
        node = Node(world, "c")
        node.create_subscription("/x", lambda api, msg: stamps.append(msg.stamp))
        pub.start()
        world.launch()
        world.run(for_ns=2 * SEC)
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        assert all(90 * MSEC <= g <= 110 * MSEC for g in gaps)
        assert len(set(gaps)) > 1  # jitter actually applied

    def test_invalid_jitter_rejected(self):
        world = make_world()
        with pytest.raises(ValueError):
            ExternalPublisher(world, "/x", period_ns=10, jitter_ns=10)

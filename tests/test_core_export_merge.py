"""Unit tests for model export (DOT/JSON) and merging (multi-run,
multi-mode)."""

import json

import pytest

from repro.core import (
    DagVertex,
    MultiModeDag,
    TimingDag,
    dag_from_dict,
    dag_from_json,
    dag_to_dict,
    dag_to_json,
    format_edges,
    format_exec_table,
    merge_dags,
    to_dot,
)
from repro.sim import MSEC


def small_dag(exec_base=MSEC):
    dag = TimingDag()
    dag.add_vertex(
        DagVertex(
            key="a/t", node="a", cb_id="t", cb_type="timer",
            outtopics=["/x"], exec_times=[exec_base, 2 * exec_base],
            start_times=[0, 100 * MSEC],
        )
    )
    dag.add_vertex(
        DagVertex(
            key="b/s", node="b", cb_id="s", cb_type="subscriber",
            intopic="/x", exec_times=[3 * exec_base],
            start_times=[5 * MSEC],
        )
    )
    dag.add_edge("a/t", "b/s", topic="/x")
    return dag


class TestDotExport:
    def test_contains_vertices_and_edges(self):
        dot = to_dot(small_dag(), title="test")
        assert 'digraph "test"' in dot
        assert '"a/t"' in dot and '"b/s"' in dot
        assert '"a/t" -> "b/s"' in dot
        assert "/x" in dot

    def test_junction_rendered_as_diamond(self):
        dag = small_dag()
        dag.add_vertex(DagVertex(key="b/&", node="b", cb_id="b/&", cb_type="and_junction"))
        dot = to_dot(dag)
        assert "diamond" in dot

    def test_or_junction_annotated(self):
        dag = small_dag()
        dag.vertex("b/s").is_or_junction = True
        assert "(OR)" in to_dot(dag)


class TestJsonRoundTrip:
    def test_lossless(self):
        dag = small_dag()
        clone = dag_from_json(dag_to_json(dag))
        assert dag_to_dict(clone) == dag_to_dict(dag)

    def test_json_is_valid(self):
        parsed = json.loads(dag_to_json(small_dag(), indent=2))
        assert {"vertices", "edges"} == set(parsed)

    def test_round_trip_preserves_stats(self):
        clone = dag_from_dict(dag_to_dict(small_dag()))
        assert clone.vertex("a/t").exec_stats.mwcet == 2 * MSEC
        assert clone.vertex("a/t").period_ns == 100 * MSEC


class TestTables:
    def test_exec_table(self):
        text = format_exec_table(small_dag())
        assert "mWCET" in text and "a" in text

    def test_exec_table_with_names(self):
        text = format_exec_table(small_dag(), order=["a/t"], names={"a/t": "cb9"})
        assert "cb9" in text and "b/s" not in text

    def test_format_edges(self):
        assert "a/t --[/x]--> b/s" in format_edges(small_dag())


class TestMergeDags:
    def test_samples_concatenate(self):
        merged = merge_dags([small_dag(MSEC), small_dag(5 * MSEC)])
        stats = merged.vertex("a/t").exec_stats
        assert stats.count == 4
        assert stats.mbcet == MSEC
        assert stats.mwcet == 10 * MSEC

    def test_union_of_vertices(self):
        a = small_dag()
        b = small_dag()
        b.add_vertex(DagVertex(key="c/x", node="c", cb_id="x", cb_type="subscriber",
                               intopic="/x"))
        b.add_edge("a/t", "c/x", topic="/x")
        merged = merge_dags([a, b])
        assert merged.num_vertices == 3
        assert merged.num_edges == 2

    def test_or_flag_sticky(self):
        a = small_dag()
        b = small_dag()
        b.vertex("b/s").is_or_junction = True
        assert merge_dags([a, b]).vertex("b/s").is_or_junction
        assert merge_dags([b, a]).vertex("b/s").is_or_junction

    def test_type_conflict_rejected(self):
        a = small_dag()
        b = TimingDag()
        b.add_vertex(DagVertex(key="a/t", node="a", cb_id="t", cb_type="service"))
        with pytest.raises(ValueError):
            merge_dags([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_dags([])

    def test_inputs_not_mutated(self):
        a = small_dag()
        before = len(a.vertex("a/t").exec_times)
        merge_dags([a, small_dag()])
        assert len(a.vertex("a/t").exec_times) == before


class TestMultiMode:
    def test_modes_and_union(self):
        multi = MultiModeDag()
        multi.add_mode("city", small_dag(MSEC))
        multi.add_mode("highway", small_dag(4 * MSEC))
        assert multi.modes() == ["city", "highway"]
        assert multi.dag("city").vertex("a/t").exec_stats.mwcet == 2 * MSEC
        union = multi.union()
        assert union.vertex("a/t").exec_stats.mwcet == 8 * MSEC

    def test_duplicate_mode_rejected(self):
        multi = MultiModeDag()
        multi.add_mode("city", small_dag())
        with pytest.raises(ValueError):
            multi.add_mode("city", small_dag())

"""Unit tests for CallbackInstance / CallbackRecord / CBList."""

import pytest

from repro.core import CallbackInstance, CallbackRecord, CBList


def instance(cb_id="X", cb_type="subscriber", start=0, end=10, intopic="/t",
             outtopics=None, exec_time=7, sync=False):
    return CallbackInstance(
        cb_type=cb_type,
        start=start,
        end=end,
        cb_id=cb_id,
        intopic=intopic,
        outtopics=list(outtopics or []),
        is_sync_subscriber=sync,
        exec_time=exec_time,
    )


class TestInstance:
    def test_response_time(self):
        assert instance(start=5, end=30).response_time == 25

    def test_response_time_none_without_end(self):
        inst = CallbackInstance(cb_type="timer", start=5)
        assert inst.response_time is None


class TestCBListMatching:
    def test_same_id_merges(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(start=0, end=10, exec_time=7))
        cbl.add(instance(start=100, end=110, exec_time=8))
        assert len(cbl) == 1
        record = cbl.get("X")
        assert record.exec_times == [7, 8]
        assert record.start_times == [0, 100]

    def test_service_split_by_intopic(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(cb_type="service", intopic="/svRequest#A"))
        cbl.add(instance(cb_type="service", intopic="/svRequest#B"))
        assert len(cbl) == 2

    def test_non_service_not_split_by_intopic(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(intopic="/a"))
        cbl.add(instance(intopic="/a"))
        assert len(cbl) == 1

    def test_out_topics_union(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(outtopics=["/x"]))
        cbl.add(instance(outtopics=["/x", "/y"]))
        assert cbl.get("X").outtopics == ["/x", "/y"]

    def test_sync_flag_sticky(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(sync=False))
        cbl.add(instance(sync=True))
        cbl.add(instance(sync=False))
        assert cbl.get("X").is_sync_subscriber

    def test_instance_without_id_rejected(self):
        cbl = CBList(pid=3)
        with pytest.raises(ValueError):
            cbl.add(CallbackInstance(cb_type="timer", start=0))

    def test_get_unknown_raises(self):
        cbl = CBList(pid=3)
        with pytest.raises(KeyError):
            cbl.get("nope")

    def test_get_ambiguous_service_requires_intopic(self):
        cbl = CBList(pid=3, node="n")
        cbl.add(instance(cb_type="service", intopic="/r#A"))
        cbl.add(instance(cb_type="service", intopic="/r#B"))
        with pytest.raises(KeyError):
            cbl.get("X")
        assert cbl.get("X", intopic="/r#A").intopic == "/r#A"


class TestRecordMerging:
    def test_absorb_record(self):
        a = CallbackRecord(pid=1, node="n", cb_type="timer", cb_id="T",
                           exec_times=[1, 2], start_times=[0, 10],
                           outtopics=["/a"])
        b = CallbackRecord(pid=1, node="n", cb_type="timer", cb_id="T",
                           exec_times=[3], start_times=[20],
                           outtopics=["/b"])
        a.absorb_record(b)
        assert a.exec_times == [1, 2, 3]
        assert a.outtopics == ["/a", "/b"]
        assert a.invocations == 3

    def test_absorb_mismatched_key_rejected(self):
        a = CallbackRecord(pid=1, node="n", cb_type="timer", cb_id="T")
        b = CallbackRecord(pid=1, node="n", cb_type="timer", cb_id="U")
        with pytest.raises(ValueError):
            a.absorb_record(b)

    def test_service_key_includes_intopic(self):
        a = CallbackRecord(pid=1, node="n", cb_type="service", cb_id="S", intopic="/r#A")
        b = CallbackRecord(pid=1, node="n", cb_type="service", cb_id="S", intopic="/r#B")
        assert a.key != b.key

"""End-to-end tests: traced applications -> Alg. 1/2 -> timing DAG.

These tests validate the paper's central claims on small controlled
applications: chains are recovered from traces, services are split per
caller, synchronization produces AND junctions, and measured execution
times equal the designed (constant) loads even under preemption.
"""

import pytest

from repro.sim import Compute, Constant, MSEC, SEC, SchedPolicy
from repro.ros2 import Msg, Node
from repro.tracing import TracingSession
from repro.core import synthesize_from_trace
from repro.world import World


def run_traced(world, duration, warmup=MSEC):
    session = TracingSession(world)
    session.start_init()
    world.launch()
    world.run(for_ns=warmup)
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=duration)
    session.stop_runtime()
    return session.trace()


def constant_cb(duration):
    def cb(api, msg):
        yield api.compute(duration)

    return cb


class TestChainSynthesis:
    def build_chain_world(self, seed=1):
        """timer -> /a -> sub1 -> /b -> sub2 (three nodes)."""
        world = World(num_cpus=2, seed=seed)
        n1 = Node(world, "source")
        n2 = Node(world, "middle")
        n3 = Node(world, "sink")
        pa = n1.create_publisher("/a")
        pb = n2.create_publisher("/b")

        def timer_cb(api, msg):
            yield api.compute(2 * MSEC)
            api.publish(pa, Msg(stamp=api.now))

        def mid_cb(api, msg):
            yield api.compute(3 * MSEC)
            api.publish(pb, Msg(stamp=api.now))

        n1.create_timer(100 * MSEC, timer_cb, label="T1")
        n2.create_subscription("/a", mid_cb, label="S1")
        n3.create_subscription("/b", constant_cb(1 * MSEC), label="S2")
        return world, (n1, n2, n3)

    def test_chain_vertices_and_edges(self):
        world, nodes = self.build_chain_world()
        trace = run_traced(world, 5 * SEC)
        dag = synthesize_from_trace(trace)
        dag.validate()
        keys = {v.key for v in dag.vertices()}
        assert keys == {"source/T1", "middle/S1", "sink/S2"}
        assert dag.has_edge("source/T1", "middle/S1", "/a")
        assert dag.has_edge("middle/S1", "sink/S2", "/b")
        assert dag.num_edges == 2

    def test_callback_types(self):
        world, _ = self.build_chain_world()
        dag = synthesize_from_trace(run_traced(world, 5 * SEC))
        assert dag.vertex("source/T1").cb_type == "timer"
        assert dag.vertex("middle/S1").cb_type == "subscriber"

    def test_measured_exec_times_match_designed_constants(self):
        """The paper's validation: constant loads measured exactly."""
        world, _ = self.build_chain_world()
        dag = synthesize_from_trace(run_traced(world, 5 * SEC))
        assert set(dag.vertex("source/T1").exec_times) == {2 * MSEC}
        assert set(dag.vertex("middle/S1").exec_times) == {3 * MSEC}
        assert set(dag.vertex("sink/S2").exec_times) == {1 * MSEC}

    def test_timer_period_estimated(self):
        world, _ = self.build_chain_world()
        dag = synthesize_from_trace(run_traced(world, 5 * SEC))
        period = dag.vertex("source/T1").period_ns
        assert period == pytest.approx(100 * MSEC, rel=0.02)

    def test_exec_time_correct_under_preemption(self):
        """A higher-priority interferer preempts the subscriber mid-CB;
        Alg. 2 must still report the designed constant."""
        world = World(num_cpus=1, seed=2)
        app = Node(world, "app", priority=0)
        rival = Node(world, "rival", priority=10)
        pub = app.create_publisher("/x")

        def heavy(api, msg):
            yield api.compute(20 * MSEC)
            api.publish(pub, Msg(stamp=api.now))

        app.create_timer(100 * MSEC, heavy, label="HEAVY")
        rival.create_timer(7 * MSEC, constant_cb(2 * MSEC), label="RIVAL")
        trace = run_traced(world, 3 * SEC)
        dag = synthesize_from_trace(trace)
        samples = dag.vertex("app/HEAVY").exec_times
        assert samples
        assert set(samples) == {20 * MSEC}
        # And wall-clock response times are strictly larger (preempted).
        responses = dag.vertex("app/HEAVY").response_times
        assert max(responses) > 20 * MSEC


class TestServiceSynthesis:
    def build_service_world(self, seed=3):
        """Two callers of one service; responses handled by CL_A / CL_B."""
        world = World(num_cpus=2, seed=seed)
        server = Node(world, "server")
        node_a = Node(world, "node_a")
        node_b = Node(world, "node_b")

        def handler(api, request):
            yield api.compute(2 * MSEC)
            return request

        server.create_service("/sv", handler, label="SV")
        ca = node_a.create_client("/sv", constant_cb(1 * MSEC), label="CL_A")
        cb = node_b.create_client("/sv", constant_cb(1 * MSEC), label="CL_B")

        def call_a(api, msg):
            yield api.compute(MSEC)
            api.call(ca, "a")

        def call_b(api, msg):
            yield api.compute(MSEC)
            api.call(cb, "b")

        # Phase > warmup so the first request is written after the runtime
        # tracers attach (otherwise FindCaller sees a take_request whose
        # matching dds_write predates the trace).
        node_a.create_timer(100 * MSEC, call_a, label="TA", phase_ns=10 * MSEC)
        node_b.create_timer(130 * MSEC, call_b, label="TB", phase_ns=10 * MSEC)
        return world

    def test_service_split_per_caller(self):
        dag = synthesize_from_trace(run_traced(self.build_service_world(), 5 * SEC))
        dag.validate()
        sv_vertices = dag.find_vertices(cb_id="SV")
        assert len(sv_vertices) == 2  # one per caller

    def test_chains_do_not_cross(self):
        """TA's chain must reach CL_A but never CL_B (the paper's
        motivating example for per-caller replication)."""
        dag = synthesize_from_trace(run_traced(self.build_service_world(), 5 * SEC))
        reachable = set()
        frontier = ["node_a/TA"]
        while frontier:
            key = frontier.pop()
            for nxt in dag.successors(key):
                if nxt.key not in reachable:
                    reachable.add(nxt.key)
                    frontier.append(nxt.key)
        assert "node_a/CL_A" in reachable
        assert "node_b/CL_B" not in reachable

    def test_service_edges_qualified_by_caller(self):
        dag = synthesize_from_trace(run_traced(self.build_service_world(), 5 * SEC))
        sv_for_a = [
            v for v in dag.find_vertices(cb_id="SV") if "TA" in (v.intopic or "")
        ]
        assert len(sv_for_a) == 1
        preds = dag.predecessors(sv_for_a[0].key)
        assert [p.cb_id for p in preds] == ["TA"]
        succs = dag.successors(sv_for_a[0].key)
        assert [s.cb_id for s in succs] == ["CL_A"]

    def test_client_callback_exec_times(self):
        dag = synthesize_from_trace(run_traced(self.build_service_world(), 5 * SEC))
        cl = dag.find_vertices(cb_id="CL_A")[0]
        assert set(cl.exec_times) == {1 * MSEC}


class TestSyncSynthesis:
    def build_sync_world(self, seed=4):
        world = World(num_cpus=2, seed=seed)
        src = Node(world, "drivers")
        fusion = Node(world, "fusion")
        sink = Node(world, "consumer")
        p1 = src.create_publisher("/f1")
        p2 = src.create_publisher("/f2")

        def feed(api, msg):
            stamp = api.now
            api.publish(p1, Msg(stamp=stamp))
            api.publish(p2, Msg(stamp=stamp))
            return None

        src.create_timer(100 * MSEC, feed, label="FEED")
        s1 = fusion.create_subscription("/f1", label="MS1")
        s2 = fusion.create_subscription("/f2", label="MS2")
        out = fusion.create_publisher("/fused")

        def fuse(api, msgs):
            yield api.compute(2 * MSEC)
            api.publish(out, Msg(stamp=api.now))

        fusion.create_synchronizer([s1, s2], fuse, per_input_work=Constant(MSEC))
        sink.create_subscription("/fused", constant_cb(MSEC), label="SINK")
        return world

    def test_and_junction_created(self):
        dag = synthesize_from_trace(run_traced(self.build_sync_world(), 5 * SEC))
        dag.validate()
        junctions = [v for v in dag.vertices() if v.is_and_junction]
        assert len(junctions) == 1
        junction = junctions[0]
        preds = {p.cb_id for p in dag.predecessors(junction.key)}
        assert preds == {"MS1", "MS2"}
        succs = {s.cb_id for s in dag.successors(junction.key)}
        assert succs == {"SINK"}

    def test_sync_members_marked(self):
        dag = synthesize_from_trace(run_traced(self.build_sync_world(), 5 * SEC))
        assert dag.vertex("fusion/MS1").is_sync_member
        assert dag.vertex("fusion/MS2").is_sync_member

    def test_no_direct_edge_from_members_to_consumer(self):
        dag = synthesize_from_trace(run_traced(self.build_sync_world(), 5 * SEC))
        assert not dag.has_edge("fusion/MS1", "consumer/SINK")
        assert not dag.has_edge("fusion/MS2", "consumer/SINK")

    def test_junction_has_zero_exec_time(self):
        dag = synthesize_from_trace(run_traced(self.build_sync_world(), 5 * SEC))
        junction = [v for v in dag.vertices() if v.is_and_junction][0]
        assert junction.exec_stats.mwcet == 0


class TestOrJunction:
    def test_two_publishers_one_subscriber(self):
        world = World(num_cpus=2, seed=5)
        a = Node(world, "a")
        b = Node(world, "b")
        c = Node(world, "c")
        pa = a.create_publisher("/shared")
        pb = b.create_publisher("/shared")
        a.create_timer(100 * MSEC, lambda api, msg: api.publish(pa) and None, label="TA")
        b.create_timer(150 * MSEC, lambda api, msg: api.publish(pb) and None, label="TB")
        c.create_subscription("/shared", constant_cb(MSEC), label="SC")
        dag = synthesize_from_trace(run_traced(world, 5 * SEC))
        vertex = dag.vertex("c/SC")
        assert vertex.is_or_junction
        assert {p.cb_id for p in dag.predecessors("c/SC")} == {"TA", "TB"}

    def test_single_publisher_not_or(self):
        world = World(num_cpus=2, seed=6)
        a = Node(world, "a")
        c = Node(world, "c")
        pa = a.create_publisher("/solo")
        a.create_timer(100 * MSEC, lambda api, msg: api.publish(pa) and None, label="TA")
        c.create_subscription("/solo", constant_cb(MSEC), label="SC")
        dag = synthesize_from_trace(run_traced(world, 3 * SEC))
        assert not dag.vertex("c/SC").is_or_junction


class TestPidFiltering:
    def test_pids_argument_restricts_model(self):
        world = World(num_cpus=2, seed=7)
        keep = Node(world, "keep")
        drop = Node(world, "drop")
        keep.create_timer(100 * MSEC, constant_cb(MSEC), label="K")
        drop.create_timer(100 * MSEC, constant_cb(MSEC), label="D")
        trace = run_traced(world, 3 * SEC)
        dag = synthesize_from_trace(trace, pids=[keep.pid])
        assert {v.key for v in dag.vertices()} == {"keep/K"}

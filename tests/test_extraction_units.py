"""Unit tests for Alg. 1 on hand-built event streams.

These tests exercise the extraction logic without a simulator run:
partial instances at trace boundaries, non-dispatched client callbacks,
caller/client resolution, sync marking, and the per-caller service
splitting.
"""

import pytest

from repro.core import CBList, EventIndex, SchedIndex, cat, extract_callbacks
from repro.tracing import (
    P2_TIMER_START,
    P3_TIMER_CALL,
    P4_TIMER_END,
    P5_SUB_START,
    P6_TAKE,
    P7_SYNC_OP,
    P8_SUB_END,
    P9_SERVICE_START,
    P10_TAKE_REQUEST,
    P11_SERVICE_END,
    P12_CLIENT_START,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P15_CLIENT_END,
    P16_DDS_WRITE,
    TraceEvent,
)

EMPTY_SCHED = SchedIndex([])


def ev(ts, pid, probe, **data):
    return TraceEvent(ts=ts, pid=pid, probe=probe, data=data)


def timer_instance(ts, pid, cb_id, duration=10, writes=()):
    events = [
        ev(ts, pid, P2_TIMER_START),
        ev(ts + 1, pid, P3_TIMER_CALL, cb_id=cb_id),
    ]
    t = ts + 2
    for topic, kind, src_ts in writes:
        events.append(ev(t, pid, P16_DDS_WRITE, topic=topic, kind=kind, src_ts=src_ts))
        t += 1
    events.append(ev(ts + duration, pid, P4_TIMER_END))
    return events


class TestTimerExtraction:
    def test_single_timer(self):
        events = timer_instance(100, 1, "T1") + timer_instance(200, 1, "T1")
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert len(cblist) == 1
        record = cblist.get("T1")
        assert record.cb_type == "timer"
        assert record.start_times == [100, 200]
        assert record.exec_times == [10, 10]

    def test_two_timers_distinguished(self):
        events = timer_instance(100, 1, "T1") + timer_instance(200, 1, "T2")
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert len(cblist) == 2

    def test_published_topics_recorded(self):
        events = timer_instance(100, 1, "T1", writes=[("/a", "data", 105), ("/b", "data", 106)])
        record = extract_callbacks(1, events, EMPTY_SCHED).get("T1")
        assert record.outtopics == ["/a", "/b"]


class TestBoundaryArtifacts:
    def test_end_without_start_ignored(self):
        events = [ev(50, 1, P4_TIMER_END)] + timer_instance(100, 1, "T1")
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert len(cblist) == 1
        assert cblist.get("T1").start_times == [100]

    def test_start_without_end_dropped(self):
        events = timer_instance(100, 1, "T1") + [
            ev(300, 1, P2_TIMER_START),
            ev(301, 1, P3_TIMER_CALL, cb_id="T1"),
        ]
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert cblist.get("T1").start_times == [100]

    def test_instance_without_id_dropped(self):
        events = [ev(100, 1, P2_TIMER_START), ev(110, 1, P4_TIMER_END)]
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert len(cblist) == 0

    def test_events_of_other_pids_ignored(self):
        events = timer_instance(100, 1, "T1") + timer_instance(100, 2, "T9")
        cblist = extract_callbacks(1, events, EMPTY_SCHED)
        assert len(cblist) == 1
        assert cblist.get("T1").cb_id == "T1"


class TestSubscriberExtraction:
    def test_take_sets_id_and_topic(self):
        events = [
            ev(100, 1, P5_SUB_START),
            ev(101, 1, P6_TAKE, cb_id="SC", topic="/data", src_ts=90),
            ev(120, 1, P8_SUB_END),
        ]
        record = extract_callbacks(1, events, EMPTY_SCHED).get("SC")
        assert record.cb_type == "subscriber"
        assert record.intopic == "/data"

    def test_sync_flag_set_by_p7(self):
        events = [
            ev(100, 1, P5_SUB_START),
            ev(101, 1, P6_TAKE, cb_id="SC", topic="/data", src_ts=90),
            ev(102, 1, P7_SYNC_OP, cb_id="SC"),
            ev(120, 1, P8_SUB_END),
        ]
        assert extract_callbacks(1, events, EMPTY_SCHED).get("SC").is_sync_subscriber


class TestClientDispatchGating:
    def _client_events(self, pid, dispatch):
        return [
            ev(100, pid, P12_CLIENT_START),
            ev(101, pid, P13_TAKE_RESPONSE, cb_id="CL", topic="/svReply",
               service="/sv", src_ts=90),
            ev(102, pid, P14_TAKE_TYPE_ERASED, will_dispatch=int(dispatch)),
            ev(120, pid, P15_CLIENT_END),
        ]

    def test_dispatched_client_recorded(self):
        cblist = extract_callbacks(1, self._client_events(1, True), EMPTY_SCHED)
        record = cblist.get("CL")
        assert record.cb_type == "client"
        assert record.intopic == cat("/svReply", "CL")

    def test_non_dispatched_client_discarded(self):
        cblist = extract_callbacks(1, self._client_events(1, False), EMPTY_SCHED)
        assert len(cblist) == 0


def service_round_trip_events(caller_pid=1, server_pid=2, client_pid=None,
                              caller_id="T1", client_id="CL"):
    """A full timer -> request -> service -> response -> client journey."""
    client_pid = caller_pid if client_pid is None else client_pid
    return [
        # Caller timer writes the request (srcTS 110).
        ev(100, caller_pid, P2_TIMER_START),
        ev(101, caller_pid, P3_TIMER_CALL, cb_id=caller_id),
        ev(110, caller_pid, P16_DDS_WRITE, topic="/svRequest", kind="request", src_ts=110),
        ev(115, caller_pid, P4_TIMER_END),
        # Server takes the request, writes the response (srcTS 230).
        ev(200, server_pid, P9_SERVICE_START),
        ev(201, server_pid, P10_TAKE_REQUEST, cb_id="SV", topic="/svRequest",
           service="/sv", src_ts=110),
        ev(230, server_pid, P16_DDS_WRITE, topic="/svReply", kind="response", src_ts=230),
        ev(235, server_pid, P11_SERVICE_END),
        # Client takes the response and dispatches.
        ev(300, client_pid, P12_CLIENT_START),
        ev(301, client_pid, P13_TAKE_RESPONSE, cb_id=client_id, topic="/svReply",
           service="/sv", src_ts=230),
        ev(302, client_pid, P14_TAKE_TYPE_ERASED, will_dispatch=1),
        ev(320, client_pid, P15_CLIENT_END),
    ]


class TestServiceResolution:
    def test_find_caller_qualifies_service_intopic(self):
        events = service_round_trip_events()
        cblist = extract_callbacks(2, events, EMPTY_SCHED)
        record = cblist.get("SV")
        assert record.intopic == cat("/svRequest", "T1")

    def test_find_client_qualifies_response_topic(self):
        events = service_round_trip_events()
        record = extract_callbacks(2, events, EMPTY_SCHED).get("SV")
        assert record.outtopics == [cat("/svReply", "CL")]

    def test_caller_out_topic_qualified_by_own_id(self):
        events = service_round_trip_events()
        record = extract_callbacks(1, events, EMPTY_SCHED).get("T1")
        assert record.outtopics == [cat("/svRequest", "T1")]

    def test_two_callers_two_service_records(self):
        first = service_round_trip_events(caller_pid=1, server_pid=2,
                                          caller_id="A", client_id="CA")
        second = [
            TraceEvent(ts=e.ts + 1000, pid=e.pid + 10 if e.pid != 2 else 2,
                       probe=e.probe, data=dict(e.data))
            for e in service_round_trip_events(caller_pid=1, server_pid=2,
                                               caller_id="B", client_id="CB")
        ]
        # Fix srcTS keys shifted by the timestamp translation.
        second = [
            TraceEvent(ts=e.ts, pid=e.pid, probe=e.probe,
                       data={**e.data, "src_ts": e.data["src_ts"] + 1000}
                       if "src_ts" in e.data else dict(e.data))
            for e in second
        ]
        events = first + second
        cblist = extract_callbacks(2, events, EMPTY_SCHED)
        records = [r for r in cblist if r.cb_id == "SV"]
        assert len(records) == 2
        intopics = {r.intopic for r in records}
        assert intopics == {cat("/svRequest", "A"), cat("/svRequest", "B")}

    def test_unknown_caller_yields_question_mark(self):
        # take_request without any matching dds_write in the trace.
        events = [
            ev(200, 2, P9_SERVICE_START),
            ev(201, 2, P10_TAKE_REQUEST, cb_id="SV", topic="/svRequest",
               service="/sv", src_ts=42),
            ev(230, 2, P11_SERVICE_END),
        ]
        record = extract_callbacks(2, events, EMPTY_SCHED).get("SV")
        assert record.intopic == cat("/svRequest", None)


class TestEventIndex:
    def test_find_caller_same_key_collision_fifo(self):
        """Two same-(topic, srcTS) requests resolve in write order."""
        events = []
        for pid, caller in ((1, "A"), (3, "B")):
            events += [
                ev(100, pid, P2_TIMER_START),
                ev(101, pid, P3_TIMER_CALL, cb_id=caller),
                ev(110, pid, P16_DDS_WRITE, topic="/svRequest", kind="request", src_ts=110),
                ev(115, pid, P4_TIMER_END),
            ]
        index = EventIndex(events)
        take = ev(200, 2, P10_TAKE_REQUEST, cb_id="SV", topic="/svRequest",
                  service="/sv", src_ts=110)
        assert index.find_caller(take) == "A"
        assert index.find_caller(take) == "B"

    def test_find_client_skips_non_dispatching(self):
        events = [
            # Response broadcast to two client nodes; only pid 5 dispatches.
            ev(300, 4, P13_TAKE_RESPONSE, cb_id="CL_X", topic="/svReply", src_ts=230),
            ev(301, 4, P14_TAKE_TYPE_ERASED, will_dispatch=0),
            ev(300, 5, P13_TAKE_RESPONSE, cb_id="CL_Y", topic="/svReply", src_ts=230),
            ev(301, 5, P14_TAKE_TYPE_ERASED, will_dispatch=1),
        ]
        index = EventIndex(events)
        write = ev(230, 2, P16_DDS_WRITE, topic="/svReply", kind="response", src_ts=230)
        assert index.find_client(write) == "CL_Y"

"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import MSEC, SEC, SimKernel, USEC


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(30, lambda: fired.append(30))
        kernel.schedule_at(10, lambda: fired.append(10))
        kernel.schedule_at(20, lambda: fired.append(20))
        kernel.run()
        assert fired == [10, 20, 30]

    def test_same_time_events_fifo(self):
        kernel = SimKernel()
        fired = []
        for tag in range(5):
            kernel.schedule_at(100, lambda t=tag: fired.append(t))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(100, lambda: fired.append("low"), priority=5)
        kernel.schedule_at(100, lambda: fired.append("high"), priority=0)
        kernel.run()
        assert fired == ["high", "low"]

    def test_schedule_after_relative(self):
        kernel = SimKernel()
        marks = []
        kernel.schedule_at(10, lambda: kernel.schedule_after(5, lambda: marks.append(kernel.now)))
        kernel.run()
        assert marks == [15]

    def test_schedule_in_past_rejected(self):
        kernel = SimKernel()
        kernel.schedule_at(10, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        kernel = SimKernel()
        with pytest.raises(ValueError):
            kernel.schedule_after(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = SimKernel()
        fired = []
        handle = kernel.schedule_at(10, lambda: fired.append(1))
        handle.cancel()
        kernel.run()
        assert fired == []
        assert not handle.pending

    def test_cancel_is_idempotent(self):
        kernel = SimKernel()
        handle = kernel.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        kernel.run()

    def test_cancel_from_earlier_event(self):
        kernel = SimKernel()
        fired = []
        later = kernel.schedule_at(20, lambda: fired.append("later"))
        kernel.schedule_at(10, later.cancel)
        kernel.run()
        assert fired == []

    def test_pending_count_ignores_cancelled(self):
        kernel = SimKernel()
        keep = kernel.schedule_at(10, lambda: None)
        drop = kernel.schedule_at(20, lambda: None)
        drop.cancel()
        assert kernel.pending_count() == 1


class TestRunControl:
    def test_run_until_advances_clock_to_bound(self):
        kernel = SimKernel()
        kernel.schedule_at(10, lambda: None)
        kernel.run(until=100)
        assert kernel.now == 100

    def test_run_until_excludes_later_events(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(10, lambda: fired.append(10))
        kernel.schedule_at(200, lambda: fired.append(200))
        kernel.run(until=100)
        assert fired == [10]
        kernel.run()
        assert fired == [10, 200]

    def test_run_until_includes_boundary_events(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(100, lambda: fired.append(100))
        kernel.run(until=100)
        assert fired == [100]

    def test_max_events(self):
        kernel = SimKernel()
        fired = []
        for i in range(10):
            kernel.schedule_at(i, lambda i=i: fired.append(i))
        kernel.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        kernel = SimKernel()
        assert kernel.step() is False

    def test_reentrant_run_rejected(self):
        kernel = SimKernel()

        def recurse():
            kernel.run()

        kernel.schedule_at(1, recurse)
        with pytest.raises(RuntimeError):
            kernel.run()

    def test_events_spawned_during_run_execute(self):
        kernel = SimKernel()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 5:
                kernel.schedule_after(1, lambda: cascade(depth + 1))

        kernel.schedule_at(0, lambda: cascade(0))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4, 5]


class TestClockProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=50))
    def test_clock_monotonic_over_arbitrary_schedules(self, times):
        kernel = SimKernel()
        observed = []
        for t in times:
            kernel.schedule_at(t, lambda: observed.append(kernel.now))
        kernel.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)

    def test_constants(self):
        assert USEC == 1_000
        assert MSEC == 1_000_000
        assert SEC == 1_000_000_000

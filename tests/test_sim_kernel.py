"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import HeapKernel, MSEC, SEC, SimKernel, USEC
from repro.sim.kernel import _COMPACT_MIN_QUEUE


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(30, lambda: fired.append(30))
        kernel.schedule_at(10, lambda: fired.append(10))
        kernel.schedule_at(20, lambda: fired.append(20))
        kernel.run()
        assert fired == [10, 20, 30]

    def test_same_time_events_fifo(self):
        kernel = SimKernel()
        fired = []
        for tag in range(5):
            kernel.schedule_at(100, lambda t=tag: fired.append(t))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(100, lambda: fired.append("low"), priority=5)
        kernel.schedule_at(100, lambda: fired.append("high"), priority=0)
        kernel.run()
        assert fired == ["high", "low"]

    def test_schedule_after_relative(self):
        kernel = SimKernel()
        marks = []
        kernel.schedule_at(10, lambda: kernel.schedule_after(5, lambda: marks.append(kernel.now)))
        kernel.run()
        assert marks == [15]

    def test_schedule_in_past_rejected(self):
        kernel = SimKernel()
        kernel.schedule_at(10, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        kernel = SimKernel()
        with pytest.raises(ValueError):
            kernel.schedule_after(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = SimKernel()
        fired = []
        handle = kernel.schedule_at(10, lambda: fired.append(1))
        handle.cancel()
        kernel.run()
        assert fired == []
        assert not handle.pending

    def test_cancel_is_idempotent(self):
        kernel = SimKernel()
        handle = kernel.schedule_at(10, lambda: None)
        handle.cancel()
        handle.cancel()
        kernel.run()

    def test_cancel_from_earlier_event(self):
        kernel = SimKernel()
        fired = []
        later = kernel.schedule_at(20, lambda: fired.append("later"))
        kernel.schedule_at(10, later.cancel)
        kernel.run()
        assert fired == []

    def test_pending_count_ignores_cancelled(self):
        kernel = SimKernel()
        keep = kernel.schedule_at(10, lambda: None)
        drop = kernel.schedule_at(20, lambda: None)
        drop.cancel()
        assert kernel.pending_count() == 1


class TestRunControl:
    def test_run_until_advances_clock_to_bound(self):
        kernel = SimKernel()
        kernel.schedule_at(10, lambda: None)
        kernel.run(until=100)
        assert kernel.now == 100

    def test_run_until_excludes_later_events(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(10, lambda: fired.append(10))
        kernel.schedule_at(200, lambda: fired.append(200))
        kernel.run(until=100)
        assert fired == [10]
        kernel.run()
        assert fired == [10, 200]

    def test_run_until_includes_boundary_events(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule_at(100, lambda: fired.append(100))
        kernel.run(until=100)
        assert fired == [100]

    def test_max_events(self):
        kernel = SimKernel()
        fired = []
        for i in range(10):
            kernel.schedule_at(i, lambda i=i: fired.append(i))
        kernel.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_returns_false_when_empty(self):
        kernel = SimKernel()
        assert kernel.step() is False

    def test_reentrant_run_rejected(self):
        kernel = SimKernel()

        def recurse():
            kernel.run()

        kernel.schedule_at(1, recurse)
        with pytest.raises(RuntimeError):
            kernel.run()

    def test_events_spawned_during_run_execute(self):
        kernel = SimKernel()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 5:
                kernel.schedule_after(1, lambda: cascade(depth + 1))

        kernel.schedule_at(0, lambda: cascade(0))
        kernel.run()
        assert fired == [0, 1, 2, 3, 4, 5]


class TestClockProperties:
    @given(st.lists(st.integers(min_value=0, max_value=10**12), min_size=1, max_size=50))
    def test_clock_monotonic_over_arbitrary_schedules(self, times):
        kernel = SimKernel()
        observed = []
        for t in times:
            kernel.schedule_at(t, lambda: observed.append(kernel.now))
        kernel.run()
        assert observed == sorted(observed)
        assert len(observed) == len(times)

    def test_constants(self):
        assert USEC == 1_000
        assert MSEC == 1_000_000
        assert SEC == 1_000_000_000


# ---------------------------------------------------------------------------
# Slab fast path: tokens, slot recycling, compaction
# ---------------------------------------------------------------------------


class TestPostAfterTokens:
    """The hot-path scheduling API: int tokens over the slab."""

    def test_post_after_runs_fn_with_args(self):
        kernel = SimKernel()
        fired = []
        kernel.post_after(7, lambda a, b: fired.append((kernel.now, a, b)), (1, 2))
        kernel.post_after(3, fired.append, ("first",))
        kernel.run()
        assert fired == ["first", (7, 1, 2)]

    def test_negative_delay_rejected(self):
        kernel = SimKernel()
        with pytest.raises(ValueError):
            kernel.post_after(-1, lambda: None)

    def test_cancel_returns_true_once(self):
        kernel = SimKernel()
        fired = []
        token = kernel.post_after(5, fired.append, (1,))
        assert kernel.cancel(token) is True
        assert kernel.cancel(token) is False
        kernel.run()
        assert fired == []

    def test_stale_token_after_firing_is_a_noop(self):
        kernel = SimKernel()
        fired = []
        token = kernel.post_after(1, fired.append, ("a",))
        kernel.run()
        assert fired == ["a"]
        assert kernel.cancel(token) is False

    def test_stale_token_cannot_cancel_a_recycled_slot(self):
        """The generation tag protects recycled slots: a token whose
        event already fired must not cancel the *new* occupant of the
        same slab slot."""
        kernel = SimKernel()
        fired = []
        stale = kernel.post_after(1, fired.append, ("old",))
        kernel.run()
        # The slot just freed is recycled by the next post.
        kernel.post_after(1, fired.append, ("new",))
        assert kernel.cancel(stale) is False
        kernel.run()
        assert fired == ["old", "new"]

    def test_tokens_interleave_with_handle_api(self):
        """post_after events order identically to schedule_* ones."""
        kernel = SimKernel()
        fired = []
        kernel.schedule_after(5, lambda: fired.append("handle"))
        kernel.post_after(5, fired.append, ("token",))
        kernel.schedule_at(2, lambda: fired.append("early"))
        kernel.run()
        assert fired == ["early", "handle", "token"]


@pytest.mark.parametrize("kernel_cls", [SimKernel, HeapKernel])
class TestCompaction:
    """cancelled/compactions counters and the compact_min_queue knob."""

    def test_invalid_threshold_rejected(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(compact_min_queue=-1)

    def test_default_threshold_is_the_documented_constant(self, kernel_cls):
        assert kernel_cls().compact_min_queue == _COMPACT_MIN_QUEUE == 64

    def test_small_queues_never_compact(self, kernel_cls):
        kernel = kernel_cls()  # default floor: 64
        handles = [kernel.schedule_at(i + 1, lambda: None) for i in range(20)]
        for handle in handles[:15]:
            handle.cancel()
        assert kernel.cancelled == 15
        assert kernel.compactions == 0
        kernel.run()

    def test_majority_cancelled_triggers_compaction(self, kernel_cls):
        """Compaction fires once cancelled entries *exceed* half the
        queue (20 of 40 is not enough; the 21st trips it)."""
        kernel = kernel_cls(compact_min_queue=0)
        fired = []
        handles = [
            kernel.schedule_at(i + 1, (lambda i=i: fired.append(i)))
            for i in range(40)
        ]
        for handle in handles[1::2]:
            handle.cancel()
        assert kernel.cancelled == 20
        assert kernel.compactions == 0
        handles[0].cancel()
        assert kernel.compactions == 1
        kernel.run()
        assert fired == list(range(2, 40, 2))

    def test_threshold_does_not_change_results(self, kernel_cls):
        """Compaction is invisible: identical fire order at both
        extremes of the knob."""

        def drive(kernel):
            fired = []
            handles = {}
            for i in range(60):
                handles[i] = kernel.schedule_at(
                    (i * 13) % 97 + 1, (lambda i=i: fired.append(i)), priority=i % 3
                )
            for i in range(0, 60, 3):
                handles[i].cancel()
            kernel.run()
            return fired, kernel.cancelled

        eager, eager_cancels = drive(kernel_cls(compact_min_queue=0))
        never, never_cancels = drive(kernel_cls(compact_min_queue=1 << 30))
        assert eager == never
        assert eager_cancels == never_cancels == 20


class TestHeapKernelReferenceContract:
    """The flagged reference kernel honors the same core contract."""

    def test_ordering_and_ties(self):
        kernel = HeapKernel()
        fired = []
        kernel.schedule_at(10, lambda: fired.append("b"))
        kernel.schedule_at(10, lambda: fired.append("c"))
        kernel.schedule_at(5, lambda: fired.append("a"))
        kernel.schedule_at(10, lambda: fired.append("z"), priority=-1)
        kernel.run()
        assert fired == ["a", "z", "b", "c"]

    def test_post_after_token_contract_matches_slab(self):
        kernel = HeapKernel()
        fired = []
        token = kernel.post_after(4, fired.append, ("x",))
        kernel.post_after(2, fired.append, ("y",))
        assert kernel.cancel(token) is True
        assert kernel.cancel(token) is False
        kernel.run()
        assert fired == ["y"]

    def test_run_until_matches_slab(self):
        for kernel in (SimKernel(), HeapKernel()):
            fired = []
            kernel.schedule_at(5, lambda: fired.append(5))
            kernel.schedule_at(15, lambda: fired.append(15))
            kernel.run(until=10)
            assert fired == [5]
            assert kernel.now == 10


class TestEventHandleOrderingRemoved:
    """The heap keys on (time, priority, seq) tuples since PR 2, so
    handles carry no ordering; pin the removal so ``__lt__`` can't
    silently return (and rot unexercised) in either implementation."""

    def test_slab_handles_do_not_order(self):
        kernel = SimKernel()
        a = kernel.schedule_at(1, lambda: None)
        b = kernel.schedule_at(2, lambda: None)
        with pytest.raises(TypeError):
            a < b  # noqa: B015 -- the raise *is* the assertion

    def test_heap_handles_do_not_order(self):
        kernel = HeapKernel()
        a = kernel.schedule_at(1, lambda: None)
        b = kernel.schedule_at(2, lambda: None)
        with pytest.raises(TypeError):
            a < b  # noqa: B015

"""Tests for the pluggable scheduling policies: PSJF/EDF/CFS ordering,
the FIFO no-timeslice branch, affinity interaction, and end-to-end
topology recovery under every policy."""

import pytest

from repro.sim import (
    Block,
    Compute,
    MSEC,
    POLICY_NAMES,
    SchedPolicy,
    Scheduler,
    SimKernel,
    ThreadSchedParams,
    make_policy,
)
from repro.sim.policies import (
    CompletelyFair,
    EarliestDeadlineFirst,
    PriorityRoundRobin,
    ShortestJobFirst,
)


def make(num_cpus=1, timeslice=4 * MSEC, policy=None):
    kernel = SimKernel()
    sched = Scheduler(kernel, num_cpus=num_cpus, timeslice=timeslice, policy=policy)
    return kernel, sched


def compute_once(kernel, duration, done, name):
    def activity():
        yield Compute(duration)
        done.append((name, kernel.now))

    return activity()


class TestMakePolicy:
    def test_none_is_priority_round_robin(self):
        assert isinstance(make_policy(None), PriorityRoundRobin)

    def test_each_registered_name_resolves(self):
        classes = {
            "priority": PriorityRoundRobin,
            "psjf": ShortestJobFirst,
            "edf": EarliestDeadlineFirst,
            "cfs": CompletelyFair,
        }
        assert set(classes) == set(POLICY_NAMES)
        for name, cls in classes.items():
            assert isinstance(make_policy(name), cls)

    def test_names_give_fresh_instances(self):
        assert make_policy("psjf") is not make_policy("psjf")

    def test_instance_passes_through(self):
        policy = ShortestJobFirst()
        assert make_policy(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("fifo2")

    def test_policy_cannot_attach_twice(self):
        policy = ShortestJobFirst()
        make(policy=policy)
        with pytest.raises(RuntimeError, match="already attached"):
            make(policy=policy)


class TestShortestJobFirst:
    def test_shorter_job_runs_first(self):
        # Both become ready at t=0 on one CPU; the 1 ms job must finish
        # before the 10 ms job starts (spawn order puts long first).
        kernel, sched = make(policy="psjf")
        done = []
        sched.spawn(compute_once(kernel, 10 * MSEC, done, "long"), start=0)
        sched.spawn(compute_once(kernel, 1 * MSEC, done, "short"), start=0)
        kernel.run()
        assert [name for name, _ in done] == ["short", "long"]

    def test_preemptive_on_wake(self):
        # A short job arriving mid-run preempts the long one (PSJF).
        kernel, sched = make(policy="psjf")
        done = []
        sched.spawn(compute_once(kernel, 20 * MSEC, done, "long"), start=0)
        sched.spawn(compute_once(kernel, 1 * MSEC, done, "short"), start=5 * MSEC)
        kernel.run()
        assert done[0] == ("short", 6 * MSEC)
        assert done[1] == ("long", 21 * MSEC)

    def test_expected_ns_hint_orders_first_jobs(self):
        # Before any history, the sched_params hint is the estimate.
        kernel, sched = make(policy="psjf")
        done = []
        sched.spawn(
            compute_once(kernel, 3 * MSEC, done, "hinted-long"),
            start=0,
            sched_params=ThreadSchedParams(expected_ns=50 * MSEC),
        )
        sched.spawn(
            compute_once(kernel, 3 * MSEC, done, "hinted-short"),
            start=0,
            sched_params=ThreadSchedParams(expected_ns=1 * MSEC),
        )
        kernel.run()
        assert [name for name, _ in done] == ["hinted-short", "hinted-long"]

    def test_no_timeslice_rotation(self):
        # Equal-length jobs with matching hints run to completion one
        # after the other (no RR rotation mid-job despite a 1 ms slice).
        kernel, sched = make(policy="psjf", timeslice=1 * MSEC)
        done = []
        hint = ThreadSchedParams(expected_ns=8 * MSEC)
        sched.spawn(
            compute_once(kernel, 8 * MSEC, done, "a"), start=0, sched_params=hint
        )
        sched.spawn(
            compute_once(kernel, 8 * MSEC, done, "b"), start=0, sched_params=hint
        )
        kernel.run()
        assert done == [("a", 8 * MSEC), ("b", 16 * MSEC)]


class TestEarliestDeadlineFirst:
    def test_tight_deadline_runs_first(self):
        kernel, sched = make(policy="edf")
        done = []
        sched.spawn(
            compute_once(kernel, 2 * MSEC, done, "loose"),
            start=0,
            sched_params=ThreadSchedParams(deadline_ns=80 * MSEC),
        )
        sched.spawn(
            compute_once(kernel, 2 * MSEC, done, "tight"),
            start=0,
            sched_params=ThreadSchedParams(deadline_ns=10 * MSEC),
        )
        kernel.run()
        assert [name for name, _ in done] == ["tight", "loose"]

    def test_wake_preempts_later_deadline(self):
        kernel, sched = make(policy="edf")
        done = []
        sched.spawn(
            compute_once(kernel, 30 * MSEC, done, "loose"),
            start=0,
            sched_params=ThreadSchedParams(deadline_ns=100 * MSEC),
        )
        sched.spawn(
            compute_once(kernel, 2 * MSEC, done, "tight"),
            start=4 * MSEC,
            sched_params=ThreadSchedParams(deadline_ns=10 * MSEC),
        )
        kernel.run()
        assert done[0] == ("tight", 6 * MSEC)
        assert done[1] == ("loose", 32 * MSEC)

    def test_deadline_rearms_on_each_wake(self):
        # A blocking thread re-arms its absolute deadline when it wakes,
        # so a late wake still beats a much looser competitor.
        kernel, sched = make(policy="edf")
        done = []

        def sleeper():
            yield Block()
            yield Compute(1 * MSEC)
            done.append(("sleeper", kernel.now))

        thread = sched.spawn(
            sleeper(), start=0, sched_params=ThreadSchedParams(deadline_ns=5 * MSEC)
        )
        sched.spawn(
            compute_once(kernel, 40 * MSEC, done, "background"),
            start=0,
            sched_params=ThreadSchedParams(deadline_ns=200 * MSEC),
        )
        kernel.schedule_at(20 * MSEC, lambda: sched.wakeup(thread))
        kernel.run()
        assert done[0] == ("sleeper", 21 * MSEC)


class TestCompletelyFair:
    def test_weights_split_cpu_time(self):
        # Two always-runnable threads, weights 1:3 -> cpu_time 1:3 over
        # any window (CFS min-vruntime scheduling).
        kernel, sched = make(policy="cfs")

        def spin():
            while True:
                yield Compute(1 * MSEC)

        light = sched.spawn(
            spin(), start=0, sched_params=ThreadSchedParams(weight=1024)
        )
        heavy = sched.spawn(
            spin(), start=0, sched_params=ThreadSchedParams(weight=3 * 1024)
        )
        kernel.run(until=80 * MSEC)
        assert light.cpu_time + heavy.cpu_time == 80 * MSEC
        ratio = heavy.cpu_time / light.cpu_time
        assert 2.5 < ratio < 3.5

    def test_sleeper_not_starved_on_wake(self):
        # A thread that slept keeps only the min-vruntime watermark, so
        # it gets the CPU promptly instead of owing its sleep time back.
        kernel, sched = make(policy="cfs")
        done = []

        def sleeper():
            yield Block()
            yield Compute(1 * MSEC)
            done.append(("sleeper", kernel.now))

        def spin():
            while True:
                yield Compute(1 * MSEC)

        thread = sched.spawn(sleeper(), start=0)
        sched.spawn(spin(), start=0)
        kernel.schedule_at(50 * MSEC, lambda: sched.wakeup(thread))
        kernel.run(until=70 * MSEC)
        assert done and done[0][1] <= 55 * MSEC


class TestFifoNoTimeslice:
    def test_fifo_thread_never_rotated(self):
        # SCHED_FIFO threads get no quantum under the default policy:
        # an equal-priority FIFO pair runs strictly in sequence.
        kernel, sched = make(timeslice=1 * MSEC)
        done = []
        sched.spawn(
            compute_once(kernel, 6 * MSEC, done, "f1"),
            start=0,
            priority=50,
            policy=SchedPolicy.FIFO,
        )
        sched.spawn(
            compute_once(kernel, 6 * MSEC, done, "f2"),
            start=0,
            priority=50,
            policy=SchedPolicy.FIFO,
        )
        kernel.run()
        assert done == [("f1", 6 * MSEC), ("f2", 12 * MSEC)]

    def test_fifo_no_timeslice_under_cfs(self):
        # timeslice_for honours SCHED_FIFO under every policy override.
        kernel, sched = make(policy="cfs", timeslice=1 * MSEC)
        thread = sched.spawn(
            compute_once(kernel, 1 * MSEC, [], "f"),
            priority=50,
            policy=SchedPolicy.FIFO,
        )
        assert sched.policy.timeslice_for(thread) is None


class TestAffinityAcrossPolicies:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_pinned_threads_serialize_on_their_cpu(self, policy):
        # Four threads all pinned to CPU 1 of 2: the idle CPU 0 may
        # never pick them, so they serialize on CPU 1 under every
        # policy (8 ms wall time for 4 x 2 ms of work).
        kernel, sched = make(num_cpus=2, policy=policy)
        done = []
        threads = [
            sched.spawn(
                compute_once(kernel, 2 * MSEC, done, f"t{i}"),
                start=0,
                affinity=[1],
            )
            for i in range(4)
        ]
        records = []
        sched.on_sched_switch(records.append)
        kernel.run()
        assert kernel.now == 8 * MSEC
        assert len(done) == 4
        pids = {t.pid for t in threads}
        assert {r.cpu for r in records if r.next_pid in pids} == {1}

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_pick_skips_ineligible_best_candidate(self, policy):
        # Direct policy-object check: the queued thread with the best
        # key is pinned to CPU 1, so pick(0) must hand CPU 0 to the
        # runner-up, and pick(1) then takes the pinned one.
        kernel, sched = make(num_cpus=2, policy=policy)
        best = sched.spawn(
            compute_once(kernel, MSEC, [], "best"),
            affinity=[1],
            priority=5,
            sched_params=ThreadSchedParams(deadline_ns=MSEC, expected_ns=MSEC),
        )
        other = sched.spawn(
            compute_once(kernel, MSEC, [], "other"),
            priority=0,
            sched_params=ThreadSchedParams(
                deadline_ns=100 * MSEC, expected_ns=10 * MSEC
            ),
        )
        pol = sched.policy
        pol.enqueue(best, woke=True)
        pol.enqueue(other, woke=True)
        # Sanity: with no affinity constraint the best key wins CPU 1.
        assert pol.pick(1) is best
        pol.enqueue(best, woke=False)
        assert pol.pick(0) is other
        assert pol.pick(1) is best
        assert pol.pick(0) is None


class TestTopologyRecoveryUnderEveryPolicy:
    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_syn_oracle_holds(self, policy):
        # The synthesized DAG topology is scheduling-invariant: the SYN
        # scenario recovers its exact spec-derived vertex/edge sets
        # under every registered policy.
        from repro.core.pipeline import synthesize_from_trace
        from repro.experiments.runner import RunConfig, run_once
        from repro.scenarios import build_scenario_spec

        spec = build_scenario_spec("syn", policy=policy)
        assert spec.policy == policy
        config = RunConfig(
            duration_ns=4_000 * MSEC,
            base_seed=123,
            num_cpus=spec.num_cpus,
            sched_policy=policy if policy != "priority" else None,
        )
        result = run_once(lambda world, i: spec.build(world), config)
        dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
        dag.validate()
        assert {v.key for v in dag.vertices()} == spec.expected_vertex_keys()
        assert {(e.src, e.dst) for e in dag.edges()} == spec.expected_edge_pairs()
        assert {
            v.key for v in dag.vertices() if v.is_or_junction
        } == spec.expected_or_junctions()

"""Unit + property tests for Alg. 2 (execution-time measurement).

The property tests build random preemption patterns with a known ground
truth and check that (a) the literal algorithm recovers it, (b) the
indexed fast path agrees with the literal algorithm on arbitrary event
soups.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import SchedIndex, get_exec_time
from repro.sim import SchedSwitch


def switch(ts, prev_pid, next_pid, cpu=0):
    return SchedSwitch(
        ts=ts,
        cpu=cpu,
        prev_pid=prev_pid,
        prev_comm=f"p{prev_pid}",
        prev_prio=0,
        prev_state="R",
        next_pid=next_pid,
        next_comm=f"p{next_pid}",
        next_prio=0,
    )


class TestLiteralAlgorithm:
    def test_no_preemption(self):
        assert get_exec_time(100, 200, 7, []) == 100

    def test_single_preemption(self):
        events = [switch(120, 7, 9), switch(150, 9, 7)]
        assert get_exec_time(100, 200, 7, events) == 100 - 30

    def test_multiple_preemptions(self):
        events = [
            switch(110, 7, 1),
            switch(120, 1, 7),
            switch(160, 7, 2),
            switch(190, 2, 7),
        ]
        # Preempted for 10 + 30 ns.
        assert get_exec_time(100, 200, 7, events) == 100 - 40

    def test_events_outside_window_ignored(self):
        events = [switch(50, 7, 1), switch(60, 1, 7), switch(300, 7, 1)]
        assert get_exec_time(100, 200, 7, events) == 100

    def test_other_pids_ignored(self):
        events = [switch(120, 3, 4), switch(130, 4, 3)]
        assert get_exec_time(100, 200, 7, events) == 100

    def test_unsorted_input_sorted_internally(self):
        events = [switch(150, 9, 7), switch(120, 7, 9)]
        assert get_exec_time(100, 200, 7, events) == 70

    def test_switch_in_at_exact_end_not_double_counted(self):
        """Regression: a dispatch coinciding with the CB-end timestamp
        must not leave a stale segment start (discrete-clock boundary)."""
        events = [switch(130, 7, 9), switch(200, 9, 7)]
        assert get_exec_time(100, 200, 7, events) == 30

    def test_switch_out_at_exact_end(self):
        events = [switch(200, 7, 9)]
        assert get_exec_time(100, 200, 7, events) == 100

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            get_exec_time(200, 100, 7, [])

    def test_zero_window(self):
        assert get_exec_time(100, 100, 7, []) == 0


class TestSchedIndex:
    def test_matches_literal_simple(self):
        events = [switch(120, 7, 9), switch(150, 9, 7)]
        index = SchedIndex(events)
        assert index.exec_time(100, 200, 7) == get_exec_time(100, 200, 7, events)

    def test_pid_without_events(self):
        index = SchedIndex([])
        assert index.exec_time(0, 50, 3) == 50

    def test_preemption_time_complement(self):
        events = [switch(120, 7, 9), switch(150, 9, 7)]
        index = SchedIndex(events)
        assert index.exec_time(100, 200, 7) + index.preemption_time(100, 200, 7) == 100

    def test_pids_listed(self):
        index = SchedIndex([switch(10, 1, 2), switch(20, 2, 3)])
        assert index.pids() == [1, 2, 3]

    def test_idle_pid_not_indexed(self):
        index = SchedIndex([switch(10, 0, 5), switch(20, 5, 0)])
        assert index.pids() == [5]


@st.composite
def preemption_pattern(draw):
    """A window plus alternating out/in switch pairs with ground truth."""
    start = draw(st.integers(min_value=0, max_value=10**6))
    pid = 7
    t = start
    events = []
    preempted = 0
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        run = draw(st.integers(min_value=1, max_value=1000))
        gap = draw(st.integers(min_value=1, max_value=1000))
        t += run
        events.append(switch(t, pid, 9))
        events.append(switch(t + gap, 9, pid))
        preempted += gap
        t += gap
    tail = draw(st.integers(min_value=1, max_value=1000))
    end = t + tail
    return start, end, pid, events, (end - start) - preempted


class TestGroundTruthProperty:
    @given(preemption_pattern())
    @settings(max_examples=200)
    def test_literal_recovers_ground_truth(self, pattern):
        start, end, pid, events, truth = pattern
        assert get_exec_time(start, end, pid, events) == truth

    @given(preemption_pattern())
    @settings(max_examples=200)
    def test_index_recovers_ground_truth(self, pattern):
        start, end, pid, events, truth = pattern
        assert SchedIndex(events).exec_time(start, end, pid) == truth


@st.composite
def event_soup(draw):
    """Arbitrary-but-causally-plausible switch sequences for several
    pids on one CPU (alternating run intervals)."""
    pids = [1, 2, 3]
    t = 0
    current = draw(st.sampled_from(pids))
    events = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        t += draw(st.integers(min_value=1, max_value=500))
        nxt = draw(st.sampled_from([p for p in pids if p != current]))
        events.append(switch(t, current, nxt))
        current = nxt
    return events


class TestEquivalenceProperty:
    @given(
        soup=event_soup(),
        start=st.integers(min_value=0, max_value=5000),
        width=st.integers(min_value=0, max_value=5000),
        pid=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=200)
    def test_index_equals_literal_on_arbitrary_windows(self, soup, start, width, pid):
        end = start + width
        assert SchedIndex(soup).exec_time(start, end, pid) == get_exec_time(
            start, end, pid, soup
        )

    @given(
        soup=event_soup(),
        start=st.integers(min_value=0, max_value=5000),
        width=st.integers(min_value=0, max_value=5000),
        pid=st.sampled_from([1, 2, 3]),
    )
    @settings(max_examples=200)
    def test_exec_time_bounded_by_window(self, soup, start, width, pid):
        value = SchedIndex(soup).exec_time(start, start + width, pid)
        assert 0 <= value <= width

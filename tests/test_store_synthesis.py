"""Store-backed synthesis equivalence: the PR's acceptance pins.

For every registry scenario, ``synthesize_from_store`` over recorded
binary segments must be byte-identical (DAG JSON, exec tables, DOT) to
``synthesize_from_trace`` over the merged in-memory traces -- and
independent of the worker count, for both multi-run strategies.  Also
drives the record -> synthesize CLI end to end against the in-memory
golden DOT.
"""

import os
import subprocess
import sys

import pytest

from repro.core import (
    dag_to_json,
    format_exec_table,
    synthesize_from_database,
    synthesize_from_trace,
    to_dot,
)
from repro.core.pipeline import STRATEGY_MERGE_DAGS
from repro.experiments.batch import BatchConfig
from repro.experiments.runner import run_once
from repro.scenarios import build_scenario_spec, scenario_names
from repro.sim.kernel import SEC
from repro.store import TraceStore, record_batch, synthesize_from_store
from repro.tracing.session import Trace, TraceDatabase

DURATION_NS = int(1.0 * SEC)
RUNS = 2


def _reference_traces(name):
    """The in-memory traces the store contents must reproduce (specs
    built exactly as the batch/record workers build them -- duration
    forwarded to factories that take it)."""
    config = BatchConfig(duration_ns=DURATION_NS)
    traces = []
    for run_index in range(RUNS):
        spec = build_scenario_spec(
            name, run_index=run_index, runs=RUNS, duration_ns=DURATION_NS
        )
        run_config = config.run_config(DURATION_NS, spec.num_cpus)
        traces.append(
            run_once(
                lambda world, i, spec=spec: spec.build(world),
                run_config,
                run_index=run_index,
            ).trace
        )
    return traces


@pytest.fixture(scope="module")
def stores(tmp_path_factory):
    """One recorded store + reference traces per registry scenario."""
    root = tmp_path_factory.mktemp("stores")
    result = {}
    for name in scenario_names():
        directory = str(root / name)
        record_batch(
            name, runs=RUNS, directory=directory,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        result[name] = (TraceStore(directory), _reference_traces(name))
    return result


class TestStoreSynthesisEquivalence:
    """Store path == in-memory path, byte for byte, every scenario."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_recorded_traces_match_in_memory(self, stores, name):
        store, traces = stores[name]
        for run_index, trace in enumerate(traces):
            stored = store.load(f"run{run_index:03d}")
            assert stored.to_dict() == trace.to_dict(), (name, run_index)

    @pytest.mark.parametrize("name", scenario_names())
    def test_merge_traces_strategy_identical(self, stores, name):
        store, traces = stores[name]
        expected = synthesize_from_trace(Trace.merge(traces))
        actual = synthesize_from_store(store, jobs=1)
        assert dag_to_json(actual) == dag_to_json(expected), name
        assert format_exec_table(actual) == format_exec_table(expected), name
        assert to_dot(actual) == to_dot(expected), name

    @pytest.mark.parametrize("name", scenario_names())
    def test_merge_dags_strategy_identical(self, stores, name):
        store, traces = stores[name]
        database = TraceDatabase()
        for run_index, trace in enumerate(traces):
            database.add(f"run{run_index:03d}", trace)
        expected = synthesize_from_database(database, strategy=STRATEGY_MERGE_DAGS)
        actual = synthesize_from_store(store, jobs=1, strategy=STRATEGY_MERGE_DAGS)
        assert dag_to_json(actual) == dag_to_json(expected), name


class TestShardingDeterminism:
    """``--jobs`` must never change a byte of the model."""

    @pytest.mark.parametrize("name", scenario_names())
    def test_pid_sharded_jobs_identical(self, stores, name):
        store, _ = stores[name]
        serial = synthesize_from_store(store, jobs=1)
        sharded = synthesize_from_store(store, jobs=3)
        assert dag_to_json(serial) == dag_to_json(sharded), name
        assert to_dot(serial) == to_dot(sharded), name

    def test_run_sharded_jobs_identical(self, stores):
        store, _ = stores["avp-interference"]
        serial = synthesize_from_store(store, jobs=1, strategy=STRATEGY_MERGE_DAGS)
        sharded = synthesize_from_store(store, jobs=2, strategy=STRATEGY_MERGE_DAGS)
        assert dag_to_json(serial) == dag_to_json(sharded)

    def test_recording_jobs_do_not_change_store(self, tmp_path):
        config = BatchConfig(duration_ns=DURATION_NS)
        serial_dir = str(tmp_path / "serial")
        parallel_dir = str(tmp_path / "parallel")
        record_batch("sensor-fusion", runs=3, directory=serial_dir, jobs=1,
                     config=config)
        record_batch("sensor-fusion", runs=3, directory=parallel_dir, jobs=3,
                     config=config)
        serial = TraceStore(serial_dir)
        parallel = TraceStore(parallel_dir)
        assert serial.run_ids() == parallel.run_ids()
        for run_id in serial.run_ids():
            assert serial.load(run_id).to_dict() == parallel.load(run_id).to_dict()

    def test_pid_filter_matches_in_memory(self, stores):
        store, traces = stores["avp-interference"]
        merged = Trace.merge(traces)
        pids = merged.pids()[: len(merged.pids()) // 2]
        expected = synthesize_from_trace(merged, pids=pids)
        for jobs in (1, 2):
            actual = synthesize_from_store(store, pids=pids, jobs=jobs)
            assert dag_to_json(actual) == dag_to_json(expected), jobs


class TestColumnarWalkEquivalence:
    """The columnar Alg. 1 walk (store-native index, lazy payloads,
    shard-local sched buckets) vs the in-memory pipeline: property-style
    coverage over every registry scenario at jobs in {1, 2, 4}, plus an
    explicit --pids subset and a PID absent from the store."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_every_scenario_every_jobs(self, stores, name, jobs):
        store, traces = stores[name]
        expected = synthesize_from_trace(Trace.merge(traces))
        actual = synthesize_from_store(store, jobs=jobs)
        assert dag_to_json(actual) == dag_to_json(expected), (name, jobs)
        assert to_dot(actual) == to_dot(expected), (name, jobs)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_pid_subset_and_absent_pid(self, stores, jobs):
        store, traces = stores["service-mesh"]
        merged = Trace.merge(traces)
        absent = max(merged.pids()) + 1000
        pids = merged.pids()[::2] + [absent]
        expected = synthesize_from_trace(merged, pids=pids)
        actual = synthesize_from_store(store, pids=pids, jobs=jobs)
        assert dag_to_json(actual) == dag_to_json(expected), jobs
        assert format_exec_table(actual) == format_exec_table(expected), jobs

    def test_only_absent_pids_yield_empty_model(self, stores):
        store, traces = stores["syn"]
        absent = [max(Trace.merge(traces).pids()) + 1000]
        expected = synthesize_from_trace(Trace.merge(traces), pids=absent)
        for jobs in (1, 2):
            actual = synthesize_from_store(store, pids=absent, jobs=jobs)
            assert dag_to_json(actual) == dag_to_json(expected), jobs

    def test_overlapping_run_clocks_use_the_merge_path(self, tmp_path):
        """Runs sharing a clock base (time-overlapping streams) must
        take the k-way merge path and still match ``Trace.merge``."""
        from repro.store import write_segment

        store_dir = tmp_path / "overlap"
        store_dir.mkdir()
        traces = _reference_traces("sensor-fusion")
        overlapping = [
            Trace(
                ros_events=[e._replace(ts=e.ts - t.start_ts) for e in t.ros_events],
                sched_events=[e._replace(ts=e.ts - t.start_ts) for e in t.sched_events],
                wakeup_events=[e._replace(ts=e.ts - t.start_ts) for e in t.wakeup_events],
                pid_map=t.pid_map,
                start_ts=0,
                stop_ts=t.stop_ts - t.start_ts,
            )
            for t in traces
        ]
        for run_index, trace in enumerate(overlapping):
            write_segment(trace, str(store_dir / f"run{run_index:03d}.trace.bin"))
        store = TraceStore(str(store_dir))
        expected = synthesize_from_trace(Trace.merge(overlapping))
        for jobs in (1, 2):
            actual = synthesize_from_store(store, jobs=jobs)
            assert dag_to_json(actual) == dag_to_json(expected), jobs

    def test_mixed_binary_and_legacy_store_sharded(self, tmp_path):
        """Sharded synthesis over a mixed store: planning reads the
        legacy run once (cached reader) and every jobs value matches the
        in-memory pipeline."""
        from repro.tracing.storage import TRACE_SUFFIX, save_trace

        store_dir = str(tmp_path / "mixed")
        record_batch(
            "sensor-fusion", runs=3, directory=store_dir,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        store = TraceStore(store_dir)
        traces = [store.load(run_id) for run_id in store.run_ids()]
        # Demote run001 to legacy-only gzip-JSON.
        os.remove(store.path_of("run001"))
        save_trace(traces[1], os.path.join(store_dir, f"run001{TRACE_SUFFIX}"))
        mixed = TraceStore(store_dir)
        assert not mixed.is_binary("run001")
        expected = synthesize_from_trace(Trace.merge(traces))
        for jobs in (1, 2, 4):
            actual = synthesize_from_store(mixed, jobs=jobs)
            assert dag_to_json(actual) == dag_to_json(expected), jobs
            assert to_dot(actual) == to_dot(expected), jobs


class TestCliRecordSynthesize:
    def test_cli_round_trip_matches_in_memory_dot(self, tmp_path):
        store_dir = str(tmp_path / "store")
        dot_path = str(tmp_path / "store.dot")
        env_cmd = [sys.executable, "-m", "repro"]
        subprocess.run(
            env_cmd + ["record", "syn", "--runs", str(RUNS), "--out", store_dir,
                       "--duration", "1", "--jobs", "2"],
            check=True, capture_output=True,
        )
        subprocess.run(
            env_cmd + ["synthesize", store_dir, "--jobs", "2",
                       "--dot", dot_path],
            check=True, capture_output=True,
        )
        expected = to_dot(synthesize_from_trace(Trace.merge(_reference_traces("syn"))))
        with open(dot_path) as handle:
            assert handle.read() == expected

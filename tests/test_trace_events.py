"""Tests for trace-event records, probe vocabulary and Trace helpers."""

import pytest

from repro.tracing import (
    CB_END_PROBES,
    CB_START_PROBES,
    P1_CREATE_NODE,
    P2_TIMER_START,
    P5_SUB_START,
    P6_TAKE,
    P9_SERVICE_START,
    P12_CLIENT_START,
    P16_DDS_WRITE,
    PROBE_TABLE,
    TAKE_PROBES,
    TraceEvent,
)
from repro.tracing.session import Trace


class TestProbeVocabulary:
    def test_sixteen_rows(self):
        assert len(PROBE_TABLE) == 16
        assert sorted(PROBE_TABLE.values()) == sorted(f"P{i}" for i in range(1, 17))

    def test_start_end_pairs_disjoint(self):
        assert not (CB_START_PROBES & CB_END_PROBES)
        assert len(CB_START_PROBES) == 4
        assert len(CB_END_PROBES) == 4

    def test_take_probes(self):
        assert len(TAKE_PROBES) == 3
        assert P6_TAKE in TAKE_PROBES


class TestTraceEvent:
    def test_pnum(self):
        assert TraceEvent(ts=0, pid=1, probe=P16_DDS_WRITE).pnum == "P16"
        assert TraceEvent(ts=0, pid=1, probe="unknown").pnum is None

    def test_cb_type_per_start_probe(self):
        assert TraceEvent(ts=0, pid=1, probe=P2_TIMER_START).cb_type() == "timer"
        assert TraceEvent(ts=0, pid=1, probe=P5_SUB_START).cb_type() == "subscriber"
        assert TraceEvent(ts=0, pid=1, probe=P9_SERVICE_START).cb_type() == "service"
        assert TraceEvent(ts=0, pid=1, probe=P12_CLIENT_START).cb_type() == "client"

    def test_predicates(self):
        start = TraceEvent(ts=0, pid=1, probe=P2_TIMER_START)
        assert start.is_cb_start() and not start.is_cb_end() and not start.is_take()
        take = TraceEvent(ts=0, pid=1, probe=P6_TAKE)
        assert take.is_take() and not take.is_cb_start()

    def test_get_with_default(self):
        event = TraceEvent(ts=0, pid=1, probe=P6_TAKE, data={"topic": "/x"})
        assert event.get("topic") == "/x"
        assert event.get("missing", 7) == 7

    def test_dict_round_trip(self):
        event = TraceEvent(ts=5, pid=3, probe=P1_CREATE_NODE, data={"node": "n"})
        clone = TraceEvent.from_dict(event.to_dict())
        assert clone == event


class TestTraceHelpers:
    def make_trace(self):
        return Trace(
            ros_events=[
                TraceEvent(ts=10, pid=1, probe=P2_TIMER_START),
                TraceEvent(ts=20, pid=2, probe=P5_SUB_START),
                TraceEvent(ts=30, pid=1, probe=P16_DDS_WRITE),
            ],
            pid_map={1: "a", 2: "b"},
            start_ts=10,
            stop_ts=40,
        )

    def test_events_for_pid(self):
        trace = self.make_trace()
        assert len(trace.events_for_pid(1)) == 2
        assert len(trace.events_for_pid(2)) == 1
        assert trace.events_for_pid(9) == []

    def test_pids_sorted(self):
        assert self.make_trace().pids() == [1, 2]

    def test_duration(self):
        assert self.make_trace().duration_ns == 30
        assert Trace().duration_ns == 0

    def test_sort_orders_all_streams(self):
        trace = self.make_trace()
        trace.ros_events.reverse()
        trace.sort()
        assert [e.ts for e in trace.ros_events] == [10, 20, 30]

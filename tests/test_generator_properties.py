"""Property-based end-to-end tests: random applications, synthesized
models, and the invariants that must hold between them.

Each example builds a random-but-known application, traces it, and
verifies that the synthesized model (a) covers the ground-truth
topology, (b) is acyclic, and (c) carries execution-time measurements
bounded by wall-clock response times.  Examples are kept small because
every one is a full simulation run.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import GeneratorConfig, generate_app
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC

RUN_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def generator_configs(draw):
    return GeneratorConfig(
        num_nodes=draw(st.integers(min_value=2, max_value=5)),
        num_chains=draw(st.integers(min_value=1, max_value=3)),
        chain_length=draw(st.integers(min_value=1, max_value=4)),
        service_probability=draw(st.sampled_from([0.0, 0.3, 0.7])),
    )


def run_generated(config, app_seed, world_seed=77):
    run_config = RunConfig(duration_ns=4 * SEC, base_seed=world_seed, num_cpus=4)
    result = run_once(lambda w, i: generate_app(w, config, seed=app_seed), run_config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    return dag, result.apps


class TestGeneratedModels:
    @RUN_SETTINGS
    @given(config=generator_configs(), app_seed=st.integers(min_value=0, max_value=50))
    def test_ground_truth_covered_and_acyclic(self, config, app_seed):
        dag, app = run_generated(config, app_seed)
        dag.validate()
        actual = {
            (dag.vertex(e.src).cb_id, dag.vertex(e.dst).cb_id) for e in dag.edges()
        }
        assert app.expected_edges <= actual
        observed = {v.cb_id for v in dag.vertices() if not v.is_and_junction}
        assert set(app.labels) <= observed

    @RUN_SETTINGS
    @given(config=generator_configs(), app_seed=st.integers(min_value=0, max_value=50))
    def test_exec_time_bounded_by_response_time(self, config, app_seed):
        dag, _ = run_generated(config, app_seed)
        for vertex in dag.vertices():
            assert len(vertex.exec_times) == len(vertex.response_times)
            for exec_time, response in zip(vertex.exec_times, vertex.response_times):
                assert 0 <= exec_time <= response

    @RUN_SETTINGS
    @given(config=generator_configs(), app_seed=st.integers(min_value=0, max_value=50))
    def test_service_vertices_have_single_caller(self, config, app_seed):
        dag, app = run_generated(config, app_seed)
        for label in app.service_labels:
            for vertex in dag.find_vertices(cb_id=label):
                assert len(dag.predecessors(vertex.key)) <= 1

"""Tests for the experiment drivers (reduced-size configurations)."""

import pytest

from repro.experiments import (
    Fig3Result,
    Table2Config,
    check_avp_dag,
    check_syn_dag,
    fig4_from_table2,
    run_fig3a,
    run_fig3b,
    run_overhead,
    run_table1,
    run_table2,
)
from repro.sim import SEC


@pytest.fixture(scope="module")
def fig3a() -> Fig3Result:
    return run_fig3a(duration_ns=8 * SEC)


@pytest.fixture(scope="module")
def fig3b() -> Fig3Result:
    return run_fig3b(duration_ns=8 * SEC)


@pytest.fixture(scope="module")
def table2():
    return run_table2(Table2Config(runs=6, duration_ns=4 * SEC))


class TestFig3a:
    def test_all_structural_checks_pass(self, fig3a):
        failed = [name for name, ok in fig3a.checks if not ok]
        assert not failed, failed

    def test_vertex_and_edge_counts(self, fig3a):
        # 16 callbacks + duplicated SV3 + AND junction = 18 vertices.
        assert fig3a.dag.num_vertices == 18
        assert fig3a.dag.num_edges == 16

    def test_dag_validates(self, fig3a):
        fig3a.dag.validate()


class TestFig3b:
    def test_all_structural_checks_pass(self, fig3b):
        failed = [name for name, ok in fig3b.checks if not ok]
        assert not failed, failed

    def test_seven_vertices_six_edges(self, fig3b):
        assert fig3b.dag.num_vertices == 7
        assert fig3b.dag.num_edges == 6


class TestTable1:
    def test_all_sixteen_probes_attached(self):
        result = run_table1()
        assert result.complete, f"missing: {result.missing}"
        assert len(result.rows) == 16

    def test_table_renders(self):
        result = run_table1()
        text = result.table()
        for row_id in ("P1", "P7", "P16"):
            assert row_id in text


class TestTable2:
    def test_all_callbacks_measured(self, table2):
        for cb in ("cb1", "cb2", "cb3", "cb4", "cb5", "cb6"):
            mbcet, macet, mwcet = table2.measured_ms(cb)
            assert 0 < mbcet <= macet <= mwcet

    def test_ordering_matches_paper(self, table2):
        """The qualitative claims of Table II: cb2 > cb1 everywhere; cb6
        has the widest spread; cb4's average stays far below cb3's."""
        cb1 = table2.measured_ms("cb1")
        cb2 = table2.measured_ms("cb2")
        cb3 = table2.measured_ms("cb3")
        cb4 = table2.measured_ms("cb4")
        cb6 = table2.measured_ms("cb6")
        assert all(b > a for a, b in zip(cb1, cb2))
        spread = lambda t: t[2] / t[0]
        assert spread(cb6) > max(spread(cb1), spread(cb2))
        assert cb4[1] < cb3[1] / 2

    def test_values_close_to_reference(self, table2):
        """Within a generous envelope of the paper's numbers (shape)."""
        for cb in ("cb1", "cb2", "cb5"):
            ref = table2.reference_ms[cb]
            ours = table2.measured_ms(cb)
            for r, o in zip(ref, ours):
                assert o == pytest.approx(r, rel=0.15), (cb, ref, ours)

    def test_table_renders(self, table2):
        text = table2.table()
        assert "cb1" in text and "cb6" in text  # rows use cb ids, not keys
        assert "filter_transform_vlp16_rear" in text

    def test_comparison_renders(self, table2):
        assert "paper mWCET" in table2.comparison()

    def test_merged_dag_structure_stable(self, table2):
        checks = check_avp_dag(table2.merged_dag)
        failed = [name for name, ok in checks if not ok]
        assert not failed, failed


class TestFig4:
    def test_series_shapes(self, table2):
        result = fig4_from_table2(table2)
        for cb in ("cb1", "cb2", "cb5", "cb6"):
            series = result.series[cb]
            assert series.runs == len(table2.per_run_dags)

    def test_mwcet_monotonic_nondecreasing(self, table2):
        """Prefix maxima can only grow -- the Fig. 4 invariant."""
        result = fig4_from_table2(table2)
        for series in result.series.values():
            mwcets = [s.mwcet for s in series.stats]
            assert all(b >= a for a, b in zip(mwcets, mwcets[1:]))

    def test_mbcet_monotonic_nonincreasing(self, table2):
        result = fig4_from_table2(table2)
        for series in result.series.values():
            mbcets = [s.mbcet for s in series.stats]
            assert all(b <= a for a, b in zip(mbcets, mbcets[1:]))

    def test_macet_stable(self, table2):
        """Averages stabilise: last two prefix means within 10 %."""
        result = fig4_from_table2(table2)
        for series in result.series.values():
            a, b = series.stats[-2].macet, series.stats[-1].macet
            assert b == pytest.approx(a, rel=0.1)

    def test_table_renders(self, table2):
        text = fig4_from_table2(table2).table()
        assert "runs" in text


class TestOverhead:
    def test_overhead_report(self):
        result = run_overhead(duration_ns=5 * SEC)
        assert result.report.trace_bytes > 0
        # Probe load is a small fraction of app load (paper: ~0.3 %).
        assert result.report.probe_share_of_app < 0.05
        assert result.filter_reduction > 1.0
        assert "MB" in result.summary()

    def test_trace_volume_scales_with_duration(self):
        short = run_overhead(duration_ns=2 * SEC)
        long = run_overhead(duration_ns=4 * SEC)
        assert long.report.trace_bytes > short.report.trace_bytes

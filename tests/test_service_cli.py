"""Live synthesis service end to end: in-process and via the CLI.

Drives a real :class:`SynthesisService` over a socket -- pushes
recorded segments with :class:`ServiceClient` and through the
``serve`` / ``record --push`` / ``ingest`` / ``query`` subcommands in
separate processes -- and pins the served model byte-identical to the
batch pipeline over the same store.  Also covers ``store-info --watch``
re-printing under a concurrent writer.
"""

import json
import os
import re
import subprocess
import sys
import threading

import pytest

from repro.core import to_dot
from repro.experiments.batch import BatchConfig
from repro.sim.kernel import SEC
from repro.store import TraceStore, record_batch, synthesize_from_store
from repro.service import ServiceClient, ServiceError, SynthesisService

DURATION_NS = int(1.0 * SEC)
RUNS = 3


@pytest.fixture(scope="module")
def source(tmp_path_factory):
    """Recorded segments the service tests push around."""
    directory = str(tmp_path_factory.mktemp("service_cli") / "source")
    record_batch(
        "syn", runs=RUNS, directory=directory,
        config=BatchConfig(duration_ns=DURATION_NS),
    )
    return directory


def _segment_bytes(source, run_id):
    with open(TraceStore(source).path_of(run_id), "rb") as handle:
        return handle.read()


class _RunningService:
    """A SynthesisService served from a thread on an ephemeral port."""

    def __init__(self, directory, **kwargs):
        self.service = SynthesisService(directory, **kwargs)
        self._bound = threading.Event()
        self.address = None

        def ready(bound):
            self.address = bound
            self._bound.set()

        self.thread = threading.Thread(
            target=self.service.serve_forever,
            args=("127.0.0.1:0",),
            kwargs={"ready": ready, "max_seconds": 60.0},
            daemon=True,
        )
        self.thread.start()
        assert self._bound.wait(10.0), "service never bound"

    def stop(self):
        ServiceClient(self.address).shutdown()
        self.thread.join(timeout=10.0)
        assert not self.thread.is_alive()


class TestServiceEndToEnd:
    """Socket pushes + drop-dir arrivals -> queries, one live service."""

    def test_push_query_and_shutdown(self, source, tmp_path):
        directory = str(tmp_path / "served")
        drop = str(tmp_path / "drop")
        running = _RunningService(
            directory, drop_dir=drop, poll_interval=0.05
        )
        client = ServiceClient(running.address)
        try:
            assert client.ping()
            # Two runs arrive over the socket...
            for run_id in ("run000", "run001"):
                result = client.push_segment(
                    run_id, _segment_bytes(source, run_id)
                )
                assert result["run_id"] == run_id
                assert result["events"] > 0
            # ...and one through the drop directory.
            blob = _segment_bytes(source, "run002")
            staging = os.path.join(drop, "run002.trace.bin.part")
            with open(staging, "wb") as handle:
                handle.write(blob)
            os.replace(staging, os.path.join(drop, "run002.trace.bin"))
            deadline = threading.Event()
            for _ in range(200):
                if client.status()["counters"]["segments_ingested"] == 3:
                    break
                deadline.wait(0.05)
            status = client.status()
            assert status["retained_runs"] == ["run000", "run001", "run002"]
            assert status["counters"]["segments_ingested"] == 3
            assert status["counters"]["extends"] == 3
            assert status["counters"]["rebuilds"] == 0

            # The served model is the batch pipeline's, byte for byte.
            batch = synthesize_from_store(TraceStore(directory), jobs=1)
            assert client.model("dot") == to_dot(batch)

            chains = client.chains()
            assert chains and all(chain for chain in chains)
            latency = client.latency(["/t1"])
            assert latency["count"] > 0 and latency["min_ns"] > 0
            info = client.store_info()
            assert [run["run_id"] for run in info["runs"]] == [
                "run000", "run001", "run002",
            ]
            assert info["total_events"] > 0

            # Rejections: a duplicate run and garbage bytes.
            with pytest.raises(ServiceError, match="already stored"):
                client.push_segment("run000", _segment_bytes(source, "run000"))
            with pytest.raises(ServiceError, match="truncated"):
                client.push_segment("junk", b"definitely not a segment")
            assert client.status()["counters"]["segments_rejected"] == 2
        finally:
            running.stop()

    def test_service_catches_up_on_existing_store(self, source, tmp_path):
        # A service over an already-populated store serves it at once.
        running = _RunningService(source)
        client = ServiceClient(running.address)
        try:
            status = client.status()
            assert status["counters"]["segments_ingested"] == RUNS
            batch = synthesize_from_store(TraceStore(source), jobs=1)
            assert client.model("dot") == to_dot(batch)
        finally:
            running.stop()

    def test_retain_window_over_the_wire(self, source, tmp_path):
        directory = str(tmp_path / "window")
        running = _RunningService(directory, retain_window=2)
        client = ServiceClient(running.address)
        try:
            for run_id in ("run000", "run001", "run002"):
                client.push_segment(run_id, _segment_bytes(source, run_id))
            status = client.status()
            assert status["retained_runs"] == ["run001", "run002"]
            assert status["counters"]["runs_evicted"] == 1
            truncated = str(tmp_path / "truncated")
            os.makedirs(truncated)
            for run_id in ("run001", "run002"):
                with open(
                    os.path.join(truncated, run_id + ".trace.bin"), "wb"
                ) as handle:
                    handle.write(_segment_bytes(source, run_id))
            batch = synthesize_from_store(TraceStore(truncated), jobs=1)
            assert client.model("dot") == to_dot(batch)
        finally:
            running.stop()


def _cli(*args, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, **kwargs,
    )


@pytest.fixture()
def served_cli(tmp_path):
    """`repro serve` in a real subprocess on an ephemeral port."""
    directory = str(tmp_path / "cli_store")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", directory,
         "--socket", "127.0.0.1:0", "--poll-interval", "0.1",
         "--max-seconds", "120"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    address = None
    for _ in range(200):
        line = process.stdout.readline()
        if not line:
            break
        match = re.search(r"listening on (\S+)", line)
        if match:
            address = match.group(1)
            break
    assert address, "serve never reported its address"
    drain = threading.Thread(target=process.stdout.read, daemon=True)
    drain.start()
    yield directory, address, process
    if process.poll() is None:
        _cli("query", address, "shutdown")
        process.wait(timeout=15)


class TestServiceCli:
    """serve / record --push / ingest / query as real processes."""

    def test_record_push_query_roundtrip(self, served_cli, tmp_path):
        directory, address, process = served_cli
        pinged = _cli("query", address, "ping")
        assert pinged.returncode == 0 and "pong" in pinged.stdout

        # Push-only recording: no --out, segments stream to the service.
        recorded = _cli(
            "record", "syn", "--runs", "2", "--duration", "1",
            "--push", address,
        )
        assert recorded.returncode == 0, recorded.stdout + recorded.stderr
        assert "pushed 2 segment(s)" in recorded.stdout

        status = _cli("query", address, "status")
        assert status.returncode == 0
        payload = json.loads(status.stdout)
        assert payload["counters"]["segments_ingested"] == 2
        assert payload["retained_runs"] == ["run000", "run001"]

        # A separately recorded segment goes up via `repro ingest`.
        extra = str(tmp_path / "extra")
        record_batch(
            "syn", runs=3, directory=extra,
            config=BatchConfig(duration_ns=DURATION_NS),
        )
        ingested = _cli(
            "ingest", address, os.path.join(extra, "run002.trace.bin"),
        )
        assert ingested.returncode == 0, ingested.stdout + ingested.stderr
        assert "pushed run002" in ingested.stdout
        duplicate = _cli(
            "ingest", address, os.path.join(extra, "run002.trace.bin"),
        )
        assert duplicate.returncode == 2
        assert "already stored" in duplicate.stderr

        # The served DOT equals the batch pipeline over the same store.
        out = str(tmp_path / "live.dot")
        queried = _cli("query", address, "model", "--format", "dot",
                       "--out", out)
        assert queried.returncode == 0
        with open(out) as handle:
            served_dot = handle.read()
        assert served_dot == to_dot(
            synthesize_from_store(TraceStore(directory), jobs=1)
        )

        chains = _cli("query", address, "chains")
        assert chains.returncode == 0 and "->" in chains.stdout
        latency = _cli("query", address, "latency", "--topics", "/t1")
        assert latency.returncode == 0
        assert json.loads(latency.stdout)["count"] > 0

        shutdown = _cli("query", address, "shutdown")
        assert shutdown.returncode == 0
        assert process.wait(timeout=15) == 0

    def test_record_needs_out_or_push(self):
        result = _cli("record", "syn", "--runs", "1", "--duration", "1")
        assert result.returncode == 2
        assert "--out and/or --push" in result.stderr

    def test_query_errors_cleanly_when_service_is_gone(self):
        result = _cli("query", "127.0.0.1:1", "status")
        assert result.returncode == 2
        assert result.stderr.startswith("error:")


class TestStoreInfoWatch:
    """store-info --watch re-prints as a second process writes."""

    def test_watch_reprints_on_growth(self, tmp_path):
        directory = str(tmp_path / "watched")
        os.makedirs(directory)
        watch = subprocess.Popen(
            [sys.executable, "-m", "repro", "store-info", directory,
             "--watch", "--interval", "0.1", "--watch-count", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        writer = subprocess.Popen(
            [sys.executable, "-m", "repro", "record", "syn",
             "--runs", "1", "--duration", "1", "--out", directory],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        out, _ = watch.communicate(timeout=90)
        assert writer.wait(timeout=90) == 0
        assert watch.returncode == 0
        assert out.count("trace store") == 2
        assert "0 run(s)" in out and "1 run(s)" in out
        # The watcher never lists an in-flight staging file.
        assert ".tmp" not in out

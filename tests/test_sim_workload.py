"""Unit + property tests for the workload models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    Constant,
    Empirical,
    Hooked,
    Mixture,
    Scaled,
    ShiftedLognormal,
    TruncatedNormal,
    Uniform,
    ms,
    us,
)


def rng(seed=0):
    return np.random.default_rng(seed)


class TestConverters:
    def test_ms(self):
        assert ms(1) == 1_000_000
        assert ms(0.5) == 500_000
        assert ms(17.1) == 17_100_000

    def test_us(self):
        assert us(1) == 1_000
        assert us(2.5) == 2_500


class TestConstant:
    def test_always_same(self):
        model = Constant(ms(3))
        assert {model.sample(rng()) for _ in range(10)} == {ms(3)}

    def test_bounds(self):
        assert Constant(5).bounds() == (5, 5)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Constant(-1)


class TestUniform:
    def test_within_range(self):
        model = Uniform(10, 20)
        r = rng()
        samples = [model.sample(r) for _ in range(200)]
        assert all(10 <= s <= 20 for s in samples)
        assert min(samples) < 13 and max(samples) > 17  # spreads out

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Uniform(20, 10)
        with pytest.raises(ValueError):
            Uniform(-5, 10)


class TestTruncatedNormal:
    def test_within_bounds(self):
        model = TruncatedNormal(mean=ms(17), std=ms(2), low=ms(14), high=ms(20))
        r = rng()
        samples = [model.sample(r) for _ in range(500)]
        assert all(ms(14) <= s <= ms(20) for s in samples)

    def test_mean_close(self):
        model = TruncatedNormal(mean=ms(17), std=ms(1), low=ms(13), high=ms(21))
        r = rng()
        samples = [model.sample(r) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(ms(17), rel=0.02)

    def test_zero_std_is_clamped_mean(self):
        model = TruncatedNormal(mean=ms(30), std=0, low=ms(10), high=ms(20))
        assert model.sample(rng()) == ms(20)

    def test_empirical_max_approaches_bound(self):
        """The Fig. 4 mechanism: more samples -> max nearer the bound."""
        model = TruncatedNormal(mean=ms(17), std=ms(2), low=ms(10), high=ms(24))
        r = rng(1)
        few = max(model.sample(r) for _ in range(20))
        r = rng(1)
        many = max(model.sample(r) for _ in range(5000))
        assert many >= few
        assert many <= ms(24)


class TestShiftedLognormal:
    def test_support(self):
        model = ShiftedLognormal(base=ms(3), scale=ms(10), sigma=0.6, high=ms(60))
        r = rng()
        samples = [model.sample(r) for _ in range(1000)]
        assert all(ms(3) <= s <= ms(60) for s in samples)

    def test_right_skew(self):
        model = ShiftedLognormal(base=0, scale=ms(10), sigma=0.8, high=ms(1000))
        r = rng()
        samples = np.array([model.sample(r) for _ in range(3000)])
        assert np.mean(samples) > np.median(samples)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ShiftedLognormal(base=-1, scale=1, sigma=0.5, high=10)
        with pytest.raises(ValueError):
            ShiftedLognormal(base=10, scale=1, sigma=0.5, high=5)


class TestMixture:
    def test_component_selection_respects_weights(self):
        model = Mixture([(0.9, Constant(1)), (0.1, Constant(100))])
        r = rng()
        samples = [model.sample(r) for _ in range(2000)]
        share = samples.count(100) / len(samples)
        assert share == pytest.approx(0.1, abs=0.03)

    def test_bounds_union(self):
        model = Mixture([(1, Uniform(5, 10)), (1, Uniform(50, 60))])
        assert model.bounds() == (5, 60)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mixture([])

    def test_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            Mixture([(0.0, Constant(1))])


class TestEmpirical:
    def test_resamples_only_given_values(self):
        model = Empirical([3, 7, 11])
        r = rng()
        assert {model.sample(r) for _ in range(100)} <= {3, 7, 11}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Empirical([])


class TestScaledAndHooked:
    def test_scaled(self):
        model = Scaled(Constant(ms(2)), 2.5)
        assert model.sample(rng()) == ms(5)
        assert model.bounds() == (ms(5), ms(5))

    def test_hooked_switches_models(self):
        current = {"m": Constant(1)}
        model = Hooked(lambda: current["m"])
        r = rng()
        assert model.sample(r) == 1
        current["m"] = Constant(2)
        assert model.sample(r) == 2


class TestDeterminism:
    @settings(max_examples=25)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_same_seed_same_samples(self, seed):
        model = TruncatedNormal(mean=ms(10), std=ms(2), low=ms(5), high=ms(15))
        a = [model.sample(rng(seed)) for _ in range(5)]
        b = [model.sample(rng(seed)) for _ in range(5)]
        assert a == b

    @given(
        low=st.integers(min_value=0, max_value=10**6),
        width=st.integers(min_value=0, max_value=10**6),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=50)
    def test_uniform_always_in_bounds(self, low, width, seed):
        model = Uniform(low, low + width)
        assert low <= model.sample(rng(seed)) <= low + width

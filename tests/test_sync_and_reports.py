"""Tests for the approximate-time synchronizer policy and the report
formatting helpers of the analysis layer."""

import pytest

from repro.analysis import (
    enumerate_chains,
    format_activations,
    format_bounds,
    format_chains,
)
from repro.apps import build_avp
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.ros2 import ApproximateTimeSynchronizer, ExternalPublisher, Msg, Node
from repro.sim import MSEC, SEC
from repro.world import World


class TestApproximateTimeSynchronizer:
    def build(self, slop_ms=30, phase_b_ms=12):
        world = World(num_cpus=2, seed=6, dds_latency_ns=0)
        node = Node(world, "fusion")
        s1 = node.create_subscription("/a", label="A")
        s2 = node.create_subscription("/b", label="B")
        fused = []
        sync = ApproximateTimeSynchronizer(
            [s1, s2],
            lambda api, msgs: fused.append(tuple(m.stamp for m in msgs)),
            slop_ns=slop_ms * MSEC,
        )
        ExternalPublisher(world, "/a", period_ns=100 * MSEC, phase_ns=0).start()
        ExternalPublisher(world, "/b", period_ns=100 * MSEC,
                          phase_ns=phase_b_ms * MSEC).start()
        world.launch()
        world.run(for_ns=2 * SEC)
        return fused, sync

    def test_matches_within_slop(self):
        fused, sync = self.build(slop_ms=30, phase_b_ms=12)
        assert len(fused) >= 18
        for stamp_a, stamp_b in fused:
            assert abs(stamp_a - stamp_b) <= 30 * MSEC

    def test_no_matches_beyond_slop(self):
        fused, sync = self.build(slop_ms=5, phase_b_ms=40)
        assert fused == []
        assert sync.matches == 0

    def test_requires_positive_slop(self):
        world = World()
        node = Node(world, "n")
        s1 = node.create_subscription("/a")
        s2 = node.create_subscription("/b")
        with pytest.raises(ValueError):
            ApproximateTimeSynchronizer([s1, s2], lambda api, m: None, slop_ns=0)

    def test_pairs_nearest_not_stale(self):
        """After a dropped sample, matching resumes with fresh pairs
        rather than pairing a new /a with an ancient /b."""
        world = World(num_cpus=2, seed=8, dds_latency_ns=0)
        node = Node(world, "fusion")
        s1 = node.create_subscription("/a")
        s2 = node.create_subscription("/b")
        fused = []
        ApproximateTimeSynchronizer(
            [s1, s2],
            lambda api, msgs: fused.append(tuple(m.stamp for m in msgs)),
            slop_ns=20 * MSEC,
        )
        # /b publishes at half the rate of /a.
        ExternalPublisher(world, "/a", period_ns=100 * MSEC).start()
        ExternalPublisher(world, "/b", period_ns=200 * MSEC).start()
        world.launch()
        world.run(for_ns=2 * SEC)
        assert fused
        for stamp_a, stamp_b in fused:
            assert abs(stamp_a - stamp_b) <= 20 * MSEC


@pytest.fixture(scope="module")
def avp_dag():
    config = RunConfig(duration_ns=6 * SEC, base_seed=31, num_cpus=4)
    result = run_once(lambda w, i: build_avp(w), config)
    return synthesize_from_trace(result.trace, pids=result.apps.pids)


class TestReportFormatters:
    def test_format_chains_lists_all(self, avp_dag):
        chains = enumerate_chains(avp_dag)
        text = format_chains(avp_dag, chains)
        assert text.count("sum WCET") == len(chains)

    def test_format_bounds_has_one_row_per_chain(self, avp_dag):
        chains = enumerate_chains(avp_dag)
        text = format_bounds(avp_dag, chains, comm_latency_ns=50_000)
        assert len(text.splitlines()) == 1 + len(chains)

    def test_format_activations_covers_measured_callbacks(self, avp_dag):
        text = format_activations(avp_dag)
        for cb in ("cb1", "cb2", "cb5", "cb6"):
            assert cb in text

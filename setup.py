from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Trace-enabled timing-model synthesis for ROS2 applications "
        "(DATE 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    # numpy is a hard dependency of the simulator (workload sampling
    # draws from numpy Generators); the trace-store read paths merely
    # *prefer* it and degrade to pure-Python scalar loops when
    # REPRO_NO_NUMPY=1 (or numpy is missing) -- see repro/core/npcompat.
    install_requires=["numpy"],
    extras_require={"test": ["pytest", "hypothesis"]},
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)

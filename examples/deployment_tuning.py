#!/usr/bin/env python3
"""Deployment tuning from a synthesized model (Sec. VI's motivation).

The paper argues the measured models are useful "even for simple
debugging and optimization, e.g., balancing load across processor cores
or keeping the load below a certain threshold while determining core
bindings of ROS2 nodes".  This example closes that loop:

1. trace a randomly generated application on an unconstrained machine,
2. synthesize the model and compute per-node loads,
3. ask the analysis layer for a core binding under a 60 % per-CPU cap,
4. re-deploy with that binding and verify the per-CPU load prediction
   against the scheduler's actual utilization accounting.

Run:  python examples/deployment_tuning.py
"""

from repro.analysis import check_binding, format_loads, node_loads, suggest_binding
from repro.apps import GeneratorConfig, generate_app
from repro.core import synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC

GEN_CONFIG = GeneratorConfig(
    num_nodes=5, num_chains=4, chain_length=3, service_probability=0.25
)


def main() -> None:
    print("step 1: trace the application (8 s, unconstrained machine)...")
    config = RunConfig(duration_ns=8 * SEC, base_seed=33, num_cpus=4)
    result = run_once(lambda w, i: generate_app(w, GEN_CONFIG, seed=17), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)

    print("\nstep 2: measured load profile")
    print(format_loads(dag))
    loads = node_loads(dag)
    print(f"\ntotal demand: {sum(loads.values()):.2f} cores")

    print("\nstep 3: derive a core binding (cap: 60% per CPU)")
    binding = suggest_binding(dag, num_cpus=2, threshold=0.6)
    predicted = check_binding(dag, binding, num_cpus=2, threshold=0.6)
    for node, cpu in sorted(binding.items()):
        print(f"  {node:<12} -> cpu {cpu}")
    for cpu, load in sorted(predicted.items()):
        print(f"  predicted cpu{cpu} load: {load:.1%}")

    print("\nstep 4: re-deploy with the binding and verify")
    config2 = RunConfig(duration_ns=8 * SEC, base_seed=34, num_cpus=2)

    def rebound_builder(world, run_index):
        app = generate_app(world, GEN_CONFIG, seed=17)
        for node in app.nodes:
            node.affinity = [binding[node.name]]
        return app

    result2 = run_once(rebound_builder, config2)
    actual = result2.world.scheduler.utilization()
    for cpu, load in enumerate(actual):
        print(
            f"  actual cpu{cpu} load: {load:.1%} "
            f"(predicted {predicted.get(cpu, 0.0):.1%})"
        )
    worst = max(
        abs(actual[cpu] - predicted.get(cpu, 0.0)) for cpu in range(len(actual))
    )
    print(f"\nworst prediction error: {worst:.1%}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""SYN: the paper's synthetic application (Fig. 3a) with measurement
validation.

Traces SYN, synthesizes its DAG and demonstrates the framework's
structural findings (i)-(v) from Sec. VI.  Then validates measurement
accuracy the way the paper does: every SYN callback has a *constant*
designed execution time, so every Alg. 2 sample must match it exactly
-- even though the callbacks get preempted.

Run:  python examples/syn_application.py
"""

from repro.apps import build_syn
from repro.core import format_edges, synthesize_from_trace, to_dot
from repro.experiments import RunConfig, check_syn_dag, run_once
from repro.sim import SEC


def main() -> None:
    print("tracing SYN (12 s, all six nodes on two shared CPUs)...")
    config = RunConfig(duration_ns=12 * SEC, base_seed=42, num_cpus=2)
    result = run_once(lambda world, i: build_syn(world, affinity=[0, 1]), config)
    app = result.apps
    dag = synthesize_from_trace(result.trace, pids=app.pids)

    print("\n== Fig. 3a: callbacks and precedence relations ==")
    print(format_edges(dag))

    print("\n== Structural scenarios (Sec. VI) ==")
    for name, ok in check_syn_dag(dag):
        print(f"  [{'PASS' if ok else 'FAIL'}] {name}")

    print("\n== Measurement validation: designed vs measured ==")
    header = f"{'CB':<7} {'designed':>10} {'measured(all samples)':>22} {'exact':>6}"
    print(header)
    print("-" * len(header))
    for vertex in sorted(dag.vertices(), key=lambda v: v.cb_id):
        if vertex.is_and_junction:
            continue
        designed = app.designed_exec_time(vertex.cb_id)
        unique = set(vertex.exec_times)
        exact = unique == {designed}
        print(
            f"{vertex.cb_id:<7} {designed / 1e6:>8.2f}ms "
            f"{', '.join(f'{u / 1e6:.2f}' for u in sorted(unique)):>20}ms "
            f"{'yes' if exact else 'NO':>6}"
        )

    print("\n== Graphviz DOT (render with `dot -Tpng`) ==")
    print(to_dot(dag, title="syn"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Multi-mode timing models (Sec. V, processing possibility iv).

The paper notes that traces can be merged *per operating mode* -- e.g.
city vs highway driving -- yielding one timing DAG per mode.  This
example runs the AVP pipeline in two modes with different NDT solver
behaviour (parking-lot maneuvering converges slowly; steady cruising
converges fast), builds a :class:`MultiModeDag`, and compares the
per-mode cb6 statistics with the mode-agnostic union model.

Run:  python examples/multi_mode_driving.py
"""

from repro.apps import build_avp, default_workloads
from repro.core import MultiModeDag, dag_per_trace
from repro.experiments import RunConfig, run_many
from repro.sim import SEC, ShiftedLognormal, Uniform, Mixture, ms


def mode_workloads(mode: str):
    """AVP workloads with a mode-dependent NDT profile."""
    w = default_workloads()
    if mode == "maneuvering":
        # Tight turns, poor initial guesses: slow convergence.
        w["cb6"] = ShiftedLognormal(base=ms(8), scale=ms(24), sigma=0.5, high=ms(75))
    else:  # cruising
        w["cb6"] = Mixture(
            [
                (0.9, Uniform(ms(3), ms(12))),
                (0.1, ShiftedLognormal(base=ms(5), scale=ms(8), sigma=0.4, high=ms(30))),
            ]
        )
    return w


def main() -> None:
    runs_per_mode = 4
    multi = MultiModeDag()
    traces_by_mode = {}
    pids = None
    for mode in ("maneuvering", "cruising"):
        print(f"tracing {runs_per_mode} runs in mode {mode!r}...")
        config = RunConfig(
            duration_ns=8 * SEC,
            base_seed=500 if mode == "maneuvering" else 900,
            num_cpus=4,
        )
        results = run_many(
            lambda world, i: build_avp(world, workloads=mode_workloads(mode)),
            runs=runs_per_mode,
            config=config,
        )
        traces_by_mode[mode] = [r.trace for r in results]
        pids = results[0].apps.pids
        cb_keys = results[0].apps.cb_keys

    multi = MultiModeDag.from_mode_traces(traces_by_mode, pids=pids)

    print("\n== NDT localizer (cb6) per mode ==")
    key = cb_keys["cb6"]
    for mode in multi.modes():
        stats = multi.dag(mode).vertex(key).exec_stats
        print(f"  {mode:<12} {stats}")
    union = multi.union()
    print(f"  {'union':<12} {union.vertex(key).exec_stats}")

    print("\nA mode-agnostic WCET over-constrains the cruising mode:")
    cruising = multi.dag("cruising").vertex(key).exec_stats.mwcet
    agnostic = union.vertex(key).exec_stats.mwcet
    print(
        f"  cruising-only mWCET {cruising / 1e6:.1f} ms vs "
        f"mode-agnostic {agnostic / 1e6:.1f} ms "
        f"({agnostic / cruising:.1f}x pessimism)"
    )


if __name__ == "__main__":
    main()

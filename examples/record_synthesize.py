"""The record -> store -> synthesize workflow (the Fig. 2 database).

Four stages:

1. record a registered scenario's runs straight into a binary trace
   store -- each run streams through a spooling sink, so memory stays
   bounded no matter how long the runs are;
2. inspect the store: per-run segment readers decode lazily and can
   select single PIDs without materializing anything else;
3. synthesize the timing model out-of-core with PID-sharded
   multi-process extraction -- byte-identical to the in-memory
   pipeline for any job count;
4. show a legacy gzip-JSON database converting into the store format.

Run with::

    PYTHONPATH=src python examples/record_synthesize.py
"""

import os
import tempfile

from repro.core import dag_to_json, format_exec_table, synthesize_from_trace
from repro.experiments import BatchConfig
from repro.sim import SEC
from repro.store import TraceStore, record_batch, synthesize_from_store
from repro.tracing.storage import save_trace

# ----------------------------------------------------------------------
# 1. Record: scenario -> store directory of binary segments.

workdir = tempfile.mkdtemp(prefix="repro-store-example-")
store_dir = os.path.join(workdir, "traces")

result = record_batch(
    "sensor-fusion",
    runs=4,
    directory=store_dir,
    jobs=2,
    config=BatchConfig(duration_ns=2 * SEC),
)
print(f"recorded {len(result.runs)} runs, {result.total_events} events, "
      f"{result.total_bytes / 1024:.0f} KiB "
      f"({result.total_bytes / result.total_events:.1f} B/event)")

# ----------------------------------------------------------------------
# 2. Inspect: lazy per-run readers.

store = TraceStore(store_dir)
reader = store.open(result.run_ids[0])
first_pid = reader.pids()[0]
only_first = sum(1 for _ in reader.iter_ros(pids=[first_pid]))
print(f"run {result.run_ids[0]}: {reader.num_ros_events} ROS events "
      f"from PIDs {reader.ros_pids()}, {only_first} from PID {first_pid} "
      f"({reader.pid_map[first_pid]})")

# ----------------------------------------------------------------------
# 3. Synthesize out-of-core, sharded by PID.

dag = synthesize_from_store(store, jobs=2)
print()
print(format_exec_table(dag))

# Identical to merging in memory:
inline = synthesize_from_trace(store.merged_trace())
assert dag_to_json(dag) == dag_to_json(inline)
print("\nstore-backed model == in-memory model: OK")

# ----------------------------------------------------------------------
# 4. Legacy gzip-JSON traces live side by side and convert in place.

legacy_path = os.path.join(store_dir, "legacy.trace.json.gz")
save_trace(store.load(result.run_ids[0]), legacy_path)
mixed = TraceStore(store_dir)
converted = mixed.convert_legacy()
print(f"converted {len(converted)} legacy run(s); "
      f"store now holds {len(mixed)} runs: {mixed.run_ids()}")

"""Scenario registry + parallel batch runner walkthrough.

Three stages:

1. define a custom application declaratively with :class:`ScenarioSpec`
   -- the spec doubles as the ground-truth oracle for its own topology;
2. trace it once and check the synthesized DAG against the declared
   edges;
3. run a *registered* scenario many times across worker processes with
   the batch runner and merge the per-run models (the Sec. V strategy
   behind Table II / Fig. 4).

Run with::

    PYTHONPATH=src python examples/batch_scenarios.py
"""

from repro.core import format_exec_table, synthesize_from_trace
from repro.experiments import BatchConfig, RunConfig, run_batch, run_once
from repro.scenarios import (
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioSpec,
    SubscriptionSpec,
    TimerSpec,
    scenario_names,
)
from repro.sim import SEC, ms
from repro.sim.workload import Constant, TruncatedNormal

# ----------------------------------------------------------------------
# 1. A custom scenario, declared as data.

SPEC = ScenarioSpec(
    name="conveyor",
    description="a camera-triggered pick-and-place cell",
    nodes=(
        NodeSpec("camera"),
        NodeSpec("detector"),
        NodeSpec("arm_controller"),
    ),
    timers=(
        TimerSpec(
            node="camera",
            label="GRAB",
            period_ns=ms(50),
            work=Constant(ms(1.5)),
            publishes=("/frames",),
        ),
    ),
    subscriptions=(
        SubscriptionSpec(
            node="detector",
            label="DETECT",
            topic="/frames",
            work=TruncatedNormal(ms(6.0), ms(0.8), ms(4.0), ms(9.0)),
            publishes=("/poses",),
        ),
        SubscriptionSpec(
            node="arm_controller",
            label="MOVE",
            topic="/poses",
            work=Constant(ms(2.0)),
        ),
        SubscriptionSpec(
            node="arm_controller",
            label="ESTOP",
            topic="/safety",
            work=Constant(ms(0.2)),
        ),
    ),
    external_publishers=(
        ExternalPublisherSpec("/safety", ms(500)),
    ),
    num_cpus=2,
)


def trace_custom_scenario():
    print("== custom scenario: declared topology is the oracle ==")
    config = RunConfig(duration_ns=3 * SEC, base_seed=7, num_cpus=SPEC.num_cpus)
    result = run_once(lambda world, i: SPEC.build(world), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)
    actual = {(e.src, e.dst) for e in dag.edges()}
    assert actual == SPEC.expected_edge_pairs(), "synthesis missed the topology!"
    for src, dst in sorted(actual):
        print(f"  {src} -> {dst}")
    print("  (matches ScenarioSpec.expected_edge_pairs exactly)\n")


def run_registered_batch():
    print("== registry + batch runner ==")
    print("registered scenarios:", ", ".join(scenario_names()))
    result = run_batch(
        "sensor-fusion",
        runs=6,
        jobs=3,  # results are identical for any job count
        config=BatchConfig(duration_ns=3 * SEC, base_seed=42, collect_traces=False),
    )
    print(f"\nmerged model over {result.runs} runs "
          f"({result.merged_dag.num_vertices} vertices):\n")
    print(format_exec_table(result.merged_dag))


if __name__ == "__main__":
    trace_custom_scenario()
    run_registered_batch()

#!/usr/bin/env python3
"""Quickstart: trace a two-node ROS2 application and synthesize its
timing model.

Builds a machine with a talker (timer -> publish) and a listener
(subscriber), traces it with the eBPF-style tracers, and prints the
synthesized DAG with measured execution-time statistics.

Run:  python examples/quickstart.py
"""

from repro import Msg, Node, TracingSession, World, synthesize_from_trace
from repro.core import format_edges, format_exec_table, to_dot
from repro.sim import MSEC, SEC


def main() -> None:
    # 1. A simulated 2-CPU machine.
    world = World(num_cpus=2, seed=1)

    # 2. A tiny application: 10 Hz camera-style pipeline.
    talker = Node(world, "camera_driver")
    listener = Node(world, "object_detector")
    pub = talker.create_publisher("/image")

    def capture(api, msg):
        yield api.compute(3 * MSEC)  # grab + encode
        api.publish(pub, Msg(stamp=api.now))

    def detect(api, msg):
        yield api.compute(8 * MSEC)  # inference

    talker.create_timer(100 * MSEC, capture, label="capture")
    listener.create_subscription("/image", detect, label="detect")

    # 3. Trace it: TR-IN before launch, TR-RT + TR-KN for the runtime.
    session = TracingSession(world)
    session.start_init()
    world.launch()
    world.run(for_ns=2 * MSEC)  # nodes announce themselves
    session.stop_init()
    session.start_runtime()
    world.run(for_ns=10 * SEC)
    session.stop_runtime()

    # 4. Synthesize the timing model (Alg. 1 + Alg. 2 + DAG rules).
    trace = session.trace()
    dag = synthesize_from_trace(trace)
    dag.validate()

    print("== Synthesized timing model ==")
    print(format_edges(dag))
    print()
    print(format_exec_table(dag))
    print()
    capture_vertex = dag.vertex("camera_driver/capture")
    print(f"estimated capture period: {capture_vertex.period_ns / 1e6:.1f} ms")
    print()
    print("== Graphviz DOT ==")
    print(to_dot(dag, title="quickstart"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""AVP LIDAR localization: the paper's real-world case study (Sec. VI).

Traces the Autonomous-Valet-Parking localization pipeline, synthesizes
its timing model (Fig. 3b), prints the Table II-style execution-time
statistics, and runs the downstream analyses the model enables:
end-to-end latency, processor load (the '27 % for cb2' observation),
and chain response-time bounds.

Run:  python examples/avp_localization.py
"""

import statistics

from repro.analysis import (
    chain_response_bound,
    communication_latencies,
    enumerate_chains,
    format_chains,
    format_loads,
    measure_chain_latencies,
)
from repro.apps import build_avp
from repro.core import format_edges, format_exec_table, synthesize_from_trace
from repro.experiments import RunConfig, run_once
from repro.sim import SEC


def main() -> None:
    print("tracing the AVP localization demo (20 s)...")
    config = RunConfig(duration_ns=20 * SEC, base_seed=7, num_cpus=4)
    result = run_once(lambda world, i: build_avp(world), config)
    app = result.apps
    dag = synthesize_from_trace(result.trace, pids=app.pids)
    dag.validate()

    print("\n== Fig. 3b: the localization DAG ==")
    print(format_edges(dag))

    print("\n== Table II-style execution times (single run) ==")
    names = {key: cb for cb, key in app.cb_keys.items()}
    print(format_exec_table(dag, order=sorted(app.cb_keys.values()), names=names))

    print("\n== Computation chains ==")
    chains = enumerate_chains(dag)
    print(format_chains(dag, chains))

    print("\n== End-to-end latency (front LIDAR -> pose) ==")
    latencies = measure_chain_latencies(
        result.trace,
        [
            "lidar_front/points_raw",
            "lidar_front/points_filtered",
            "lidars/points_fused",
            "lidars/points_fused_downsampled",
        ],
    )
    values_ms = [l.latency_ns / 1e6 for l in latencies]
    print(
        f"{len(values_ms)} journeys: min {min(values_ms):.1f} ms, "
        f"median {statistics.median(values_ms):.1f} ms, "
        f"max {max(values_ms):.1f} ms"
    )

    print("\n== Processor load per callback ==")
    print(format_loads(dag))

    print("\n== Response-time bounds (simplified Casini-style) ==")
    comm = communication_latencies(result.trace, "lidars/points_fused")
    comm_bound = max(comm) if comm else 0
    for chain in chains:
        bound = chain_response_bound(dag, chain, comm_latency_ns=comm_bound)
        print(f"  {chain.describe(dag)}")
        print(f"    bound: {bound / 1e6:.2f} ms")


if __name__ == "__main__":
    main()

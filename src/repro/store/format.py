"""The binary trace-segment format (``.trace.bin``).

One file stores one run's complete trace in a struct-packed *columnar*
layout: a fixed header, a string table (probe names, process names,
topic payloads), the PID map, then one section per event stream where
every field lives in its own contiguous fixed-width column.  Columnar
storage is what makes the readers cheap: selecting a PID range scans a
single ``int32`` column, and a consumer that only needs timestamps
never touches anything else.

Layout (all integers little-endian)::

    header     magic "RPROSEG1", version u16, flags u16,
               n_strings u32, n_pids u32,
               n_ros u64, n_sched u64, n_wakeup u64,
               start_ts i64, stop_ts i64
    pid_map    n_pids x (pid i32, name byte-length i32 [-1 = None],
               UTF-8 bytes) -- self-contained and first, so consumers
               needing only the traced PIDs (shard planning) decode a
               short body prefix instead of the whole segment
    strings    n_strings x (u32 byte-length + UTF-8 bytes), id = position
    ros        columns  ts i64 | pid i32 | probe u32 | data u32
    sched      columns  ts i64 | cpu i32 | prev_pid i32 | prev_comm u32
               | prev_prio i32 | prev_state u32 | next_pid i32
               | next_comm u32 | next_prio i32
    wakeup     columns  ts i64 | cpu i32 | pid i32 | comm u32 | prio i32

Strings are deduplicated; event payloads (``TraceEvent.data``) are
stored as canonical compact JSON *in the string table* and referenced
by id, so the per-event record stays fixed-width while arbitrary
payloads round-trip losslessly (the same JSON-value domain the legacy
gzip-JSON storage already imposes).  ``NONE_ID`` marks absent strings;
``NONE_CPU`` marks a wakeup without a CPU.  On big-endian hosts columns are byteswapped on the way in/out;
the on-disk format is always little-endian.

With ``FLAG_ZLIB_BODY`` set (the writer default) everything after the
header is one zlib stream: segment files then land at gzip-JSON size
while decoding still skips the JSON parse entirely (the inflate is
~5% of the decode).  Uncompressed segments (``compress=False``) trade
bytes for zero-copy column views.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List, Sequence, Tuple

#: File suffix of binary trace segments (next to the legacy
#: ``.trace.json.gz`` suffix of :mod:`repro.tracing.storage`).
SEGMENT_SUFFIX = ".trace.bin"

MAGIC = b"RPROSEG1"
VERSION = 1

#: Header flag: the body (everything after the header) is one zlib stream.
FLAG_ZLIB_BODY = 1
#: zlib level used by the writer (measured knee: ~gzip-JSON size at
#: sub-millisecond inflate on evaluation-sized segments).
ZLIB_LEVEL = 3

#: String id marking "no string" (``None``).
NONE_ID = 0xFFFFFFFF
#: CPU column sentinel for ``SchedWakeup.cpu is None``.
NONE_CPU = -(1 << 31)

#: Header: magic, version, flags, n_strings, n_pids, n_ros, n_sched,
#: n_wakeup, start_ts, stop_ts.
HEADER = struct.Struct("<8sHHIIQQQqq")

#: One pid_map entry prefix: pid, name byte length (-1 = None).
PID_ENTRY = struct.Struct("<ii")

#: (array typecode, itemsize) per column, section by section.  ``q`` is
#: i64, ``i`` is i32, ``I`` is u32.
ROS_COLUMNS: Tuple[str, ...] = ("q", "i", "I", "I")
SCHED_COLUMNS: Tuple[str, ...] = ("q", "i", "i", "I", "i", "I", "i", "I", "i")
WAKEUP_COLUMNS: Tuple[str, ...] = ("q", "i", "i", "I", "i")

_BIG_ENDIAN = sys.byteorder == "big"


class StoreFormatError(ValueError):
    """Raised when a segment file is not a readable ``.trace.bin``."""


def column_bytes(column: array) -> bytes:
    """Serialize one column little-endian (byteswapping if needed)."""
    if _BIG_ENDIAN:
        column = array(column.typecode, column)
        column.byteswap()
    return column.tobytes()


def column_from_bytes(typecode: str, raw: bytes) -> array:
    """Deserialize one little-endian column into a native array."""
    column = array(typecode)
    column.frombytes(raw)
    if _BIG_ENDIAN:
        column.byteswap()
    return column


class IncompletePrefix(ValueError):
    """Internal: a streaming parse ran past the bytes available so far."""


def pack_pid_map(pid_map) -> bytes:
    """Serialize the PID -> node-name map (self-contained section)."""
    parts: List[bytes] = []
    for pid in sorted(pid_map):
        name = pid_map[pid]
        if name is None:
            parts.append(PID_ENTRY.pack(pid, -1))
        else:
            encoded = name.encode("utf-8")
            parts.append(PID_ENTRY.pack(pid, len(encoded)))
            parts.append(encoded)
    return b"".join(parts)


def unpack_pid_map(raw, offset: int, count: int):
    """Decode ``count`` pid_map entries; returns (pid_map, next offset).

    Raises :class:`IncompletePrefix` when ``raw`` ends mid-section, so
    streaming consumers can feed more bytes and retry.
    """
    pid_map = {}
    for _ in range(count):
        if offset + PID_ENTRY.size > len(raw):
            raise IncompletePrefix("pid_map entry header past buffer end")
        pid, length = PID_ENTRY.unpack_from(raw, offset)
        offset += PID_ENTRY.size
        if length < 0:
            pid_map[pid] = None
        else:
            if offset + length > len(raw):
                raise IncompletePrefix("pid_map name past buffer end")
            pid_map[pid] = bytes(raw[offset:offset + length]).decode("utf-8")
            offset += length
    return pid_map, offset


def pack_strings(strings: Sequence[str]) -> bytes:
    """Serialize the string table (length-prefixed UTF-8)."""
    parts: List[bytes] = []
    for text in strings:
        encoded = text.encode("utf-8")
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def unpack_strings(raw, offset: int, count: int) -> Tuple[List[str], int]:
    """Decode ``count`` strings starting at ``offset`` of a bytes-like
    buffer; returns (strings, offset past the table)."""
    strings: List[str] = []
    unpack_len = struct.Struct("<I").unpack_from
    for _ in range(count):
        (length,) = unpack_len(raw, offset)
        offset += 4
        strings.append(bytes(raw[offset:offset + length]).decode("utf-8"))
        offset += length
    return strings, offset


def pack_header(
    n_strings: int,
    n_pids: int,
    n_ros: int,
    n_sched: int,
    n_wakeup: int,
    start_ts: int,
    stop_ts: int,
    flags: int = 0,
) -> bytes:
    return HEADER.pack(
        MAGIC, VERSION, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup,
        start_ts, stop_ts,
    )


def unpack_header(raw: bytes) -> Tuple[int, int, int, int, int, int, int, int]:
    """Validate magic/version; returns (flags, n_strings, n_pids, n_ros,
    n_sched, n_wakeup, start_ts, stop_ts)."""
    if len(raw) < HEADER.size:
        raise StoreFormatError(
            f"truncated segment: {len(raw)} bytes < {HEADER.size}-byte header"
        )
    magic, version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup, start, stop = (
        HEADER.unpack_from(raw, 0)
    )
    if magic != MAGIC:
        raise StoreFormatError(f"bad magic {magic!r}; not a {SEGMENT_SUFFIX} file")
    if version != VERSION:
        raise StoreFormatError(
            f"unsupported segment version {version} (writer supports {VERSION})"
        )
    return flags, n_strings, n_pids, n_ros, n_sched, n_wakeup, start, stop

"""The binary trace-segment format (``.trace.bin``), versions 1, 2 and 3.

One file stores one run's complete trace in a struct-packed *columnar*
layout: a fixed header, a string table (probe names, process names,
payload strings), the PID map, then one section per event stream where
every field lives in its own contiguous fixed-width column.  Columnar
storage is what makes the readers cheap: selecting a PID range scans a
single ``int32`` column, and a consumer that only needs timestamps
never touches anything else.

Common layout (all integers little-endian)::

    header     magic "RPROSEG1", version u16, flags u16,
               n_strings u32, n_pids u32,
               n_ros u64, n_sched u64, n_wakeup u64,
               start_ts i64, stop_ts i64
    pid_map    n_pids x (pid i32, name byte-length i32 [-1 = None],
               UTF-8 bytes) -- self-contained and first, so consumers
               needing only the traced PIDs (shard planning) decode a
               short body prefix instead of the whole segment
    strings    n_strings x (u32 byte-length + UTF-8 bytes), id = position
    ...        per-version payload sections (below)
    ros        per-version columns (below)
    sched      columns  ts i64 | cpu i32 | prev_pid i32 | prev_comm u32
               | prev_prio i32 | prev_state u32 | next_pid i32
               | next_comm u32 | next_prio i32
    wakeup     columns  ts i64 | cpu i32 | pid i32 | comm u32 | prio i32

**Version 1** stores event payloads (``TraceEvent.data``) as canonical
compact JSON interned in the string table::

    ros        columns  ts i64 | pid i32 | probe u32 | data u32

where ``data`` is the string id of the payload JSON (``NONE_ID`` for the
empty payload).  Every payload read costs a JSON parse, and a segment
full of distinct payloads (per-message ``src_ts``) stores one JSON
string per event.

**Version 2** (the writer default) stores payloads whose values fit the
closed schema the domain actually uses -- ints, floats, bools, strings,
``None`` -- as *typed per-field columns*, grouped by **shape**.  A shape
is the ordered tuple of ``(field name, field type)`` pairs of a payload
dict; every payload of the same shape appends one value per field to
that shape's columns.  Between the string table and the ros section v2
adds::

    shapes     n_shapes u32; per shape:
                   n_rows u64, n_fields u32,
                   n_fields x (name string-id u32, type u8)
    columns    per shape (id order), per non-NONE field (shape order):
                   one column of n_rows values
    ros        columns  ts i64 | pid i32 | probe u32 | shape u32 | vidx u32

Field types: ``FIELD_INT`` (i64), ``FIELD_FLOAT`` (f64), ``FIELD_STR``
(u32 interned string id), ``FIELD_BOOL`` (i8), ``FIELD_NONE`` (the
value is always ``None``; no column is stored).  A row's ``shape``
column holds its shape id, ``vidx`` its position in that shape's
columns.  ``shape == NONE_ID`` marks the empty payload; ``shape ==
SHAPE_JSON`` marks a row whose payload does not fit the schema (nested
containers, out-of-range ints, non-string keys) -- ``vidx`` is then the
string id of its canonical-JSON encoding, exactly the v1
representation, so arbitrary payloads still round-trip losslessly.

Because a shape pins the type of every field, columns never need
null sentinels, dict reconstruction preserves the original key order,
and the Alg. 1 hot path resolves ``cb_id``/``topic``/``src_ts``
straight from int/string-id columns with no JSON scan.

Strings are deduplicated; ``NONE_ID`` marks absent strings; ``NONE_CPU``
marks a wakeup without a CPU.  On big-endian hosts columns are
byteswapped on the way in/out; the on-disk format is always
little-endian.

In v1/v2, with ``FLAG_ZLIB_BODY`` set (the writer default) everything
after the header is one zlib stream: segment files then land at
gzip-JSON size while decoding still skips the JSON parse entirely.
Uncompressed segments (``compress=False``) trade bytes for zero-copy
column views.

**Version 3** (the writer default) keeps the v2 payload encoding but
replaces the single body stream with *per-section compression*: every
section -- the pid_map, the string table, the shape directory, each
payload column, and each individual ros/sched/wakeup column -- is its
own independently-deflated stream, addressed by a **section directory**
that sits uncompressed right after the header::

    directory  n_sections u32; per section:
                   kind u8, comp u8, index u16,
                   offset u64, comp_len u64, raw_len u64
    sections   concatenated streams; ``offset`` is relative to the end
               of the directory, ``comp`` is 0 (raw) or 1 (zlib)

Section kinds: ``SECTION_PID_MAP`` / ``SECTION_STRINGS`` /
``SECTION_SHAPES`` (the shape directory) carry ``index`` 0;
``SECTION_PAYLOAD`` columns are numbered flat in shape-id order, field
order (FIELD_NONE fields store no column); ``SECTION_ROS`` /
``SECTION_SCHED`` / ``SECTION_WAKEUP`` columns are numbered by their
position in the v2 column tuples.  The writer deflates each section
independently and keeps the raw bytes whenever deflate does not shrink
them (tiny sections), so every stream stays self-describing.

What the directory buys readers is *section-selective I/O*:
``peek_header`` still reads the fixed header only, ``read_pid_map``
seeks straight to the pid_map stream and inflates nothing else, and the
Alg. 1 walk (``walk_rows`` / ``walk_fastpath``) touches the ros columns
and only the payload columns of the shapes it actually dereferences --
sched columns beyond ``(ts, prev_pid, next_pid)`` and the wakeup
section never inflate during synthesis.  An uncompressed v3 segment
(``comp`` 0 everywhere) is the mmap-friendly layout the store's
segment cache materializes: every column is a zero-copy
``memoryview.cast`` straight out of the page cache.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List, NamedTuple, Sequence, Tuple

#: File suffix of binary trace segments (next to the legacy
#: ``.trace.json.gz`` suffix of :mod:`repro.tracing.storage`).
SEGMENT_SUFFIX = ".trace.bin"

MAGIC = b"RPROSEG1"
#: Current writer default (v2 payload encoding + per-section streams).
VERSION = 3
#: Version byte of the JSON-interned-payload format.
VERSION_V1 = 1
#: Version byte of the whole-body-stream field-columnar format.
VERSION_V2 = 2
#: Versions this tree can read.
SUPPORTED_VERSIONS = (1, 2, 3)

#: Header flag (v1/v2): the body after the header is one zlib stream.
#: v3 bodies are per-section streams; the flag is never set there.
FLAG_ZLIB_BODY = 1
#: zlib level used by the writer (measured knee: ~gzip-JSON size at
#: sub-millisecond inflate on evaluation-sized segments).
ZLIB_LEVEL = 3

#: String id marking "no string" (``None``); also the shape id of the
#: empty payload in v2 segments.
NONE_ID = 0xFFFFFFFF
#: v2 shape-column sentinel: the row's payload is stored as interned
#: canonical JSON (the v1 representation); ``vidx`` is the string id.
SHAPE_JSON = 0xFFFFFFFE
#: Largest usable shape id (everything above is a sentinel).
MAX_SHAPES = SHAPE_JSON
#: CPU column sentinel for ``SchedWakeup.cpu is None``.
NONE_CPU = -(1 << 31)

#: v2 payload field types (the closed ``TraceEvent.data`` value schema).
FIELD_NONE = 0
FIELD_INT = 1
FIELD_FLOAT = 2
FIELD_STR = 3
FIELD_BOOL = 4

#: array typecode per field type (``FIELD_NONE`` stores no column).
FIELD_TYPECODES = {
    FIELD_INT: "q",
    FIELD_FLOAT: "d",
    FIELD_STR: "I",
    FIELD_BOOL: "b",
}

#: Header: magic, version, flags, n_strings, n_pids, n_ros, n_sched,
#: n_wakeup, start_ts, stop_ts.
HEADER = struct.Struct("<8sHHIIQQQqq")

#: One pid_map entry prefix: pid, name byte length (-1 = None).
PID_ENTRY = struct.Struct("<ii")

#: v3 section kinds (the ``kind`` byte of a directory entry).
SECTION_PID_MAP = 1
SECTION_STRINGS = 2
SECTION_SHAPES = 3
SECTION_PAYLOAD = 4
SECTION_ROS = 5
SECTION_SCHED = 6
SECTION_WAKEUP = 7

#: Human-readable section names for diagnostics and ``store-info``.
SECTION_NAMES = {
    SECTION_PID_MAP: "pid_map",
    SECTION_STRINGS: "string table",
    SECTION_SHAPES: "shape directory",
    SECTION_PAYLOAD: "payload column",
    SECTION_ROS: "ros column",
    SECTION_SCHED: "sched column",
    SECTION_WAKEUP: "wakeup column",
}

#: v3 section compression codes (the ``comp`` byte).
SECTION_COMP_RAW = 0
SECTION_COMP_ZLIB = 1

#: One v3 directory entry: kind u8, comp u8, index u16, offset u64,
#: comp_len u64, raw_len u64.  ``offset`` is relative to the end of the
#: directory (the body start).
SECTION_ENTRY = struct.Struct("<BBHQQQ")
#: Directory prefix: the section count.
SECTION_COUNT = struct.Struct("<I")

#: One shape-directory prefix: n_rows, n_fields.
SHAPE_ENTRY = struct.Struct("<QI")
#: One shape field: name string id, field type.
SHAPE_FIELD = struct.Struct("<IB")

#: (array typecode, itemsize) per column, section by section.  ``q`` is
#: i64, ``i`` is i32, ``I`` is u32.
ROS_COLUMNS: Tuple[str, ...] = ("q", "i", "I", "I")
ROS_COLUMNS_V2: Tuple[str, ...] = ("q", "i", "I", "I", "I")
SCHED_COLUMNS: Tuple[str, ...] = ("q", "i", "i", "I", "i", "I", "i", "I", "i")
WAKEUP_COLUMNS: Tuple[str, ...] = ("q", "i", "i", "I", "i")

_BIG_ENDIAN = sys.byteorder == "big"


class StoreFormatError(ValueError):
    """Raised when a segment file is not a readable ``.trace.bin``."""


def column_bytes(column: array) -> bytes:
    """Serialize one column little-endian (byteswapping if needed)."""
    if _BIG_ENDIAN:
        column = array(column.typecode, column)
        column.byteswap()
    return column.tobytes()


def column_from_bytes(typecode: str, raw: bytes) -> array:
    """Deserialize one little-endian column into a native array."""
    column = array(typecode)
    column.frombytes(raw)
    if _BIG_ENDIAN:
        column.byteswap()
    return column


class IncompletePrefix(ValueError):
    """Internal: a streaming parse ran past the bytes available so far."""


class SectionEntry(NamedTuple):
    """One v3 section-directory entry."""

    kind: int
    comp: int
    index: int
    offset: int
    comp_len: int
    raw_len: int

    @property
    def name(self) -> str:
        """Diagnostic name: kind label plus column index where one
        distinguishes sections (``"ros column 2"``)."""
        label = SECTION_NAMES.get(self.kind, f"section kind {self.kind}")
        if self.kind in (SECTION_PID_MAP, SECTION_STRINGS, SECTION_SHAPES):
            return label
        return f"{label} {self.index}"


def pack_section_dir(entries: Sequence[SectionEntry]) -> bytes:
    """Serialize the v3 section directory (uncompressed, after header)."""
    parts: List[bytes] = [SECTION_COUNT.pack(len(entries))]
    for entry in entries:
        parts.append(
            SECTION_ENTRY.pack(
                entry.kind, entry.comp, entry.index,
                entry.offset, entry.comp_len, entry.raw_len,
            )
        )
    return b"".join(parts)


def unpack_section_dir(
    raw, offset: int
) -> Tuple[List[SectionEntry], int]:
    """Decode the v3 section directory at ``offset``; returns
    (entries, offset past the directory -- the body start)."""
    if offset + SECTION_COUNT.size > len(raw):
        raise StoreFormatError(
            f"truncated section directory (count cut off at offset {offset})"
        )
    (count,) = SECTION_COUNT.unpack_from(raw, offset)
    offset += SECTION_COUNT.size
    if count > 0xFFFF:
        raise StoreFormatError(f"implausible section count {count}")
    entries: List[SectionEntry] = []
    for position in range(count):
        if offset + SECTION_ENTRY.size > len(raw):
            raise StoreFormatError(
                f"truncated section directory (entry {position} cut off "
                f"at offset {offset})"
            )
        kind, comp, index, body_offset, comp_len, raw_len = (
            SECTION_ENTRY.unpack_from(raw, offset)
        )
        if comp not in (SECTION_COMP_RAW, SECTION_COMP_ZLIB):
            raise StoreFormatError(
                f"unknown compression code {comp} for section "
                f"{SECTION_NAMES.get(kind, kind)} (directory entry {position})"
            )
        if comp == SECTION_COMP_RAW and comp_len != raw_len:
            raise StoreFormatError(
                f"raw section {SECTION_NAMES.get(kind, kind)} with "
                f"comp_len {comp_len} != raw_len {raw_len}"
            )
        entries.append(
            SectionEntry(kind, comp, index, body_offset, comp_len, raw_len)
        )
        offset += SECTION_ENTRY.size
    return entries, offset


def pack_pid_map(pid_map) -> bytes:
    """Serialize the PID -> node-name map (self-contained section)."""
    parts: List[bytes] = []
    for pid in sorted(pid_map):
        name = pid_map[pid]
        if name is None:
            parts.append(PID_ENTRY.pack(pid, -1))
        else:
            encoded = name.encode("utf-8")
            parts.append(PID_ENTRY.pack(pid, len(encoded)))
            parts.append(encoded)
    return b"".join(parts)


def unpack_pid_map(raw, offset: int, count: int):
    """Decode ``count`` pid_map entries; returns (pid_map, next offset).

    Raises :class:`IncompletePrefix` when ``raw`` ends mid-section, so
    streaming consumers can feed more bytes and retry.
    """
    pid_map = {}
    for _ in range(count):
        if offset + PID_ENTRY.size > len(raw):
            raise IncompletePrefix("pid_map entry header past buffer end")
        pid, length = PID_ENTRY.unpack_from(raw, offset)
        offset += PID_ENTRY.size
        if length < 0:
            pid_map[pid] = None
        else:
            if offset + length > len(raw):
                raise IncompletePrefix("pid_map name past buffer end")
            pid_map[pid] = bytes(raw[offset:offset + length]).decode("utf-8")
            offset += length
    return pid_map, offset


def pack_strings(strings: Sequence[str]) -> bytes:
    """Serialize the string table (length-prefixed UTF-8)."""
    parts: List[bytes] = []
    for text in strings:
        encoded = text.encode("utf-8")
        parts.append(struct.pack("<I", len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def unpack_strings(raw, offset: int, count: int) -> Tuple[List[str], int]:
    """Decode ``count`` strings starting at ``offset`` of a bytes-like
    buffer; returns (strings, offset past the table)."""
    strings: List[str] = []
    unpack_len = struct.Struct("<I").unpack_from
    for _ in range(count):
        (length,) = unpack_len(raw, offset)
        offset += 4
        strings.append(bytes(raw[offset:offset + length]).decode("utf-8"))
        offset += length
    return strings, offset


def pack_shape_dir(
    shapes: Sequence[Tuple[Sequence[Tuple[int, int]], int]]
) -> bytes:
    """Serialize the v2 shape directory.

    ``shapes`` holds ``(fields, n_rows)`` per shape in id order, where
    ``fields`` is the ordered ``(name string id, field type)`` tuple.
    """
    parts: List[bytes] = [struct.pack("<I", len(shapes))]
    for fields, n_rows in shapes:
        parts.append(SHAPE_ENTRY.pack(n_rows, len(fields)))
        for name_id, field_type in fields:
            parts.append(SHAPE_FIELD.pack(name_id, field_type))
    return b"".join(parts)


def unpack_shape_dir(
    raw, offset: int
) -> Tuple[List[Tuple[List[Tuple[int, int]], int]], int]:
    """Decode the v2 shape directory; returns (shapes, next offset) with
    the same ``(fields, n_rows)`` structure :func:`pack_shape_dir` takes."""
    if offset + 4 > len(raw):
        raise StoreFormatError("truncated shape directory (count cut off)")
    (n_shapes,) = struct.unpack_from("<I", raw, offset)
    offset += 4
    if n_shapes >= MAX_SHAPES:
        raise StoreFormatError(f"implausible shape count {n_shapes}")
    shapes: List[Tuple[List[Tuple[int, int]], int]] = []
    for _ in range(n_shapes):
        if offset + SHAPE_ENTRY.size > len(raw):
            raise StoreFormatError("truncated shape directory (entry cut off)")
        n_rows, n_fields = SHAPE_ENTRY.unpack_from(raw, offset)
        offset += SHAPE_ENTRY.size
        fields: List[Tuple[int, int]] = []
        for _ in range(n_fields):
            if offset + SHAPE_FIELD.size > len(raw):
                raise StoreFormatError("truncated shape directory (field cut off)")
            name_id, field_type = SHAPE_FIELD.unpack_from(raw, offset)
            if field_type != FIELD_NONE and field_type not in FIELD_TYPECODES:
                raise StoreFormatError(f"unknown payload field type {field_type}")
            fields.append((name_id, field_type))
            offset += SHAPE_FIELD.size
        shapes.append((fields, n_rows))
    return shapes, offset


def pack_header(
    n_strings: int,
    n_pids: int,
    n_ros: int,
    n_sched: int,
    n_wakeup: int,
    start_ts: int,
    stop_ts: int,
    flags: int = 0,
    version: int = VERSION,
) -> bytes:
    return HEADER.pack(
        MAGIC, version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup,
        start_ts, stop_ts,
    )


def unpack_header(
    raw: bytes, source: str = "segment"
) -> Tuple[int, int, int, int, int, int, int, int, int]:
    """Validate magic and version; returns (version, flags, n_strings,
    n_pids, n_ros, n_sched, n_wakeup, start_ts, stop_ts).

    ``source`` names the bytes in diagnostics (a file path, usually).
    """
    if len(raw) < HEADER.size:
        raise StoreFormatError(
            f"{source}: truncated segment: {len(raw)} bytes < "
            f"{HEADER.size}-byte header"
        )
    magic, version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup, start, stop = (
        HEADER.unpack_from(raw, 0)
    )
    if magic != MAGIC:
        raise StoreFormatError(
            f"{source}: bad magic {magic!r} at offset 0; not a "
            f"{SEGMENT_SUFFIX} file"
        )
    if version not in SUPPORTED_VERSIONS:
        raise StoreFormatError(
            f"{source}: unsupported segment version {version} at offset 8 "
            f"(this reader supports {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    return version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup, start, stop

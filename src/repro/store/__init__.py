"""``repro.store``: binary trace store + out-of-core sharded synthesis.

The scalable back end of the paper's Fig. 2 "database server": per-run
struct-packed columnar segment files (``.trace.bin``), written from
in-memory traces or streamed during simulation, read back lazily with
PID selection and k-way merging, and synthesized into timing DAGs with
Alg. 1 extraction sharded by PID across worker processes -- all
byte-identical to the in-memory pipeline.

Quickstart::

    from repro.store import record_batch, synthesize_from_store

    record_batch("avp", runs=16, directory="traces/", jobs=4)
    dag = synthesize_from_store("traces/", jobs=4)

or from a shell: ``python -m repro record avp --runs 16 --out traces/``
then ``python -m repro synthesize traces/ --jobs 4``.
"""

from .database import (
    RunInfo,
    StoreDatabase,
    StoreError,
    TraceStore,
    as_store,
    convert_database,
    save_database_binary,
)
from .format import (
    NONE_CPU,
    NONE_ID,
    SEGMENT_SUFFIX,
    SUPPORTED_VERSIONS,
    VERSION,
    VERSION_V1,
    StoreFormatError,
)
from .reader import (
    InMemorySegment,
    SegmentReader,
    merge_ros_streams,
    merge_sched_streams,
    merge_wakeup_streams,
    peek_header,
)
from .record import (
    DEFAULT_SPOOL_NS,
    RecordResult,
    RecordedRun,
    record_batch,
    record_run,
    run_id_for,
)
from .index import StoreTraceIndex
from .synthesis import merged_trace_index, synthesize_from_store
from .writer import SegmentSpool, encode_trace, segment_path, write_segment

__all__ = [
    "RunInfo",
    "StoreDatabase",
    "StoreError",
    "TraceStore",
    "as_store",
    "convert_database",
    "save_database_binary",
    "NONE_CPU",
    "NONE_ID",
    "SEGMENT_SUFFIX",
    "SUPPORTED_VERSIONS",
    "VERSION",
    "VERSION_V1",
    "StoreFormatError",
    "peek_header",
    "InMemorySegment",
    "SegmentReader",
    "merge_ros_streams",
    "merge_sched_streams",
    "merge_wakeup_streams",
    "DEFAULT_SPOOL_NS",
    "RecordResult",
    "RecordedRun",
    "record_batch",
    "record_run",
    "run_id_for",
    "StoreTraceIndex",
    "merged_trace_index",
    "synthesize_from_store",
    "SegmentSpool",
    "encode_trace",
    "segment_path",
    "write_segment",
]

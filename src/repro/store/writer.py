"""Writing binary trace segments: in-memory traces and spooled runs.

Two producers share the same encoder core (:class:`SegmentSpool`):

* :func:`write_segment` / :func:`encode_trace` pack an in-memory
  :class:`~repro.tracing.session.Trace` in one shot;
* a :class:`SegmentSpool` fed incrementally -- one
  :class:`~repro.tracing.session.TraceSegment` per buffer rotation --
  is the *spooling tracepoint sink*: events leave Python-object form at
  every rotation (their lists are dropped after packing), so a long
  simulation never holds more than one rotation window of event objects
  plus the compact columns.  :mod:`repro.store.record` drives this
  against live scenario runs.

Payload encoding is format-versioned (see :mod:`repro.store.format`):

* **v2** (default): schema inference during spooling.  Each payload
  dict whose values fit the closed scalar schema is classified into a
  *shape* -- the ordered ``(key, type)`` tuple -- and its values append
  to that shape's typed per-field columns (ints/floats/bools/interned
  strings; always-``None`` fields store nothing).  Rows that do not fit
  (nested containers, huge ints, non-string keys) fall back to the v1
  JSON-interned representation per row.
* **v1**: payloads are canonical compact JSON interned in the string
  table.

In both versions the empty payload is a reserved ``NONE_ID``, so the
dominant payload-less sched events and bare probes stay cheap.
"""

from __future__ import annotations

import json
import os
import zlib
from array import array
from typing import IO, Any, Dict, List, Mapping, Optional, Tuple

from ..sim.scheduler import SchedSwitch, SchedWakeup
from ..tracing.events import TraceEvent
from ..tracing.session import Trace, TraceSegment
from .format import (
    FIELD_BOOL,
    FIELD_FLOAT,
    FIELD_INT,
    FIELD_NONE,
    FIELD_STR,
    FIELD_TYPECODES,
    FLAG_ZLIB_BODY,
    HEADER,
    MAX_SHAPES,
    NONE_CPU,
    NONE_ID,
    ROS_COLUMNS,
    ROS_COLUMNS_V2,
    SCHED_COLUMNS,
    SECTION_COMP_RAW,
    SECTION_COMP_ZLIB,
    SECTION_PAYLOAD,
    SECTION_PID_MAP,
    SECTION_ROS,
    SECTION_SCHED,
    SECTION_SHAPES,
    SECTION_STRINGS,
    SECTION_WAKEUP,
    SHAPE_JSON,
    SUPPORTED_VERSIONS,
    SectionEntry,
    VERSION,
    WAKEUP_COLUMNS,
    ZLIB_LEVEL,
    column_bytes,
    pack_header,
    pack_pid_map,
    pack_section_dir,
    pack_shape_dir,
    pack_strings,
    unpack_header,
    unpack_section_dir,
)

_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1


def _encode_payload(data: Mapping[str, Any]) -> str:
    """Canonical compact JSON for a ``TraceEvent.data`` mapping."""
    return json.dumps(dict(data), separators=(",", ":"), ensure_ascii=False)


class StringTable:
    """Interning writer-side string table (id = first-seen order)."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self.strings: List[str] = []

    def intern(self, text: str) -> int:
        table_id = self._ids.get(text)
        if table_id is None:
            table_id = self._ids[text] = len(self.strings)
            self.strings.append(text)
        return table_id

    def __len__(self) -> int:
        return len(self.strings)


class _ShapeAcc:
    """Writer-side accumulator for one payload shape."""

    __slots__ = ("index", "fields", "columns", "count")

    def __init__(self, index: int, fields: Tuple[Tuple[str, int], ...]):
        self.index = index
        self.fields = fields
        #: one array per field; ``None`` for FIELD_NONE fields.
        self.columns: Tuple[Optional[array], ...] = tuple(
            array(FIELD_TYPECODES[ftype]) if ftype != FIELD_NONE else None
            for _, ftype in fields
        )
        self.count = 0


def _classify(value: Any) -> Optional[int]:
    """Field type of one payload value, or ``None`` when it does not fit
    the closed schema (-> whole row falls back to JSON)."""
    if value is None:
        return FIELD_NONE
    if isinstance(value, bool):
        return FIELD_BOOL
    if isinstance(value, int):
        return FIELD_INT if _INT64_MIN <= value <= _INT64_MAX else None
    if isinstance(value, str):
        return FIELD_STR
    if isinstance(value, float):
        return FIELD_FLOAT
    return None


class SegmentSpool:
    """Columnar accumulator for one run's trace.

    Append events (individually or a whole rotation segment at a time),
    then :meth:`finish` to emit the packed bytes.  Between appends the
    spool holds only native-typed arrays and the string table -- no
    event objects -- which is what bounds memory for streamed
    collection.

    ``format_version`` selects the payload encoding (2 = typed per-field
    columns, 1 = interned JSON; see :mod:`repro.store.format`).
    """

    def __init__(self, format_version: int = VERSION) -> None:
        if format_version not in SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported format version {format_version!r} "
                f"(writable: {', '.join(map(str, SUPPORTED_VERSIONS))})"
            )
        self.format_version = format_version
        self.strings = StringTable()
        ros_columns = ROS_COLUMNS_V2 if format_version >= 2 else ROS_COLUMNS
        self._ros = tuple(array(code) for code in ros_columns)
        self._sched = tuple(array(code) for code in SCHED_COLUMNS)
        self._wakeup = tuple(array(code) for code in WAKEUP_COLUMNS)
        #: shape key (ordered (key, type) tuple) -> accumulator, in
        #: first-seen order (the shape-id order of the directory).
        self._shapes: Dict[Tuple[Tuple[str, int], ...], _ShapeAcc] = {}

    # -- appending --------------------------------------------------------

    def _typed_payload(self, data: Mapping[str, Any]) -> Optional[Tuple[int, int]]:
        """Append one payload to its shape's columns; returns (shape id,
        row index) or ``None`` when the payload needs the JSON fallback."""
        items: List[Tuple[str, int, Any]] = []
        for key, value in data.items():
            if not isinstance(key, str):
                return None
            ftype = _classify(value)
            if ftype is None:
                return None
            items.append((key, ftype, value))
        shape_key = tuple((key, ftype) for key, ftype, _ in items)
        acc = self._shapes.get(shape_key)
        if acc is None:
            if len(self._shapes) >= MAX_SHAPES:  # pragma: no cover - 4B shapes
                return None
            acc = self._shapes[shape_key] = _ShapeAcc(len(self._shapes), shape_key)
        intern = self.strings.intern
        for (key, ftype, value), column in zip(items, acc.columns):
            if ftype == FIELD_STR:
                column.append(intern(value))
            elif ftype == FIELD_INT:
                column.append(value)
            elif ftype == FIELD_BOOL:
                column.append(1 if value else 0)
            elif ftype == FIELD_FLOAT:
                column.append(value)
            # FIELD_NONE stores nothing.
        row = acc.count
        acc.count = row + 1
        return acc.index, row

    def append_ros(self, event: TraceEvent) -> None:
        if self.format_version >= 2:
            ts_col, pid_col, probe_col, shape_col, vidx_col = self._ros
            ts_col.append(event[0])
            pid_col.append(event[1])
            probe_col.append(self.strings.intern(event[2]))
            data = event[3]
            if not data:
                shape_col.append(NONE_ID)
                vidx_col.append(0)
            else:
                typed = self._typed_payload(data)
                if typed is None:
                    shape_col.append(SHAPE_JSON)
                    vidx_col.append(self.strings.intern(_encode_payload(data)))
                else:
                    shape_col.append(typed[0])
                    vidx_col.append(typed[1])
            return
        ts_col, pid_col, probe_col, data_col = self._ros
        ts_col.append(event[0])
        pid_col.append(event[1])
        probe_col.append(self.strings.intern(event[2]))
        data = event[3]
        if not data:
            data_col.append(NONE_ID)
        else:
            # Identical payloads dedupe through the intern table keyed
            # by their canonical JSON (no identity tricks: spooled
            # segments drop their event objects, so ids would be
            # unstable across rotations).
            data_col.append(self.strings.intern(_encode_payload(data)))

    def append_sched(self, event: SchedSwitch) -> None:
        cols = self._sched
        intern = self.strings.intern
        cols[0].append(event.ts)
        cols[1].append(event.cpu)
        cols[2].append(event.prev_pid)
        cols[3].append(intern(event.prev_comm))
        cols[4].append(event.prev_prio)
        cols[5].append(intern(event.prev_state))
        cols[6].append(event.next_pid)
        cols[7].append(intern(event.next_comm))
        cols[8].append(event.next_prio)

    def append_wakeup(self, event: SchedWakeup) -> None:
        cols = self._wakeup
        cols[0].append(event.ts)
        cols[1].append(NONE_CPU if event.cpu is None else event.cpu)
        cols[2].append(event.pid)
        cols[3].append(self.strings.intern(event.comm))
        cols[4].append(event.prio)

    def add_segment(self, segment: TraceSegment) -> None:
        """Spool one buffer rotation (the streaming entry point)."""
        for event in segment.ros_events:
            self.append_ros(event)
        for sched in segment.sched_events:
            self.append_sched(sched)
        for wakeup in segment.wakeup_events:
            self.append_wakeup(wakeup)

    def add_trace(self, trace: Trace) -> None:
        for event in trace.ros_events:
            self.append_ros(event)
        for sched in trace.sched_events:
            self.append_sched(sched)
        for wakeup in trace.wakeup_events:
            self.append_wakeup(wakeup)

    @property
    def num_ros(self) -> int:
        return len(self._ros[0])

    @property
    def num_sched(self) -> int:
        return len(self._sched[0])

    @property
    def num_wakeups(self) -> int:
        return len(self._wakeup[0])

    @property
    def num_events(self) -> int:
        return self.num_ros + self.num_sched + self.num_wakeups

    # -- finishing --------------------------------------------------------

    def finish(
        self,
        handle: IO[bytes],
        pid_map: Mapping[int, Optional[str]],
        start_ts: int,
        stop_ts: int,
        compress: bool = True,
    ) -> int:
        """Write the packed segment to ``handle``; returns bytes written.

        ``compress`` deflates the body (default; ~gzip-JSON file size);
        ``False`` keeps raw columns for zero-copy readers.  v3 segments
        deflate (or keep raw) every section independently behind the
        section directory, so readers inflate only what they touch.
        """
        if self.format_version >= 3:
            return self._finish_v3(handle, pid_map, start_ts, stop_ts, compress)
        body_parts: List[bytes] = [pack_pid_map(pid_map)]
        if self.format_version >= 2:
            intern = self.strings.intern
            shapes = sorted(self._shapes.values(), key=lambda acc: acc.index)
            directory = [
                ([(intern(key), ftype) for key, ftype in acc.fields], acc.count)
                for acc in shapes
            ]
            # Interning the field names may have grown the string table,
            # so its blob is built only after the directory.
            body_parts.append(pack_strings(self.strings.strings))
            body_parts.append(pack_shape_dir(directory))
            for acc in shapes:
                for column in acc.columns:
                    if column is not None:
                        body_parts.append(column_bytes(column))
        else:
            body_parts.append(pack_strings(self.strings.strings))
        for section in (self._ros, self._sched, self._wakeup):
            for column in section:
                body_parts.append(column_bytes(column))
        body = b"".join(body_parts)
        flags = 0
        if compress:
            body = zlib.compress(body, ZLIB_LEVEL)
            flags |= FLAG_ZLIB_BODY
        written = handle.write(
            pack_header(
                len(self.strings),
                len(pid_map),
                len(self._ros[0]),
                len(self._sched[0]),
                len(self._wakeup[0]),
                start_ts,
                stop_ts,
                flags=flags,
                version=self.format_version,
            )
        )
        written += handle.write(body)
        return written

    def _section_blobs(self, pid_map: Mapping[int, Optional[str]]):
        """The v3 sections in file order: ``(kind, index, raw bytes)``."""
        intern = self.strings.intern
        shapes = sorted(self._shapes.values(), key=lambda acc: acc.index)
        directory = [
            ([(intern(key), ftype) for key, ftype in acc.fields], acc.count)
            for acc in shapes
        ]
        # Interning the field names may grow the string table, so the
        # strings blob is packed only after the shape directory exists.
        blobs: List[Tuple[int, int, bytes]] = [
            (SECTION_PID_MAP, 0, pack_pid_map(pid_map)),
            (SECTION_STRINGS, 0, pack_strings(self.strings.strings)),
            (SECTION_SHAPES, 0, pack_shape_dir(directory)),
        ]
        payload_index = 0
        for acc in shapes:
            for column in acc.columns:
                if column is not None:
                    blobs.append(
                        (SECTION_PAYLOAD, payload_index, column_bytes(column))
                    )
                    payload_index += 1
        for kind, section in (
            (SECTION_ROS, self._ros),
            (SECTION_SCHED, self._sched),
            (SECTION_WAKEUP, self._wakeup),
        ):
            for column_index, column in enumerate(section):
                blobs.append((kind, column_index, column_bytes(column)))
        return blobs

    def _finish_v3(
        self,
        handle: IO[bytes],
        pid_map: Mapping[int, Optional[str]],
        start_ts: int,
        stop_ts: int,
        compress: bool,
    ) -> int:
        """v3 emit: header, section directory, per-section streams.

        Each section deflates independently; sections deflate does not
        shrink (tiny ones) stay raw with ``comp`` 0, so compression is
        a per-stream property, not a file-level mode.
        """
        entries: List[SectionEntry] = []
        streams: List[bytes] = []
        offset = 0
        for kind, index, raw in self._section_blobs(pid_map):
            comp = SECTION_COMP_RAW
            data = raw
            if compress and raw:
                deflated = zlib.compress(raw, ZLIB_LEVEL)
                if len(deflated) < len(raw):
                    comp = SECTION_COMP_ZLIB
                    data = deflated
            entries.append(
                SectionEntry(kind, comp, index, offset, len(data), len(raw))
            )
            streams.append(data)
            offset += len(data)
        written = handle.write(
            pack_header(
                len(self.strings),
                len(pid_map),
                len(self._ros[0]),
                len(self._sched[0]),
                len(self._wakeup[0]),
                start_ts,
                stop_ts,
                flags=0,
                version=self.format_version,
            )
        )
        written += handle.write(pack_section_dir(entries))
        for data in streams:
            written += handle.write(data)
        return written

    def finish_path(
        self,
        path: str,
        pid_map: Mapping[int, Optional[str]],
        start_ts: int,
        stop_ts: int,
        compress: bool = True,
    ) -> int:
        """Write the packed segment at ``path`` via a same-directory
        staging file + atomic rename, so a crashed or killed writer can
        never leave a truncated segment at the final name -- concurrent
        store readers (``TraceStore(strict=True)``, the live ingest
        service) see either the complete file or nothing."""
        staging = f"{path}.{os.getpid()}.tmp"
        try:
            with open(staging, "wb") as handle:
                written = self.finish(
                    handle, pid_map, start_ts, stop_ts, compress=compress
                )
            os.replace(staging, path)
        finally:
            if os.path.exists(staging):
                try:
                    os.remove(staging)
                except OSError:  # pragma: no cover - cleanup best effort
                    pass
        return written


def write_segment(
    trace: Trace,
    path: str,
    compress: bool = True,
    format_version: int = VERSION,
) -> int:
    """Pack one in-memory trace into ``path``; returns bytes written."""
    spool = SegmentSpool(format_version=format_version)
    spool.add_trace(trace)
    return spool.finish_path(
        path, trace.pid_map, trace.start_ts, trace.stop_ts, compress=compress
    )


def encode_trace(
    trace: Trace, compress: bool = True, format_version: int = VERSION
) -> bytes:
    """The segment bytes for one trace (in-memory variant)."""
    import io

    spool = SegmentSpool(format_version=format_version)
    spool.add_trace(trace)
    buffer = io.BytesIO()
    spool.finish(
        buffer, trace.pid_map, trace.start_ts, trace.stop_ts, compress=compress
    )
    return buffer.getvalue()


def decompress_segment(src: str, dst: str) -> int:
    """Rewrite segment ``src`` as an uncompressed same-version copy at
    ``dst``; returns bytes written.

    Value-preserving by construction -- the body bytes are the inflated
    originals, never re-encoded -- so a reader over the copy sees the
    exact columns of the source.  This is the materialization step of
    the store's mmap-backed segment cache: an uncompressed segment's
    columns are zero-copy ``memoryview`` casts, so repeated synthesis
    over the same store reads straight from the page cache.
    """
    with open(src, "rb") as handle:
        data = handle.read()
    version, flags, *_ = unpack_header(data, source=src)
    if version >= 3:
        entries, body_start = unpack_section_dir(data, HEADER.size)
        sections: List[bytes] = []
        new_entries: List[SectionEntry] = []
        offset = 0
        for entry in entries:
            raw = data[
                body_start + entry.offset:
                body_start + entry.offset + entry.comp_len
            ]
            if entry.comp == SECTION_COMP_ZLIB:
                raw = zlib.decompress(raw)
            new_entries.append(
                entry._replace(
                    comp=SECTION_COMP_RAW, offset=offset,
                    comp_len=len(raw), raw_len=len(raw),
                )
            )
            sections.append(raw)
            offset += len(raw)
        payload = b"".join(
            [data[:HEADER.size], pack_section_dir(new_entries), *sections]
        )
    elif flags & FLAG_ZLIB_BODY:
        # Clear the body-stream flag; every other header field (counts,
        # timestamps, version) stays byte-identical.
        fields = list(HEADER.unpack_from(data, 0))
        fields[2] &= ~FLAG_ZLIB_BODY
        payload = HEADER.pack(*fields) + zlib.decompress(data[HEADER.size:])
    else:
        payload = data
    # Per-process staging name: parallel synthesis workers may race to
    # materialize the same cache entry, and the atomic replace makes
    # the last finisher win with a complete file either way.
    staging = f"{dst}.{os.getpid()}.tmp"
    with open(staging, "wb") as handle:
        written = handle.write(payload)
    os.replace(staging, dst)
    return written


def spool_session_segment(spool: SegmentSpool, session) -> TraceSegment:
    """Rotate ``session`` and spool the drained segment out-of-core.

    The rotated segment is packed into ``spool`` and *removed* from the
    session's segment list, dropping the event objects -- the step that
    keeps a streamed recording's footprint bounded by one rotation
    window.  Returns the (already spooled) segment for inspection.
    """
    segment = session.rotate()
    spool.add_segment(segment)
    # The session accumulates rotated segments for Trace assembly; a
    # spooled run never calls session.trace(), so release them.
    if session.segments and session.segments[-1] is segment:
        session.segments.pop()
    segment.ros_events = []
    segment.sched_events = []
    segment.wakeup_events = []
    return segment


def segment_path(directory: str, run_id: str) -> str:
    from .format import SEGMENT_SUFFIX

    return os.path.join(directory, f"{run_id}{SEGMENT_SUFFIX}")

"""Reading binary trace segments without materializing events.

:class:`SegmentReader` parses a ``.trace.bin`` file -- format v1, v2 or
v3 -- into column *views* (`memoryview.cast` on little-endian hosts --
no copy of the event sections) plus the decoded string table.  Event
objects are constructed lazily, per iteration, and only for the rows a
consumer asks for: ``iter_ros(pids=...)`` scans the int32 PID column
and skips everything else, so selecting one node out of a 50-run merged
store never builds the other nodes' events.

v3 segments add *section-selective I/O*: every column is its own
stream behind the section directory, materialized (and inflated) only
on first touch through :class:`_LazyColumns`.  A synthesis pass over a
v3 store therefore never inflates the wakeup section, the six sched
columns beyond ``(ts, prev_pid, next_pid)``, or the payload columns of
shapes Alg. 1 never dereferences.  ``bytes_inflated`` counts the raw
bytes actually run through zlib (vs ``body_bytes``, the segment's
total raw body size) -- the observable behind the selective-read CI
assertion and the ``store.selective_read`` bench section; an
uncompressed cache copy reads at zero inflation.

Payload access is format-versioned.  v1 payloads are interned JSON
(decoded through a bound C scanner, cached per string id).  v2 payloads
live in typed per-field columns grouped by shape (:class:`_Shape`):
the first access to a shape bulk-decodes its columns -- string ids
resolve through the table once per *column*, ints/floats come straight
out of the fixed-width views -- and every row of the shape then costs a
list index, with no JSON anywhere.  Rows written through the v2 JSON
fallback (payloads outside the closed schema) decode exactly like v1.

Parse errors surface as :class:`~repro.store.format.StoreFormatError`
carrying the file path and the failing section/offset -- truncated
files, corrupt zlib bodies and unknown version bytes never leak raw
``struct.error`` / ``zlib.error``.

:func:`merge_ros_streams` / :func:`merge_sched_streams` k-way merge
many stored runs chronologically (ties keep run order, exactly like
:meth:`repro.tracing.session.Trace.merge`), again yielding events one
at a time.  :class:`InMemorySegment` adapts an already-loaded
:class:`~repro.tracing.session.Trace` to the same interface so legacy
gzip-JSON runs participate in mixed-directory merges.
"""

from __future__ import annotations

import struct
import sys
import zlib
from heapq import merge as _heap_merge
from json.decoder import JSONDecoder
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.index import (
    CODE_CB_START,
    CODE_OTHER,
    CODE_TAKE_TYPE_ERASED,
    CODE_TIMER_CALL,
    PROBE_CODES,
    cb_start_type_table,
    probe_code_table,
)
from ..sim.scheduler import SchedSwitch, SchedWakeup
from ..tracing.events import CB_TYPE_BY_START, TraceEvent
from ..tracing.session import Trace
from .format import (
    FIELD_BOOL,
    FIELD_NONE,
    FIELD_STR,
    FIELD_TYPECODES,
    FLAG_ZLIB_BODY,
    HEADER,
    IncompletePrefix,
    NONE_CPU,
    NONE_ID,
    ROS_COLUMNS,
    ROS_COLUMNS_V2,
    SCHED_COLUMNS,
    SECTION_COMP_ZLIB,
    SECTION_ENTRY,
    SECTION_PAYLOAD,
    SECTION_PID_MAP,
    SECTION_ROS,
    SECTION_SCHED,
    SECTION_SHAPES,
    SECTION_STRINGS,
    SECTION_WAKEUP,
    SHAPE_JSON,
    SectionEntry,
    StoreFormatError,
    WAKEUP_COLUMNS,
    column_from_bytes,
    unpack_header,
    unpack_pid_map,
    unpack_section_dir,
    unpack_shape_dir,
    unpack_strings,
)

_BIG_ENDIAN = sys.byteorder == "big"
_ITEMSIZE = {"q": 8, "i": 4, "I": 4, "d": 8, "b": 1}

#: Bound C JSON scanner for payload decode (see ``_payload``).
_SCAN_PAYLOAD = JSONDecoder().scan_once

_TS_KEY = lambda event: event[0]  # noqa: E731 - ts field of every record

#: keys tuple -> compiled row-building listcomp (see ``_row_builder``).
_ROW_BUILDERS: Dict[Tuple[str, ...], Any] = {}


def _row_builder(keys: Tuple[str, ...]):
    """A compiled ``[{key: v0, ...} for (v0, ...) in _rows]`` for one
    shape's key tuple (namedtuple-style codegen, cached per key set).

    A dict display builds ~3x faster than ``dict(zip(keys, values))``,
    and shape-row materialization is the hottest allocation in a store
    read; keys are embedded as ``repr`` string literals, so arbitrary
    payload key text stays data, never code.
    """
    code = _ROW_BUILDERS.get(keys)
    if code is None:
        names = [f"v{i}" for i in range(len(keys))]
        item = "{" + ", ".join(
            f"{key!r}: {name}" for key, name in zip(keys, names)
        ) + "}"
        target = "(" + ", ".join(names) + ("," if len(names) == 1 else "") + ")"
        code = _ROW_BUILDERS[keys] = compile(
            f"[{item} for {target} in _rows]", "<shape rows>", "eval"
        )
    return code


class _Shape:
    """One v2 payload shape: ordered field names/types + column views.

    ``rows()`` bulk-decodes the shape on first use into one dict per
    row (string ids resolved once per column, key order preserved);
    repeated access is a list index.  Payload dicts are shared by the
    ``TraceEvent`` immutability contract, like the v1 payload cache.
    """

    __slots__ = ("keys", "types", "count", "_columns", "_strings", "_rows")

    def __init__(
        self,
        keys: Tuple[str, ...],
        types: Tuple[int, ...],
        count: int,
        columns: Sequence[Optional[Sequence]],
        strings: Sequence[str],
    ):
        self.keys = keys
        self.types = types
        self.count = count
        self._columns = columns
        self._strings = strings
        self._rows: Optional[List[Dict[str, Any]]] = None

    def rows(self) -> List[Dict[str, Any]]:
        rows = self._rows
        if rows is None:
            strings = self._strings
            seqs: List[Sequence] = []
            for ftype, column in zip(self.types, self._columns):
                if callable(column):
                    # v3: the column is a lazy section handle; shapes
                    # nothing dereferences never inflate their streams.
                    column = column()
                if ftype == FIELD_NONE:
                    seqs.append([None] * self.count)
                elif ftype == FIELD_STR:
                    seqs.append([strings[i] for i in column])
                elif ftype == FIELD_BOOL:
                    seqs.append([bool(v) for v in column])
                else:
                    seqs.append(column)
            if seqs:
                rows = eval(  # compiled dict-display listcomp, data-only
                    _row_builder(self.keys), {"_rows": zip(*seqs)}
                )
            else:  # degenerate: a shape with no fields (hand-built file)
                rows = [{} for _ in range(self.count)]
            self._rows = rows
        return rows


class _LazyColumns:
    """One v3 event section as per-column lazy handles.

    Quacks like the column tuple the eager reader builds -- indexing,
    iteration, unpacking -- but a column's stream is only sliced (and
    inflated, when deflated) on its first access, then cached.  That is
    what lets ``sched_pid_rows()`` read three of nine sched columns and
    ``ros_ts_range()`` a single ros column.
    """

    __slots__ = ("_reader", "_kind", "_typecodes", "_count", "_loaded")

    def __init__(
        self, reader: "SegmentReader", kind: int,
        typecodes: Sequence[str], count: int,
    ):
        self._reader = reader
        self._kind = kind
        self._typecodes = typecodes
        self._count = count
        self._loaded: List[Optional[Sequence]] = [None] * len(typecodes)

    def __len__(self) -> int:
        return len(self._typecodes)

    def __getitem__(self, index: int) -> Sequence:
        column = self._loaded[index]
        if column is None:
            column = self._loaded[index] = self._reader._section_column(
                self._typecodes[index], self._count, self._kind, index
            )
        return column

    def __iter__(self):
        return (self[index] for index in range(len(self._typecodes)))


class SegmentReader:
    """One stored run (format v1, v2 or v3), decoded lazily from its
    packed columns.  ``version`` exposes the file's format-version byte.

    ``bytes_inflated`` counts the raw bytes run through zlib so far (v3
    counts per touched section; a compressed v1/v2 body counts fully up
    front; uncompressed data counts nothing); ``body_bytes`` is the
    segment's total raw body size, so ``bytes_inflated < body_bytes``
    on a compressed segment demonstrates a selective read."""

    def __init__(self, data, path: Optional[str] = None):
        self.path = path
        self._source = path if path is not None else "<segment bytes>"
        self.size_bytes = len(data)
        (
            version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup,
            start, stop,
        ) = unpack_header(data, source=self._source)
        self.version = version
        self.start_ts = start
        self.stop_ts = stop
        self.num_ros_events = n_ros
        self.num_sched_events = n_sched
        self.num_wakeup_events = n_wakeup
        self._shapes: List[_Shape] = []
        self.bytes_inflated = 0
        if version >= 3:
            self._init_v3(data, n_strings, n_pids, n_ros, n_sched, n_wakeup)
        else:
            self._init_body(data, flags, n_strings, n_pids, n_ros, n_sched,
                            n_wakeup)
        #: payload string id -> decoded mapping, shared across events
        #: (payloads are immutable by the TraceEvent contract).  v1
        #: payloads and v2/v3 JSON-fallback rows decode through this.
        self._payload_cache: Dict[int, Dict[str, Any]] = {}
        #: per-string-id probe-code / CB-type tables, built lazily on
        #: the first columnar walk (see :meth:`walk_rows`).
        self._code_table: Optional[bytearray] = None
        self._start_types: Optional[List[Optional[str]]] = None

    def _init_body(
        self, data, flags: int, n_strings: int, n_pids: int,
        n_ros: int, n_sched: int, n_wakeup: int,
    ) -> None:
        """v1/v2 parse: one (possibly deflated) body, eager sections."""
        if flags & FLAG_ZLIB_BODY:
            try:
                body: bytes = zlib.decompress(data[HEADER.size:])
            except zlib.error as error:
                raise StoreFormatError(
                    f"{self._source}: corrupt zlib body "
                    f"(at file offset {HEADER.size}): {error}"
                ) from None
        else:
            body = memoryview(data)[HEADER.size:]
        self._body = body
        self.body_bytes = len(body)
        if flags & FLAG_ZLIB_BODY:
            self.bytes_inflated = len(body)
        section = "pid_map"
        offset = 0
        try:
            self.pid_map, offset = unpack_pid_map(body, 0, n_pids)
            section = "string table"
            self._strings, offset = unpack_strings(body, offset, n_strings)
            if self.version >= 2:
                section = "shape directory"
                shape_dir, offset = unpack_shape_dir(body, offset)
                section = "payload columns"
                offset = self._read_shapes(shape_dir, offset)
                ros_columns = ROS_COLUMNS_V2
            else:
                ros_columns = ROS_COLUMNS
            section = "ros columns"
            self._ros = self._read_section(ros_columns, n_ros, offset)
            offset += sum(_ITEMSIZE[c] for c in ros_columns) * n_ros
            section = "sched columns"
            self._sched = self._read_section(SCHED_COLUMNS, n_sched, offset)
            offset += sum(_ITEMSIZE[c] for c in SCHED_COLUMNS) * n_sched
            section = "wakeup columns"
            self._wakeup = self._read_section(WAKEUP_COLUMNS, n_wakeup, offset)
            offset += sum(_ITEMSIZE[c] for c in WAKEUP_COLUMNS) * n_wakeup
            if offset > len(body):
                raise StoreFormatError(
                    f"truncated segment body: need {offset} bytes, "
                    f"have {len(body)}"
                )
        except StoreFormatError as error:
            message = str(error)
            if not message.startswith(self._source):
                message = f"{self._source}: {message}"
            raise StoreFormatError(message) from None
        except IncompletePrefix as error:
            raise StoreFormatError(
                f"{self._source}: truncated segment "
                f"(in {section}, body offset {offset}): {error}"
            ) from None
        except (ValueError, TypeError, struct.error, IndexError) as error:
            # A cut anywhere (string table, column cast) surfaces as the
            # same clear diagnosis instead of a low-level parse error.
            raise StoreFormatError(
                f"{self._source}: corrupt or truncated segment "
                f"(in {section}, body offset {offset}): {error}"
            ) from None

    def _init_v3(
        self, data, n_strings: int, n_pids: int,
        n_ros: int, n_sched: int, n_wakeup: int,
    ) -> None:
        """v3 parse: section directory + small eager sections; event
        and payload columns stay lazy per-stream handles."""
        try:
            entries, body_start = unpack_section_dir(data, HEADER.size)
        except StoreFormatError as error:
            raise StoreFormatError(f"{self._source}: {error}") from None
        self._data = memoryview(data)
        self._body_start = body_start
        self._sections: Dict[Tuple[int, int], SectionEntry] = {
            (entry.kind, entry.index): entry for entry in entries
        }
        self._section_cache: Dict[Tuple[int, int], Sequence] = {}
        self.body_bytes = sum(entry.raw_len for entry in entries)
        end = body_start + max(
            (entry.offset + entry.comp_len for entry in entries), default=0
        )
        if end > len(data):
            raise StoreFormatError(
                f"{self._source}: truncated segment: section directory "
                f"addresses {end} bytes, file has {len(data)}"
            )
        section = "pid_map"
        try:
            raw = self._section_bytes(SECTION_PID_MAP, 0)
            self.pid_map, _ = unpack_pid_map(raw, 0, n_pids)
            section = "string table"
            raw = self._section_bytes(SECTION_STRINGS, 0)
            self._strings, _ = unpack_strings(raw, 0, n_strings)
            section = "shape directory"
            raw = self._section_bytes(SECTION_SHAPES, 0)
            shape_dir, _ = unpack_shape_dir(raw, 0)
        except StoreFormatError as error:
            message = str(error)
            if not message.startswith(self._source):
                message = f"{self._source}: {message}"
            raise StoreFormatError(message) from None
        except (IncompletePrefix, ValueError, TypeError, struct.error,
                IndexError) as error:
            raise StoreFormatError(
                f"{self._source}: corrupt or truncated segment "
                f"(in {section}): {error}"
            ) from None
        strings = self._strings
        payload_index = 0
        for fields, count in shape_dir:
            keys = tuple(strings[name_id] for name_id, _ in fields)
            types = tuple(ftype for _, ftype in fields)
            columns: List[Any] = []
            for ftype in types:
                if ftype == FIELD_NONE:
                    columns.append(None)
                else:
                    columns.append(self._payload_loader(
                        FIELD_TYPECODES[ftype], count, payload_index
                    ))
                    payload_index += 1
            self._shapes.append(_Shape(keys, types, count, columns, strings))
        self._ros = _LazyColumns(self, SECTION_ROS, ROS_COLUMNS_V2, n_ros)
        self._sched = _LazyColumns(self, SECTION_SCHED, SCHED_COLUMNS, n_sched)
        self._wakeup = _LazyColumns(
            self, SECTION_WAKEUP, WAKEUP_COLUMNS, n_wakeup
        )

    def _payload_loader(self, typecode: str, count: int, index: int):
        """A zero-argument handle materializing one payload column."""
        return lambda: self._section_column(
            typecode, count, SECTION_PAYLOAD, index
        )

    def _section_bytes(self, kind: int, index: int):
        """One v3 section's raw bytes (sliced, inflated if deflated,
        cached); parse failures surface as :class:`StoreFormatError`
        naming the file, the section and its offset."""
        key = (kind, index)
        cached = self._section_cache.get(key)
        if cached is not None:
            return cached
        entry = self._sections.get(key)
        if entry is None:
            raise StoreFormatError(
                f"{self._source}: missing section "
                f"{SectionEntry(kind, 0, index, 0, 0, 0).name} "
                "(absent from the section directory)"
            )
        start = self._body_start + entry.offset
        raw = self._data[start:start + entry.comp_len]
        if len(raw) != entry.comp_len:
            raise StoreFormatError(
                f"{self._source}: truncated section {entry.name} "
                f"(at file offset {start}): need {entry.comp_len} bytes, "
                f"have {len(raw)}"
            )
        if entry.comp == SECTION_COMP_ZLIB:
            try:
                raw = zlib.decompress(raw)
            except zlib.error as error:
                raise StoreFormatError(
                    f"{self._source}: corrupt section {entry.name} "
                    f"(at file offset {start}): {error}"
                ) from None
            if len(raw) != entry.raw_len:
                raise StoreFormatError(
                    f"{self._source}: corrupt section {entry.name} "
                    f"(at file offset {start}): inflated to {len(raw)} "
                    f"bytes, directory says {entry.raw_len}"
                )
        self._section_cache[key] = raw
        if entry.comp == SECTION_COMP_ZLIB:
            self.bytes_inflated += entry.raw_len
        return raw

    def _section_column(
        self, typecode: str, count: int, kind: int, index: int
    ) -> Sequence:
        """One v3 column as a typed view over its section stream."""
        raw = self._section_bytes(kind, index)
        expected = _ITEMSIZE[typecode] * count
        if len(raw) != expected:
            entry = self._sections[(kind, index)]
            raise StoreFormatError(
                f"{self._source}: corrupt section {entry.name} "
                f"(at file offset {self._body_start + entry.offset}): "
                f"{len(raw)} bytes for {count} {typecode!r} values "
                f"(expected {expected})"
            )
        if _BIG_ENDIAN:  # pragma: no cover - LE containers
            return column_from_bytes(typecode, bytes(raw))
        view = raw if isinstance(raw, memoryview) else memoryview(raw)
        return view.cast(typecode)

    @classmethod
    def open(cls, path: str, use_mmap: bool = False) -> "SegmentReader":
        """Read (or, with ``use_mmap``, map) ``path`` into a reader.

        ``use_mmap`` avoids the up-front file read: section slices come
        straight from the page cache, which is the point of the store's
        uncompressed segment cache -- repeated synthesis over the same
        store re-reads only the pages it touches.
        """
        if use_mmap:
            import mmap as _mmap

            with open(path, "rb") as handle:
                mapped = _mmap.mmap(
                    handle.fileno(), 0, access=_mmap.ACCESS_READ
                )
            return cls(mapped, path=path)
        with open(path, "rb") as handle:
            return cls(handle.read(), path=path)

    def _read_section(
        self, typecodes: Sequence[str], count: int, offset: int
    ) -> List[Sequence[int]]:
        """Column views for one section (zero-copy casts on LE hosts)."""
        columns: List[Sequence[int]] = []
        view = memoryview(self._body)
        for code in typecodes:
            size = _ITEMSIZE[code] * count
            raw = view[offset:offset + size]
            if _BIG_ENDIAN:  # pragma: no cover - LE containers
                columns.append(column_from_bytes(code, bytes(raw)))
            else:
                columns.append(raw.cast(code))
            offset += size
        return columns

    def _read_shapes(self, shape_dir, offset: int) -> int:
        """Build the :class:`_Shape` views of a v2 segment; returns the
        offset past the payload columns."""
        strings = self._strings
        for fields, count in shape_dir:
            keys = tuple(strings[name_id] for name_id, _ in fields)
            types = tuple(ftype for _, ftype in fields)
            stored = [t for t in types if t != FIELD_NONE]
            views = iter(
                self._read_section(
                    [FIELD_TYPECODES[t] for t in stored], count, offset
                )
            )
            offset += sum(_ITEMSIZE[FIELD_TYPECODES[t]] for t in stored) * count
            columns: List[Optional[Sequence]] = [
                None if t == FIELD_NONE else next(views) for t in types
            ]
            self._shapes.append(_Shape(keys, types, count, columns, strings))
        return offset

    # -- decoding ----------------------------------------------------------

    def _payload(self, data_id: int) -> Dict[str, Any]:
        if data_id == NONE_ID:
            return {}
        payload = self._payload_cache.get(data_id)
        if payload is None:
            # Payloads are canonical compact JSON by the writer contract
            # (no leading whitespace, no trailing bytes), so the bound C
            # scanner replaces json.loads' per-call dispatch -- ~2.4x
            # cheaper on the store's small payload documents.
            payload = _SCAN_PAYLOAD(self._strings[data_id], 0)[0]
            self._payload_cache[data_id] = payload
        return payload

    def _payload_at(self, sid: int, vidx: int) -> Dict[str, Any]:
        """One v2 row's payload from its (shape, vidx) coordinates."""
        if sid == NONE_ID:
            return {}
        if sid == SHAPE_JSON:
            return self._payload(vidx)
        return self._shapes[sid].rows()[vidx]

    def iter_ros(self, pids: Optional[Iterable[int]] = None) -> Iterator[TraceEvent]:
        """The run's ROS events, chronological; ``pids`` selects rows by
        scanning the PID column only."""
        strings = self._strings
        wanted = None
        if pids is not None:
            wanted = pids if isinstance(pids, frozenset) else frozenset(pids)
        if self.version >= 2:
            ts_col, pid_col, probe_col, shape_col, vidx_col = self._ros
            payload = self._payload_at
            for i in range(self.num_ros_events):
                if wanted is None or pid_col[i] in wanted:
                    yield TraceEvent(
                        ts_col[i], pid_col[i], strings[probe_col[i]],
                        payload(shape_col[i], vidx_col[i]),
                    )
            return
        ts_col, pid_col, probe_col, data_col = self._ros
        payload_v1 = self._payload
        for i in range(self.num_ros_events):
            if wanted is None or pid_col[i] in wanted:
                yield TraceEvent(
                    ts_col[i], pid_col[i], strings[probe_col[i]],
                    payload_v1(data_col[i]),
                )

    def walk_rows(self, order: int) -> Iterator[tuple]:
        """Columnar Alg. 1 rows: ``(ts, order, row, pid, code, aux)``.

        The first three fields are ints forming a unique, heap-mergeable
        sort key (``order`` is the reader's position in the store's
        run-id order, so ties between runs keep run order without a key
        function).  ``aux`` is the CB-type label for CB-start rows, the
        payload mapping for the ID-carrying rows (publish / take /
        response -- the only rows whose payload Alg. 1 dereferences),
        and ``None`` otherwise; no :class:`TraceEvent` is ever built.
        """
        if self._code_table is None:
            self._code_table = probe_code_table(self._strings)
            self._start_types = cb_start_type_table(self._strings)
        codes = self._code_table
        start_types = self._start_types
        if self.version >= 2:
            ts_col, pid_col, probe_col, shape_col, vidx_col = self._ros
            payload = self._payload_at
            for i in range(self.num_ros_events):
                string_id = probe_col[i]
                code = codes[string_id]
                if CODE_TIMER_CALL <= code <= CODE_TAKE_TYPE_ERASED:
                    aux: Any = payload(shape_col[i], vidx_col[i])
                elif code == CODE_CB_START:
                    aux = start_types[string_id]
                else:
                    aux = None
                yield (ts_col[i], order, i, pid_col[i], code, aux)
            return
        ts_col, pid_col, probe_col, data_col = self._ros
        payload_v1 = self._payload
        for i in range(self.num_ros_events):
            string_id = probe_col[i]
            code = codes[string_id]
            if CODE_TIMER_CALL <= code <= CODE_TAKE_TYPE_ERASED:
                aux = payload_v1(data_col[i])
            elif code == CODE_CB_START:
                aux = start_types[string_id]
            else:
                aux = None
            yield (ts_col[i], order, i, pid_col[i], code, aux)

    def ros_ts_range(self) -> Optional[Tuple[int, int]]:
        """(first, last) ROS timestamp, or None for an eventless run --
        how the columnar merge detects time-disjoint stored runs."""
        ts_col = self._ros[0]
        if not self.num_ros_events:
            return None
        return ts_col[0], ts_col[self.num_ros_events - 1]

    def walk_fastpath(self):
        """Raw material of :meth:`walk_rows` for the time-ordered fast
        path: ``(format version, columns)``, where ``columns`` is the
        version-specific tuple :class:`~repro.store.index.StoreTraceIndex`
        consumes in one tight index loop with no per-row generator or
        tuple.

        v1: ``(ts, pid, probe, data)`` columns + the per-string-id
        code/CB-type tables, the payload cache (hit-path dict access)
        and the bound lazy JSON decoder (misses).

        v2: ``(ts, pid, probe, shape, vidx)`` columns + the code/CB-type
        tables, the :class:`_Shape` list (bulk typed-column payload
        rows, materialized lazily per shape) and the bound JSON decoder
        for fallback rows.
        """
        if self._code_table is None:
            self._code_table = probe_code_table(self._strings)
            self._start_types = cb_start_type_table(self._strings)
        if self.version >= 2:
            ts_col, pid_col, probe_col, shape_col, vidx_col = self._ros
            return 2, (
                ts_col, pid_col, probe_col, shape_col, vidx_col,
                self._code_table, self._start_types,
                self._shapes, self._payload,
            )
        ts_col, pid_col, probe_col, data_col = self._ros
        return 1, (
            ts_col, pid_col, probe_col, data_col,
            self._code_table, self._start_types,
            self._payload_cache, self._payload,
        )

    def sched_pid_rows(self) -> Iterator[Tuple[int, int, int]]:
        """``(ts, prev_pid, next_pid)`` per sched_switch row -- three
        int-column scans, no :class:`SchedSwitch` objects, feeding the
        store-side shard-local :class:`~repro.core.exec_time.SchedIndex`
        bucketing.  On v3 segments only those three of the nine sched
        streams inflate."""
        return zip(self._sched[0], self._sched[2], self._sched[6])

    def sched_pid_columns(self) -> Tuple[Sequence, Sequence, Sequence]:
        """The raw ``(ts, prev_pid, next_pid)`` columns behind
        :meth:`sched_pid_rows`, for consumers that bucket them in bulk
        (the vectorized :class:`~repro.store.index.StoreTraceIndex`
        sched pass)."""
        return self._sched[0], self._sched[2], self._sched[6]

    def wakeup_ts_pid_rows(self) -> Iterator[Tuple[int, int]]:
        """``(ts, pid)`` per sched_wakeup row -- two int-column scans
        (the only wakeup fields :class:`~repro.analysis.latency.LatencyIndex`
        consumes); on v3 segments the other three wakeup streams never
        inflate."""
        return zip(self._wakeup[0], self._wakeup[2])

    def iter_sched(self) -> Iterator[SchedSwitch]:
        ts, cpu, prev_pid, prev_comm, prev_prio, prev_state, next_pid, next_comm, next_prio = self._sched
        strings = self._strings
        for i in range(self.num_sched_events):
            yield SchedSwitch(
                ts[i], cpu[i], prev_pid[i], strings[prev_comm[i]], prev_prio[i],
                strings[prev_state[i]], next_pid[i], strings[next_comm[i]],
                next_prio[i],
            )

    def iter_wakeups(self) -> Iterator[SchedWakeup]:
        ts, cpu, pid, comm, prio = self._wakeup
        strings = self._strings
        for i in range(self.num_wakeup_events):
            cpu_value = cpu[i]
            yield SchedWakeup(
                ts[i], None if cpu_value == NONE_CPU else cpu_value, pid[i],
                strings[comm[i]], prio[i],
            )

    # -- aggregate views ---------------------------------------------------

    def ros_pids(self) -> List[int]:
        """Distinct PIDs appearing in the ROS stream (column scan --
        no events are materialized)."""
        return sorted(set(self._ros[1]))

    def pids(self) -> List[int]:
        """PIDs of the run's PID map (the traced nodes)."""
        return sorted(self.pid_map)

    def to_trace(self) -> Trace:
        """Materialize the full run (lossless round trip)."""
        return Trace(
            ros_events=list(self.iter_ros()),
            sched_events=list(self.iter_sched()),
            wakeup_events=list(self.iter_wakeups()),
            pid_map=dict(self.pid_map),
            start_ts=self.start_ts,
            stop_ts=self.stop_ts,
        )


def peek_header(path: str) -> Tuple[int, int, int, int, int, int, int, int, int]:
    """Header fields of a segment file from its first bytes only:
    (version, flags, n_strings, n_pids, n_ros, n_sched, n_wakeup,
    start_ts, stop_ts).  The cheap introspection behind
    ``repro store-info``."""
    with open(path, "rb") as handle:
        return unpack_header(handle.read(HEADER.size), source=path)


def peek_sections(path: str) -> List[SectionEntry]:
    """The section directory of a v3 segment (header + directory bytes
    only -- no event stream is touched); empty for v1/v2 segments,
    whose body is one undifferentiated stream.  Feeds the per-section
    size breakdown of ``repro store-info --json``."""
    with open(path, "rb") as handle:
        head = handle.read(HEADER.size)
        version, *_ = unpack_header(head, source=path)
        if version < 3:
            return []
        prefix = handle.read(4)
        if len(prefix) < 4:
            raise StoreFormatError(
                f"{path}: truncated segment: section directory cut off"
            )
        (count,) = struct.unpack("<I", prefix)
        raw = head + prefix + handle.read(count * SECTION_ENTRY.size)
        try:
            entries, _ = unpack_section_dir(raw, HEADER.size)
        except StoreFormatError as error:
            raise StoreFormatError(f"{path}: {error}") from None
        return entries


def read_pid_map(path: str) -> Dict[int, Optional[str]]:
    """The PID -> node-name map of a segment, from a file prefix.

    The pid_map section leads the body in every format version, so
    planning a sharded synthesis over a large store decodes a few KB per
    run (one inflate window for compressed segments) instead of every
    event column.  v3 segments do even less: seek to the pid_map
    stream named by the section directory and inflate exactly that.
    """
    with open(path, "rb") as handle:
        head = handle.read(HEADER.size)
        version, flags, _, n_pids, _, _, _, _, _ = unpack_header(
            head, source=path
        )
        if version >= 3:
            prefix = handle.read(4)
            if len(prefix) < 4:
                raise StoreFormatError(
                    f"{path}: truncated segment: section directory cut off"
                )
            (count,) = struct.unpack("<I", prefix)
            raw = head + prefix + handle.read(count * SECTION_ENTRY.size)
            try:
                entries, body_start = unpack_section_dir(raw, HEADER.size)
            except StoreFormatError as error:
                raise StoreFormatError(f"{path}: {error}") from None
            entry = next(
                (e for e in entries if e.kind == SECTION_PID_MAP), None
            )
            if entry is None:
                raise StoreFormatError(
                    f"{path}: missing section pid_map "
                    "(absent from the section directory)"
                )
            handle.seek(body_start + entry.offset)
            raw_section = handle.read(entry.comp_len)
            if len(raw_section) != entry.comp_len:
                raise StoreFormatError(
                    f"{path}: truncated section pid_map (at file offset "
                    f"{body_start + entry.offset}): need {entry.comp_len} "
                    f"bytes, have {len(raw_section)}"
                )
            if entry.comp == SECTION_COMP_ZLIB:
                try:
                    raw_section = zlib.decompress(raw_section)
                except zlib.error as error:
                    raise StoreFormatError(
                        f"{path}: corrupt section pid_map (at file offset "
                        f"{body_start + entry.offset}): {error}"
                    ) from None
            try:
                pid_map, _ = unpack_pid_map(raw_section, 0, n_pids)
            except (IncompletePrefix, ValueError, struct.error) as error:
                raise StoreFormatError(
                    f"{path}: corrupt section pid_map: {error}"
                ) from None
            return pid_map
        inflater = zlib.decompressobj() if flags & FLAG_ZLIB_BODY else None
        buffer = b""
        while True:
            try:
                pid_map, _ = unpack_pid_map(buffer, 0, n_pids)
                return pid_map
            except IncompletePrefix:
                pass
            chunk = handle.read(1 << 16)
            if not chunk:
                raise StoreFormatError(f"truncated segment {path!r}: pid_map cut off")
            try:
                buffer += inflater.decompress(chunk) if inflater else chunk
            except zlib.error as error:
                raise StoreFormatError(
                    f"{path}: corrupt zlib body: {error}"
                ) from None


class InMemorySegment:
    """A loaded :class:`Trace` behind the reader interface (legacy runs)."""

    def __init__(self, trace: Trace, path: Optional[str] = None):
        self._trace = trace
        self.path = path
        self.pid_map = trace.pid_map
        self.start_ts = trace.start_ts
        self.stop_ts = trace.stop_ts
        self.num_ros_events = len(trace.ros_events)
        self.num_sched_events = len(trace.sched_events)
        self.num_wakeup_events = len(trace.wakeup_events)

    def iter_ros(self, pids: Optional[Iterable[int]] = None) -> Iterator[TraceEvent]:
        if pids is None:
            return iter(self._trace.ros_events)
        wanted = pids if isinstance(pids, frozenset) else frozenset(pids)
        return (e for e in self._trace.ros_events if e.pid in wanted)

    def walk_rows(self, order: int) -> Iterator[tuple]:
        """The loaded-trace view of :meth:`SegmentReader.walk_rows`, so
        legacy gzip-JSON runs join the same columnar k-way merge.
        Payloads are already-decoded mappings; no re-encode happens."""
        code_of = PROBE_CODES.get
        start_type = CB_TYPE_BY_START.get
        for i, event in enumerate(self._trace.ros_events):
            code = code_of(event[2], CODE_OTHER)
            if CODE_TIMER_CALL <= code <= CODE_TAKE_TYPE_ERASED:
                aux: Any = event[3]
            elif code == CODE_CB_START:
                aux = start_type(event[2])
            else:
                aux = None
            yield (event[0], order, i, event[1], code, aux)

    def ros_ts_range(self) -> Optional[Tuple[int, int]]:
        events = self._trace.ros_events
        if not events:
            return None
        return events[0].ts, events[-1].ts

    def sched_pid_rows(self) -> Iterator[Tuple[int, int, int]]:
        return ((e[0], e[2], e[6]) for e in self._trace.sched_events)

    def wakeup_ts_pid_rows(self) -> Iterator[Tuple[int, int]]:
        return ((e[0], e[2]) for e in self._trace.wakeup_events)

    def iter_sched(self) -> Iterator[SchedSwitch]:
        return iter(self._trace.sched_events)

    def iter_wakeups(self) -> Iterator[SchedWakeup]:
        return iter(self._trace.wakeup_events)

    def pids(self) -> List[int]:
        return sorted(self.pid_map)

    def to_trace(self) -> Trace:
        return self._trace


def merge_ros_streams(
    readers: Sequence[Any], pids: Optional[Iterable[int]] = None
) -> Iterator[TraceEvent]:
    """Chronological k-way merge of many runs' ROS streams.

    Stored streams are sorted by the trace contract, so the heap merge
    yields the exact sequence ``Trace.merge`` would produce (ties keep
    reader order), one event at a time.
    """
    wanted = None if pids is None else frozenset(pids)
    return _heap_merge(*(r.iter_ros(pids=wanted) for r in readers), key=_TS_KEY)


def merge_sched_streams(readers: Sequence[Any]) -> Iterator[SchedSwitch]:
    return _heap_merge(*(r.iter_sched() for r in readers), key=_TS_KEY)


def merge_wakeup_streams(readers: Sequence[Any]) -> Iterator[SchedWakeup]:
    return _heap_merge(*(r.iter_wakeups() for r in readers), key=_TS_KEY)

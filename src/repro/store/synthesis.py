"""Out-of-core model synthesis straight from a trace store.

``synthesize_from_store`` reproduces the two multi-run strategies of
Sec. V without an in-memory :class:`TraceDatabase`:

* **merge_traces** (default): the stored runs' event streams k-way
  merge into one chronological stream feeding a single
  :class:`~repro.core.index.TraceIndex`; Alg. 1 extraction then
  partitions the traced PIDs into shards and fans out over a
  ``ProcessPoolExecutor``.  Workers re-open the store themselves (the
  task payload is ``(directory, pid shard)``, never pickled traces) and
  return per-PID CBlists, which reduce in sorted-PID order into the
  same DAG the in-memory pipeline synthesizes -- **byte-identical for
  any ``jobs`` value**, the same determinism discipline as
  :mod:`repro.experiments.batch`.
* **merge_dags**: one DAG per stored run (sharded by run), merged with
  :func:`~repro.core.merge.merge_dags`.

Sharding discipline: per-PID extraction only shares the *immutable*
``TraceIndex`` tables; the single mutable piece of extraction state --
the FIFO caller cursors of :class:`~repro.core.extraction.EventIndex`
-- is keyed by ``(topic, src_ts)``, and every take of such a key
happens in the one PID hosting that service, so per-shard cursors see
exactly the lookup sequence the sequential pass saw.  The equivalence
suite pins this byte-for-byte against ``synthesize_from_trace`` for
every registry scenario at several job counts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.dag import TimingDag
from ..core.extraction import EventIndex, _extract_pid_events
from ..experiments.batch import _shard
from ..core.index import TraceIndex
from ..core.merge import merge_dags
from ..core.pipeline import (
    STRATEGY_MERGE_DAGS,
    STRATEGY_MERGE_TRACES,
    synthesize_from_trace,
)
from ..core.records import CBList
from ..core.synthesis import synthesize_dag
from .database import StoreLike, as_store
from .reader import merge_ros_streams, merge_sched_streams


def _index_from_readers(readers: Sequence) -> TraceIndex:
    pid_map: Dict[int, Optional[str]] = {}
    for reader in readers:
        pid_map.update(reader.pid_map)
    return TraceIndex(
        list(merge_ros_streams(readers)),
        merge_sched_streams(readers),
        pid_map=pid_map,
    )


def merged_trace_index(store: StoreLike) -> TraceIndex:
    """One :class:`TraceIndex` over all stored runs, streamed.

    Events decode once, directly into the index's merged chronological
    list; per-run ``Trace`` objects are never materialized and sched
    events flow straight into the columnar ``SchedIndex``.
    """
    return _index_from_readers(as_store(store).readers())


def _extract_cblists(index: TraceIndex, wanted: Sequence[int]) -> List[CBList]:
    """Alg. 1 over ``wanted`` PIDs of a prebuilt merged index (the exact
    loop of :func:`repro.core.extraction.extract_all`)."""
    event_index = EventIndex(trace_index=index)
    pid_map = index.pid_map
    cblists = []
    for pid in wanted:
        events, codes = index.walk_for_pid(pid)
        cblists.append(
            _extract_pid_events(
                pid, events, codes, index.sched, event_index, pid_map.get(pid, "")
            )
        )
    return cblists


def _extract_shard(args: Tuple[str, Tuple[int, ...]]) -> List[CBList]:
    """Worker body: open the store, rebuild the merged index, extract
    this shard's PIDs (module-level for pickling)."""
    directory, shard = args
    index = merged_trace_index(directory)
    return _extract_cblists(index, list(shard))


def _synthesize_run_shard(
    args: Tuple[str, Tuple[str, ...], Optional[Tuple[int, ...]], bool, bool],
) -> List[TimingDag]:
    """Worker body for the merge_dags strategy: one DAG per stored run."""
    directory, run_ids, pids, split_services, model_sync = args
    store = as_store(directory)
    return [
        synthesize_from_trace(
            store.load(run_id),
            pids=pids,
            split_services=split_services,
            model_sync=model_sync,
        )
        for run_id in run_ids
    ]


def synthesize_from_store(
    store: StoreLike,
    pids: Optional[Iterable[int]] = None,
    jobs: int = 1,
    split_services: bool = True,
    model_sync: bool = True,
    strategy: str = STRATEGY_MERGE_TRACES,
) -> TimingDag:
    """Trace store -> timing DAG, optionally sharded across processes.

    ``jobs=1`` stays in-process.  Results are byte-identical for any
    ``jobs`` value; only wall-clock changes.
    """
    if jobs < 1:
        raise ValueError("need at least one job")
    store = as_store(store)

    if strategy == STRATEGY_MERGE_DAGS:
        return _synthesize_merge_dags(store, pids, jobs, split_services, model_sync)
    if strategy != STRATEGY_MERGE_TRACES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected "
            f"{STRATEGY_MERGE_TRACES!r} or {STRATEGY_MERGE_DAGS!r}"
        )

    if jobs == 1:
        # Serial: decode every segment exactly once -- the index carries
        # the union pid_map, so no planning prefix-read is needed.
        index = merged_trace_index(store)
        wanted = sorted(pids) if pids is not None else sorted(index.pid_map)
        cblists = _extract_cblists(index, wanted)
        return synthesize_dag(
            cblists, split_services=split_services, model_sync=model_sync
        )

    # Sharded: plan from the cheap pid_map prefixes, decode in workers.
    if pids is not None:
        wanted = sorted(pids)
    else:
        wanted = sorted(store.union_pid_map())
    jobs = min(jobs, len(wanted)) if wanted else 1
    if jobs == 1:
        index = merged_trace_index(store)
        cblists = _extract_cblists(index, wanted)
    else:
        shards = _shard(wanted, jobs)
        by_pid: Dict[int, CBList] = {}
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard_lists in pool.map(
                _extract_shard,
                [(store.directory, tuple(shard)) for shard in shards],
            ):
                for cblist in shard_lists:
                    by_pid[cblist.pid] = cblist
        cblists = [by_pid[pid] for pid in wanted]
    return synthesize_dag(
        cblists, split_services=split_services, model_sync=model_sync
    )


def _synthesize_merge_dags(
    store,
    pids: Optional[Iterable[int]],
    jobs: int,
    split_services: bool,
    model_sync: bool,
) -> TimingDag:
    run_ids = store.run_ids()
    if not run_ids:
        raise ValueError(f"trace store {store.directory!r} holds no runs")
    pids_key = tuple(sorted(pids)) if pids is not None else None
    jobs = min(jobs, len(run_ids))
    if jobs == 1:
        dags = _synthesize_run_shard(
            (store.directory, tuple(run_ids), pids_key, split_services, model_sync)
        )
    else:
        shards = _shard(run_ids, jobs)
        by_run: Dict[str, TimingDag] = {}
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard, shard_dags in zip(
                shards,
                pool.map(
                    _synthesize_run_shard,
                    [
                        (store.directory, tuple(shard), pids_key,
                         split_services, model_sync)
                        for shard in shards
                    ],
                ),
            ):
                by_run.update(zip(shard, shard_dags))
        dags = [by_run[run_id] for run_id in run_ids]
    return merge_dags(dags)

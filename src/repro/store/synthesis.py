"""Out-of-core model synthesis straight from a trace store.

``synthesize_from_store`` reproduces the two multi-run strategies of
Sec. V without an in-memory :class:`TraceDatabase`:

* **merge_traces** (default): the stored runs' columns k-way merge into
  one chronological row stream feeding a
  :class:`~repro.store.index.StoreTraceIndex` -- the columnar Alg. 1
  walk that resolves probe codes from per-segment string-id tables and,
  for format-v2 segments, reads ``cb_id``/``topic``/``src_ts`` straight
  from typed per-field payload columns (v1 segments fall back to lazy
  JSON decode of ID-carrying rows only); extraction then
  partitions the traced PIDs into shards and fans out over a
  ``ProcessPoolExecutor``.  Workers re-open the store themselves (the
  task payload is ``(directory, pid shard)``, never pickled traces),
  build walk columns and sched buckets *for their shard's PIDs only*,
  and return per-PID CBlists, which reduce in sorted-PID order into the
  same DAG the in-memory pipeline synthesizes -- **byte-identical for
  any ``jobs`` value**, the same determinism discipline as
  :mod:`repro.experiments.batch`.
* **merge_dags**: one DAG per stored run (sharded by run), merged with
  :func:`~repro.core.merge.merge_dags`.

Sharding discipline: per-PID extraction only shares the *immutable*
``TraceIndex`` tables; the single mutable piece of extraction state --
the FIFO caller cursors of :class:`~repro.core.extraction.EventIndex`
-- is keyed by ``(topic, src_ts)``, and every take of such a key
happens in the one PID hosting that service, so per-shard cursors see
exactly the lookup sequence the sequential pass saw.  The equivalence
suite pins this byte-for-byte against ``synthesize_from_trace`` for
every registry scenario at several job counts.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.dag import TimingDag
from ..core.extraction import EventIndex, _extract_pid_walk
from ..experiments.batch import _shard
from ..core.index import TraceIndex
from ..core.merge import merge_dags
from ..core.pipeline import (
    STRATEGY_MERGE_DAGS,
    STRATEGY_MERGE_TRACES,
    synthesize_from_trace,
)
from ..core.records import CBList
from ..core.synthesis import synthesize_dag
from .database import StoreLike, TraceStore, as_store
from .index import StoreTraceIndex
from .reader import merge_ros_streams, merge_sched_streams


def _index_from_readers(readers: Sequence) -> TraceIndex:
    pid_map: Dict[int, Optional[str]] = {}
    for reader in readers:
        pid_map.update(reader.pid_map)
    return TraceIndex(
        list(merge_ros_streams(readers)),
        merge_sched_streams(readers),
        pid_map=pid_map,
    )


def merged_trace_index(store: StoreLike) -> TraceIndex:
    """One :class:`TraceIndex` over all stored runs, streamed.

    Events decode once, directly into the index's merged chronological
    list; per-run ``Trace`` objects are never materialized and sched
    events flow straight into the columnar ``SchedIndex``.
    """
    return _index_from_readers(as_store(store).readers())


def _extract_store_cblists(
    readers: Sequence, wanted: Sequence[int], build_all: bool = False
) -> List[CBList]:
    """Alg. 1 over ``wanted`` PIDs straight from segment columns.

    One :class:`StoreTraceIndex` pass builds walk columns and sched
    buckets for ``wanted`` only (the cross-node tables still span the
    whole stream), then the columnar walk extracts per PID -- no merged
    event list, no :class:`TraceEvent` construction for non-ID rows.
    ``build_all`` skips the per-row PID filter when ``wanted`` is known
    to cover every traced PID (the serial unfiltered path).
    """
    index = StoreTraceIndex(readers, wanted_pids=None if build_all else wanted)
    event_index = EventIndex(trace_index=index)
    pid_map = index.pid_map
    cblists = []
    for pid in wanted:
        timestamps, codes, aux = index.walk_for_pid(pid)
        cblists.append(
            _extract_pid_walk(
                pid, timestamps, codes, aux, index.sched, event_index,
                pid_map.get(pid, ""),
            )
        )
    return cblists


def _extract_shard(
    args: Tuple[str, Tuple[int, ...], bool, Optional[str]],
) -> List[CBList]:
    """Worker body: open the store, extract this shard's PIDs with the
    columnar walk -- shard-local walk columns and sched buckets, never
    the full merged index (module-level for pickling).  The parent
    store's ``strict`` flag and ``cache_dir`` ride along so a lenient
    handle skips the same unreadable runs in every worker and a cached
    store mmaps the same uncompressed copies instead of inflating the
    segments once per worker."""
    directory, shard, strict, cache_dir = args
    readers = TraceStore(directory, strict=strict, cache_dir=cache_dir).readers()
    return _extract_store_cblists(readers, list(shard))


def _synthesize_run_shard(
    args: Tuple[str, Tuple[str, ...], Optional[Tuple[int, ...]], bool, bool],
) -> List[TimingDag]:
    """Worker body for the merge_dags strategy: one DAG per stored run."""
    directory, run_ids, pids, split_services, model_sync = args
    store = as_store(directory)
    return [
        synthesize_from_trace(
            store.load(run_id),
            pids=pids,
            split_services=split_services,
            model_sync=model_sync,
        )
        for run_id in run_ids
    ]


def synthesize_from_store(
    store: StoreLike,
    pids: Optional[Iterable[int]] = None,
    jobs: int = 1,
    split_services: bool = True,
    model_sync: bool = True,
    strategy: str = STRATEGY_MERGE_TRACES,
) -> TimingDag:
    """Trace store -> timing DAG, optionally sharded across processes.

    ``jobs=1`` stays in-process.  Results are byte-identical for any
    ``jobs`` value; only wall-clock changes.
    """
    if jobs < 1:
        raise ValueError("need at least one job")
    store = as_store(store)

    if strategy == STRATEGY_MERGE_DAGS:
        return _synthesize_merge_dags(store, pids, jobs, split_services, model_sync)
    if strategy != STRATEGY_MERGE_TRACES:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected "
            f"{STRATEGY_MERGE_TRACES!r} or {STRATEGY_MERGE_DAGS!r}"
        )

    if jobs == 1:
        # Serial: decode every segment exactly once -- the open readers
        # carry the union pid_map, so no planning prefix-read is needed.
        readers = store.readers()
        if pids is not None:
            wanted = sorted(pids)
            cblists = _extract_store_cblists(readers, wanted)
        else:
            union: Dict[int, Optional[str]] = {}
            for reader in readers:
                union.update(reader.pid_map)
            wanted = sorted(union)
            cblists = _extract_store_cblists(readers, wanted, build_all=True)
        return synthesize_dag(
            cblists, split_services=split_services, model_sync=model_sync
        )

    # Sharded: plan from the cheap pid_map prefixes, decode in workers.
    if pids is not None:
        wanted = sorted(pids)
    else:
        wanted = sorted(store.union_pid_map())
    jobs = min(jobs, len(wanted)) if wanted else 1
    if jobs == 1:
        cblists = _extract_store_cblists(store.readers(), wanted)
    else:
        shards = _shard(wanted, jobs)
        by_pid: Dict[int, CBList] = {}
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard_lists in pool.map(
                _extract_shard,
                [
                    (store.directory, tuple(shard), store.strict,
                     store.cache_dir)
                    for shard in shards
                ],
            ):
                for cblist in shard_lists:
                    by_pid[cblist.pid] = cblist
        cblists = [by_pid[pid] for pid in wanted]
    return synthesize_dag(
        cblists, split_services=split_services, model_sync=model_sync
    )


def _synthesize_merge_dags(
    store,
    pids: Optional[Iterable[int]],
    jobs: int,
    split_services: bool,
    model_sync: bool,
) -> TimingDag:
    run_ids = store.run_ids()
    if not run_ids:
        raise ValueError(f"trace store {store.directory!r} holds no runs")
    pids_key = tuple(sorted(pids)) if pids is not None else None
    jobs = min(jobs, len(run_ids))
    if jobs == 1:
        dags = _synthesize_run_shard(
            (store.directory, tuple(run_ids), pids_key, split_services, model_sync)
        )
    else:
        shards = _shard(run_ids, jobs)
        by_run: Dict[str, TimingDag] = {}
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard, shard_dags in zip(
                shards,
                pool.map(
                    _synthesize_run_shard,
                    [
                        (store.directory, tuple(shard), pids_key,
                         split_services, model_sync)
                        for shard in shards
                    ],
                ),
            ):
                by_run.update(zip(shard, shard_dags))
        dags = [by_run[run_id] for run_id in run_ids]
    return merge_dags(dags)

"""Record scenario runs straight into a trace store (``repro record``).

The Fig. 2 collection workflow, ending at the database server: run a
registered scenario N times with per-run seeds and write every run as a
binary segment.  Each run streams through a
:class:`~repro.store.writer.SegmentSpool` -- the tracing session is
rotated every ``segment_every_ns`` (default one simulated second) and
each drained rotation is packed immediately, so the recorder's
footprint is one rotation window of event objects plus the growing
columns, never the whole trace.

Determinism mirrors :mod:`repro.experiments.batch`: a run's seed,
clock base and PID base derive only from its ``run_index``; workers
rebuild the scenario spec from ``(name, params, run_index)`` and write
disjoint files, so the store contents are byte-identical for any
``jobs`` value.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..experiments.batch import BatchConfig, _shard
from ..scenarios.registry import build_scenario_spec
from ..sim.kernel import SEC
from ..tracing.session import TracingSession
from ..world import World
from .database import TraceStore
from .format import SUPPORTED_VERSIONS, VERSION
from .writer import SegmentSpool, segment_path, spool_session_segment

#: Default rotation interval for spooled recording.
DEFAULT_SPOOL_NS = 1 * SEC


def run_id_for(run_index: int) -> str:
    return f"run{run_index:03d}"


@dataclass
class RecordedRun:
    """Metadata of one stored run (the trace itself stays on disk)."""

    run_index: int
    run_id: str
    path: str
    ros_events: int
    sched_events: int
    bytes_written: int
    pushed: bool = False


@dataclass
class RecordResult:
    """Everything ``record_batch`` produced."""

    scenario: str
    directory: str
    runs: List[RecordedRun]
    jobs: int

    @property
    def run_ids(self) -> List[str]:
        return [run.run_id for run in self.runs]

    @property
    def total_events(self) -> int:
        return sum(run.ros_events + run.sched_events for run in self.runs)

    @property
    def total_bytes(self) -> int:
        return sum(run.bytes_written for run in self.runs)


def record_run(
    scenario: str,
    run_index: int,
    runs: int,
    config: BatchConfig,
    directory: str,
    format_version: int = VERSION,
    push_to: Optional[str] = None,
) -> RecordedRun:
    """One seeded, traced, spooled scenario run -> one binary segment
    (``format_version`` selects the segment encoding; default v2).

    ``push_to`` additionally streams the finished segment to a running
    ``repro serve`` endpoint as soon as it commits locally -- the
    recorder side of the live-ingestion workflow.
    """
    spec = build_scenario_spec(
        scenario,
        run_index=run_index,
        runs=runs,
        duration_ns=config.duration_ns,
        **config.scenario_params,
    )
    duration = config.duration_ns if config.duration_ns is not None else spec.duration_ns
    num_cpus = config.num_cpus if config.num_cpus is not None else spec.num_cpus
    run_config = config.run_config(duration, num_cpus)
    world = World(
        num_cpus=run_config.num_cpus,
        seed=run_config.seed_for(run_index),
        timeslice=run_config.timeslice_ns,
        dds_latency_ns=run_config.dds_latency_ns,
        start_time_ns=run_config.time_base_for(run_index),
        first_pid=run_config.pid_base_for(run_index),
    )
    spec.build(world)
    session = TracingSession(world, kernel_filter=run_config.kernel_filter)
    session.start_init()
    world.launch()
    world.run(for_ns=run_config.warmup_ns)
    session.stop_init()

    spool = SegmentSpool(format_version=format_version)
    # Init events (P1 discovery) precede every runtime segment
    # chronologically, so spooling them first keeps the stored stream
    # sorted -- the same order session.trace() would produce.
    for event in session.init_events():
        spool.append_ros(event)

    session.start_runtime()
    start_ts = world.now
    spool_every = config.segment_every_ns or DEFAULT_SPOOL_NS
    if spool_every <= 0:
        raise ValueError("segment_every_ns must be positive")
    remaining = duration
    while remaining > 0:
        step = min(spool_every, remaining)
        world.run(for_ns=step)
        spool_session_segment(spool, session)
        remaining -= step
    session.stop_runtime()
    for segment in session.segments:  # final rotation from stop_runtime
        spool.add_segment(segment)
    session.segments.clear()
    stop_ts = world.now

    run_id = run_id_for(run_index)
    os.makedirs(directory, exist_ok=True)
    path = segment_path(directory, run_id)
    ros_events = spool.num_ros
    sched_events = spool.num_sched
    written = spool.finish_path(path, session.pid_map(), start_ts, stop_ts)
    pushed = False
    if push_to is not None:
        from ..service.client import ServiceClient

        ServiceClient(push_to).push_file(path, run_id=run_id)
        pushed = True
    return RecordedRun(
        run_index=run_index,
        run_id=run_id,
        path=path,
        ros_events=ros_events,
        sched_events=sched_events,
        bytes_written=written,
        pushed=pushed,
    )


def _record_shard(
    args: Tuple[str, Tuple[int, ...], int, BatchConfig, str, int, Optional[str]],
) -> List[RecordedRun]:
    """Record a shard of run indices (module-level for pickling)."""
    scenario, run_indices, runs, config, directory, format_version, push_to = args
    return [
        record_run(
            scenario, run_index, runs, config, directory,
            format_version=format_version, push_to=push_to,
        )
        for run_index in run_indices
    ]


def record_batch(
    scenario: str,
    runs: int,
    directory: str,
    jobs: int = 1,
    config: Optional[BatchConfig] = None,
    force: bool = False,
    format_version: int = VERSION,
    push_to: Optional[str] = None,
) -> RecordResult:
    """Record ``runs`` seeded runs of ``scenario`` into ``directory``.

    Store contents are identical for any ``jobs`` value; workers write
    disjoint segment files, so nothing is pickled back but metadata.

    Recording refuses to overwrite runs an earlier recording left in
    ``directory`` (the error names the colliding run ids).  ``force``
    overwrites exactly the colliding run ids and nothing else: stored
    runs outside ``run000..runNNN`` (e.g. the tail of an earlier,
    larger recording) are left in place and will merge into any later
    synthesis over the directory -- delete the directory first when a
    fresh store is wanted.

    ``push_to`` streams every finished segment to a ``repro serve``
    endpoint right after its local commit; with ``jobs > 1`` each
    worker pushes its own runs, so segments arrive roughly in
    completion order, not run order (the service handles either).
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if jobs < 1:
        raise ValueError("need at least one job")
    if format_version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported format version {format_version!r} "
            f"(writable: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    if not force and os.path.isdir(directory):
        existing = TraceStore(directory, allow_empty=True)
        colliding = sorted(
            run_id for run_id in (run_id_for(i) for i in range(runs))
            if run_id in existing
        )
        if colliding:
            raise ValueError(
                f"store {directory!r} already holds run(s) "
                f"{', '.join(colliding)}; recording would overwrite them "
                "(pass force=True / --force to do so)"
            )
    config = config if config is not None else BatchConfig()
    if config.duration_ns is not None and config.duration_ns <= 0:
        raise ValueError("duration must be positive")
    if config.segment_every_ns is not None and config.segment_every_ns <= 0:
        raise ValueError("segment_every_ns must be positive")
    build_scenario_spec(  # validate name/params before forking
        scenario,
        run_index=0,
        runs=runs,
        duration_ns=config.duration_ns,
        **config.scenario_params,
    )
    os.makedirs(directory, exist_ok=True)

    run_indices = list(range(runs))
    jobs = min(jobs, runs)
    if jobs == 1:
        recorded = _record_shard(
            (scenario, tuple(run_indices), runs, config, directory,
             format_version, push_to)
        )
    else:
        shards = _shard(run_indices, jobs)
        recorded = []
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard_result in pool.map(
                _record_shard,
                [
                    (scenario, tuple(shard), runs, config, directory,
                     format_version, push_to)
                    for shard in shards
                ],
            ):
                recorded.extend(shard_result)
    recorded.sort(key=lambda run: run.run_index)
    return RecordResult(
        scenario=scenario, directory=directory, runs=recorded, jobs=jobs
    )

"""Columnar Alg. 1 indexing straight over stored segments.

:class:`StoreTraceIndex` is the store-native sibling of
:class:`~repro.core.index.TraceIndex`: the same per-PID walk views and
cross-node association tables, built by consuming
:class:`~repro.store.reader.SegmentReader` columns directly instead of
a merged list of :class:`~repro.tracing.events.TraceEvent` objects.

What makes it cheap:

* probe codes resolve through a per-segment table keyed by the stored
  probe-string id (one bytearray index per row, no string hashing);
* payloads are touched only for the ID-carrying rows Alg. 1
  dereferences (publish / take / response keys --
  :data:`~repro.core.index.PAYLOAD_CODES`); CB start/end and kernel
  probe rows -- the bulk of a trace -- never construct an event object.
  For format-v2 segments even the ID rows never see JSON:
  ``cb_id``/``topic``/``src_ts`` resolve from the segment's typed
  per-field columns, bulk-decoded once per payload shape (v1 segments
  keep the lazy per-distinct-payload JSON scan);
* the k-way merge across runs orders ``(ts, run, row)`` int prefixes,
  so ties keep run order (exactly like ``Trace.merge``) without a heap
  key function;
* ``sched_switch`` rows feed shard-local
  :class:`~repro.core.exec_time.SchedIndex` buckets built from three
  int columns -- only the ``wanted_pids`` a worker will actually query
  get buckets, so a sharded worker no longer indexes the full merged
  sched stream.

Equivalence with the in-memory pipeline is byte-exact and pinned by
``tests/test_store_synthesis.py``: all orderings are the stable
chronological merges ``TraceIndex`` sees, per-PID walk columns carry the
same values the event objects would, and bucket contents match because a
PID's bucket in the merged stream equals the stable ts-merge of its
per-run buckets.
"""

from __future__ import annotations

from array import array
from heapq import merge as _heap_merge
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.exec_time import _CLOSES, _OPENS, SchedIndex
from ..core.index import (
    CODE_CB_START,
    CODE_DDS_WRITE,
    CODE_TAKE_RESPONSE,
    CODE_TAKE_TYPE_ERASED,
    CODE_TIMER_CALL,
    TopicKey,
)
from .format import SHAPE_JSON

#: One PID's walk columns: timestamps, probe codes, and the per-row aux
#: slot (CB-type label / decoded payload / None) -- parallel sequences
#: consumed by :func:`~repro.core.extraction._extract_pid_walk`.
WalkColumns = Tuple[List[int], bytearray, List[Any]]

_EMPTY_WALK: WalkColumns = ([], bytearray(), [])


def _runs_are_time_ordered(readers: Sequence[Any]) -> bool:
    """True when the runs' ROS streams are time-disjoint in reader
    order, i.e. chronological merge == concatenation.  A shared
    boundary timestamp stays ordered: merge ties keep run order, which
    is concatenation order."""
    last: Optional[int] = None
    for reader in readers:
        span = reader.ros_ts_range()
        if span is None:
            continue
        if last is not None and span[0] < last:
            return False
        last = span[1]
    return True


class StoreTraceIndex:
    """Alg. 1 lookup structures built from stored segment columns.

    Parameters
    ----------
    readers:
        Segment readers in run-id order (the merge order), from
        :meth:`~repro.store.database.TraceStore.readers`.
    wanted_pids:
        PIDs whose walk columns and sched buckets to build (a worker's
        shard); the cross-node tables always cover the full stream --
        FindCaller/FindClient reach across shards by design.  ``None``
        builds every PID (the serial path).

    The attribute surface matches what
    :class:`~repro.core.extraction.EventIndex` consumes from
    :class:`~repro.core.index.TraceIndex` (``writes`` / ``writer_cb`` /
    ``take_responses`` / ``dispatch_after``), with payload mappings in
    the table slots where ``TraceIndex`` stores events -- both expose
    ``.get``, which is all the lookups use.
    """

    __slots__ = (
        "pid_map",
        "sched",
        "_by_pid",
        "writes",
        "writer_cb",
        "take_responses",
        "dispatch_after",
    )

    def __init__(
        self,
        readers: Sequence[Any],
        wanted_pids: Optional[Iterable[int]] = None,
    ):
        pid_map: Dict[int, Optional[str]] = {}
        for reader in readers:
            pid_map.update(reader.pid_map)
        self.pid_map = pid_map
        wanted = None if wanted_pids is None else frozenset(wanted_pids)
        self._build_ros(readers, wanted)
        self.sched = self._build_sched(readers, wanted)

    # -- ROS stream: walk columns + cross-node tables ----------------------

    def _build_ros(
        self, readers: Sequence[Any], wanted: Optional[frozenset]
    ) -> None:
        self._by_pid: Dict[int, WalkColumns] = {}
        self.writes: Dict[TopicKey, List[Tuple[int, Any]]] = {}
        self.writer_cb: Dict[int, Optional[str]] = {}
        self.take_responses: Dict[TopicKey, List[Tuple[int, Any]]] = {}
        self.dispatch_after: Dict[int, bool] = {}
        if not readers:
            return

        current_cb: Dict[int, Optional[str]] = {}
        pending_p13: Dict[int, List[int]] = {}
        #: pid -> bound (ts, code, aux) append methods of the pid's walk
        #: columns, so the per-row hot loops skip attribute lookups.
        appenders: Dict[int, tuple] = {}
        if _runs_are_time_ordered(readers):
            # The common case: seeded batch runs stagger their clock
            # bases, so run streams are time-disjoint in run-id order
            # and the chronological merge is plain concatenation --
            # each segment's columns feed one tight index loop with no
            # heap and no per-row generator frames or tuples.
            index = 0
            for reader in readers:
                fastpath = getattr(reader, "walk_fastpath", None)
                if fastpath is None:
                    index = self._consume_rows(
                        reader.walk_rows(0), wanted, index, current_cb,
                        pending_p13, appenders,
                    )
                    continue
                kind, columns = fastpath()
                if kind >= 2:
                    index = self._consume_columns_v2(
                        columns, wanted, index, current_cb, pending_p13,
                        appenders,
                    )
                else:
                    index = self._consume_columns(
                        columns, wanted, index, current_cb, pending_p13,
                        appenders,
                    )
        else:
            # Overlapping runs: k-way merge of per-reader row streams.
            # The (ts, order, row) int prefixes are unique, so plain
            # tuple comparison merges chronologically with ties in run
            # order and the aux slot is never compared.
            streams = [
                reader.walk_rows(order) for order, reader in enumerate(readers)
            ]
            rows = streams[0] if len(streams) == 1 else _heap_merge(*streams)
            self._consume_rows(rows, wanted, 0, current_cb, pending_p13, appenders)

    # The three _consume_* bodies are the same association state machine
    # as TraceIndex._build (positional indices of the merged stream),
    # duplicated only for the per-row access pattern: v1 column indexing
    # (JSON-interned payloads), v2 column indexing (typed shape
    # columns), and pre-assembled row tuples.  The store equivalence
    # suites pin all of them against the in-memory pipeline.

    def _walk_appender(self, appenders: Dict[int, tuple], pid: int) -> tuple:
        """First-row setup of a PID's walk columns + bound appends."""
        walk = self._by_pid[pid] = ([], bytearray(), [])
        bound = appenders[pid] = (
            walk[0].append, walk[1].append, walk[2].append,
        )
        return bound

    def _consume_columns(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        (
            ts_col, pid_col, probe_col, data_col,
            codes, start_types, payload_cache, payload,
        ) = columns
        cached_payload = payload_cache.get
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, pid, string_id, data_id in zip(
            ts_col, pid_col, probe_col, data_col
        ):
            code = codes[string_id]
            aux: Any = None
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_TYPE_ERASED:
                    aux = cached_payload(data_id)
                    if aux is None:
                        aux = payload(data_id)
                    if code <= CODE_TAKE_RESPONSE:
                        current_cb[pid] = aux.get("cb_id")
                        if code == CODE_TAKE_RESPONSE:
                            pending_p13.setdefault(pid, []).append(index)
                            key = (aux.get("topic"), aux.get("src_ts"))
                            take_responses.setdefault(key, []).append((index, aux))
                    elif code == CODE_DDS_WRITE:
                        writer_cb[index] = current_cb.get(pid)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        writes.setdefault(key, []).append((index, aux))
                    else:
                        will_dispatch = bool(aux.get("will_dispatch"))
                        for p13_index in pending_p13.pop(pid, ()):
                            dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
                aux = start_types[string_id]
            if all_wanted or pid in wanted:
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            index += 1
        return index

    def _consume_columns_v2(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        """The v2 hot loop: payload rows come from the segment's typed
        shape columns (bulk-decoded once per shape on first touch), so
        ID-carrying rows cost a list index and C ``dict.get`` calls --
        no JSON scanner anywhere.  Fallback-encoded rows (payloads
        outside the closed schema) decode through the v1 path."""
        (
            ts_col, pid_col, probe_col, shape_col, vidx_col,
            codes, start_types, shapes, json_payload,
        ) = columns
        #: shape id -> materialized payload-row list, resolved lazily so
        #: shapes only referenced by non-ID rows are never decoded.
        rows_by_shape: List[Optional[List]] = [None] * len(shapes)
        n_shapes = len(shapes)
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, pid, string_id, sid, vidx in zip(
            ts_col, pid_col, probe_col, shape_col, vidx_col
        ):
            code = codes[string_id]
            aux: Any = None
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_TYPE_ERASED:
                    if sid < n_shapes:
                        rows = rows_by_shape[sid]
                        if rows is None:
                            rows = rows_by_shape[sid] = shapes[sid].rows()
                        aux = rows[vidx]
                    elif sid == SHAPE_JSON:
                        aux = json_payload(vidx)
                    else:  # NONE_ID: an ID-carrying probe without payload
                        aux = {}
                    if code <= CODE_TAKE_RESPONSE:
                        current_cb[pid] = aux.get("cb_id")
                        if code == CODE_TAKE_RESPONSE:
                            pending_p13.setdefault(pid, []).append(index)
                            key = (aux.get("topic"), aux.get("src_ts"))
                            take_responses.setdefault(key, []).append((index, aux))
                    elif code == CODE_DDS_WRITE:
                        writer_cb[index] = current_cb.get(pid)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        writes.setdefault(key, []).append((index, aux))
                    else:
                        will_dispatch = bool(aux.get("will_dispatch"))
                        for p13_index in pending_p13.pop(pid, ()):
                            dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
                aux = start_types[string_id]
            if all_wanted or pid in wanted:
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            index += 1
        return index

    def _consume_rows(
        self,
        rows: Iterable[tuple],
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, _order, _row, pid, code, aux in rows:
            if all_wanted or pid in wanted:
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_RESPONSE:
                    current_cb[pid] = aux.get("cb_id")
                    if code == CODE_TAKE_RESPONSE:
                        pending_p13.setdefault(pid, []).append(index)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        take_responses.setdefault(key, []).append((index, aux))
                elif code == CODE_DDS_WRITE:
                    writer_cb[index] = current_cb.get(pid)
                    key = (aux.get("topic"), aux.get("src_ts"))
                    writes.setdefault(key, []).append((index, aux))
                elif code == CODE_TAKE_TYPE_ERASED:
                    will_dispatch = bool(aux.get("will_dispatch"))
                    for p13_index in pending_p13.pop(pid, ()):
                        dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
            index += 1
        return index

    # -- sched stream: shard-local columnar buckets ------------------------

    @staticmethod
    def _build_sched(
        readers: Sequence[Any], wanted: Optional[frozenset]
    ) -> SchedIndex:
        """Per-PID (timestamps, flags) buckets from the int columns.

        Bucketing per reader then stably ts-merging per PID yields the
        exact buckets :class:`SchedIndex` builds from the merged event
        stream, because a PID's merged-stream subsequence is ordered by
        the same ``(ts, run order, row order)`` comparator.
        """
        partials: Dict[int, List[Tuple[array, bytearray]]] = {}
        for reader in readers:
            local: Dict[int, Tuple[array, bytearray]] = {}
            for ts, prev_pid, next_pid in reader.sched_pid_rows():
                if prev_pid != 0 and (wanted is None or prev_pid in wanted):
                    bucket = local.get(prev_pid)
                    if bucket is None:
                        bucket = local[prev_pid] = (array("q"), bytearray())
                    bucket[0].append(ts)
                    bucket[1].append(
                        _CLOSES | _OPENS if next_pid == prev_pid else _CLOSES
                    )
                if (
                    next_pid != 0
                    and next_pid != prev_pid
                    and (wanted is None or next_pid in wanted)
                ):
                    bucket = local.get(next_pid)
                    if bucket is None:
                        bucket = local[next_pid] = (array("q"), bytearray())
                    bucket[0].append(ts)
                    bucket[1].append(_OPENS)
            for pid, bucket in local.items():
                partials.setdefault(pid, []).append(bucket)

        buckets: Dict[int, Tuple[array, bytearray]] = {}
        for pid, parts in partials.items():
            if len(parts) == 1:
                buckets[pid] = parts[0]
            else:
                times = array("q")
                flags = bytearray()
                for ts, flag in _heap_merge(
                    *(zip(*part) for part in parts), key=itemgetter(0)
                ):
                    times.append(ts)
                    flags.append(flag)
                buckets[pid] = (times, flags)
        return SchedIndex.from_buckets(buckets)

    # -- views -------------------------------------------------------------

    def pids(self) -> List[int]:
        """PIDs with walk columns (the wanted subset), ascending."""
        return sorted(self._by_pid)

    def walk_for_pid(self, pid: int) -> WalkColumns:
        """The PID's parallel (timestamps, codes, aux) walk columns."""
        return self._by_pid.get(pid, _EMPTY_WALK)

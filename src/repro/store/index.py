"""Columnar Alg. 1 indexing straight over stored segments.

:class:`StoreTraceIndex` is the store-native sibling of
:class:`~repro.core.index.TraceIndex`: the same per-PID walk views and
cross-node association tables, built by consuming
:class:`~repro.store.reader.SegmentReader` columns directly instead of
a merged list of :class:`~repro.tracing.events.TraceEvent` objects.

What makes it cheap:

* probe codes resolve through a per-segment table keyed by the stored
  probe-string id (one bytearray index per row, no string hashing);
* payloads are touched only for the ID-carrying rows Alg. 1
  dereferences (publish / take / response keys --
  :data:`~repro.core.index.PAYLOAD_CODES`); CB start/end and kernel
  probe rows -- the bulk of a trace -- never construct an event object.
  For format-v2 segments even the ID rows never see JSON:
  ``cb_id``/``topic``/``src_ts`` resolve from the segment's typed
  per-field columns, bulk-decoded once per payload shape (v1 segments
  keep the lazy per-distinct-payload JSON scan);
* the k-way merge across runs orders ``(ts, run, row)`` int prefixes,
  so ties keep run order (exactly like ``Trace.merge``) without a heap
  key function;
* ``sched_switch`` rows feed shard-local
  :class:`~repro.core.exec_time.SchedIndex` buckets built from three
  int columns -- only the ``wanted_pids`` a worker will actually query
  get buckets, so a sharded worker no longer indexes the full merged
  sched stream.

Equivalence with the in-memory pipeline is byte-exact and pinned by
``tests/test_store_synthesis.py``: all orderings are the stable
chronological merges ``TraceIndex`` sees, per-PID walk columns carry the
same values the event objects would, and bucket contents match because a
PID's bucket in the merged stream equals the stable ts-merge of its
per-run buckets.
"""

from __future__ import annotations

from array import array
from heapq import merge as _heap_merge
from operator import itemgetter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core import npcompat
from ..core.exec_time import _CLOSES, _OPENS, SchedIndex
from ..core.index import (
    CODE_CB_START,
    CODE_DDS_WRITE,
    CODE_TAKE_RESPONSE,
    CODE_TAKE_TYPE_ERASED,
    CODE_TIMER_CALL,
    TopicKey,
    probe_code_lut,
)
from .format import SHAPE_JSON

#: One PID's walk columns: timestamps, probe codes, and the per-row aux
#: slot (CB-type label / decoded payload / None) -- parallel sequences
#: consumed by :func:`~repro.core.extraction._extract_pid_walk`.
WalkColumns = Tuple[List[int], bytearray, List[Any]]

_EMPTY_WALK: WalkColumns = ([], bytearray(), [])


def _runs_are_time_ordered(readers: Sequence[Any]) -> bool:
    """True when the runs' ROS streams are time-disjoint in reader
    order, i.e. chronological merge == concatenation.  A shared
    boundary timestamp stays ordered: merge ties keep run order, which
    is concatenation order."""
    last: Optional[int] = None
    for reader in readers:
        span = reader.ros_ts_range()
        if span is None:
            continue
        if last is not None and span[0] < last:
            return False
        last = span[1]
    return True


class StoreTraceIndex:
    """Alg. 1 lookup structures built from stored segment columns.

    Parameters
    ----------
    readers:
        Segment readers in run-id order (the merge order), from
        :meth:`~repro.store.database.TraceStore.readers`.
    wanted_pids:
        PIDs whose walk columns and sched buckets to build (a worker's
        shard); the cross-node tables always cover the full stream --
        FindCaller/FindClient reach across shards by design.  ``None``
        builds every PID (the serial path).

    The attribute surface matches what
    :class:`~repro.core.extraction.EventIndex` consumes from
    :class:`~repro.core.index.TraceIndex` (``writes`` / ``writer_cb`` /
    ``take_responses`` / ``dispatch_after``), with payload mappings in
    the table slots where ``TraceIndex`` stores events -- both expose
    ``.get``, which is all the lookups use.
    """

    __slots__ = (
        "pid_map",
        "sched",
        "_by_pid",
        "writes",
        "writer_cb",
        "take_responses",
        "dispatch_after",
    )

    def __init__(
        self,
        readers: Sequence[Any],
        wanted_pids: Optional[Iterable[int]] = None,
    ):
        pid_map: Dict[int, Optional[str]] = {}
        for reader in readers:
            pid_map.update(reader.pid_map)
        self.pid_map = pid_map
        wanted = None if wanted_pids is None else frozenset(wanted_pids)
        self._build_ros(readers, wanted)
        self.sched = self._build_sched(readers, wanted)

    # -- ROS stream: walk columns + cross-node tables ----------------------

    def _build_ros(
        self, readers: Sequence[Any], wanted: Optional[frozenset]
    ) -> None:
        self._by_pid: Dict[int, WalkColumns] = {}
        self.writes: Dict[TopicKey, List[Tuple[int, Any]]] = {}
        self.writer_cb: Dict[int, Optional[str]] = {}
        self.take_responses: Dict[TopicKey, List[Tuple[int, Any]]] = {}
        self.dispatch_after: Dict[int, bool] = {}
        if not readers:
            return

        current_cb: Dict[int, Optional[str]] = {}
        pending_p13: Dict[int, List[int]] = {}
        #: pid -> bound (ts, code, aux) append methods of the pid's walk
        #: columns, so the per-row hot loops skip attribute lookups.
        appenders: Dict[int, tuple] = {}
        if _runs_are_time_ordered(readers):
            # The common case: seeded batch runs stagger their clock
            # bases, so run streams are time-disjoint in run-id order
            # and the chronological merge is plain concatenation --
            # each segment's columns feed one tight index loop with no
            # heap and no per-row generator frames or tuples.
            index = 0
            for reader in readers:
                fastpath = getattr(reader, "walk_fastpath", None)
                if fastpath is None:
                    index = self._consume_rows(
                        reader.walk_rows(0), wanted, index, current_cb,
                        pending_p13, appenders,
                    )
                    continue
                kind, columns = fastpath()
                if kind >= 2:
                    index = self._consume_columns_v2(
                        columns, wanted, index, current_cb, pending_p13,
                        appenders,
                    )
                else:
                    index = self._consume_columns(
                        columns, wanted, index, current_cb, pending_p13,
                        appenders,
                    )
        else:
            # Overlapping runs: k-way merge of per-reader row streams.
            # The (ts, order, row) int prefixes are unique, so plain
            # tuple comparison merges chronologically with ties in run
            # order and the aux slot is never compared.
            streams = [
                reader.walk_rows(order) for order, reader in enumerate(readers)
            ]
            rows = streams[0] if len(streams) == 1 else _heap_merge(*streams)
            self._consume_rows(rows, wanted, 0, current_cb, pending_p13, appenders)

    # The three _consume_* bodies are the same association state machine
    # as TraceIndex._build (positional indices of the merged stream),
    # duplicated only for the per-row access pattern: v1 column indexing
    # (JSON-interned payloads), v2 column indexing (typed shape
    # columns), and pre-assembled row tuples.  The store equivalence
    # suites pin all of them against the in-memory pipeline.

    def _walk_appender(self, appenders: Dict[int, tuple], pid: int) -> tuple:
        """First-row setup of a PID's walk columns + bound appends.

        Reuses columns an earlier (possibly vectorized) reader pass
        already created for the PID -- a mixed-version store interleaves
        consumers, and they all must extend the same columns."""
        walk = self._by_pid.get(pid)
        if walk is None:
            walk = self._by_pid[pid] = ([], bytearray(), [])
        bound = appenders[pid] = (
            walk[0].append, walk[1].append, walk[2].append,
        )
        return bound

    def _consume_columns(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        (
            ts_col, pid_col, probe_col, data_col,
            codes, start_types, payload_cache, payload,
        ) = columns
        cached_payload = payload_cache.get
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, pid, string_id, data_id in zip(
            ts_col, pid_col, probe_col, data_col
        ):
            code = codes[string_id]
            aux: Any = None
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_TYPE_ERASED:
                    aux = cached_payload(data_id)
                    if aux is None:
                        aux = payload(data_id)
                    if code <= CODE_TAKE_RESPONSE:
                        current_cb[pid] = aux.get("cb_id")
                        if code == CODE_TAKE_RESPONSE:
                            pending_p13.setdefault(pid, []).append(index)
                            key = (aux.get("topic"), aux.get("src_ts"))
                            take_responses.setdefault(key, []).append((index, aux))
                    elif code == CODE_DDS_WRITE:
                        writer_cb[index] = current_cb.get(pid)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        writes.setdefault(key, []).append((index, aux))
                    else:
                        will_dispatch = bool(aux.get("will_dispatch"))
                        for p13_index in pending_p13.pop(pid, ()):
                            dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
                aux = start_types[string_id]
            if code and (all_wanted or pid in wanted):
                # code-0 rows are no-ops to the Alg. 1 walk and never
                # enter walk columns (matching the vectorized path).
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            index += 1
        return index

    def _consume_columns_v2(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        """v2/v3 column consumption: vectorized when numpy is available
        and the segment is large enough to amortize it, else the scalar
        hot loop.  Both build identical walk columns and tables (the
        equivalence suites run under both modes)."""
        if (
            npcompat.np is not None
            and len(columns[0]) >= npcompat.MIN_VECTOR_ROWS
        ):
            return self._consume_columns_v2_np(
                columns, wanted, index, current_cb, pending_p13, appenders
            )
        return self._consume_columns_v2_rows(
            columns, wanted, index, current_cb, pending_p13, appenders
        )

    def _consume_columns_v2_rows(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        """The v2 hot loop: payload rows come from the segment's typed
        shape columns (bulk-decoded once per shape on first touch), so
        ID-carrying rows cost a list index and C ``dict.get`` calls --
        no JSON scanner anywhere.  Fallback-encoded rows (payloads
        outside the closed schema) decode through the v1 path."""
        (
            ts_col, pid_col, probe_col, shape_col, vidx_col,
            codes, start_types, shapes, json_payload,
        ) = columns
        #: shape id -> materialized payload-row list, resolved lazily so
        #: shapes only referenced by non-ID rows are never decoded.
        rows_by_shape: List[Optional[List]] = [None] * len(shapes)
        n_shapes = len(shapes)
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, pid, string_id, sid, vidx in zip(
            ts_col, pid_col, probe_col, shape_col, vidx_col
        ):
            code = codes[string_id]
            aux: Any = None
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_TYPE_ERASED:
                    if sid < n_shapes:
                        rows = rows_by_shape[sid]
                        if rows is None:
                            rows = rows_by_shape[sid] = shapes[sid].rows()
                        aux = rows[vidx]
                    elif sid == SHAPE_JSON:
                        aux = json_payload(vidx)
                    else:  # NONE_ID: an ID-carrying probe without payload
                        aux = {}
                    if code <= CODE_TAKE_RESPONSE:
                        current_cb[pid] = aux.get("cb_id")
                        if code == CODE_TAKE_RESPONSE:
                            pending_p13.setdefault(pid, []).append(index)
                            key = (aux.get("topic"), aux.get("src_ts"))
                            take_responses.setdefault(key, []).append((index, aux))
                    elif code == CODE_DDS_WRITE:
                        writer_cb[index] = current_cb.get(pid)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        writes.setdefault(key, []).append((index, aux))
                    else:
                        will_dispatch = bool(aux.get("will_dispatch"))
                        for p13_index in pending_p13.pop(pid, ()):
                            dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
                aux = start_types[string_id]
            if code and (all_wanted or pid in wanted):
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            index += 1
        return index

    def _consume_columns_v2_np(
        self,
        columns: Tuple,
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        """The vectorized v2/v3 consumer: per-row dispatch hoisted into
        whole-column numpy operations.

        Three precomputed code classes replace the scalar loop's per-row
        branches: the per-string-id code table becomes a ``uint8``
        lookup array, one gather yields every row's code, and boolean
        masks split the stream into walk rows (``code != 0`` -- code-0
        rows are no-ops to the Alg. 1 walk and are dropped, exactly like
        the scalar paths) and *interesting* rows (CB starts + the
        ID-carrying payload codes) that the association state machine
        must still see in order.  Aux values resolve in bulk, one
        ``map`` per referenced payload shape, into a whole-column object
        array; walk columns then build per PID with bulk ``.tolist()``
        / ``.tobytes()`` extraction (Python ints, so downstream
        byte-identity is untouched); and the sequential state machine --
        reduced to the association-table bookkeeping only -- runs over
        just the interesting rows with every aux already in hand."""
        np = npcompat.np
        (
            ts_col, pid_col, probe_col, shape_col, vidx_col,
            codes, start_types, shapes, json_payload,
        ) = columns
        probe_np = np.frombuffer(probe_col, dtype=np.uint32)
        lut = probe_code_lut(codes)
        row_codes = lut[probe_np]
        pid_np = np.frombuffer(pid_col, dtype=np.int32)
        ts_np = np.frombuffer(ts_col, dtype=np.int64)
        n = len(probe_np)
        by_pid = self._by_pid
        all_wanted = wanted is None
        n_shapes = len(shapes)

        #: per-row aux value (``None``-initialized): payload dicts for
        #: the ID-carrying codes, CB-type labels for CB starts.
        aux_row = np.empty(n, dtype=object)

        def assign(rows, values: List) -> None:
            # Elementwise object assignment: staging through an object
            # array keeps numpy from peering into dict/str values.
            staged = np.empty(len(values), dtype=object)
            staged[:] = values
            aux_row[rows] = staged

        id_rows = np.nonzero(
            (row_codes >= CODE_TIMER_CALL)
            & (row_codes <= CODE_TAKE_TYPE_ERASED)
        )[0]
        if len(id_rows):
            sid_np = np.frombuffer(shape_col, dtype=np.uint32)[id_rows]
            vidx_np = np.frombuffer(vidx_col, dtype=np.uint32)[id_rows]
            for sid in np.unique(sid_np).tolist():
                sel = id_rows[sid_np == sid]
                vidxs = vidx_np[sid_np == sid].tolist()
                if sid < n_shapes:
                    payload_rows = shapes[sid].rows()
                    assign(sel, list(map(payload_rows.__getitem__, vidxs)))
                elif sid == SHAPE_JSON:
                    assign(sel, list(map(json_payload, vidxs)))
                else:  # NONE_ID: ID-carrying probes without payload
                    assign(sel, [{} for _ in vidxs])
        cb_rows = np.nonzero(row_codes == CODE_CB_START)[0]
        if len(cb_rows):
            assign(
                cb_rows,
                list(map(start_types.__getitem__, probe_np[cb_rows].tolist())),
            )

        nonzero = row_codes != 0
        for pid in np.unique(pid_np[nonzero]).tolist():
            if not (all_wanted or pid in wanted):
                continue
            rows = np.nonzero(nonzero & (pid_np == pid))[0]
            walk = by_pid.get(pid)
            if walk is None:
                walk = by_pid[pid] = ([], bytearray(), [])
            walk[0].extend(ts_np[rows].tolist())
            walk[1].extend(row_codes[rows].tobytes())
            walk[2].extend(aux_row[rows].tolist())

        # The dds_write -> active-writer-CB association, vectorized.
        # The scalar machine threads ``current_cb`` through every
        # CB-start and ID-carrying row; but each write only reads the
        # state of the *last preceding setter in its PID*, which one
        # searchsorted per PID locates directly -- so the sequential
        # loop below shrinks to the three table-append codes.  A write
        # with no setter before it in this segment reads the state a
        # previous segment's consumer left in ``current_cb``.
        writer_cb = self.writer_cb
        setter_rows = np.nonzero(
            (row_codes >= CODE_CB_START) & (row_codes <= CODE_TAKE_RESPONSE)
        )[0]
        write_rows = np.nonzero(row_codes == CODE_DDS_WRITE)[0]
        if len(setter_rows) or len(write_rows):
            setter_pids = pid_np[setter_rows]
            write_pids = pid_np[write_rows]
            pids = np.unique(np.concatenate((setter_pids, write_pids)))
            for pid in pids.tolist():
                setters = setter_rows[setter_pids == pid]
                pid_writes = write_rows[write_pids == pid]
                if len(pid_writes):
                    pos = np.searchsorted(setters, pid_writes, "left") - 1
                    cb_at = {}
                    for p in np.unique(pos).tolist():
                        if p < 0:
                            cb_at[p] = current_cb.get(pid)
                        else:
                            row = int(setters[p])
                            cb_at[p] = (
                                None
                                if row_codes[row] == CODE_CB_START
                                else aux_row[row].get("cb_id")
                            )
                    for row, p in zip(pid_writes.tolist(), pos.tolist()):
                        writer_cb[index + row] = cb_at[p]
                if len(setters):
                    last = int(setters[-1])
                    current_cb[pid] = (
                        None
                        if row_codes[last] == CODE_CB_START
                        else aux_row[last].get("cb_id")
                    )

        table_rows = np.nonzero(
            (row_codes >= CODE_TAKE_RESPONSE)
            & (row_codes <= CODE_TAKE_TYPE_ERASED)
        )[0]
        writes = self.writes
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        for row, pid, code, aux in zip(
            table_rows.tolist(),
            pid_np[table_rows].tolist(),
            row_codes[table_rows].tolist(),
            aux_row[table_rows].tolist(),
        ):
            if code == CODE_DDS_WRITE:
                key = (aux.get("topic"), aux.get("src_ts"))
                writes.setdefault(key, []).append((index + row, aux))
            elif code == CODE_TAKE_RESPONSE:
                pending_p13.setdefault(pid, []).append(index + row)
                key = (aux.get("topic"), aux.get("src_ts"))
                take_responses.setdefault(key, []).append((index + row, aux))
            else:  # CODE_TAKE_TYPE_ERASED
                will_dispatch = bool(aux.get("will_dispatch"))
                for p13_index in pending_p13.pop(pid, ()):
                    dispatch_after[p13_index] = will_dispatch
        return index + n

    def _consume_rows(
        self,
        rows: Iterable[tuple],
        wanted: Optional[frozenset],
        index: int,
        current_cb: Dict[int, Optional[str]],
        pending_p13: Dict[int, List[int]],
        appenders: Dict[int, tuple],
    ) -> int:
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        all_wanted = wanted is None
        for ts, _order, _row, pid, code, aux in rows:
            if code and (all_wanted or pid in wanted):
                try:
                    append_ts, append_code, append_aux = appenders[pid]
                except KeyError:
                    append_ts, append_code, append_aux = self._walk_appender(
                        appenders, pid
                    )
                append_ts(ts)
                append_code(code)
                append_aux(aux)
            if code >= CODE_TIMER_CALL:
                if code <= CODE_TAKE_RESPONSE:
                    current_cb[pid] = aux.get("cb_id")
                    if code == CODE_TAKE_RESPONSE:
                        pending_p13.setdefault(pid, []).append(index)
                        key = (aux.get("topic"), aux.get("src_ts"))
                        take_responses.setdefault(key, []).append((index, aux))
                elif code == CODE_DDS_WRITE:
                    writer_cb[index] = current_cb.get(pid)
                    key = (aux.get("topic"), aux.get("src_ts"))
                    writes.setdefault(key, []).append((index, aux))
                elif code == CODE_TAKE_TYPE_ERASED:
                    will_dispatch = bool(aux.get("will_dispatch"))
                    for p13_index in pending_p13.pop(pid, ()):
                        dispatch_after[p13_index] = will_dispatch
            elif code == CODE_CB_START:
                current_cb[pid] = None
            index += 1
        return index

    # -- sched stream: shard-local columnar buckets ------------------------

    @staticmethod
    def _build_sched(
        readers: Sequence[Any], wanted: Optional[frozenset]
    ) -> SchedIndex:
        """Per-PID (timestamps, flags) buckets from the int columns.

        Bucketing per reader then stably ts-merging per PID yields the
        exact buckets :class:`SchedIndex` builds from the merged event
        stream, because a PID's merged-stream subsequence is ordered by
        the same ``(ts, run order, row order)`` comparator.
        """
        partials: Dict[int, List[Tuple[array, bytearray]]] = {}
        for reader in readers:
            columns = (
                getattr(reader, "sched_pid_columns", None)
                if npcompat.np is not None
                else None
            )
            if columns is not None:
                local = StoreTraceIndex._sched_buckets_np(columns(), wanted)
            else:
                local = {}
                for ts, prev_pid, next_pid in reader.sched_pid_rows():
                    if prev_pid != 0 and (wanted is None or prev_pid in wanted):
                        bucket = local.get(prev_pid)
                        if bucket is None:
                            bucket = local[prev_pid] = (array("q"), bytearray())
                        bucket[0].append(ts)
                        bucket[1].append(
                            _CLOSES | _OPENS if next_pid == prev_pid else _CLOSES
                        )
                    if (
                        next_pid != 0
                        and next_pid != prev_pid
                        and (wanted is None or next_pid in wanted)
                    ):
                        bucket = local.get(next_pid)
                        if bucket is None:
                            bucket = local[next_pid] = (array("q"), bytearray())
                        bucket[0].append(ts)
                        bucket[1].append(_OPENS)
            for pid, bucket in local.items():
                partials.setdefault(pid, []).append(bucket)

        buckets: Dict[int, Tuple[array, bytearray]] = {}
        for pid, parts in partials.items():
            if len(parts) == 1:
                buckets[pid] = parts[0]
            else:
                times = array("q")
                flags = bytearray()
                for ts, flag in _heap_merge(
                    *(zip(*part) for part in parts), key=itemgetter(0)
                ):
                    times.append(ts)
                    flags.append(flag)
                buckets[pid] = (times, flags)
        return SchedIndex.from_buckets(buckets)

    @staticmethod
    def _sched_buckets_np(
        columns: Tuple, wanted: Optional[frozenset]
    ) -> Dict[int, Tuple[array, bytearray]]:
        """One reader's per-PID sched buckets from whole int columns.

        Per PID, three boolean masks replace the scalar per-row
        branches: ``prev == pid`` closes (self-switches ``next == prev``
        close *and* open in one entry, like the scalar path), ``next ==
        pid`` alone opens.  The row sets are selected in stream order,
        so bucket contents are exactly the scalar loop's."""
        np = npcompat.np
        ts_col, prev_col, next_col = columns
        ts_np = np.frombuffer(ts_col, dtype=np.int64)
        prev_np = np.frombuffer(prev_col, dtype=np.int32)
        next_np = np.frombuffer(next_col, dtype=np.int32)
        if wanted is None:
            pids = np.unique(np.concatenate((prev_np, next_np))).tolist()
        else:
            pids = sorted(wanted)
        local: Dict[int, Tuple[array, bytearray]] = {}
        both = _CLOSES | _OPENS
        for pid in pids:
            if pid == 0:
                continue
            closes = prev_np == pid
            rows = np.nonzero(closes | (next_np == pid))[0]
            if not len(rows):
                continue
            flags = np.where(
                closes[rows],
                np.where(next_np[rows] == pid, both, _CLOSES),
                _OPENS,
            ).astype(np.uint8)
            times = array("q")
            times.frombytes(ts_np[rows].tobytes())
            local[pid] = (times, bytearray(flags.tobytes()))
        return local

    # -- views -------------------------------------------------------------

    def pids(self) -> List[int]:
        """PIDs with walk columns (the wanted subset), ascending."""
        return sorted(self._by_pid)

    def walk_for_pid(self, pid: int) -> WalkColumns:
        """The PID's parallel (timestamps, codes, aux) walk columns."""
        return self._by_pid.get(pid, _EMPTY_WALK)

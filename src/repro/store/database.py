"""The on-disk trace store: a directory of per-run segments.

A store directory holds one file per run -- binary ``.trace.bin``
segments (this subsystem's format) and/or legacy ``.trace.json.gz``
files (the pre-store gzip-JSON database) side by side.  The run id is
the file stem; a run stored in both formats resolves to the binary
segment.

:class:`TraceStore` is the directory handle (list, open readers,
write, convert).  :class:`StoreDatabase` is the store-backed mode of
:class:`~repro.tracing.session.TraceDatabase`: the same interface the
synthesis pipeline consumes, but runs are materialized lazily from
disk on access and ``add`` writes through to a binary segment, so a
database of hundreds of runs costs directory metadata until a trace is
actually needed.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Union

from ..tracing.session import Trace, TraceDatabase
from ..tracing.storage import TRACE_SUFFIX, load_trace
from .format import SEGMENT_SUFFIX
from .reader import InMemorySegment, SegmentReader, read_pid_map
from .writer import write_segment

StoreLike = Union[str, "TraceStore"]


class StoreError(ValueError):
    """Raised for unusable store directories."""


def as_store(store: StoreLike) -> "TraceStore":
    return store if isinstance(store, TraceStore) else TraceStore(store)


class TraceStore:
    """Directory of stored runs (binary segments + legacy JSON)."""

    def __init__(self, directory: str, allow_empty: bool = False):
        self.directory = os.fspath(directory)
        if not os.path.isdir(self.directory):
            raise FileNotFoundError(f"no such trace store: {self.directory!r}")
        self._files: Dict[str, str] = {}
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(SEGMENT_SUFFIX):
                run_id = name[: -len(SEGMENT_SUFFIX)]
            elif name.endswith(TRACE_SUFFIX):
                run_id = name[: -len(TRACE_SUFFIX)]
                if run_id in self._files:
                    continue  # binary segment shadows the legacy copy
            else:
                continue
            self._files[run_id] = name
        if not self._files and not allow_empty:
            raise StoreError(
                f"trace store {self.directory!r} contains no "
                f"*{SEGMENT_SUFFIX} or *{TRACE_SUFFIX} runs "
                "(pass allow_empty=True to open it anyway)"
            )
        #: run id -> loaded legacy reader.  Legacy gzip-JSON runs decode
        #: fully on every open, so planning passes (``union_pid_map``)
        #: followed by synthesis would load each legacy trace twice;
        #: binary segments stay uncached (their planning reads are
        #: cheap file-prefix decodes).
        self._legacy_readers: Dict[str, InMemorySegment] = {}

    # -- listing -----------------------------------------------------------

    def run_ids(self) -> List[str]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._files

    def path_of(self, run_id: str) -> str:
        return os.path.join(self.directory, self._files[run_id])

    def is_binary(self, run_id: str) -> bool:
        return self._files[run_id].endswith(SEGMENT_SUFFIX)

    # -- reading -----------------------------------------------------------

    def open(self, run_id: str):
        """A reader for one run (lazy for binary segments; legacy JSON
        loads eagerly -- and is cached on this handle -- behind the
        same interface)."""
        path = self.path_of(run_id)
        if self.is_binary(run_id):
            return SegmentReader.open(path)
        reader = self._legacy_readers.get(run_id)
        if reader is None:
            reader = InMemorySegment(load_trace(path), path=path)
            self._legacy_readers[run_id] = reader
        return reader

    def readers(self) -> List[object]:
        """Readers for every run, in run-id order (the merge order)."""
        return [self.open(run_id) for run_id in self.run_ids()]

    def load(self, run_id: str) -> Trace:
        return self.open(run_id).to_trace()

    def union_pid_map(self) -> Dict[int, Optional[str]]:
        """PID -> node name over all runs, in run-id order (later runs
        win ties, like ``Trace.merge``).  Binary runs decode only their
        pid_map prefix; legacy JSON runs must load fully but the loaded
        reader is cached, so a planning pass followed by synthesis
        decodes each legacy run once, not twice."""
        pid_map: Dict[int, Optional[str]] = {}
        for run_id in self.run_ids():
            if self.is_binary(run_id):
                pid_map.update(read_pid_map(self.path_of(run_id)))
            else:
                pid_map.update(self.open(run_id).pid_map)
        return pid_map

    def merged_trace(self) -> Trace:
        """All runs merged chronologically (Fig. 2's merge-traces path)."""
        return Trace.merge([self.load(run_id) for run_id in self.run_ids()])

    def to_database(self) -> TraceDatabase:
        """Materialize everything into an in-memory database."""
        database = TraceDatabase()
        for run_id in self.run_ids():
            database.add(run_id, self.load(run_id))
        return database

    # -- writing -----------------------------------------------------------

    def add_trace(self, run_id: str, trace: Trace) -> str:
        """Write one run as a binary segment; returns the path.

        Refuses *any* existing run id: writing a binary segment over a
        legacy-only ``.trace.json.gz`` run would silently shadow it with
        different content (the binary file wins name resolution), which
        is data loss in all but name.
        """
        if run_id in self._files:
            raise ValueError(
                f"run {run_id!r} already stored as {self._files[run_id]!r}"
            )
        name = f"{run_id}{SEGMENT_SUFFIX}"
        write_segment(trace, os.path.join(self.directory, name))
        self._files[run_id] = name
        return os.path.join(self.directory, name)

    @classmethod
    def create(cls, directory: str) -> "TraceStore":
        os.makedirs(directory, exist_ok=True)
        return cls(directory, allow_empty=True)

    # -- conversion --------------------------------------------------------

    def convert_legacy(self, remove: bool = False) -> List[str]:
        """Re-encode every legacy ``.trace.json.gz`` run as a binary
        segment (idempotent); returns the written paths.

        ``remove=True`` deletes the JSON originals after conversion.
        """
        written: List[str] = []
        for run_id in self.run_ids():
            if self.is_binary(run_id):
                continue
            legacy_path = self.path_of(run_id)
            trace = load_trace(legacy_path)
            name = f"{run_id}{SEGMENT_SUFFIX}"
            write_segment(trace, os.path.join(self.directory, name))
            self._files[run_id] = name
            self._legacy_readers.pop(run_id, None)
            written.append(os.path.join(self.directory, name))
            if remove:
                os.remove(legacy_path)
        return written


def convert_database(directory: str, remove: bool = False) -> List[str]:
    """Convert a legacy gzip-JSON trace directory in place."""
    return TraceStore(directory).convert_legacy(remove=remove)


def save_database_binary(database: TraceDatabase, directory: str) -> List[str]:
    """Write every run of an in-memory database as binary segments."""
    store = TraceStore.create(directory)
    return [
        store.add_trace(run_id, database.get(run_id))
        for run_id in database.run_ids()
    ]


class StoreDatabase(TraceDatabase):
    """Store-backed :class:`TraceDatabase`: lazy reads, write-through adds.

    ``get``/``traces``/``merged`` materialize runs from the store on
    first use (optionally caching them); ``add`` writes a binary segment
    and keeps nothing in memory unless caching is on.
    """

    def __init__(self, store: StoreLike, cache: bool = True):
        super().__init__()
        self.store = as_store(store)
        self._cache = cache

    def run_ids(self) -> List[str]:
        ids = set(self.store.run_ids())
        ids.update(self._traces)
        return sorted(ids)

    def add(self, run_id: str, trace: Trace) -> None:
        if run_id in self.store:
            raise ValueError(f"run {run_id!r} already stored")
        self.store.add_trace(run_id, trace)
        if self._cache:
            self._traces[run_id] = trace

    def get(self, run_id: str) -> Trace:
        trace = self._traces.get(run_id)
        if trace is None:
            trace = self.store.load(run_id)
            if self._cache:
                self._traces[run_id] = trace
        return trace

    def traces(self) -> List[Trace]:
        return [self.get(run_id) for run_id in self.run_ids()]

    def __len__(self) -> int:
        return len(self.run_ids())

    def to_dict(self) -> Dict[str, dict]:
        return {run_id: self.get(run_id).to_dict() for run_id in self.run_ids()}

"""The on-disk trace store: a directory of per-run segments.

A store directory holds one file per run -- binary ``.trace.bin``
segments (this subsystem's format, version 1 or 2) and/or legacy
``.trace.json.gz`` files (the pre-store gzip-JSON database) side by
side.  The run id is the file stem; a run stored in both formats
resolves to the binary segment.

:class:`TraceStore` is the directory handle (list, open readers,
write, convert, inspect).  ``strict=False`` makes the aggregate paths
(:meth:`TraceStore.readers`, :meth:`TraceStore.union_pid_map`,
:meth:`TraceStore.run_infos`) skip unreadable runs with a warning
instead of raising, so one truncated segment does not strand an
otherwise healthy store; per-run :meth:`TraceStore.open` always raises.

``cache_dir=`` points the handle at a directory of uncompressed
segment copies: :meth:`TraceStore.open` materializes each binary run
there once (named by the source's size + mtime, so an overwritten run
re-materializes and stale copies are swept) and opens the copy through
``mmap``, trading disk for zero inflation on every synthesis over the
same store.  The cache is purely derived state -- deleting it is
always safe.

:class:`StoreDatabase` is the store-backed mode of
:class:`~repro.tracing.session.TraceDatabase`: the same interface the
synthesis pipeline consumes, but runs are materialized lazily from
disk on access and ``add`` writes through to a binary segment, so a
database of hundreds of runs costs directory metadata until a trace is
actually needed.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..tracing.session import Trace, TraceDatabase
from ..tracing.storage import TRACE_SUFFIX, load_trace
from .format import SEGMENT_SUFFIX, StoreFormatError, VERSION
from .reader import InMemorySegment, SegmentReader, peek_header, read_pid_map
from .writer import decompress_segment, write_segment

StoreLike = Union[str, "TraceStore"]


class StoreError(ValueError):
    """Raised for unusable store directories."""


def as_store(store: StoreLike) -> "TraceStore":
    return store if isinstance(store, TraceStore) else TraceStore(store)


def _load_legacy(path: str):
    """``load_trace`` with storage-layer diagnostics: a corrupt
    ``.trace.json.gz`` (bad gzip stream, cut file, malformed JSON)
    surfaces as :class:`StoreFormatError` with the path, like a corrupt
    binary segment -- so the strict/skip machinery treats both formats
    uniformly."""
    try:
        return load_trace(path)
    except FileNotFoundError:
        raise
    except (OSError, EOFError, KeyError, TypeError, ValueError) as error:
        raise StoreFormatError(
            f"{path}: unreadable legacy trace: {error}"
        ) from None


@dataclass(frozen=True)
class RunInfo:
    """Cheap per-run metadata (``repro store-info``).

    Binary runs decode only their fixed-size header; legacy gzip-JSON
    runs must load fully (the loaded reader is cached on the store
    handle).  ``format_version`` is ``None`` for legacy JSON runs.
    """

    run_id: str
    path: str
    format_version: Optional[int]
    size_bytes: int
    ros_events: int
    sched_events: int
    wakeup_events: int
    pids: int

    @property
    def events(self) -> int:
        return self.ros_events + self.sched_events + self.wakeup_events

    @property
    def bytes_per_event(self) -> float:
        return self.size_bytes / max(1, self.events)


class TraceStore:
    """Directory of stored runs (binary segments + legacy JSON)."""

    def __init__(
        self,
        directory: str,
        allow_empty: bool = False,
        strict: bool = True,
        cache_dir: Optional[str] = None,
    ):
        self.directory = os.fspath(directory)
        self.strict = strict
        self.cache_dir = os.fspath(cache_dir) if cache_dir is not None else None
        if not os.path.isdir(self.directory):
            raise FileNotFoundError(f"no such trace store: {self.directory!r}")
        self._files: Dict[str, str] = self._scan()
        if not self._files and not allow_empty:
            raise StoreError(
                f"trace store {self.directory!r} contains no "
                f"*{SEGMENT_SUFFIX} or *{TRACE_SUFFIX} runs "
                "(pass allow_empty=True to open it anyway)"
            )
        #: run id -> loaded legacy reader.  Legacy gzip-JSON runs decode
        #: fully on every open, so planning passes (``union_pid_map``)
        #: followed by synthesis would load each legacy trace twice;
        #: binary segments stay uncached (their planning reads are
        #: cheap file-prefix decodes).
        self._legacy_readers: Dict[str, InMemorySegment] = {}

    def _scan(self) -> Dict[str, str]:
        """Map run id -> file name from one directory listing.  Only the
        two store suffixes participate, so writers' in-flight staging
        files (``*.tmp``) are invisible to every listing path."""
        files: Dict[str, str] = {}
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(SEGMENT_SUFFIX):
                run_id = name[: -len(SEGMENT_SUFFIX)]
            elif name.endswith(TRACE_SUFFIX):
                run_id = name[: -len(TRACE_SUFFIX)]
                if run_id in files:
                    continue  # binary segment shadows the legacy copy
            else:
                continue
            files[run_id] = name
        return files

    def refresh(self) -> List[str]:
        """Re-list the directory, picking up runs another process added
        (or removed) after this handle was created; returns the newly
        discovered run ids, sorted.  Cached legacy readers survive only
        for runs whose backing file name is unchanged -- a converted or
        vanished run drops its cache entry."""
        files = self._scan()
        added = sorted(run_id for run_id in files if run_id not in self._files)
        for run_id in list(self._legacy_readers):
            if files.get(run_id) != self._files.get(run_id):
                del self._legacy_readers[run_id]
        self._files = files
        return added

    # -- listing -----------------------------------------------------------

    def run_ids(self) -> List[str]:
        return sorted(self._files)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._files

    def path_of(self, run_id: str) -> str:
        return os.path.join(self.directory, self._files[run_id])

    def is_binary(self, run_id: str) -> bool:
        return self._files[run_id].endswith(SEGMENT_SUFFIX)

    def format_version(self, run_id: str) -> Optional[int]:
        """The run's segment format-version byte (header peek), or
        ``None`` for a legacy gzip-JSON run."""
        if not self.is_binary(run_id):
            return None
        return peek_header(self.path_of(run_id))[0]

    def _skip_unreadable(self, run_id: str, error: StoreFormatError) -> None:
        warnings.warn(
            f"skipping unreadable run {run_id!r}: {error}",
            RuntimeWarning,
            stacklevel=3,
        )

    # -- inspection --------------------------------------------------------

    def run_info(self, run_id: str) -> RunInfo:
        """Per-run metadata; binary runs read only the segment header."""
        path = self.path_of(run_id)
        size = os.path.getsize(path)
        if self.is_binary(run_id):
            version, _, _, n_pids, n_ros, n_sched, n_wakeup, _, _ = peek_header(path)
            return RunInfo(
                run_id=run_id,
                path=path,
                format_version=version,
                size_bytes=size,
                ros_events=n_ros,
                sched_events=n_sched,
                wakeup_events=n_wakeup,
                pids=n_pids,
            )
        reader = self.open(run_id)
        return RunInfo(
            run_id=run_id,
            path=path,
            format_version=None,
            size_bytes=size,
            ros_events=reader.num_ros_events,
            sched_events=reader.num_sched_events,
            wakeup_events=reader.num_wakeup_events,
            pids=len(reader.pid_map),
        )

    def run_infos(self) -> List[RunInfo]:
        """Metadata for every run (``strict=False`` skips unreadable
        runs with a warning)."""
        infos: List[RunInfo] = []
        for run_id in self.run_ids():
            try:
                infos.append(self.run_info(run_id))
            except StoreFormatError as error:
                if self.strict:
                    raise
                self._skip_unreadable(run_id, error)
        return infos

    # -- reading -----------------------------------------------------------

    def _cached_segment(self, run_id: str, path: str) -> str:
        """Materialize ``path`` as an uncompressed copy under
        ``cache_dir`` (once per source size + mtime) and return the
        copy's path.  Stale copies of the same run -- left behind when
        the source segment was rewritten, e.g. by ``convert --upgrade``
        -- are swept as a side effect, so the cache never outgrows one
        copy per live run."""
        assert self.cache_dir is not None
        st = os.stat(path)
        name = f"{run_id}.{st.st_size}.{st.st_mtime_ns}{SEGMENT_SUFFIX}"
        os.makedirs(self.cache_dir, exist_ok=True)
        cached = os.path.join(self.cache_dir, name)
        if not os.path.exists(cached):
            prefix = f"{run_id}."
            for entry in os.listdir(self.cache_dir):
                if entry.startswith(prefix) and entry.endswith(SEGMENT_SUFFIX):
                    try:
                        os.remove(os.path.join(self.cache_dir, entry))
                    except OSError:
                        pass
            decompress_segment(path, cached)
        return cached

    def warm_cache(self) -> List[str]:
        """Materialize every binary run into ``cache_dir`` up front;
        returns the cache paths (``strict=False`` skips unreadable
        runs)."""
        if self.cache_dir is None:
            raise StoreError("warm_cache() needs a store opened with cache_dir=")
        paths: List[str] = []
        for run_id in self.run_ids():
            if not self.is_binary(run_id):
                continue
            try:
                paths.append(self._cached_segment(run_id, self.path_of(run_id)))
            except StoreFormatError as error:
                if self.strict:
                    raise
                self._skip_unreadable(run_id, error)
        return paths

    def open(self, run_id: str):
        """A reader for one run (lazy for binary segments; legacy JSON
        loads eagerly -- and is cached on this handle -- behind the
        same interface).  With ``cache_dir`` set, binary runs open the
        mmap-backed uncompressed cache copy instead."""
        path = self.path_of(run_id)
        if self.is_binary(run_id):
            if self.cache_dir is not None:
                return SegmentReader.open(
                    self._cached_segment(run_id, path), use_mmap=True
                )
            return SegmentReader.open(path)
        reader = self._legacy_readers.get(run_id)
        if reader is None:
            reader = InMemorySegment(_load_legacy(path), path=path)
            self._legacy_readers[run_id] = reader
        return reader

    def readers(self) -> List[object]:
        """Readers for every run, in run-id order (the merge order).

        ``strict=False`` skips runs whose files fail to parse
        (truncated, corrupt, unknown version) with a warning instead of
        raising, so the rest of the store stays synthesizable.
        """
        readers: List[object] = []
        for run_id in self.run_ids():
            try:
                readers.append(self.open(run_id))
            except StoreFormatError as error:
                if self.strict:
                    raise
                self._skip_unreadable(run_id, error)
        return readers

    def load(self, run_id: str) -> Trace:
        return self.open(run_id).to_trace()

    def union_pid_map(self) -> Dict[int, Optional[str]]:
        """PID -> node name over all runs, in run-id order (later runs
        win ties, like ``Trace.merge``).  Binary runs decode only their
        pid_map prefix; legacy JSON runs must load fully but the loaded
        reader is cached, so a planning pass followed by synthesis
        decodes each legacy run once, not twice."""
        pid_map: Dict[int, Optional[str]] = {}
        for run_id in self.run_ids():
            try:
                if self.is_binary(run_id):
                    pid_map.update(read_pid_map(self.path_of(run_id)))
                else:
                    pid_map.update(self.open(run_id).pid_map)
            except StoreFormatError as error:
                if self.strict:
                    raise
                self._skip_unreadable(run_id, error)
        return pid_map

    def merged_trace(self) -> Trace:
        """All runs merged chronologically (Fig. 2's merge-traces path)."""
        return Trace.merge([self.load(run_id) for run_id in self.run_ids()])

    def to_database(self) -> TraceDatabase:
        """Materialize everything into an in-memory database."""
        database = TraceDatabase()
        for run_id in self.run_ids():
            database.add(run_id, self.load(run_id))
        return database

    # -- writing -----------------------------------------------------------

    def add_trace(
        self, run_id: str, trace: Trace, format_version: int = VERSION
    ) -> str:
        """Write one run as a binary segment; returns the path.

        Refuses *any* existing run id: writing a binary segment over a
        legacy-only ``.trace.json.gz`` run would silently shadow it with
        different content (the binary file wins name resolution), which
        is data loss in all but name.
        """
        if run_id in self._files:
            raise ValueError(
                f"run {run_id!r} already stored as {self._files[run_id]!r}"
            )
        name = f"{run_id}{SEGMENT_SUFFIX}"
        write_segment(
            trace, os.path.join(self.directory, name),
            format_version=format_version,
        )
        self._files[run_id] = name
        return os.path.join(self.directory, name)

    @classmethod
    def create(cls, directory: str) -> "TraceStore":
        os.makedirs(directory, exist_ok=True)
        return cls(directory, allow_empty=True)

    # -- conversion --------------------------------------------------------

    def convert_legacy(
        self,
        remove: bool = False,
        format_version: int = VERSION,
        upgrade: bool = False,
    ) -> List[str]:
        """Re-encode stored runs into ``format_version`` binary segments
        (idempotent); returns the written paths.

        By default only legacy ``.trace.json.gz`` runs convert.
        ``upgrade=True`` additionally re-encodes binary segments whose
        format version is *older* than ``format_version`` -- the v1 ->
        v2 upgrade path (newer-or-equal segments are left untouched, so
        re-running is a no-op).  ``remove=True`` deletes the legacy JSON
        originals after conversion; upgraded binary segments are
        rewritten in place.
        """
        written: List[str] = []
        for run_id in self.run_ids():
            if self.is_binary(run_id):
                if not upgrade:
                    continue
                path = self.path_of(run_id)
                if peek_header(path)[0] >= format_version:
                    continue
                trace = self.load(run_id)
                # Write-then-replace: an interrupted upgrade must never
                # truncate the only copy of the run.
                staging = f"{path}.tmp"
                write_segment(trace, staging, format_version=format_version)
                os.replace(staging, path)
                written.append(path)
                continue
            legacy_path = self.path_of(run_id)
            trace = _load_legacy(legacy_path)
            name = f"{run_id}{SEGMENT_SUFFIX}"
            write_segment(
                trace, os.path.join(self.directory, name),
                format_version=format_version,
            )
            self._files[run_id] = name
            self._legacy_readers.pop(run_id, None)
            written.append(os.path.join(self.directory, name))
            if remove:
                os.remove(legacy_path)
        return written


def convert_database(
    directory: str,
    remove: bool = False,
    format_version: int = VERSION,
    upgrade: bool = False,
) -> List[str]:
    """Convert a legacy gzip-JSON trace directory in place (and with
    ``upgrade=True`` also lift older binary segments to
    ``format_version``)."""
    return TraceStore(directory).convert_legacy(
        remove=remove, format_version=format_version, upgrade=upgrade
    )


def save_database_binary(
    database: TraceDatabase, directory: str, format_version: int = VERSION
) -> List[str]:
    """Write every run of an in-memory database as binary segments."""
    store = TraceStore.create(directory)
    return [
        store.add_trace(run_id, database.get(run_id), format_version=format_version)
        for run_id in database.run_ids()
    ]


class StoreDatabase(TraceDatabase):
    """Store-backed :class:`TraceDatabase`: lazy reads, write-through adds.

    ``get``/``traces``/``merged`` materialize runs from the store on
    first use (optionally caching them); ``add`` writes a binary segment
    and keeps nothing in memory unless caching is on.
    """

    def __init__(self, store: StoreLike, cache: bool = True):
        super().__init__()
        self.store = as_store(store)
        self._cache = cache

    def run_ids(self) -> List[str]:
        ids = set(self.store.run_ids())
        ids.update(self._traces)
        return sorted(ids)

    def add(self, run_id: str, trace: Trace) -> None:
        if run_id in self.store:
            raise ValueError(f"run {run_id!r} already stored")
        self.store.add_trace(run_id, trace)
        if self._cache:
            self._traces[run_id] = trace

    def get(self, run_id: str) -> Trace:
        trace = self._traces.get(run_id)
        if trace is None:
            trace = self.store.load(run_id)
            if self._cache:
                self._traces[run_id] = trace
        return trace

    def traces(self) -> List[Trace]:
        return [self.get(run_id) for run_id in self.run_ids()]

    def __len__(self) -> int:
        return len(self.run_ids())

    def to_dict(self) -> Dict[str, dict]:
        return {run_id: self.get(run_id).to_dict() for run_id in self.run_ids()}

"""AVP localization: Autoware's Autonomous Valet Parking pipeline
(Sec. VI, Fig. 3b, Table II).

The traced part of the demo is the LIDAR-based localization chain::

    lidar_rear/points_raw  -> cb1 (filter_transform_vlp16_rear)  \\
                                                                   fusion
    lidar_front/points_raw -> cb2 (filter_transform_vlp16_front) /
    cb3+cb4 (point_cloud_fusion, synchronized) -> & -> cb5 (voxel_grid)
    -> cb6 (p2d_ndt_localizer) -> localization/ndt_pose

The two raw LIDAR topics are fed by *external* publishers (the demo's
replay machinery, not traced), both at 10 Hz.

Workload calibration (see DESIGN.md): per-callback execution-time models
are fitted to Table II.  cb3 subscribes the *front* filtered cloud --
the input that normally arrives last (front filtering is ~10 ms slower)
-- so cb3 usually carries the fusion work, while cb4 (rear) picks it up
only when scheduler interference delays the rear chain past the front
one.  cb6 (NDT matching) has a heavy-tailed iterative solver profile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ros2 import ExternalPublisher, Node
from ..scenarios.spec import (
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
)
from ..sim.threads import SchedPolicy
from ..sim.workload import (
    Mixture,
    ShiftedLognormal,
    TruncatedNormal,
    Uniform,
    WorkloadModel,
    ms,
)

#: Sensor rate of both VLP-16 LIDARs in the demo (10 Hz).
LIDAR_PERIOD = ms(100)

#: Table II reference values in milliseconds: (mBCET, mACET, mWCET).
TABLE2_REFERENCE_MS: Dict[str, tuple] = {
    "cb1": (13.82, 17.10, 19.82),
    "cb2": (23.31, 27.07, 30.50),
    "cb3": (0.41, 3.10, 3.97),
    "cb4": (0.38, 0.62, 3.36),
    "cb5": (6.58, 8.47, 13.36),
    "cb6": (2.78, 25.64, 60.93),
}

#: Node names as reported in Table II.
NODE_NAMES: Dict[str, str] = {
    "cb1": "filter_transform_vlp16_rear",
    "cb2": "filter_transform_vlp16_front",
    "cb3": "point_cloud_fusion",
    "cb4": "point_cloud_fusion",
    "cb5": "voxel_grid_cloud_node",
    "cb6": "p2d_ndt_localizer_node",
}

#: Vertex keys of cb1..cb6 in the synthesized DAG.
AVP_CB_KEYS: Dict[str, str] = {
    cb: f"{node}/{cb}" for cb, node in NODE_NAMES.items()
}


def default_workloads(samples_per_run: int = 100) -> Dict[str, WorkloadModel]:
    """Execution-time models calibrated against Table II.

    The filter/voxel callbacks are truncated normals with a rare
    near-bound component, so the empirical maximum keeps growing over
    the first ~20 runs before plateauing at the truncation bound -- the
    Fig. 4 mWCET behaviour.  cb6 is a shifted lognormal (iterative NDT
    solver) capped at its worst observed case.

    ``samples_per_run`` scales the rare-component probabilities so the
    expected number of near-worst-case events stays *per run*, not per
    sample: the Fig. 4 growth shape then holds at any run length (10 s
    smoke runs and the paper's 80 s runs alike).
    """
    if samples_per_run < 1:
        raise ValueError("samples_per_run must be >= 1")
    # ~0.3 near-bound filter events and ~1 voxel / ~2 localizer events
    # expected per run.
    p_filter = min(0.01, 0.3 / samples_per_run)
    p_voxel = min(0.03, 1.0 / samples_per_run)
    p_ndt_burst = min(0.02, 2.0 / samples_per_run)
    return {
        "cb1": Mixture(
            [
                (1 - p_filter, TruncatedNormal(ms(17.1), ms(1.1), ms(13.82), ms(18.6))),
                (p_filter, Uniform(ms(18.6), ms(19.82))),
            ]
        ),
        "cb2": Mixture(
            [
                (1 - p_filter, TruncatedNormal(ms(27.07), ms(1.2), ms(23.31), ms(28.2))),
                (p_filter, Uniform(ms(28.2), ms(30.50))),
            ]
        ),
        # cb3/cb4 base cost (deserialize + filter bookkeeping).
        "fusion_input_front": TruncatedNormal(ms(0.45), ms(0.03), ms(0.41), ms(0.57)),
        "fusion_input_rear": TruncatedNormal(ms(0.42), ms(0.03), ms(0.38), ms(0.55)),
        # Fusion work, carried by whichever member completes the set.
        "fusion": TruncatedNormal(ms(2.80), ms(0.30), ms(1.90), ms(3.40)),
        "cb5": Mixture(
            [
                (1 - p_voxel, TruncatedNormal(ms(8.4), ms(0.9), ms(6.58), ms(11.5))),
                (p_voxel, Uniform(ms(11.5), ms(13.36))),
            ]
        ),
        # NDT matching: a small already-converged fast path, the common
        # iterative-solver body, and rare hard-relocalization bursts.
        "cb6": Mixture(
            [
                (0.03, Uniform(ms(2.78), ms(6.0))),
                (0.97 - p_ndt_burst, ShiftedLognormal(base=ms(2.78), scale=ms(19.0), sigma=0.55, high=ms(50.0))),
                (p_ndt_burst, Uniform(ms(48.0), ms(60.93))),
            ]
        ),
    }


@dataclass
class AvpApp:
    """Handles to the built AVP localization application."""

    nodes: List[Node]
    sensors: List[ExternalPublisher]
    workloads: Dict[str, WorkloadModel]
    #: vertex keys of cb1..cb6 in the synthesized DAG.
    cb_keys: Dict[str, str]

    @property
    def pids(self) -> List[int]:
        return [node.pid for node in self.nodes]

    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes]


def avp_spec(
    workloads: Optional[Dict[str, WorkloadModel]] = None,
    affinity: Optional[Dict[str, Sequence[int]]] = None,
    priority: int = 0,
    policy: SchedPolicy = SchedPolicy.OTHER,
    front_phase_ns: int = ms(2),
    rear_phase_ns: int = 0,
    sensor_jitter_ns: int = int(ms(0.5)),
) -> ScenarioSpec:
    """The AVP localization pipeline as a declarative scenario.

    Parameters
    ----------
    workloads:
        Execution-time models; default: :func:`default_workloads`.
    affinity:
        Optional per-node CPU sets, keyed by Table II node name.
    front_phase_ns / rear_phase_ns:
        Phase offsets of the two LIDARs.
    sensor_jitter_ns:
        Uniform jitter on the sensor periods.
    """
    w = workloads if workloads is not None else default_workloads()

    def aff(name):
        cpus = None if affinity is None else affinity.get(name)
        return tuple(cpus) if cpus is not None else None

    def node(name):
        return NodeSpec(name, affinity=aff(name), priority=priority, policy=policy)

    return ScenarioSpec(
        name="avp",
        description="Autoware AVP LIDAR localization chain (Fig. 3b)",
        nodes=(
            node("filter_transform_vlp16_rear"),
            node("filter_transform_vlp16_front"),
            node("point_cloud_fusion"),
            node("voxel_grid_cloud_node"),
            node("p2d_ndt_localizer_node"),
        ),
        subscriptions=(
            # cb1/cb2 keep the sensor stamp on their outputs so the
            # fusion filter can match front/rear clouds by origin time.
            SubscriptionSpec(
                node="filter_transform_vlp16_rear",
                label="cb1",
                topic="lidar_rear/points_raw",
                work=w["cb1"],
                publishes=("lidar_rear/points_filtered",),
            ),
            SubscriptionSpec(
                node="filter_transform_vlp16_front",
                label="cb2",
                topic="lidar_front/points_raw",
                work=w["cb2"],
                publishes=("lidar_front/points_filtered",),
            ),
            SubscriptionSpec(
                node="voxel_grid_cloud_node",
                label="cb5",
                topic="lidars/points_fused",
                work=w["cb5"],
                publishes=("lidars/points_fused_downsampled",),
            ),
            SubscriptionSpec(
                node="p2d_ndt_localizer_node",
                label="cb6",
                topic="lidars/points_fused_downsampled",
                work=w["cb6"],
                publishes=("localization/ndt_pose",),
            ),
        ),
        synchronizers=(
            # cb3 (front) + cb4 (rear): the member completing the set
            # carries the fusion work and publishes the fused cloud.
            SynchronizerSpec(
                node="point_cloud_fusion",
                inputs=(
                    SyncInputSpec(
                        "cb3", "lidar_front/points_filtered", w["fusion_input_front"]
                    ),
                    SyncInputSpec(
                        "cb4", "lidar_rear/points_filtered", w["fusion_input_rear"]
                    ),
                ),
                publishes=("lidars/points_fused",),
                work=w["fusion"],
                slop_ns=ms(50),
                queue_size=5,
                stamp="min",
            ),
        ),
        external_publishers=(
            ExternalPublisherSpec(
                "lidar_rear/points_raw", LIDAR_PERIOD,
                phase_ns=rear_phase_ns, jitter_ns=sensor_jitter_ns,
            ),
            ExternalPublisherSpec(
                "lidar_front/points_raw", LIDAR_PERIOD,
                phase_ns=front_phase_ns, jitter_ns=sensor_jitter_ns,
            ),
        ),
        num_cpus=4,
    )


def build_avp(
    world,
    workloads: Optional[Dict[str, WorkloadModel]] = None,
    affinity: Optional[Dict[str, Sequence[int]]] = None,
    priority: int = 0,
    policy: SchedPolicy = SchedPolicy.OTHER,
    front_phase_ns: int = ms(2),
    rear_phase_ns: int = 0,
    sensor_jitter_ns: int = int(ms(0.5)),
) -> AvpApp:
    """Instantiate the AVP localization pipeline on ``world``.

    Thin wrapper over :func:`avp_spec` +
    :meth:`~repro.scenarios.spec.ScenarioSpec.build`; parameters as in
    :func:`avp_spec`.
    """
    w = workloads if workloads is not None else default_workloads()
    spec = avp_spec(
        workloads=w,
        affinity=affinity,
        priority=priority,
        policy=policy,
        front_phase_ns=front_phase_ns,
        rear_phase_ns=rear_phase_ns,
        sensor_jitter_ns=sensor_jitter_ns,
    )
    app = spec.build(world)
    return AvpApp(
        nodes=app.nodes,
        sensors=app.externals,
        workloads=w,
        cb_keys=dict(AVP_CB_KEYS),
    )

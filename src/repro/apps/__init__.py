"""Evaluation workloads: SYN, AVP localization, and a random generator."""

from .avp import (
    AVP_CB_KEYS,
    AvpApp,
    LIDAR_PERIOD,
    NODE_NAMES,
    TABLE2_REFERENCE_MS,
    avp_spec,
    build_avp,
    default_workloads,
)
from .generator import GeneratedApp, GeneratorConfig, generate_app
from .syn import ALL_CALLBACKS, BASE_LOADS_MS, SynApp, build_syn, syn_spec

__all__ = [
    "AVP_CB_KEYS",
    "AvpApp",
    "LIDAR_PERIOD",
    "NODE_NAMES",
    "TABLE2_REFERENCE_MS",
    "avp_spec",
    "build_avp",
    "default_workloads",
    "GeneratedApp",
    "GeneratorConfig",
    "generate_app",
    "ALL_CALLBACKS",
    "BASE_LOADS_MS",
    "SynApp",
    "build_syn",
    "syn_spec",
]

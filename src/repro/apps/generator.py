"""Random ROS2 application generator.

Produces synthetic-but-valid applications (random chains of timers,
subscribers, services and synchronizers) for stress-testing the
synthesis pipeline: every generated application's ground-truth topology
is known, so tests can verify the synthesized DAG against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..ros2 import Msg, Node
from ..sim.workload import Constant, WorkloadModel, ms


@dataclass
class GeneratedApp:
    """A generated application plus its ground truth."""

    nodes: List[Node]
    #: expected precedence edges as (src_label, dst_label) pairs
    expected_edges: Set[Tuple[str, str]]
    #: all callback labels
    labels: List[str]
    #: labels of service callbacks
    service_labels: List[str]

    @property
    def pids(self) -> List[int]:
        return [n.pid for n in self.nodes]


@dataclass
class GeneratorConfig:
    """Shape of the generated application."""

    num_nodes: int = 4
    num_chains: int = 3
    chain_length: int = 3  # callbacks per chain (>= 1)
    service_probability: float = 0.3
    timer_period_range_ms: Tuple[int, int] = (50, 200)
    work_range_ms: Tuple[float, float] = (0.5, 3.0)

    def __post_init__(self) -> None:
        if self.num_nodes < 1 or self.num_chains < 1 or self.chain_length < 1:
            raise ValueError("num_nodes, num_chains, chain_length must be >= 1")
        if not 0.0 <= self.service_probability <= 1.0:
            raise ValueError("service_probability must be in [0, 1]")


def generate_app(
    world,
    config: GeneratorConfig = GeneratorConfig(),
    seed: int = 0,
    affinity: Optional[Sequence[int]] = None,
) -> GeneratedApp:
    """Build a random application with known ground-truth topology.

    Each chain starts with a timer and continues through subscribers or
    service/client hops; every hop may land on any node (services place
    the server on a different node than the caller).
    """
    rng = np.random.default_rng(seed)
    nodes = [
        Node(world, f"gen_n{i}", affinity=list(affinity) if affinity else None)
        for i in range(config.num_nodes)
    ]
    expected_edges: Set[Tuple[str, str]] = set()
    labels: List[str] = []
    service_labels: List[str] = []
    counter = {"t": 0, "s": 0, "sv": 0, "cl": 0}

    def work_model() -> WorkloadModel:
        lo, hi = config.work_range_ms
        return Constant(int(ms(float(rng.uniform(lo, hi)))))

    def pick_node(exclude: Optional[Node] = None) -> Node:
        candidates = [n for n in nodes if n is not exclude] or nodes
        return candidates[int(rng.integers(0, len(candidates)))]

    for chain_index in range(config.num_chains):
        counter["t"] += 1
        timer_label = f"GT{counter['t']}"
        labels.append(timer_label)
        node = pick_node()
        topic = f"/gen/c{chain_index}/0"
        pub = node.create_publisher(topic)
        model = work_model()

        def timer_cb(api, msg, _pub=pub, _model=model):
            yield api.work(_model)
            api.publish(_pub, Msg(stamp=api.now))

        lo, hi = config.timer_period_range_ms
        period = ms(int(rng.integers(lo, hi + 1)))
        node.create_timer(period, timer_cb, label=timer_label, phase_ns=ms(5))

        prev_label = timer_label
        prev_topic = topic
        for hop in range(1, config.chain_length):
            is_last = hop == config.chain_length - 1
            use_service = (not is_last) and rng.uniform() < config.service_probability
            next_node = pick_node(exclude=node)
            if use_service:
                counter["sv"] += 1
                counter["cl"] += 1
                sv_label = f"GSV{counter['sv']}"
                cl_label = f"GCL{counter['cl']}"
                service_name = f"/gen/svc{counter['sv']}"
                out_topic = f"/gen/c{chain_index}/{hop}"
                server = pick_node(exclude=next_node)

                def handler(api, request, _model=work_model()):
                    yield api.work(_model)
                    return request

                server.create_service(service_name, handler, label=sv_label)
                out_pub = next_node.create_publisher(out_topic)

                def client_cb(api, data, _pub=out_pub, _model=work_model()):
                    yield api.work(_model)
                    api.publish(_pub, Msg(stamp=api.now))

                client = next_node.create_client(service_name, client_cb, label=cl_label)

                counter["s"] += 1
                sub_label = f"GS{counter['s']}"

                def sub_cb(api, msg, _client=client, _model=work_model()):
                    yield api.work(_model)
                    api.call(_client, "x")

                next_node.create_subscription(prev_topic, sub_cb, label=sub_label)
                expected_edges.add((prev_label, sub_label))
                expected_edges.add((sub_label, sv_label))
                expected_edges.add((sv_label, cl_label))
                labels.extend([sub_label, sv_label, cl_label])
                service_labels.append(sv_label)
                prev_label = cl_label
                prev_topic = out_topic
                node = next_node
            else:
                counter["s"] += 1
                sub_label = f"GS{counter['s']}"
                out_topic = f"/gen/c{chain_index}/{hop}"
                if is_last:
                    def sub_cb(api, msg, _model=work_model()):
                        yield api.work(_model)

                    next_node.create_subscription(prev_topic, sub_cb, label=sub_label)
                else:
                    out_pub = next_node.create_publisher(out_topic)

                    def sub_cb(api, msg, _pub=out_pub, _model=work_model()):
                        yield api.work(_model)
                        api.publish(_pub, Msg(stamp=api.now))

                    next_node.create_subscription(prev_topic, sub_cb, label=sub_label)
                expected_edges.add((prev_label, sub_label))
                labels.append(sub_label)
                prev_label = sub_label
                prev_topic = out_topic
                node = next_node

    return GeneratedApp(
        nodes=nodes,
        expected_edges=expected_edges,
        labels=labels,
        service_labels=service_labels,
    )

"""SYN: the synthetic evaluation application (Sec. VI, Fig. 3a).

Six ROS2 nodes combining every callback kind, reconstructed from the
paper's description.  The topology reproduces each structural scenario
the framework must identify:

(i)   same-type callbacks inside one node: T2/T3 are timers and CL2/CL4
      are client CBs in ``syn_n2``; SC1/SC4 are subscribers in
      ``syn_n3``; SV1/SV2 are services in ``syn_n4``;
(ii)  different callback types in one node: T1, SC5, SV3 in ``syn_n1``;
(iii) a topic with several subscribers: ``/clp3`` -> SC4 and SC5;
(iv)  one service invoked from two different CBs: SV3 is called by SC3
      and CL2 -- the synthesized DAG must show two SV3 vertices with
      disjoint chains ending at CL3 and CL4 respectively;
(v)   data synchronization: SC2.1 + SC2.2 join ``/f1``/``/f2`` into
      ``/f3`` through an AND junction in ``syn_n6``.

Chains::

    T1 -/t1-> SC1 -> SV1 -> CL1 -/f1-> SC2.1 \\
                                              &  (-> /f3)
    T3 -/t3-> SC3 -> SV3 -> CL3 -/f2-> SC2.2 /
    T2 -> SV2 -> CL2 -> SV3 -> CL4
    T1 -/clp3-> SC4, SC5

Node inventory:

========  =====================================================
syn_n1    T1 (timer), SC5 (subscriber), SV3 (service)
syn_n2    T2, T3 (timers), CL2, CL4 (client CBs)
syn_n3    SC1, SC4 (subscribers), CL1 (client CB)
syn_n4    SV1, SV2 (services)
syn_n5    SC3 (subscriber), CL3 (client CB)
syn_n6    SC2.1, SC2.2 (synchronized subscribers)
========  =====================================================

Per-callback loads are constant within a run (the paper validates
measurement accuracy against designed execution times) and scale with
``load_factor`` across runs (the paper varies SYN's load per run to
study interference sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ros2 import Msg, Node
from ..sim.threads import SchedPolicy
from ..sim.workload import Constant, ms

#: Baseline constant execution times (ms) per SYN callback.
BASE_LOADS_MS: Dict[str, float] = {
    "T1": 1.5,
    "T2": 1.2,
    "T3": 1.0,
    "SC1": 2.0,
    "SC2.1": 1.0,
    "SC2.2": 1.0,
    "SC3": 1.6,
    "SC4": 1.8,
    "SC5": 1.4,
    "SV1": 2.5,
    "SV2": 2.2,
    "SV3": 3.0,
    "CL1": 1.1,
    "CL2": 1.3,
    "CL3": 0.9,
    "CL4": 1.0,
}

#: Timer periods (ns).
T1_PERIOD = ms(100)
T2_PERIOD = ms(120)
T3_PERIOD = ms(150)

#: Labels of every SYN callback, for assertions and reports.
ALL_CALLBACKS = tuple(sorted(BASE_LOADS_MS))


@dataclass
class SynApp:
    """Handles to the built SYN application."""

    nodes: List[Node]
    loads: Dict[str, Constant]
    load_factor: float

    @property
    def pids(self) -> List[int]:
        return [node.pid for node in self.nodes]

    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def designed_exec_time(self, label: str) -> int:
        """The constant load configured for one callback (ns)."""
        return self.loads[label].duration


def build_syn(
    world,
    load_factor: float = 1.0,
    affinity: Optional[Sequence[int]] = None,
    priority: int = 0,
    policy: SchedPolicy = SchedPolicy.OTHER,
    start_phase_ns: int = ms(5),
) -> SynApp:
    """Instantiate SYN on ``world``.

    Parameters
    ----------
    load_factor:
        Scales every callback's constant load (varied across runs in the
        interference study).
    affinity:
        CPU set shared by all six executor threads (overlap it with the
        AVP nodes to create interference).
    start_phase_ns:
        Phase of the first timer ticks, so initial callbacks land after
        the runtime tracers attach.
    """
    if load_factor <= 0:
        raise ValueError("load_factor must be positive")
    loads = {
        label: Constant(int(ms(base) * load_factor))
        for label, base in BASE_LOADS_MS.items()
    }

    def node_kwargs():
        return dict(priority=priority, policy=policy, affinity=affinity)

    n1 = Node(world, "syn_n1", **node_kwargs())
    n2 = Node(world, "syn_n2", **node_kwargs())
    n3 = Node(world, "syn_n3", **node_kwargs())
    n4 = Node(world, "syn_n4", **node_kwargs())
    n5 = Node(world, "syn_n5", **node_kwargs())
    n6 = Node(world, "syn_n6", **node_kwargs())

    # ---- syn_n4: SV1 + SV2 (two services in one node) -------------------
    def sv1_handler(api, request):
        yield api.work(loads["SV1"])
        return ("sv1", request)

    def sv2_handler(api, request):
        yield api.work(loads["SV2"])
        return ("sv2", request)

    n4.create_service("/sv1", sv1_handler, label="SV1")
    n4.create_service("/sv2", sv2_handler, label="SV2")

    # ---- syn_n1: T1 (timer), SC5 (subscriber), SV3 (service) ------------
    t1_pub = n1.create_publisher("/t1")
    clp3_pub = n1.create_publisher("/clp3")

    def t1_cb(api, msg):
        yield api.work(loads["T1"])
        api.publish(t1_pub, Msg(stamp=api.now))
        api.publish(clp3_pub, Msg(stamp=api.now))

    n1.create_timer(T1_PERIOD, t1_cb, label="T1", phase_ns=start_phase_ns)

    def sc5_cb(api, msg):
        yield api.work(loads["SC5"])

    n1.create_subscription("/clp3", sc5_cb, label="SC5")

    def sv3_handler(api, request):
        yield api.work(loads["SV3"])
        return ("sv3", request)

    n1.create_service("/sv3", sv3_handler, label="SV3")

    # ---- syn_n2: T2, T3 (timers) + CL2, CL4 (client CBs) ----------------
    t3_pub = n2.create_publisher("/t3")

    def cl4_cb(api, data):
        yield api.work(loads["CL4"])

    sv3_client_b = n2.create_client("/sv3", cl4_cb, label="CL4")

    def cl2_cb(api, data):
        yield api.work(loads["CL2"])
        api.call(sv3_client_b, "from_cl2")

    sv2_client = n2.create_client("/sv2", cl2_cb, label="CL2")

    def t2_cb(api, msg):
        yield api.work(loads["T2"])
        api.call(sv2_client, "from_t2")

    def t3_cb(api, msg):
        yield api.work(loads["T3"])
        api.publish(t3_pub, Msg(stamp=api.now))

    n2.create_timer(T2_PERIOD, t2_cb, label="T2", phase_ns=start_phase_ns)
    n2.create_timer(T3_PERIOD, t3_cb, label="T3", phase_ns=start_phase_ns)

    # ---- syn_n3: SC1, SC4 (subscribers) + CL1 (client CB) ----------------
    f1_pub = n3.create_publisher("/f1")

    def cl1_cb(api, data):
        yield api.work(loads["CL1"])
        api.publish(f1_pub, Msg(stamp=api.now))

    sv1_client = n3.create_client("/sv1", cl1_cb, label="CL1")

    def sc1_cb(api, msg):
        yield api.work(loads["SC1"])
        api.call(sv1_client, "from_sc1")

    def sc4_cb(api, msg):
        yield api.work(loads["SC4"])

    n3.create_subscription("/t1", sc1_cb, label="SC1")
    n3.create_subscription("/clp3", sc4_cb, label="SC4")

    # ---- syn_n5: SC3 (subscriber) + CL3 (client CB) ----------------------
    f2_pub = n5.create_publisher("/f2")

    def cl3_cb(api, data):
        yield api.work(loads["CL3"])
        api.publish(f2_pub, Msg(stamp=api.now))

    sv3_client_a = n5.create_client("/sv3", cl3_cb, label="CL3")

    def sc3_cb(api, msg):
        yield api.work(loads["SC3"])
        api.call(sv3_client_a, "from_sc3")

    n5.create_subscription("/t3", sc3_cb, label="SC3")

    # ---- syn_n6: SC2.1 + SC2.2 with data synchronization -----------------
    f3_pub = n6.create_publisher("/f3")
    s21 = n6.create_subscription("/f1", label="SC2.1")
    s22 = n6.create_subscription("/f2", label="SC2.2")

    def fuse_cb(api, msgs):
        api.publish(f3_pub, Msg(stamp=api.now))
        return None

    n6.create_synchronizer(
        [s21, s22],
        fuse_cb,
        slop_ns=ms(500),
        queue_size=20,
        per_input_work=loads["SC2.1"],
    )

    return SynApp(
        nodes=[n1, n2, n3, n4, n5, n6],
        loads=loads,
        load_factor=load_factor,
    )

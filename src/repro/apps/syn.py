"""SYN: the synthetic evaluation application (Sec. VI, Fig. 3a).

Six ROS2 nodes combining every callback kind, reconstructed from the
paper's description.  The topology reproduces each structural scenario
the framework must identify:

(i)   same-type callbacks inside one node: T2/T3 are timers and CL2/CL4
      are client CBs in ``syn_n2``; SC1/SC4 are subscribers in
      ``syn_n3``; SV1/SV2 are services in ``syn_n4``;
(ii)  different callback types in one node: T1, SC5, SV3 in ``syn_n1``;
(iii) a topic with several subscribers: ``/clp3`` -> SC4 and SC5;
(iv)  one service invoked from two different CBs: SV3 is called by SC3
      and CL2 -- the synthesized DAG must show two SV3 vertices with
      disjoint chains ending at CL3 and CL4 respectively;
(v)   data synchronization: SC2.1 + SC2.2 join ``/f1``/``/f2`` into
      ``/f3`` through an AND junction in ``syn_n6``.

Chains::

    T1 -/t1-> SC1 -> SV1 -> CL1 -/f1-> SC2.1 \\
                                              &  (-> /f3)
    T3 -/t3-> SC3 -> SV3 -> CL3 -/f2-> SC2.2 /
    T2 -> SV2 -> CL2 -> SV3 -> CL4
    T1 -/clp3-> SC4, SC5

Node inventory:

========  =====================================================
syn_n1    T1 (timer), SC5 (subscriber), SV3 (service)
syn_n2    T2, T3 (timers), CL2, CL4 (client CBs)
syn_n3    SC1, SC4 (subscribers), CL1 (client CB)
syn_n4    SV1, SV2 (services)
syn_n5    SC3 (subscriber), CL3 (client CB)
syn_n6    SC2.1, SC2.2 (synchronized subscribers)
========  =====================================================

Per-callback loads are constant within a run (the paper validates
measurement accuracy against designed execution times) and scale with
``load_factor`` across runs (the paper varies SYN's load per run to
study interference sensitivity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..ros2 import Node
from ..scenarios.spec import (
    ClientSpec,
    NodeSpec,
    ScenarioSpec,
    ServiceSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    TimerSpec,
)
from ..sim.threads import SchedPolicy
from ..sim.workload import Constant, ms

#: Baseline constant execution times (ms) per SYN callback.
BASE_LOADS_MS: Dict[str, float] = {
    "T1": 1.5,
    "T2": 1.2,
    "T3": 1.0,
    "SC1": 2.0,
    "SC2.1": 1.0,
    "SC2.2": 1.0,
    "SC3": 1.6,
    "SC4": 1.8,
    "SC5": 1.4,
    "SV1": 2.5,
    "SV2": 2.2,
    "SV3": 3.0,
    "CL1": 1.1,
    "CL2": 1.3,
    "CL3": 0.9,
    "CL4": 1.0,
}

#: Timer periods (ns).
T1_PERIOD = ms(100)
T2_PERIOD = ms(120)
T3_PERIOD = ms(150)

#: Labels of every SYN callback, for assertions and reports.
ALL_CALLBACKS = tuple(sorted(BASE_LOADS_MS))


def syn_loads(load_factor: float = 1.0) -> Dict[str, Constant]:
    """The designed constant load per callback, scaled by ``load_factor``
    (the single source both :func:`syn_spec` and :class:`SynApp` use)."""
    if load_factor <= 0:
        raise ValueError("load_factor must be positive")
    return {
        label: Constant(int(ms(base) * load_factor))
        for label, base in BASE_LOADS_MS.items()
    }


@dataclass
class SynApp:
    """Handles to the built SYN application."""

    nodes: List[Node]
    loads: Dict[str, Constant]
    load_factor: float

    @property
    def pids(self) -> List[int]:
        return [node.pid for node in self.nodes]

    def node_names(self) -> List[str]:
        return [node.name for node in self.nodes]

    def designed_exec_time(self, label: str) -> int:
        """The constant load configured for one callback (ns)."""
        return self.loads[label].duration


def syn_spec(
    load_factor: float = 1.0,
    affinity: Optional[Sequence[int]] = None,
    priority: int = 0,
    policy: SchedPolicy = SchedPolicy.OTHER,
    start_phase_ns: int = ms(5),
) -> ScenarioSpec:
    """SYN as a declarative scenario.

    Parameters
    ----------
    load_factor:
        Scales every callback's constant load (varied across runs in the
        interference study).
    affinity:
        CPU set shared by all six executor threads (overlap it with the
        AVP nodes to create interference).
    start_phase_ns:
        Phase of the first timer ticks, so initial callbacks land after
        the runtime tracers attach.
    """
    loads = syn_loads(load_factor)
    aff = tuple(affinity) if affinity is not None else None

    def node(name):
        return NodeSpec(name, affinity=aff, priority=priority, policy=policy)

    return ScenarioSpec(
        name="syn",
        description="the paper's synthetic evaluation application (Fig. 3a)",
        nodes=(
            node("syn_n1"), node("syn_n2"), node("syn_n3"),
            node("syn_n4"), node("syn_n5"), node("syn_n6"),
        ),
        services=(
            ServiceSpec("syn_n4", "SV1", "/sv1", loads["SV1"]),
            ServiceSpec("syn_n4", "SV2", "/sv2", loads["SV2"]),
            ServiceSpec("syn_n1", "SV3", "/sv3", loads["SV3"]),
        ),
        timers=(
            TimerSpec(
                node="syn_n1", label="T1", period_ns=T1_PERIOD,
                work=loads["T1"], publishes=("/t1", "/clp3"),
                phase_ns=start_phase_ns,
            ),
            TimerSpec(
                node="syn_n2", label="T2", period_ns=T2_PERIOD,
                work=loads["T2"], calls="CL2", phase_ns=start_phase_ns,
            ),
            TimerSpec(
                node="syn_n2", label="T3", period_ns=T3_PERIOD,
                work=loads["T3"], publishes=("/t3",), phase_ns=start_phase_ns,
            ),
        ),
        # Declaration order fixes each node's executor polling order
        # (SC5 before SC4 on /clp3, as in the paper's node inventory).
        subscriptions=(
            SubscriptionSpec(
                node="syn_n1", label="SC5", topic="/clp3", work=loads["SC5"]
            ),
            SubscriptionSpec(
                node="syn_n3", label="SC1", topic="/t1",
                work=loads["SC1"], calls="CL1",
            ),
            SubscriptionSpec(
                node="syn_n3", label="SC4", topic="/clp3", work=loads["SC4"]
            ),
            SubscriptionSpec(
                node="syn_n5", label="SC3", topic="/t3",
                work=loads["SC3"], calls="CL3",
            ),
        ),
        clients=(
            ClientSpec(
                node="syn_n2", label="CL4", service="/sv3", work=loads["CL4"]
            ),
            ClientSpec(
                node="syn_n2", label="CL2", service="/sv2",
                work=loads["CL2"], calls="CL4",
            ),
            ClientSpec(
                node="syn_n3", label="CL1", service="/sv1",
                work=loads["CL1"], publishes=("/f1",),
            ),
            ClientSpec(
                node="syn_n5", label="CL3", service="/sv3",
                work=loads["CL3"], publishes=("/f2",),
            ),
        ),
        synchronizers=(
            SynchronizerSpec(
                node="syn_n6",
                inputs=(
                    SyncInputSpec("SC2.1", "/f1", loads["SC2.1"]),
                    SyncInputSpec("SC2.2", "/f2", loads["SC2.1"]),
                ),
                publishes=("/f3",),
                work=None,
                slop_ns=ms(500),
                queue_size=20,
                stamp="now",
            ),
        ),
        num_cpus=4,
    )


def build_syn(
    world,
    load_factor: float = 1.0,
    affinity: Optional[Sequence[int]] = None,
    priority: int = 0,
    policy: SchedPolicy = SchedPolicy.OTHER,
    start_phase_ns: int = ms(5),
) -> SynApp:
    """Instantiate SYN on ``world``.

    Thin wrapper over :func:`syn_spec` +
    :meth:`~repro.scenarios.spec.ScenarioSpec.build`; parameters as in
    :func:`syn_spec`.
    """
    spec = syn_spec(
        load_factor=load_factor,
        affinity=affinity,
        priority=priority,
        policy=policy,
        start_phase_ns=start_phase_ns,
    )
    app = spec.build(world)
    return SynApp(
        nodes=app.nodes, loads=syn_loads(load_factor), load_factor=load_factor
    )

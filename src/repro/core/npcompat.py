"""Optional-numpy shim for the vectorized store read paths.

The simulator itself needs numpy (``sim/workload.py`` draws from its
RNG), but the *read side* -- opening a recorded store and synthesizing
the timing model -- must not: a CI box or a stripped-down analysis
container replaying committed stores should work from the standard
library alone.  Every consumer therefore imports ``np`` from here and
branches on ``np is None``, falling back to the original
``array``/``bisect`` per-row loops (kept byte-identical by the
equivalence suites, which run under both modes).

``REPRO_NO_NUMPY=1`` force-disables numpy even when importable -- the
hook the CI fallback job (and the no-numpy tests) use to exercise the
fallback loops without uninstalling anything.

Vectorized consumers must treat ``np`` as *this module's attribute*
(``npcompat.np``), not a from-import, so tests can monkeypatch one
symbol to flip implementations.
"""

from __future__ import annotations

import os

if os.environ.get("REPRO_NO_NUMPY"):
    np = None
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - image always has numpy
        np = None

#: Window sizes below this stay on the bisect/fold path: the numpy
#: call overhead only amortizes over larger slices (measured on the
#: perf harness; correctness does not depend on the value).
MIN_VECTOR_ROWS = 64

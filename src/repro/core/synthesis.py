"""DAG synthesis: turn per-node CBlists into the application timing model.

Rules (Sec. IV, "DAG synthesis"):

1. every CBlist entry becomes a vertex -- a service invoked by *n*
   callers has *n* entries (matched on ID + subscribed topic) and hence
   *n* vertices, keeping per-caller chains disjoint;
2. an edge connects ``cb'`` to ``cb`` when a published topic of ``cb'``
   matches the subscribed topic of ``cb`` -- except that publications of
   data-synchronization members are routed through an ``AND`` junction;
3. a vertex whose subscribed topic has more than one publisher is marked
   as an ``OR`` junction (any publisher triggers it);
4. the sync members of a node feed a zero-execution-time ``AND``
   junction vertex whose outgoing edges lead to the subscribers of the
   group's fused output topics.

The ``split_services`` / ``model_sync`` switches disable rules 1 and 4
respectively.  They exist for the ablation benchmarks that reproduce
the paper's motivating counterexamples: a shared service vertex creates
n x n spurious chains, and plain sync edges misrepresent an AND join as
OR triggering.  Production use keeps both switches on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .dag import DagVertex, TimingDag
from .records import CallbackRecord, CBList


def vertex_key(record: CallbackRecord, split_services: bool = True) -> str:
    """Stable vertex key; services embed the (caller-qualified) intopic."""
    if record.cb_type == "service" and split_services:
        return f"{record.node}/{record.cb_id}@{record.intopic}"
    return f"{record.node}/{record.cb_id}"


def junction_key(node: str) -> str:
    return f"{node}/&"


def synthesize_dag(
    cblists: Iterable[CBList],
    split_services: bool = True,
    model_sync: bool = True,
) -> TimingDag:
    """Build the timing DAG from the CBlists of all traced nodes."""
    dag = TimingDag()
    records: List[Tuple[str, CallbackRecord]] = []
    for cblist in cblists:
        for record in cblist:
            key = vertex_key(record, split_services)
            records.append((key, record))
            vertex = DagVertex(
                key=key,
                node=record.node,
                cb_id=record.cb_id,
                cb_type=record.cb_type,
                intopic=record.intopic,
                outtopics=list(record.outtopics),
                is_sync_member=record.is_sync_subscriber,
                exec_times=list(record.exec_times),
                start_times=list(record.start_times),
                response_times=list(record.response_times),
            )
            if dag.has_vertex(key):
                # Only possible with split_services=False: fold the
                # per-caller service records into one (naive) vertex.
                existing = dag.vertex(key)
                existing.exec_times.extend(vertex.exec_times)
                existing.start_times.extend(vertex.start_times)
                existing.response_times.extend(vertex.response_times)
                for topic in vertex.outtopics:
                    if topic not in existing.outtopics:
                        existing.outtopics.append(topic)
            else:
                dag.add_vertex(vertex)

    # -- AND junctions for data-synchronization groups -------------------
    sync_members: Dict[str, List[str]] = {}
    if model_sync:
        for key, record in records:
            if record.is_sync_subscriber:
                members = sync_members.setdefault(record.node, [])
                if key not in members:
                    members.append(key)
    junction_out: Dict[str, List[str]] = {}
    for node, members in sync_members.items():
        if len(members) < 2:
            continue  # a lone marked subscriber is not a join
        jkey = junction_key(node)
        outtopics: List[str] = []
        for member_key in members:
            for topic in dag.vertex(member_key).outtopics:
                if topic not in outtopics:
                    outtopics.append(topic)
        dag.add_vertex(
            DagVertex(
                key=jkey,
                node=node,
                cb_id=jkey,
                cb_type="and_junction",
                outtopics=outtopics,
            )
        )
        for member_key in members:
            dag.add_edge(member_key, jkey, topic="&")
        junction_out[jkey] = outtopics

    rerouted = {
        m for members in sync_members.values() if len(members) >= 2 for m in members
    }

    # -- publisher map (effective outputs, per record) ---------------------
    publishers: Dict[str, List[str]] = {}
    for key, record in records:
        if key in rerouted:
            continue  # outputs flow through the AND junction instead
        for topic in record.outtopics:
            sources = publishers.setdefault(topic, [])
            if key not in sources:
                sources.append(key)
    for jkey, outtopics in junction_out.items():
        for topic in outtopics:
            sources = publishers.setdefault(topic, [])
            if jkey not in sources:
                sources.append(jkey)

    # -- precedence edges + OR marking ------------------------------------
    for key, record in records:
        intopic = record.intopic
        if intopic is None:
            continue
        sources = publishers.get(intopic, [])
        for src in sources:
            if src != key:
                dag.add_edge(src, key, topic=intopic)
        if len(set(sources) - {key}) > 1:
            dag.vertex(key).is_or_junction = True

    return dag


def synthesize_from_cblists(cblists: Iterable[CBList], **kwargs) -> TimingDag:
    """Alias kept for symmetry with :mod:`repro.core.pipeline`."""
    return synthesize_dag(cblists, **kwargs)

"""Merging: traces, DAGs, and multi-mode models (Sec. V, Fig. 2).

Three processing strategies are supported, as described by the paper:

1. merge all traces, then synthesize one DAG (:func:`dag_from_merged_traces`);
2. synthesize one DAG per trace, then merge the DAGs
   (:func:`merge_dags`) -- vertices/edges are unioned and a callback's
   execution-time statistics are computed over all runs.  This is the
   strategy the paper's experiments use;
3. per-mode merges producing a :class:`MultiModeDag` (e.g. city vs
   highway driving).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from ..tracing.session import Trace
from .dag import DagVertex, TimingDag


def _clone_vertex(vertex: DagVertex) -> DagVertex:
    return DagVertex(
        key=vertex.key,
        node=vertex.node,
        cb_id=vertex.cb_id,
        cb_type=vertex.cb_type,
        intopic=vertex.intopic,
        outtopics=list(vertex.outtopics),
        is_sync_member=vertex.is_sync_member,
        is_or_junction=vertex.is_or_junction,
        exec_times=list(vertex.exec_times),
        start_times=list(vertex.start_times),
        response_times=list(vertex.response_times),
    )


def _absorb_vertex(target: DagVertex, other: DagVertex) -> None:
    if target.key != other.key:
        raise ValueError(f"cannot merge vertices {target.key!r} and {other.key!r}")
    if target.cb_type != other.cb_type:
        raise ValueError(
            f"vertex {target.key!r} changes type across runs: "
            f"{target.cb_type} vs {other.cb_type}"
        )
    target.exec_times.extend(other.exec_times)
    target.start_times.extend(other.start_times)
    target.response_times.extend(other.response_times)
    target.is_sync_member = target.is_sync_member or other.is_sync_member
    target.is_or_junction = target.is_or_junction or other.is_or_junction
    for topic in other.outtopics:
        if topic not in target.outtopics:
            target.outtopics.append(topic)


def merge_dags(dags: Iterable[TimingDag]) -> TimingDag:
    """Union of vertices and edges; measurement samples concatenate, so
    mBCET/mACET/mWCET reflect all input runs."""
    dags = list(dags)
    if not dags:
        raise ValueError("nothing to merge")
    merged = TimingDag()
    for dag in dags:
        for vertex in dag.vertices():
            if merged.has_vertex(vertex.key):
                _absorb_vertex(merged.vertex(vertex.key), vertex)
            else:
                merged.add_vertex(_clone_vertex(vertex))
        for edge in dag.edges():
            merged.add_edge(edge.src, edge.dst, edge.topic)
    return merged


def dag_from_merged_traces(traces: Iterable[Trace], pids=None) -> TimingDag:
    """Strategy 1: merge traces first, then synthesize once."""
    from .pipeline import synthesize_from_trace

    return synthesize_from_trace(Trace.merge(traces), pids=pids)


def dag_per_trace(traces: Iterable[Trace], pids=None) -> List[TimingDag]:
    """One DAG per run (the inputs to strategy 2)."""
    from .pipeline import synthesize_from_trace

    return [synthesize_from_trace(trace, pids=pids) for trace in traces]


def dag_from_runs(traces: Iterable[Trace], pids=None) -> TimingDag:
    """Strategy 2 (the paper's choice): DAG per trace, then merge."""
    return merge_dags(dag_per_trace(traces, pids=pids))


class MultiModeDag:
    """A timing model per operating mode (strategy 4 in Sec. V)."""

    def __init__(self) -> None:
        self._modes: Dict[str, TimingDag] = {}

    def add_mode(self, mode: str, dag: TimingDag) -> None:
        if mode in self._modes:
            raise ValueError(f"mode {mode!r} already present")
        self._modes[mode] = dag

    @staticmethod
    def from_mode_traces(
        traces_by_mode: Mapping[str, Iterable[Trace]], pids=None
    ) -> "MultiModeDag":
        multi = MultiModeDag()
        for mode, traces in traces_by_mode.items():
            multi.add_mode(mode, dag_from_runs(traces, pids=pids))
        return multi

    def modes(self) -> List[str]:
        return sorted(self._modes)

    def dag(self, mode: str) -> TimingDag:
        return self._modes[mode]

    def union(self) -> TimingDag:
        """Mode-agnostic model: merge of all per-mode DAGs."""
        return merge_dags(self._modes.values())

    def __len__(self) -> int:
        return len(self._modes)

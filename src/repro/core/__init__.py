"""Timing-model synthesis: the paper's primary contribution.

Alg. 1 (callback extraction), Alg. 2 (execution-time measurement), DAG
synthesis with service replication and AND/OR junctions, multi-run and
multi-mode merging, statistics and exporters.
"""

from .dag import DagEdge, DagValidationError, DagVertex, TimingDag
from .diff import (
    DagDiff,
    NoDataDrift,
    PercentileGate,
    StatDrift,
    diff_dags,
    percentile_gates,
)
from .exec_time import SchedIndex, get_exec_time
from .export import (
    dag_from_dict,
    dag_from_json,
    dag_to_dict,
    dag_to_json,
    format_edges,
    format_exec_table,
    to_dot,
)
from .extraction import EventIndex, TOPIC_ID_SEPARATOR, cat, extract_all, extract_callbacks
from .index import TraceIndex, is_sorted_by_ts
from .merge import (
    MultiModeDag,
    dag_from_merged_traces,
    dag_from_runs,
    dag_per_trace,
    merge_dags,
)
from .pipeline import (
    STRATEGY_MERGE_DAGS,
    STRATEGY_MERGE_TRACES,
    synthesize_from_database,
    synthesize_from_trace,
)
from .records import CallbackInstance, CallbackRecord, CBList
from .stats import ExecStats, ExecStatsMs, estimate_period, prefix_stats, utilization
from .synthesis import junction_key, synthesize_dag, vertex_key

__all__ = [
    "DagDiff",
    "NoDataDrift",
    "PercentileGate",
    "StatDrift",
    "diff_dags",
    "percentile_gates",
    "DagEdge",
    "DagValidationError",
    "DagVertex",
    "TimingDag",
    "SchedIndex",
    "get_exec_time",
    "dag_from_dict",
    "dag_from_json",
    "dag_to_dict",
    "dag_to_json",
    "format_edges",
    "format_exec_table",
    "to_dot",
    "EventIndex",
    "TraceIndex",
    "is_sorted_by_ts",
    "TOPIC_ID_SEPARATOR",
    "cat",
    "extract_all",
    "extract_callbacks",
    "MultiModeDag",
    "dag_from_merged_traces",
    "dag_from_runs",
    "dag_per_trace",
    "merge_dags",
    "STRATEGY_MERGE_DAGS",
    "STRATEGY_MERGE_TRACES",
    "synthesize_from_database",
    "synthesize_from_trace",
    "CallbackInstance",
    "CallbackRecord",
    "CBList",
    "ExecStats",
    "ExecStatsMs",
    "estimate_period",
    "prefix_stats",
    "utilization",
    "junction_key",
    "synthesize_dag",
    "vertex_key",
]

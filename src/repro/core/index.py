"""Single-pass trace indexing: the ``TraceIndex`` layer.

Everything downstream of a :class:`~repro.tracing.session.Trace` --
Alg. 1 extraction, the cross-node :class:`~repro.core.extraction.EventIndex`
lookups, Alg. 2 exec-time queries -- needs the same two things: ROS
events in chronological order grouped by PID, and ``sched_switch``
events bucketed per PID.  Before this layer each consumer re-derived
them independently: ``extract_callbacks`` filtered and re-sorted the
full event stream once *per PID* (O(P·N log N) overall), ``EventIndex``
sorted the stream a second time, and ``Trace.merge`` / ``from_dict``
re-sorted wholesale even when every input was already ordered.

``TraceIndex`` replaces all of that with **one finalization pass**:

* the ROS stream is sorted at most once -- an O(N) monotonicity check
  skips the sort entirely for the (typical) already-sorted trace; this
  is the *single-sort invariant*: after construction no consumer may
  sort ROS events again, they all share :attr:`ros_events` and the
  per-PID views sliced out of it;
* one enumeration of the sorted stream simultaneously builds the
  per-PID event views **and** the cross-node association tables
  (dds_write -> active writer CB, take_response -> dispatch flag) that
  ``EventIndex`` previously rebuilt with a second full scan keyed by
  ``id(event)`` -- here associations are positional (the event's index
  in the sorted stream), which survives pickling and needs no identity
  tricks;
* ``sched_switch`` events go into the columnar
  :class:`~repro.core.exec_time.SchedIndex` (``array('q')`` timestamp /
  flag columns), built once and shared by every per-PID extraction.

Equality with the pre-index pipeline is bit-exact: all sorts involved
are stable with the same key, so same-timestamp events keep their
relative order in both the global stream and every per-PID view.  The
golden tests in ``tests/test_perf_equivalence.py`` pin this against the
frozen implementation in :mod:`repro._legacy`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..tracing.events import (
    CB_END_PROBES,
    CB_START_PROBES,
    P3_TIMER_CALL,
    P6_TAKE,
    P7_SYNC_OP,
    P10_TAKE_REQUEST,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P16_DDS_WRITE,
    TraceEvent,
)
from .exec_time import SchedIndex

#: Probes that carry the callback id Alg. 1 associates with the running
#: callback instance.
ID_EVENT_PROBES = frozenset(
    {P3_TIMER_CALL, P6_TAKE, P10_TAKE_REQUEST, P13_TAKE_RESPONSE}
)

#: (topic, source timestamp) -- the paper's cross-node correlation key.
TopicKey = Tuple[Optional[str], Optional[int]]

# Integer probe codes: computed once per event during the indexing pass
# and stored alongside each per-PID view, so the Alg. 1 walk dispatches
# on a small int instead of re-testing probe-name membership per event.
CODE_OTHER = 0
CODE_CB_START = 1
CODE_TIMER_CALL = 2
CODE_TAKE = 3
CODE_TAKE_REQUEST = 4
CODE_TAKE_RESPONSE = 5
CODE_DDS_WRITE = 6
CODE_TAKE_TYPE_ERASED = 7
CODE_SYNC_OP = 8
CODE_CB_END = 9

PROBE_CODES: Dict[str, int] = {p: CODE_CB_START for p in CB_START_PROBES}
PROBE_CODES.update({p: CODE_CB_END for p in CB_END_PROBES})
PROBE_CODES[P3_TIMER_CALL] = CODE_TIMER_CALL
PROBE_CODES[P6_TAKE] = CODE_TAKE
PROBE_CODES[P10_TAKE_REQUEST] = CODE_TAKE_REQUEST
PROBE_CODES[P13_TAKE_RESPONSE] = CODE_TAKE_RESPONSE
PROBE_CODES[P16_DDS_WRITE] = CODE_DDS_WRITE
PROBE_CODES[P14_TAKE_TYPE_ERASED] = CODE_TAKE_TYPE_ERASED
PROBE_CODES[P7_SYNC_OP] = CODE_SYNC_OP

#: Codes whose payload Alg. 1 (or the cross-node table build)
#: dereferences.  They are contiguous -- ``CODE_TIMER_CALL <= code <=
#: CODE_TAKE_TYPE_ERASED`` is the hot-path test -- so a columnar walk
#: can skip payload JSON decode for every other row.
PAYLOAD_CODES = frozenset(
    {
        CODE_TIMER_CALL,
        CODE_TAKE,
        CODE_TAKE_REQUEST,
        CODE_TAKE_RESPONSE,
        CODE_DDS_WRITE,
        CODE_TAKE_TYPE_ERASED,
    }
)


def probe_code_table(strings: Sequence[str]) -> bytearray:
    """Probe code per string-table id (``CODE_OTHER`` for non-probes).

    A stored segment references probe names by string id, so resolving
    the code once per *table entry* replaces a per-event dict lookup on
    the probe string with a bytearray index on the stored id.
    """
    code_of = PROBE_CODES.get
    return bytearray(code_of(text, CODE_OTHER) for text in strings)


def probe_code_lut(code_table: Sequence[int]):
    """The per-string-id code table as a numpy ``uint8`` lookup array
    (``None`` without numpy): one fancy-index turns a segment's whole
    probe-id column into per-row codes, replacing the per-row
    ``codes[string_id]`` byte index of the scalar walk with a single
    vectorized gather (see ``store.index.StoreTraceIndex``)."""
    from . import npcompat

    if npcompat.np is None:
        return None
    return npcompat.np.frombuffer(bytes(code_table), dtype=npcompat.np.uint8)


def cb_start_type_table(strings: Sequence[str]) -> List[Optional[str]]:
    """Callback-type label per string-table id (None for non-start
    probes) -- the columnar counterpart of :meth:`TraceEvent.cb_type`."""
    from ..tracing.events import CB_TYPE_BY_START

    return [CB_TYPE_BY_START.get(text) for text in strings]


def is_sorted_by_ts(events: Sequence[Any]) -> bool:
    """O(N) monotonicity check backing the single-sort invariant."""
    return all(
        events[i].ts <= events[i + 1].ts for i in range(len(events) - 1)
    )


class TraceIndex:
    """All per-trace lookup structures, built in one pass.

    Parameters
    ----------
    ros_events:
        The trace's ROS event stream, in any order (sorted at most once).
    sched_events:
        The trace's ``sched_switch`` stream; indexed columnar per PID.
    pid_map:
        TR-IN's PID -> node-name discovery, carried through for
        extraction convenience.

    Attributes
    ----------
    ros_events:
        The chronologically sorted ROS stream.  Positions in this list
        are the event indices used by the cross-node tables.
    sched:
        The shared columnar :class:`SchedIndex`.
    """

    __slots__ = (
        "ros_events",
        "sched",
        "pid_map",
        "_by_pid",
        "writes",
        "writer_cb",
        "take_responses",
        "dispatch_after",
    )

    def __init__(
        self,
        ros_events: Sequence[TraceEvent],
        sched_events: Iterable[Any] = (),
        pid_map: Optional[Dict[int, str]] = None,
    ):
        events = list(ros_events)
        self.ros_events: List[TraceEvent] = events
        self.sched = SchedIndex(sched_events)
        self.pid_map: Dict[int, str] = dict(pid_map) if pid_map else {}
        if not self._build(events, check_sorted=True):
            # Out-of-order input: sort once (stable, same key as the
            # monotonicity check) and redo the single pass.
            events.sort(key=lambda e: e.ts)
            self._build(events, check_sorted=False)

    def _build(self, events: List[TraceEvent], check_sorted: bool) -> bool:
        """The single finalization pass.  Returns False (aborting early)
        when ``check_sorted`` detects out-of-order timestamps."""
        #: pid -> (that PID's events, probe code per event), both in
        #: chronological order and parallel to each other.
        self._by_pid: Dict[int, Tuple[List[TraceEvent], bytearray]] = {}
        #: (topic, src_ts) -> [(index, dds_write event)], FIFO order.
        self.writes: Dict[TopicKey, List[Tuple[int, TraceEvent]]] = {}
        #: dds_write event index -> CB id active in the writer at write time.
        self.writer_cb: Dict[int, Optional[str]] = {}
        #: (topic, src_ts) -> [(index, take_response event)].
        self.take_responses: Dict[TopicKey, List[Tuple[int, TraceEvent]]] = {}
        #: take_response event index -> will_dispatch of the next P14
        #: in the same PID (absent when no P14 follows).
        self.dispatch_after: Dict[int, bool] = {}

        by_pid = self._by_pid
        writes = self.writes
        writer_cb = self.writer_cb
        take_responses = self.take_responses
        dispatch_after = self.dispatch_after
        code_of = PROBE_CODES.get
        current_cb: Dict[int, Optional[str]] = {}
        pending_p13: Dict[int, List[int]] = {}
        prev_ts = None
        # TraceEvent is a NamedTuple: positional access (ts=0, pid=1,
        # probe=2, data=3) skips the attribute descriptors in this
        # per-event loop.
        for index, event in enumerate(events):
            ts = event[0]
            pid = event[1]
            if check_sorted:
                if prev_ts is not None and ts < prev_ts:
                    return False
                prev_ts = ts
            code = code_of(event[2], CODE_OTHER)
            pair = by_pid.get(pid)
            if pair is None:
                pair = by_pid[pid] = ([], bytearray())
            pair[0].append(event)
            pair[1].append(code)
            if code == CODE_CB_START:
                current_cb[pid] = None
            elif CODE_TIMER_CALL <= code <= CODE_TAKE_RESPONSE:
                data = event[3]
                current_cb[pid] = data.get("cb_id")
                if code == CODE_TAKE_RESPONSE:
                    pending_p13.setdefault(pid, []).append(index)
                    key = (data.get("topic"), data.get("src_ts"))
                    take_responses.setdefault(key, []).append((index, event))
            elif code == CODE_DDS_WRITE:
                writer_cb[index] = current_cb.get(pid)
                data = event[3]
                key = (data.get("topic"), data.get("src_ts"))
                writes.setdefault(key, []).append((index, event))
            elif code == CODE_TAKE_TYPE_ERASED:
                will_dispatch = bool(event[3].get("will_dispatch"))
                for p13_index in pending_p13.pop(pid, ()):
                    dispatch_after[p13_index] = will_dispatch
        return True

    @classmethod
    def from_trace(cls, trace: Any) -> "TraceIndex":
        """Index a :class:`~repro.tracing.session.Trace`."""
        return cls(
            trace.ros_events,
            trace.sched_events,
            pid_map=trace.pid_map,
        )

    # -- views -------------------------------------------------------------

    def pids(self) -> List[int]:
        """PIDs observed in the ROS stream, ascending."""
        return sorted(self._by_pid)

    def ros_for_pid(self, pid: int) -> List[TraceEvent]:
        """The PID's ROS events in chronological order (shared view --
        callers must not mutate)."""
        pair = self._by_pid.get(pid)
        return pair[0] if pair is not None else []

    def walk_for_pid(self, pid: int) -> Tuple[List[TraceEvent], bytearray]:
        """The PID's chronological events plus their probe codes.

        The two sequences are parallel; the codes let Alg. 1 dispatch on
        an int per event instead of probe-name membership tests.
        """
        pair = self._by_pid.get(pid)
        if pair is None:
            return [], bytearray()
        return pair

    def __len__(self) -> int:
        return len(self.ros_events)

"""Alg. 2: execution-time measurement from ``sched_switch`` folding.

A callback's start/end timestamps (from ROS2 events) bound a window in
which the executor thread may be preempted or migrated.  Alg. 2 walks
the ``sched_switch`` stream and sums only the *execution segments* --
intervals in which the thread actually owns a CPU:

* the window opens with the thread running (the CB-start probe fired in
  its context), so the first segment starts at ``start``;
* ``prev_pid == PID`` closes a segment, ``next_pid == PID`` opens one;
* the window closes with the thread running, so the last segment ends
  at ``end``.

Boundary refinement over the paper's pseudocode: the paper iterates
events with ``start < t < end`` strictly and unconditionally closes the
final segment at ``end``.  On a discrete-time simulator a dispatch can
coincide *exactly* with the CB-end probe (the thread resumes and
finishes the callback at the same nanosecond), which would leave a
stale segment start and over-count.  Both implementations therefore
track an explicit running flag with inclusive boundaries; on real
traces (where probe instructions always execute strictly after the
dispatch) the two formulations are identical.

:func:`get_exec_time` is the direct one-shot translation;
:class:`SchedIndex` is the production fast path.  It stores *columnar*
per-PID buckets -- an ``array('q')`` of timestamps and a parallel
``bytearray`` of open/close flags -- so a window query binary-searches
plain integers and folds without touching a single
:class:`SchedSwitch` object.  Equivalence with the literal algorithm
(and with the frozen pre-columnar index in :mod:`repro._legacy`) is
enforced by property-based tests.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Sequence, Tuple

from ..sim.scheduler import SchedSwitch
from . import npcompat

#: Flag bits of the columnar bucket: the event closes an execution
#: segment of the bucket's PID (``prev_pid == pid``) and/or opens one
#: (``next_pid == pid``).
_CLOSES = 1
_OPENS = 2


def _fold_segments(
    start: int, end: int, pid: int, events: Iterable[SchedSwitch]
) -> int:
    """Shared folding core: sum execution segments inside [start, end].

    ``events`` must be time-ordered and may contain unrelated PIDs.
    """
    exec_time = 0
    last_start = start
    running = True  # the CB-start probe fired in the thread's context
    for event in events:
        if event.ts < start:
            continue
        if event.ts > end:
            break
        if event.prev_pid == pid and running:
            exec_time += event.ts - last_start
            running = False
        elif event.next_pid == pid and not running:
            last_start = event.ts
            running = True
    if running:
        exec_time += end - last_start
    return exec_time


def get_exec_time(
    start: int, end: int, pid: int, sched_events: Sequence[SchedSwitch]
) -> int:
    """Alg. 2 over a raw event list (sorted internally, as the paper's
    line 3 does)."""
    if end < start:
        raise ValueError(f"end {end} precedes start {start}")
    return _fold_segments(
        start, end, pid, sorted(sched_events, key=lambda e: e.ts)
    )


def _is_nondecreasing(values: Sequence[int]) -> bool:
    return all(values[i] <= values[i + 1] for i in range(len(values) - 1))


class SchedIndex:
    """Columnar per-PID index over sched_switch events for Alg. 2.

    For every PID mentioned by the stream the index keeps two parallel
    columns: event timestamps (``array('q')``) and open/close flag bits
    (``bytearray``).  A window query binary-searches the timestamp
    column and folds over machine integers, making per-instance cost
    O(log n + segments) with none of the per-event attribute lookups of
    the object-walking variant.

    Bucket order matches the pre-columnar implementation exactly: events
    are bucketed in input order and stable-sorted by timestamp, so
    same-timestamp events fold in the same order and every query returns
    a bit-identical result.

    The input list is referenced, not copied (lists pass through
    unduplicated); callers must treat the stream as finalized --
    appending to it after indexing would desynchronize
    :meth:`events_for` from the frozen columnar buckets.
    """

    def __init__(self, sched_events: Iterable[SchedSwitch]):
        self._events: List[SchedSwitch] = (
            sched_events
            if isinstance(sched_events, list)
            else list(sched_events)
        )
        #: pid -> (timestamps, flags), ts-sorted, parallel columns.
        self._buckets: Dict[int, Tuple[array, bytearray]] = {}
        raw: Dict[int, Tuple[array, bytearray]] = {}
        # SchedSwitch is a NamedTuple: positional access (ts=0,
        # prev_pid=2, next_pid=6) skips the attribute descriptors in
        # this per-event loop.
        for event in self._events:
            prev_pid = event[2]
            next_pid = event[6]
            if prev_pid != 0:
                bucket = raw.get(prev_pid)
                if bucket is None:
                    bucket = raw[prev_pid] = (array("q"), bytearray())
                bucket[0].append(event[0])
                bucket[1].append(
                    _CLOSES | _OPENS if next_pid == prev_pid else _CLOSES
                )
            if next_pid != 0 and next_pid != prev_pid:
                bucket = raw.get(next_pid)
                if bucket is None:
                    bucket = raw[next_pid] = (array("q"), bytearray())
                bucket[0].append(event[0])
                bucket[1].append(_OPENS)
        for pid, (times, flags) in raw.items():
            if not _is_nondecreasing(times):
                order = sorted(range(len(times)), key=times.__getitem__)
                times = array("q", (times[i] for i in order))
                flags = bytearray(flags[i] for i in order)
            self._buckets[pid] = (times, flags)
        #: pid -> zero-copy numpy views of the (frozen) bucket columns,
        #: built lazily on the first large-window query.
        self._np_views: Dict[int, Tuple] = {}

    @classmethod
    def from_buckets(
        cls,
        buckets: Dict[int, Tuple[array, bytearray]],
        events: Iterable[SchedSwitch] = (),
    ) -> "SchedIndex":
        """Wrap pre-built columnar buckets without an event pass.

        The caller guarantees the invariant ``__init__`` establishes:
        every bucket's timestamps are nondecreasing and same-timestamp
        entries appear in merged-stream order.  ``events`` backs
        :meth:`events_for` only; the store-backed index passes none, so
        object reconstruction is unavailable there (the columnar fast
        path never needs it).
        """
        index = cls.__new__(cls)
        index._events = list(events)
        index._buckets = dict(buckets)
        index._np_views = {}
        return index

    def pids(self) -> List[int]:
        return sorted(self._buckets)

    def events_for(self, pid: int) -> List[SchedSwitch]:
        """The PID's events, ts-sorted (reconstructed on demand; the
        columnar fast path never touches event objects)."""
        if pid not in self._buckets:
            return []
        selected = [
            e for e in self._events if e.prev_pid == pid or e.next_pid == pid
        ]
        selected.sort(key=lambda e: e.ts)  # stable: bucket order
        return selected

    def exec_time(self, start: int, end: int, pid: int) -> int:
        """Alg. 2 over the indexed window (identical result, fast)."""
        if end < start:
            raise ValueError(f"end {end} precedes start {start}")
        bucket = self._buckets.get(pid)
        if bucket is None:
            return end - start
        times, flags = bucket
        lo = bisect_left(times, start)
        hi = bisect_right(times, end)
        # Typical callback windows span a handful of switches, where the
        # scalar fold wins; wide windows (long-running callbacks, the
        # analysis reports) amortize the vectorized integral below.
        if npcompat.np is not None and hi - lo >= npcompat.MIN_VECTOR_ROWS:
            return self._exec_time_np(start, end, pid, lo, hi)
        exec_time = 0
        last_start = start
        running = True  # the CB-start probe fired in the thread's context
        for i in range(lo, hi):
            flag = flags[i]
            if running:
                if flag & _CLOSES:
                    exec_time += times[i] - last_start
                    running = False
            elif flag & _OPENS:
                last_start = times[i]
                running = True
        if running:
            exec_time += end - last_start
        return exec_time

    def _exec_time_np(self, start: int, end: int, pid: int, lo: int, hi: int) -> int:
        """The fold as a vectorized integral of the running state.

        The scalar fold's state after each event is forced by close-only
        events (False) and open-only events (True), and *toggled* by
        close+open self-switches (running -> closed -> the next one
        reopens); this holds for arbitrary flag sequences, not just
        well-formed ones, so the rewrite is exactly the fold.  The
        summed execution time equals the integral of that
        piecewise-constant state over [start, end] with the initial
        state running=True -- three numpy scans (last forced event,
        toggle parity, masked diff sum) instead of a Python loop over
        the window.
        """
        np = npcompat.np
        views = self._np_views.get(pid)
        if views is None:
            times, flags = self._buckets[pid]
            views = self._np_views[pid] = (
                np.frombuffer(times, dtype=np.int64),
                np.frombuffer(flags, dtype=np.uint8),
            )
        window_ts = views[0][lo:hi]
        window_flags = views[1][lo:hi]
        n = hi - lo
        toggles = window_flags == (_CLOSES | _OPENS)
        last_forced = np.maximum.accumulate(
            np.where(toggles, -1, np.arange(n))
        )
        toggle_count = np.cumsum(toggles)
        anchor = np.maximum(last_forced, 0)
        has_anchor = last_forced >= 0
        base = np.where(has_anchor, window_flags[anchor] == _OPENS, True)
        toggles_since = toggle_count - np.where(
            has_anchor, toggle_count[anchor], 0
        )
        state = base ^ (toggles_since & 1).astype(bool)
        total = int(window_ts[0]) - start
        if n > 1:
            total += int(
                ((window_ts[1:] - window_ts[:-1])[state[:-1]]).sum()
            )
        if state[n - 1]:
            total += end - int(window_ts[n - 1])
        return total

    def preemption_time(self, start: int, end: int, pid: int) -> int:
        """Time inside the window the thread did *not* run."""
        return (end - start) - self.exec_time(start, end, pid)

"""Callback records: the ``CBlist`` data model of Alg. 1.

One :class:`CallbackInstance` describes a single execution of a callback
(between a CB-start and the matching CB-end event).  Instances aggregate
into :class:`CallbackRecord` entries inside a :class:`CBList` -- one
entry per distinct callback, except services, which get one entry *per
caller* (matched on ID **and** subscribed topic), the paper's device for
splitting a shared service into per-caller vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class CallbackInstance:
    """One observed execution of a callback."""

    cb_type: str  # "timer" | "subscriber" | "service" | "client"
    start: int
    end: Optional[int] = None
    cb_id: Optional[str] = None
    intopic: Optional[str] = None
    outtopics: List[str] = field(default_factory=list)
    is_sync_subscriber: bool = False
    exec_time: Optional[int] = None

    @property
    def response_time(self) -> Optional[int]:
        """Wall-clock start-to-end duration (includes preemption)."""
        if self.end is None:
            return None
        return self.end - self.start


@dataclass
class CallbackRecord:
    """Aggregated attributes of one callback across its instances."""

    pid: int
    node: str
    cb_type: str
    cb_id: str
    intopic: Optional[str] = None
    outtopics: List[str] = field(default_factory=list)
    is_sync_subscriber: bool = False
    exec_times: List[int] = field(default_factory=list)
    start_times: List[int] = field(default_factory=list)
    response_times: List[int] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, str, Optional[str]]:
        """Identity of the record inside the whole-application model.

        Services are keyed by (node, id, intopic) so each caller yields a
        distinct record; all other callbacks by (node, id).
        """
        if self.cb_type == "service":
            return (self.node, self.cb_id, self.intopic)
        return (self.node, self.cb_id, None)

    @property
    def invocations(self) -> int:
        return len(self.start_times)

    def absorb_instance(self, instance: CallbackInstance) -> None:
        """Fold one more observed execution into this record."""
        self.start_times.append(instance.start)
        if instance.exec_time is not None:
            self.exec_times.append(instance.exec_time)
        if instance.response_time is not None:
            self.response_times.append(instance.response_time)
        if instance.is_sync_subscriber:
            self.is_sync_subscriber = True
        for topic in instance.outtopics:
            if topic not in self.outtopics:
                self.outtopics.append(topic)

    def absorb_record(self, other: "CallbackRecord") -> None:
        """Fold another record for the same callback (DAG/trace merging)."""
        if other.key != self.key:
            raise ValueError(f"cannot merge records {self.key} and {other.key}")
        self.exec_times.extend(other.exec_times)
        self.start_times.extend(other.start_times)
        self.response_times.extend(other.response_times)
        self.is_sync_subscriber = self.is_sync_subscriber or other.is_sync_subscriber
        for topic in other.outtopics:
            if topic not in self.outtopics:
                self.outtopics.append(topic)


class CBList:
    """Callback list for one ROS2 node, as returned by Alg. 1."""

    def __init__(self, pid: int, node: str = ""):
        self.pid = pid
        self.node = node or f"pid{pid}"
        self._records: Dict[Tuple[str, str, Optional[str]], CallbackRecord] = {}

    def add(self, instance: CallbackInstance) -> CallbackRecord:
        """Alg. 1's ``AddToCallback``: match an existing entry (ID, plus
        subscribed topic for services) or create a new one.

        The key is computed directly (mirroring
        :attr:`CallbackRecord.key`) so the common already-seen case does
        not construct a throwaway probe record.
        """
        if instance.cb_id is None:
            raise ValueError("instance has no callback ID")
        key = (
            self.node,
            instance.cb_id,
            instance.intopic if instance.cb_type == "service" else None,
        )
        record = self._records.get(key)
        if record is None:
            record = CallbackRecord(
                pid=self.pid,
                node=self.node,
                cb_type=instance.cb_type,
                cb_id=instance.cb_id,
                intopic=instance.intopic,
            )
            self._records[key] = record
        record.absorb_instance(instance)
        return record

    def add_values(
        self,
        cb_type: str,
        cb_id: str,
        intopic: Optional[str],
        outtopics: Optional[List[str]],
        is_sync_subscriber: bool,
        start: int,
        end: int,
        exec_time: int,
    ) -> CallbackRecord:
        """Allocation-free ``AddToCallback`` used by the Alg. 1 hot walk.

        Semantically identical to building a :class:`CallbackInstance`
        and calling :meth:`add`, minus the throwaway instance object --
        one callback execution is folded per probe-bounded window, which
        makes the instance allocation measurable on large traces.
        """
        key = (self.node, cb_id, intopic if cb_type == "service" else None)
        record = self._records.get(key)
        if record is None:
            record = CallbackRecord(
                pid=self.pid,
                node=self.node,
                cb_type=cb_type,
                cb_id=cb_id,
                intopic=intopic,
            )
            self._records[key] = record
        record.start_times.append(start)
        record.exec_times.append(exec_time)
        record.response_times.append(end - start)
        if is_sync_subscriber:
            record.is_sync_subscriber = True
        if outtopics:
            recorded = record.outtopics
            for topic in outtopics:
                if topic not in recorded:
                    recorded.append(topic)
        return record

    def records(self) -> List[CallbackRecord]:
        return list(self._records.values())

    def get(self, cb_id: str, intopic: Optional[str] = None) -> CallbackRecord:
        """Fetch a record by callback id (and intopic for services)."""
        matches = [
            r
            for r in self._records.values()
            if r.cb_id == cb_id and (intopic is None or r.intopic == intopic)
        ]
        if not matches:
            raise KeyError(f"no record for cb_id={cb_id!r}, intopic={intopic!r}")
        if len(matches) > 1:
            raise KeyError(
                f"ambiguous cb_id={cb_id!r}: {len(matches)} records; pass intopic"
            )
        return matches[0]

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records.values())

"""The timing model: a directed acyclic graph of callbacks.

Vertices are callbacks (tasks) annotated with measured timing attributes;
edges are precedence relations induced by topic communication.  Special
vertex roles follow Sec. IV's DAG-synthesis rules:

* a service invoked by *n* callers appears as *n* vertices (one per
  caller), keeping computation chains disjoint;
* an ``AND`` junction (zero execution time) joins the members of a data
  synchronization group;
* a vertex whose subscribed topic has several publishers is marked as an
  ``OR`` junction: any publisher triggers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .stats import ExecStats, estimate_period


class DagValidationError(ValueError):
    """The graph violates a timing-model invariant (cycle, dangling edge,
    duplicate vertex)."""


@dataclass
class DagVertex:
    """A task in the timing model."""

    key: str
    node: str
    cb_id: str
    cb_type: str  # "timer"|"subscriber"|"service"|"client"|"and_junction"
    intopic: Optional[str] = None
    outtopics: List[str] = field(default_factory=list)
    is_sync_member: bool = False
    is_or_junction: bool = False
    exec_times: List[int] = field(default_factory=list)
    start_times: List[int] = field(default_factory=list)
    response_times: List[int] = field(default_factory=list)

    @property
    def is_and_junction(self) -> bool:
        return self.cb_type == "and_junction"

    @property
    def exec_stats(self) -> ExecStats:
        """Measured execution-time summary; AND junctions are zero-time
        tasks by construction."""
        if not self.exec_times:
            return ExecStats.ZERO
        return ExecStats.from_samples(self.exec_times)

    @property
    def period_ns(self) -> Optional[int]:
        return estimate_period(self.start_times)

    def label(self) -> str:
        if self.is_and_junction:
            return f"{self.node}/&"
        return self.cb_id


@dataclass(frozen=True)
class DagEdge:
    """A precedence relation, annotated with the connecting topic."""

    src: str
    dst: str
    topic: str


class TimingDag:
    """The synthesized timing model of one or more applications."""

    def __init__(self) -> None:
        self._vertices: Dict[str, DagVertex] = {}
        self._edges: Dict[Tuple[str, str, str], DagEdge] = {}

    # -- construction ---------------------------------------------------

    def add_vertex(self, vertex: DagVertex) -> DagVertex:
        if vertex.key in self._vertices:
            raise DagValidationError(f"duplicate vertex key {vertex.key!r}")
        self._vertices[vertex.key] = vertex
        return vertex

    def add_edge(self, src: str, dst: str, topic: str) -> DagEdge:
        if src not in self._vertices:
            raise DagValidationError(f"edge source {src!r} not in DAG")
        if dst not in self._vertices:
            raise DagValidationError(f"edge target {dst!r} not in DAG")
        edge = DagEdge(src=src, dst=dst, topic=topic)
        self._edges[(src, dst, topic)] = edge
        return edge

    # -- access -----------------------------------------------------------

    def vertices(self) -> List[DagVertex]:
        return list(self._vertices.values())

    def edges(self) -> List[DagEdge]:
        return list(self._edges.values())

    def vertex(self, key: str) -> DagVertex:
        return self._vertices[key]

    def has_vertex(self, key: str) -> bool:
        return key in self._vertices

    def has_edge(self, src: str, dst: str, topic: Optional[str] = None) -> bool:
        if topic is not None:
            return (src, dst, topic) in self._edges
        return any(e.src == src and e.dst == dst for e in self._edges.values())

    def find_vertices(
        self,
        cb_id: Optional[str] = None,
        node: Optional[str] = None,
        cb_type: Optional[str] = None,
    ) -> List[DagVertex]:
        """Filter vertices by any combination of id / node / type."""
        result = []
        for vertex in self._vertices.values():
            if cb_id is not None and vertex.cb_id != cb_id:
                continue
            if node is not None and vertex.node != node:
                continue
            if cb_type is not None and vertex.cb_type != cb_type:
                continue
            result.append(vertex)
        return result

    def successors(self, key: str) -> List[DagVertex]:
        return [self._vertices[e.dst] for e in self._edges.values() if e.src == key]

    def predecessors(self, key: str) -> List[DagVertex]:
        return [self._vertices[e.src] for e in self._edges.values() if e.dst == key]

    def sources(self) -> List[DagVertex]:
        """Vertices with no incoming edges (chain heads, e.g. timers)."""
        targets = {e.dst for e in self._edges.values()}
        return [v for k, v in self._vertices.items() if k not in targets]

    def sinks(self) -> List[DagVertex]:
        origins = {e.src for e in self._edges.values()}
        return [v for k, v in self._vertices.items() if k not in origins]

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # -- invariants -----------------------------------------------------------

    def topological_order(self) -> List[DagVertex]:
        """Kahn's algorithm; raises :class:`DagValidationError` on cycles."""
        indegree = {k: 0 for k in self._vertices}
        for edge in self._edges.values():
            indegree[edge.dst] += 1
        frontier = sorted(k for k, d in indegree.items() if d == 0)
        order: List[str] = []
        while frontier:
            key = frontier.pop(0)
            order.append(key)
            for edge in sorted(
                (e for e in self._edges.values() if e.src == key),
                key=lambda e: e.dst,
            ):
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    frontier.append(edge.dst)
            frontier.sort()
        if len(order) != len(self._vertices):
            cyclic = sorted(set(self._vertices) - set(order))
            raise DagValidationError(f"cycle through vertices: {cyclic}")
        return [self._vertices[k] for k in order]

    def validate(self) -> None:
        """Check timing-model invariants: acyclicity, junction shape."""
        self.topological_order()
        for vertex in self._vertices.values():
            if vertex.is_and_junction:
                if vertex.exec_times and any(t != 0 for t in vertex.exec_times):
                    raise DagValidationError(
                        f"AND junction {vertex.key!r} must have zero execution time"
                    )
                if len(self.predecessors(vertex.key)) < 2:
                    raise DagValidationError(
                        f"AND junction {vertex.key!r} needs >= 2 inputs"
                    )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimingDag({self.num_vertices} vertices, {self.num_edges} edges)"

"""Alg. 1: extract callback attributes for each ROS2 node from traces.

The algorithm exploits the single-threaded executor model: within one
PID, every event between a CB-start and the next CB-end describes one
execution of one callback.  It walks the node's ROS2 events in
chronological order, assembling :class:`CallbackInstance` objects and
folding them into a :class:`CBList`.

All lookup structures come from the single-pass
:class:`~repro.core.index.TraceIndex`: per-PID chronological event
views (no per-PID re-sort of the full stream), the columnar
:class:`~repro.core.exec_time.SchedIndex`, and the cross-node
association tables, which key by an event's *position* in the sorted
stream rather than by ``id(event)``.

Cross-node lookups follow the paper:

* **FindCaller** (service requests) -- the ``dds_write`` event with the
  same topic and source timestamp as the ``take_request`` identifies the
  caller's PID; the ``timer_call``/``take`` event preceding that write
  (and following the caller's last CB start) provides the caller CB's ID.
* **FindClient** (service responses) -- the ``take_response`` events
  with the same topic and source timestamp as the ``dds_write`` locate
  the candidate clients; the chronologically next
  ``take_type_erased_response`` per candidate PID tells which client
  actually dispatched.

Topic names on service request/response paths are qualified with the
caller/client CB ID (the paper's concatenation), which is what later
splits a shared service into per-caller vertices.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..tracing.events import TraceEvent
from ..tracing.session import Trace
from .exec_time import SchedIndex
from .index import (
    CODE_CB_END,
    CODE_CB_START,
    CODE_DDS_WRITE,
    CODE_OTHER,
    CODE_SYNC_OP,
    CODE_TAKE,
    CODE_TAKE_REQUEST,
    CODE_TAKE_RESPONSE,
    CODE_TAKE_TYPE_ERASED,
    CODE_TIMER_CALL,
    ID_EVENT_PROBES,
    PROBE_CODES,
    TraceIndex,
)
from .records import CBList

#: Separator used when qualifying a service topic with a CB id.
TOPIC_ID_SEPARATOR = "#"

#: Backwards-compatible alias (the set now lives in repro.core.index).
_ID_EVENT_PROBES = ID_EVENT_PROBES


def cat(topic: str, cb_id: Optional[str]) -> str:
    """The paper's topic-name concatenation (unknown ids stay visible)."""
    return f"{topic}{TOPIC_ID_SEPARATOR}{cb_id if cb_id is not None else '?'}"


class EventIndex:
    """Cross-node lookup cursors shared by all per-PID extractions.

    The immutable association tables live in :class:`TraceIndex`; this
    class adds the per-extraction FIFO cursors, so two extraction passes
    over the same ``TraceIndex`` never observe each other's state.
    """

    def __init__(
        self,
        ros_events: Optional[Sequence[TraceEvent]] = None,
        trace_index: Optional[TraceIndex] = None,
    ):
        if trace_index is None:
            if ros_events is None:
                raise ValueError("need ros_events or a trace_index")
            trace_index = TraceIndex(ros_events)
        self._index = trace_index
        #: Cursor per (topic, src_ts) key: two periodic callers can write
        #: the same request topic at the same nanosecond, so the k-th
        #: take of a key is matched with the k-th write (FIFO delivery).
        self._caller_cursor: dict = {}

    def find_caller(self, take_request_event: TraceEvent) -> Optional[str]:
        """ID of the caller CB that produced this service request.

        When several writes share (topic, src_ts) -- periodic callers
        phase-aligning on the simulator's discrete clock -- successive
        lookups consume successive writes, preserving FIFO order.
        """
        key = (take_request_event.get("topic"), take_request_event.get("src_ts"))
        writes = [
            index
            for index, event in self._index.writes.get(key, ())
            if event.get("kind") == "request"
        ]
        if not writes:
            return None
        cursor = self._caller_cursor.get(key, 0)
        write_index = writes[min(cursor, len(writes) - 1)]
        self._caller_cursor[key] = cursor + 1
        return self._index.writer_cb.get(write_index)

    def find_client(self, write_event: TraceEvent) -> Optional[str]:
        """ID of the client CB that will dispatch this service response."""
        key = (write_event.get("topic"), write_event.get("src_ts"))
        dispatch_after = self._index.dispatch_after
        for take_index, take in self._index.take_responses.get(key, ()):
            if dispatch_after.get(take_index):
                return take.get("cb_id")
        return None


def _extract_pid_events(
    pid: int,
    events: Sequence[TraceEvent],
    codes: Sequence[int],
    sched_index: SchedIndex,
    index: EventIndex,
    node_name: str,
) -> CBList:
    """Alg. 1's per-node walk over the PID's chronological events.

    ``codes`` holds the pre-computed probe code per event (parallel to
    ``events``, from :meth:`TraceIndex.walk_for_pid`): the walk branches
    on one small int per event instead of repeated probe-name tests.
    """
    cblist = CBList(pid, node_name)
    add_values = cblist.add_values
    exec_time = sched_index.exec_time
    # Instance state in locals (no CallbackInstance allocation per
    # execution): ``active`` mirrors "instance is not None".
    active = False
    cb_type = ""
    cb_id: Optional[str] = None
    intopic: Optional[str] = None
    outtopics: Optional[List[str]] = None
    is_sync = False
    start = 0
    for event, code in zip(events, codes):
        if code == CODE_CB_START:
            active = True
            cb_type = event.cb_type()
            start = event[0]  # NamedTuple: ts
            cb_id = None
            intopic = None
            outtopics = None
            is_sync = False
        elif not active:
            # Only the P14 no-dispatch probe acts outside an instance,
            # and it is a no-op when there is nothing to drop.
            continue
        elif code == CODE_TIMER_CALL:
            cb_id = event[3].get("cb_id")
        elif code == CODE_TAKE:
            data = event[3]
            cb_id = data.get("cb_id")
            intopic = data.get("topic")
        elif code == CODE_TAKE_RESPONSE:
            data = event[3]
            cb_id = data.get("cb_id")
            intopic = cat(data.get("topic"), cb_id)
        elif code == CODE_TAKE_REQUEST:
            data = event[3]
            cb_id = data.get("cb_id")
            intopic = cat(data.get("topic"), index.find_caller(event))
        elif code == CODE_DDS_WRITE:
            data = event[3]
            kind = data.get("kind")
            if kind == "request":
                top_out = cat(data.get("topic"), cb_id)
            elif kind == "response":
                top_out = cat(data.get("topic"), index.find_client(event))
            else:
                top_out = data.get("topic")
            if outtopics is None:
                outtopics = [top_out]
            else:
                outtopics.append(top_out)
        elif code == CODE_TAKE_TYPE_ERASED:
            if not event[3].get("will_dispatch"):
                # Client CB will not dispatch here: drop the instance.
                active = False
        elif code == CODE_SYNC_OP:
            is_sync = True
        elif code == CODE_CB_END:
            if cb_id is not None:
                end = event[0]
                add_values(
                    cb_type,
                    cb_id,
                    intopic,
                    outtopics,
                    is_sync,
                    start,
                    end,
                    exec_time(start, end, pid),
                )
            active = False
    return cblist


def _extract_pid_walk(
    pid: int,
    timestamps: Sequence[int],
    codes: Sequence[int],
    aux: Sequence[object],
    sched_index: SchedIndex,
    index: EventIndex,
    node_name: str,
) -> CBList:
    """Alg. 1's per-node walk over *columns* instead of event objects.

    The exact state machine of :func:`_extract_pid_events`, consuming
    three parallel per-PID columns: timestamps, probe codes, and an
    ``aux`` slot per row -- the callback-type label for CB-start rows,
    the decoded payload mapping for the ID-carrying rows Alg. 1
    dereferences (see :data:`~repro.core.index.PAYLOAD_CODES`), ``None``
    for everything else.  This is the store-backed fast path: rows never
    materialize a :class:`TraceEvent`, and payload JSON is only decoded
    where an ``aux`` entry exists.  The store consumers pre-drop
    ``CODE_OTHER`` rows when building these columns -- such rows are
    no-ops to this state machine (they match no branch while active and
    fall to ``continue`` otherwise), so the walk loops only over rows
    that can change state.  Byte-for-byte equivalence with the
    event-object walk is pinned by the store equivalence suites.
    """
    cblist = CBList(pid, node_name)
    add_values = cblist.add_values
    exec_time = sched_index.exec_time
    active = False
    cb_type = ""
    cb_id: Optional[str] = None
    intopic: Optional[str] = None
    outtopics: Optional[List[str]] = None
    is_sync = False
    start = 0
    for ts, code, data in zip(timestamps, codes, aux):
        if code == CODE_CB_START:
            active = True
            cb_type = data
            start = ts
            cb_id = None
            intopic = None
            outtopics = None
            is_sync = False
        elif not active:
            continue
        elif code == CODE_TIMER_CALL:
            cb_id = data.get("cb_id")
        elif code == CODE_TAKE:
            cb_id = data.get("cb_id")
            intopic = data.get("topic")
        elif code == CODE_TAKE_RESPONSE:
            cb_id = data.get("cb_id")
            intopic = cat(data.get("topic"), cb_id)
        elif code == CODE_TAKE_REQUEST:
            cb_id = data.get("cb_id")
            intopic = cat(data.get("topic"), index.find_caller(data))
        elif code == CODE_DDS_WRITE:
            kind = data.get("kind")
            if kind == "request":
                top_out = cat(data.get("topic"), cb_id)
            elif kind == "response":
                top_out = cat(data.get("topic"), index.find_client(data))
            else:
                top_out = data.get("topic")
            if outtopics is None:
                outtopics = [top_out]
            else:
                outtopics.append(top_out)
        elif code == CODE_TAKE_TYPE_ERASED:
            if not data.get("will_dispatch"):
                active = False
        elif code == CODE_SYNC_OP:
            is_sync = True
        elif code == CODE_CB_END:
            if cb_id is not None:
                end = ts
                add_values(
                    cb_type,
                    cb_id,
                    intopic,
                    outtopics,
                    is_sync,
                    start,
                    end,
                    exec_time(start, end, pid),
                )
            active = False
    return cblist


def extract_callbacks(
    pid: int,
    ros_events: Sequence[TraceEvent],
    sched_index: SchedIndex,
    node_name: str = "",
    event_index: Optional[EventIndex] = None,
    pid_events: Optional[Sequence[TraceEvent]] = None,
) -> CBList:
    """Alg. 1 for one ROS2 node.

    Parameters
    ----------
    pid:
        PID of the node's executor thread.
    ros_events:
        All ROS2 events of the trace (the algorithm filters by PID, but
        FindCaller / FindClient need the full stream).
    sched_index:
        Indexed ``sched_switch`` events for Alg. 2.
    node_name:
        Name from the ROS2-INIT trace (cosmetic; PIDs are the identity).
    event_index:
        Pre-built :class:`EventIndex`; built on demand when omitted.
    pid_events:
        The PID's chronological events, when the caller already holds a
        :class:`TraceIndex` view; derived from ``ros_events`` otherwise.
    """
    index = event_index if event_index is not None else EventIndex(ros_events)
    if pid_events is None:
        pid_events = sorted(
            (e for e in ros_events if e.pid == pid), key=lambda e: e.ts
        )
    code_of = PROBE_CODES.get
    codes = bytearray(code_of(e.probe, CODE_OTHER) for e in pid_events)
    return _extract_pid_events(pid, pid_events, codes, sched_index, index, node_name)


def extract_all(
    trace: Trace,
    pids: Optional[Iterable[int]] = None,
    trace_index: Optional[TraceIndex] = None,
) -> List[CBList]:
    """Run Alg. 1 for every (or the given) node PIDs of a trace.

    One :class:`TraceIndex` finalization pass replaces the per-PID
    filter-and-sort of the full stream; pass ``trace_index`` to reuse an
    index built elsewhere.
    """
    index = trace_index if trace_index is not None else TraceIndex.from_trace(trace)
    event_index = EventIndex(trace_index=index)
    wanted = sorted(pids) if pids is not None else trace.pids()
    cblists = []
    for pid in wanted:
        events, codes = index.walk_for_pid(pid)
        cblists.append(
            _extract_pid_events(
                pid,
                events,
                codes,
                index.sched,
                event_index,
                trace.pid_map.get(pid, ""),
            )
        )
    return cblists

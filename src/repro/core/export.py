"""Model export: DOT, JSON, and paper-style text tables.

The DOT output mirrors Fig. 3's visual conventions: one color per node,
``&`` boxes for AND junctions, topic names on edges.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, Optional

from .dag import DagVertex, TimingDag

_PALETTE = [
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
    "#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
]


def to_dot(dag: TimingDag, title: str = "timing_model") -> str:
    """Graphviz DOT rendering of the timing model."""
    nodes = sorted({v.node for v in dag.vertices()})
    color = {node: _PALETTE[i % len(_PALETTE)] for i, node in enumerate(nodes)}
    lines = [f"digraph \"{title}\" {{", "  rankdir=LR;", "  node [style=filled];"]
    for vertex in sorted(dag.vertices(), key=lambda v: v.key):
        shape = "diamond" if vertex.is_and_junction else "box"
        label = vertex.label()
        stats = vertex.exec_stats
        if stats.count:
            m = stats.ms()
            label += f"\\n[{m.mbcet:.2f}/{m.macet:.2f}/{m.mwcet:.2f}] ms"
        if vertex.is_or_junction:
            label += "\\n(OR)"
        lines.append(
            f'  "{vertex.key}" [label="{label}", shape={shape}, '
            f'fillcolor="{color[vertex.node]}"];'
        )
    for edge in sorted(dag.edges(), key=lambda e: (e.src, e.dst, e.topic)):
        lines.append(f'  "{edge.src}" -> "{edge.dst}" [label="{edge.topic}"];')
    lines.append("}")
    return "\n".join(lines)


def dag_to_dict(dag: TimingDag) -> Dict[str, Any]:
    """JSON-serializable form of the model (lossless round trip)."""
    return {
        "vertices": [
            {
                "key": v.key,
                "node": v.node,
                "cb_id": v.cb_id,
                "cb_type": v.cb_type,
                "intopic": v.intopic,
                "outtopics": list(v.outtopics),
                "is_sync_member": v.is_sync_member,
                "is_or_junction": v.is_or_junction,
                "exec_times": list(v.exec_times),
                "start_times": list(v.start_times),
                "response_times": list(v.response_times),
            }
            for v in sorted(dag.vertices(), key=lambda v: v.key)
        ],
        "edges": [
            {"src": e.src, "dst": e.dst, "topic": e.topic}
            for e in sorted(dag.edges(), key=lambda e: (e.src, e.dst, e.topic))
        ],
    }


def dag_from_dict(raw: Dict[str, Any]) -> TimingDag:
    dag = TimingDag()
    for v in raw["vertices"]:
        dag.add_vertex(
            DagVertex(
                key=v["key"],
                node=v["node"],
                cb_id=v["cb_id"],
                cb_type=v["cb_type"],
                intopic=v.get("intopic"),
                outtopics=list(v.get("outtopics", [])),
                is_sync_member=bool(v.get("is_sync_member")),
                is_or_junction=bool(v.get("is_or_junction")),
                exec_times=list(v.get("exec_times", [])),
                start_times=list(v.get("start_times", [])),
                response_times=list(v.get("response_times", [])),
            )
        )
    for e in raw["edges"]:
        dag.add_edge(e["src"], e["dst"], e["topic"])
    return dag


def dag_to_json(dag: TimingDag, indent: Optional[int] = None) -> str:
    return json.dumps(dag_to_dict(dag), indent=indent)


def dag_from_json(text: str) -> TimingDag:
    return dag_from_dict(json.loads(text))


def format_exec_table(
    dag: TimingDag,
    order: Optional[Iterable[str]] = None,
    names: Optional[Dict[str, str]] = None,
) -> str:
    """Table II-style text table: CB | node | mBCET | mACET | mWCET (ms).

    ``order`` lists vertex keys to include (default: all, sorted);
    ``names`` optionally maps vertex keys to display names (cb1..cb6).
    """
    keys = list(order) if order is not None else sorted(
        v.key for v in dag.vertices() if not v.is_and_junction
    )
    names = names or {}
    header = f"{'CB':<12} {'Node':<28} {'mBCET':>8} {'mACET':>8} {'mWCET':>8}"
    rows = [header, "-" * len(header)]
    for key in keys:
        vertex = dag.vertex(key)
        stats = vertex.exec_stats.ms()
        rows.append(
            f"{names.get(key, vertex.cb_id):<12} {vertex.node:<28} "
            f"{stats.mbcet:>8.2f} {stats.macet:>8.2f} {stats.mwcet:>8.2f}"
        )
    return "\n".join(rows)


def format_edges(dag: TimingDag) -> str:
    """Human-readable edge list (Fig. 3 in text form)."""
    lines = []
    for edge in sorted(dag.edges(), key=lambda e: (e.src, e.dst)):
        lines.append(f"{edge.src} --[{edge.topic}]--> {edge.dst}")
    return "\n".join(lines)

"""Measurement statistics: mBCET / mACET / mWCET and period estimation.

The paper annotates each DAG vertex with measured best-case, average and
worst-case execution times (Table II) and estimates timer periods from
consecutive start times.  ``prefix_stats`` supports the Fig. 4 study:
how the estimates evolve as more runs are merged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ExecStats:
    """Summary of execution-time measurements, in nanoseconds."""

    count: int
    mbcet: int
    macet: float
    mwcet: int
    std: float

    @staticmethod
    def from_samples(samples: Sequence[int]) -> "ExecStats":
        if not samples:
            raise ValueError("no samples")
        arr = np.asarray(samples, dtype=np.int64)
        return ExecStats(
            count=int(arr.size),
            mbcet=int(arr.min()),
            macet=float(arr.mean()),
            mwcet=int(arr.max()),
            std=float(arr.std()),
        )

    #: Sentinel for vertices without measurements (assigned below).
    ZERO = None  # type: ignore[assignment]

    def ms(self) -> "ExecStatsMs":
        return ExecStatsMs(
            count=self.count,
            mbcet=self.mbcet / 1e6,
            macet=self.macet / 1e6,
            mwcet=self.mwcet / 1e6,
            std=self.std / 1e6,
        )

    def __str__(self) -> str:
        m = self.ms()
        return f"[{m.mbcet:.2f} / {m.macet:.2f} / {m.mwcet:.2f}] ms (n={self.count})"


ExecStats.ZERO = ExecStats(count=0, mbcet=0, macet=0.0, mwcet=0, std=0.0)


@dataclass(frozen=True)
class ExecStatsMs:
    """The same summary converted to milliseconds (Table II units)."""

    count: int
    mbcet: float
    macet: float
    mwcet: float
    std: float


def estimate_period(start_times: Sequence[int]) -> Optional[int]:
    """Approximate invocation period from consecutive start times.

    Uses the median gap (robust against dispatch delays); returns None
    with fewer than two invocations.
    """
    if len(start_times) < 2:
        return None
    starts = np.sort(np.asarray(start_times, dtype=np.int64))
    gaps = np.diff(starts)
    return int(np.median(gaps))


def utilization(exec_stats: ExecStats, period_ns: Optional[int]) -> Optional[float]:
    """Average processor load of a callback (mACET / period), the figure
    behind the paper's '27 % load for cb2 at 10 Hz' observation."""
    if period_ns is None or period_ns <= 0:
        return None
    return exec_stats.macet / period_ns


def prefix_stats(per_run_samples: Sequence[Sequence[int]]) -> List[ExecStats]:
    """Statistics over growing run prefixes (Fig. 4's x-axis).

    ``per_run_samples[i]`` holds the execution times measured in run
    ``i``; element ``k`` of the result summarises runs ``0..k`` merged.
    """
    result: List[ExecStats] = []
    merged: List[int] = []
    for samples in per_run_samples:
        merged.extend(samples)
        if merged:
            result.append(ExecStats.from_samples(merged))
        else:
            result.append(ExecStats.ZERO)
    return result

"""Timing-model diffing and regression gates.

Synthesized models are most useful when tracked over time: a new
software version, a different deployment, or a new operating mode can
add/remove callbacks, rewire topics, or shift execution-time profiles.
``diff_dags`` compares two models structurally and statistically --
the regression-checking workflow the paper's "debugging and
optimization" outlook (Sec. VII) implies -- and ``percentile_gates``
adds tail-latency exec-time gates (p95/p99-style) on top of the
mean/worst drift thresholds.  ``repro diff`` exposes both with CI
exit codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from .dag import TimingDag


@dataclass(frozen=True)
class StatDrift:
    """Execution-time drift of one callback between two models."""

    key: str
    old_mwcet: int
    new_mwcet: int
    old_macet: float
    new_macet: float

    @property
    def mwcet_ratio(self) -> float:
        if self.old_mwcet == 0:
            return float("inf") if self.new_mwcet else 1.0
        return self.new_mwcet / self.old_mwcet

    @property
    def macet_ratio(self) -> float:
        if self.old_macet == 0:
            return float("inf") if self.new_macet else 1.0
        return self.new_macet / self.old_macet


@dataclass(frozen=True)
class NoDataDrift:
    """A shared callback measured on only one side.

    A callback whose ``exec_stats.count`` dropped to zero stopped
    executing entirely -- the most important drift of all -- so it is
    reported here instead of being silently skipped by the ratio-based
    drift check (which has nothing to divide by).
    """

    key: str
    old_count: int
    new_count: int

    @property
    def vanished(self) -> bool:
        """True when the callback executed in *old* but not in *new*."""
        return self.new_count == 0


@dataclass
class DagDiff:
    """Structural + statistical difference between two timing models."""

    added_vertices: List[str] = field(default_factory=list)
    removed_vertices: List[str] = field(default_factory=list)
    added_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    removed_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    drifted: List[StatDrift] = field(default_factory=list)
    no_data: List[NoDataDrift] = field(default_factory=list)

    @property
    def structurally_equal(self) -> bool:
        return not (
            self.added_vertices
            or self.removed_vertices
            or self.added_edges
            or self.removed_edges
        )

    @property
    def is_empty(self) -> bool:
        return self.structurally_equal and not self.drifted and not self.no_data

    def summary(self) -> str:
        if self.is_empty:
            return "models are identical (structure and statistics)"
        lines: List[str] = []
        for key in self.added_vertices:
            lines.append(f"+ vertex {key}")
        for key in self.removed_vertices:
            lines.append(f"- vertex {key}")
        for src, dst, topic in self.added_edges:
            lines.append(f"+ edge {src} --[{topic}]--> {dst}")
        for src, dst, topic in self.removed_edges:
            lines.append(f"- edge {src} --[{topic}]--> {dst}")
        for gap in self.no_data:
            lines.append(
                f"! {gap.key}: "
                + (
                    f"stopped executing (count {gap.old_count} -> 0)"
                    if gap.vanished
                    else f"started executing (count 0 -> {gap.new_count})"
                )
            )
        for drift in self.drifted:
            lines.append(
                f"~ {drift.key}: mWCET {drift.old_mwcet / 1e6:.2f} -> "
                f"{drift.new_mwcet / 1e6:.2f} ms ({drift.mwcet_ratio:.2f}x), "
                f"mACET {drift.old_macet / 1e6:.2f} -> "
                f"{drift.new_macet / 1e6:.2f} ms"
            )
        return "\n".join(lines)


def diff_dags(
    old: TimingDag, new: TimingDag, drift_threshold: float = 0.10
) -> DagDiff:
    """Compare two timing models.

    A shared callback is reported as *drifted* when its mWCET or mACET
    moved by more than ``drift_threshold`` (relative).  A shared
    callback with execution samples on exactly one side lands in
    ``no_data`` (there is no ratio to threshold, but a callback that
    stopped -- or started -- executing is a structural-grade change).
    """
    if drift_threshold < 0:
        raise ValueError("drift_threshold must be >= 0")
    old_keys = {v.key for v in old.vertices()}
    new_keys = {v.key for v in new.vertices()}
    old_edges = {(e.src, e.dst, e.topic) for e in old.edges()}
    new_edges = {(e.src, e.dst, e.topic) for e in new.edges()}

    diff = DagDiff(
        added_vertices=sorted(new_keys - old_keys),
        removed_vertices=sorted(old_keys - new_keys),
        added_edges=sorted(new_edges - old_edges),
        removed_edges=sorted(old_edges - new_edges),
    )

    def moved(a: float, b: float) -> bool:
        if a == 0 and b == 0:
            return False
        base = max(abs(a), 1e-12)
        return abs(b - a) / base > drift_threshold

    for key in sorted(old_keys & new_keys):
        old_stats = old.vertex(key).exec_stats
        new_stats = new.vertex(key).exec_stats
        if old_stats.count == 0 and new_stats.count == 0:
            continue  # never measured on either side: nothing to compare
        if old_stats.count == 0 or new_stats.count == 0:
            diff.no_data.append(
                NoDataDrift(
                    key=key,
                    old_count=old_stats.count,
                    new_count=new_stats.count,
                )
            )
            continue
        if moved(old_stats.mwcet, new_stats.mwcet) or moved(
            old_stats.macet, new_stats.macet
        ):
            diff.drifted.append(
                StatDrift(
                    key=key,
                    old_mwcet=old_stats.mwcet,
                    new_mwcet=new_stats.mwcet,
                    old_macet=old_stats.macet,
                    new_macet=new_stats.macet,
                )
            )
    return diff


@dataclass(frozen=True)
class PercentileGate:
    """One callback's exec-time percentile compared across two models."""

    key: str
    percentile: float
    old_ns: float
    new_ns: float
    max_ratio: float

    @property
    def ratio(self) -> float:
        if self.old_ns == 0:
            return float("inf") if self.new_ns else 1.0
        return self.new_ns / self.old_ns

    @property
    def exceeded(self) -> bool:
        return self.ratio > self.max_ratio

    def describe(self) -> str:
        status = "FAIL" if self.exceeded else "ok"
        return (
            f"[{status}] {self.key}: p{self.percentile:g} exec "
            f"{self.old_ns / 1e6:.3f} -> {self.new_ns / 1e6:.3f} ms "
            f"({self.ratio:.2f}x, limit {self.max_ratio:.2f}x)"
        )


def percentile_gates(
    old: TimingDag,
    new: TimingDag,
    percentile: float = 99.0,
    max_ratio: float = 1.2,
) -> List[PercentileGate]:
    """Tail exec-time gates over the shared, measured callbacks.

    For each callback with execution samples in *both* models, compares
    the ``percentile``-th percentile of the raw per-instance execution
    times and flags it (``exceeded``) when the new tail grew beyond
    ``max_ratio`` times the old one.  Callbacks measured on one side
    only are ``diff_dags``'s ``no_data`` findings, not gates.
    """
    if not 0 < percentile <= 100:
        raise ValueError("percentile must be in (0, 100]")
    if max_ratio <= 0:
        raise ValueError("max_ratio must be > 0")
    gates: List[PercentileGate] = []
    new_keys = {v.key for v in new.vertices()}
    for vertex in sorted(old.vertices(), key=lambda v: v.key):
        if vertex.key not in new_keys or not vertex.exec_times:
            continue
        new_times = new.vertex(vertex.key).exec_times
        if not new_times:
            continue
        gates.append(
            PercentileGate(
                key=vertex.key,
                percentile=percentile,
                old_ns=float(
                    np.percentile(np.asarray(vertex.exec_times, dtype=np.int64), percentile)
                ),
                new_ns=float(
                    np.percentile(np.asarray(new_times, dtype=np.int64), percentile)
                ),
                max_ratio=max_ratio,
            )
        )
    return gates

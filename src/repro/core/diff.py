"""Timing-model diffing.

Synthesized models are most useful when tracked over time: a new
software version, a different deployment, or a new operating mode can
add/remove callbacks, rewire topics, or shift execution-time profiles.
``diff_dags`` compares two models structurally and statistically --
the regression-checking workflow the paper's "debugging and
optimization" outlook (Sec. VII) implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .dag import TimingDag


@dataclass(frozen=True)
class StatDrift:
    """Execution-time drift of one callback between two models."""

    key: str
    old_mwcet: int
    new_mwcet: int
    old_macet: float
    new_macet: float

    @property
    def mwcet_ratio(self) -> float:
        if self.old_mwcet == 0:
            return float("inf") if self.new_mwcet else 1.0
        return self.new_mwcet / self.old_mwcet

    @property
    def macet_ratio(self) -> float:
        if self.old_macet == 0:
            return float("inf") if self.new_macet else 1.0
        return self.new_macet / self.old_macet


@dataclass
class DagDiff:
    """Structural + statistical difference between two timing models."""

    added_vertices: List[str] = field(default_factory=list)
    removed_vertices: List[str] = field(default_factory=list)
    added_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    removed_edges: List[Tuple[str, str, str]] = field(default_factory=list)
    drifted: List[StatDrift] = field(default_factory=list)

    @property
    def structurally_equal(self) -> bool:
        return not (
            self.added_vertices
            or self.removed_vertices
            or self.added_edges
            or self.removed_edges
        )

    @property
    def is_empty(self) -> bool:
        return self.structurally_equal and not self.drifted

    def summary(self) -> str:
        if self.is_empty:
            return "models are identical (structure and statistics)"
        lines: List[str] = []
        for key in self.added_vertices:
            lines.append(f"+ vertex {key}")
        for key in self.removed_vertices:
            lines.append(f"- vertex {key}")
        for src, dst, topic in self.added_edges:
            lines.append(f"+ edge {src} --[{topic}]--> {dst}")
        for src, dst, topic in self.removed_edges:
            lines.append(f"- edge {src} --[{topic}]--> {dst}")
        for drift in self.drifted:
            lines.append(
                f"~ {drift.key}: mWCET {drift.old_mwcet / 1e6:.2f} -> "
                f"{drift.new_mwcet / 1e6:.2f} ms ({drift.mwcet_ratio:.2f}x), "
                f"mACET {drift.old_macet / 1e6:.2f} -> "
                f"{drift.new_macet / 1e6:.2f} ms"
            )
        return "\n".join(lines)


def diff_dags(
    old: TimingDag, new: TimingDag, drift_threshold: float = 0.10
) -> DagDiff:
    """Compare two timing models.

    A shared callback is reported as *drifted* when its mWCET or mACET
    moved by more than ``drift_threshold`` (relative).
    """
    if drift_threshold < 0:
        raise ValueError("drift_threshold must be >= 0")
    old_keys = {v.key for v in old.vertices()}
    new_keys = {v.key for v in new.vertices()}
    old_edges = {(e.src, e.dst, e.topic) for e in old.edges()}
    new_edges = {(e.src, e.dst, e.topic) for e in new.edges()}

    diff = DagDiff(
        added_vertices=sorted(new_keys - old_keys),
        removed_vertices=sorted(old_keys - new_keys),
        added_edges=sorted(new_edges - old_edges),
        removed_edges=sorted(old_edges - new_edges),
    )

    def moved(a: float, b: float) -> bool:
        if a == 0 and b == 0:
            return False
        base = max(abs(a), 1e-12)
        return abs(b - a) / base > drift_threshold

    for key in sorted(old_keys & new_keys):
        old_stats = old.vertex(key).exec_stats
        new_stats = new.vertex(key).exec_stats
        if old_stats.count == 0 or new_stats.count == 0:
            continue
        if moved(old_stats.mwcet, new_stats.mwcet) or moved(
            old_stats.macet, new_stats.macet
        ):
            diff.drifted.append(
                StatDrift(
                    key=key,
                    old_mwcet=old_stats.mwcet,
                    new_mwcet=new_stats.mwcet,
                    old_macet=old_stats.macet,
                    new_macet=new_stats.macet,
                )
            )
    return diff

"""End-to-end convenience: traces -> timing model.

The highest-level entry points of the library:

* :func:`synthesize_from_trace` -- one trace, one DAG;
* :func:`synthesize_from_database` -- many runs with a merging strategy.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..tracing.session import Trace, TraceDatabase
from .dag import TimingDag
from .extraction import extract_all
from .index import TraceIndex
from .merge import dag_from_merged_traces, dag_from_runs
from .synthesis import synthesize_dag

#: Merging strategies for multi-run synthesis (Sec. V).
STRATEGY_MERGE_TRACES = "merge_traces"
STRATEGY_MERGE_DAGS = "merge_dags"


def synthesize_from_trace(
    trace: Trace,
    pids: Optional[Iterable[int]] = None,
    split_services: bool = True,
    model_sync: bool = True,
    trace_index: Optional[TraceIndex] = None,
) -> TimingDag:
    """Alg. 1 per node + DAG synthesis for one trace.

    ``pids`` restricts the model to the given nodes (e.g. only the AVP
    application when SYN runs concurrently); default: every node the
    ROS2-INIT tracer discovered.  ``split_services`` / ``model_sync``
    are ablation switches (see :mod:`repro.core.synthesis`).  Passing a
    pre-built ``trace_index`` skips the indexing pass.
    """
    return synthesize_dag(
        extract_all(trace, pids=pids, trace_index=trace_index),
        split_services=split_services,
        model_sync=model_sync,
    )


def synthesize_from_database(
    database: TraceDatabase,
    strategy: str = STRATEGY_MERGE_DAGS,
    pids: Optional[Iterable[int]] = None,
) -> TimingDag:
    """Synthesize across all runs stored in a trace database."""
    traces = database.traces()
    if strategy == STRATEGY_MERGE_DAGS:
        return dag_from_runs(traces, pids=pids)
    if strategy == STRATEGY_MERGE_TRACES:
        return dag_from_merged_traces(traces, pids=pids)
    raise ValueError(
        f"unknown strategy {strategy!r}; expected "
        f"{STRATEGY_MERGE_DAGS!r} or {STRATEGY_MERGE_TRACES!r}"
    )

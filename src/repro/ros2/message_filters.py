"""``message_filters``-style data synchronization (sensor fusion).

A synchronizer joins *m* subscriptions: each incoming message enters the
filter through ``message_filters:operator()`` -- probe P7, identifying
the subscriber CB as "used for data synchronization".  When all member
queues hold messages whose stamps match (exactly, or within ``slop_ns``
for approximate-time policy), the fusion callback runs *inline in the
subscriber CB that completed the set* -- i.e. the input that arrives
last carries the fusion work and publishes the output, matching the
paper's observation that a sync member whose input never arrives last
shows no published topic in its CBlist entry.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional, Sequence

from ..sim.threads import Compute
from ..sim.workload import WorkloadModel
from .dds import Msg
from .subscription import Subscription

#: Symbol name of the probed filter entry point (Table I, P7).
SYNC_OPERATOR_SYMBOL = "message_filters:operator()"


class TimeSynchronizer:
    """Joins messages across subscriptions by stamp.

    Parameters
    ----------
    subscriptions:
        The member subscriptions (their callbacks are replaced by the
        filter, as with ``message_filters::Subscriber``).
    callback:
        ``callback(api, msgs)`` invoked with the matched message list, in
        member order; may be a generator yielding compute requests.
    queue_size:
        Per-member stamp queue length.
    slop_ns:
        Maximum stamp spread for a match.  0 means exact-time policy.
    per_input_work:
        Optional workload model charged on every input (deserialization
        and filter bookkeeping); part of the subscriber CB's measured
        execution time.  Either a single model for all members or a dict
        keyed by subscription ``cb_id`` for per-member costs.
    """

    def __init__(
        self,
        subscriptions: Sequence[Subscription],
        callback: Callable,
        queue_size: int = 10,
        slop_ns: int = 0,
        per_input_work: Optional[WorkloadModel] = None,
    ):
        if len(subscriptions) < 2:
            raise ValueError("a synchronizer needs at least two inputs")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if slop_ns < 0:
            raise ValueError("slop_ns must be >= 0")
        owners = {sub.node for sub in subscriptions}
        if len(owners) != 1:
            raise ValueError("all synchronized subscriptions must share a node")
        self.node = subscriptions[0].node
        self.subscriptions = list(subscriptions)
        self.callback = callback
        self.queue_size = queue_size
        self.slop_ns = slop_ns
        self.per_input_work = per_input_work
        self._queues: Dict[Subscription, Deque[Msg]] = {
            sub: deque(maxlen=queue_size) for sub in self.subscriptions
        }
        self.matches = 0
        for sub in self.subscriptions:
            sub.sync_filter = self
        self.node.world.symbols.register("message_filters", "operator()")

    # ------------------------------------------------------------------

    def add(self, sub: Subscription, msg: Any, api) -> Any:
        """Filter entry point (``operator()``); runs inside the member
        subscriber CB.  Generator: may compute and run the fusion CB."""
        work = self.per_input_work
        if isinstance(work, dict):
            work = work.get(sub.cb_id)
        if work is not None:
            yield Compute(work.sample(self.node.world.rng))
        incoming = self._as_msg(msg)
        self._stamp(incoming)  # fail fast on unstamped input
        self._queues[sub].append(incoming)
        match = self._find_match()
        if match is not None:
            self.matches += 1
            self._pop(match)
            result = self.callback(api, [match[s] for s in self.subscriptions])
            if result is not None and hasattr(result, "__iter__"):
                yield from result
        return None

    # ------------------------------------------------------------------

    @staticmethod
    def _as_msg(payload: Any) -> Msg:
        if isinstance(payload, Msg):
            return payload
        return Msg(stamp=None, data=payload)

    @staticmethod
    def _stamp(msg: Msg) -> int:
        if msg.stamp is None:
            raise ValueError(
                "synchronized messages must carry a stamp "
                "(publish Msg(stamp=...) on synchronized topics)"
            )
        return msg.stamp

    def _find_match(self) -> Optional[Dict[Subscription, Msg]]:
        """Pick, per member, the message minimizing spread around the
        newest queue heads; succeed when spread <= slop."""
        if any(not q for q in self._queues.values()):
            return None
        # Pivot: the latest of the earliest stamps (every member must
        # have a message not earlier than pivot - slop).
        pivot = max(self._stamp(q[0]) for q in self._queues.values())
        chosen: Dict[Subscription, Msg] = {}
        for sub, queue in self._queues.items():
            best = min(queue, key=lambda m: abs(self._stamp(m) - pivot))
            chosen[sub] = best
        stamps = [self._stamp(m) for m in chosen.values()]
        if max(stamps) - min(stamps) <= self.slop_ns:
            return chosen
        return None

    def _pop(self, match: Dict[Subscription, Msg]) -> None:
        """Remove the matched messages and everything older."""
        for sub, msg in match.items():
            queue = self._queues[sub]
            stamp = self._stamp(msg)
            while queue and self._stamp(queue[0]) <= stamp:
                queue.popleft()


class ApproximateTimeSynchronizer(TimeSynchronizer):
    """Approximate-time policy: convenience subclass with required slop."""

    def __init__(
        self,
        subscriptions: Sequence[Subscription],
        callback: Callable,
        slop_ns: int,
        queue_size: int = 10,
        per_input_work: Optional[WorkloadModel] = None,
    ):
        if slop_ns <= 0:
            raise ValueError("approximate policy needs slop_ns > 0")
        super().__init__(
            subscriptions,
            callback,
            queue_size=queue_size,
            slop_ns=slop_ns,
            per_input_work=per_input_work,
        )

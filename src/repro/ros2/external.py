"""External (untraced) publishers: sensors and replay tools.

The AVP evaluation feeds the localization pipeline from LIDAR topics
published by the demo's replay machinery -- processes that are not part
of the traced application.  :class:`ExternalPublisher` reproduces that:
it writes stamped messages straight onto the DDS bus from kernel/driver
context (PID 0), at a fixed rate with optional phase and jitter, without
an executor thread and therefore without ever appearing as a callback in
the synthesized DAG.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .dds import Msg


class ExternalPublisher:
    """Publishes ``Msg(stamp=now)`` on ``topic`` every ``period_ns``.

    Parameters
    ----------
    world:
        The machine.
    topic:
        Destination topic.
    period_ns:
        Publication period (e.g. 100 ms for a 10 Hz LIDAR).
    phase_ns:
        Offset of the first sample.
    jitter_ns:
        Uniform +/- jitter applied to each period (sensor timing noise).
    make_msg:
        Optional factory ``make_msg(world) -> Msg`` for custom payloads.
    """

    def __init__(
        self,
        world,
        topic: str,
        period_ns: int,
        phase_ns: int = 0,
        jitter_ns: int = 0,
        make_msg: Optional[Callable[[Any], Msg]] = None,
    ):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        if jitter_ns < 0 or jitter_ns >= period_ns:
            raise ValueError("jitter must satisfy 0 <= jitter < period")
        self.world = world
        self.topic = topic
        self.period_ns = period_ns
        self.phase_ns = phase_ns
        self.jitter_ns = jitter_ns
        self.make_msg = make_msg
        self.writer = world.dds.create_writer(topic, kind="data")
        self.published = 0
        self._started = False

    def start(self) -> None:
        """Arm the first sample (idempotent)."""
        if self._started:
            return
        self._started = True
        self.world.kernel.schedule_after(self.phase_ns, self._emit)

    def _emit(self) -> None:
        msg = self.make_msg(self.world) if self.make_msg else Msg(stamp=self.world.now)
        self.world.dds.write(self.writer, msg)
        self.published += 1
        delay = self.period_ns
        if self.jitter_ns:
            delay += int(self.world.rng.integers(-self.jitter_ns, self.jitter_ns + 1))
        self.world.kernel.schedule_after(max(delay, 1), self._emit)

"""Simulated DDS layer (Eclipse CycloneDDS stand-in).

All ROS2 communication -- topics, service requests and service responses
-- flows through this bus, mirroring the layered architecture described
in Sec. II-A.  The single choke point is ``dds_write_impl``, the function
the paper probes as **P16**: every write is dispatched through the
middleware symbol table so an attached uprobe observes the writer's topic
name, the payload kind (data / service request / service response) and
the source timestamp.

Delivery is asynchronous: samples arrive at reader queues after the
configured one-way latency, then the reader's listener (the owning
node's executor) is notified.  Reader queues honour ``KEEP_LAST`` QoS
depth with oldest-drop semantics.

Hot-loop engineering (pinned byte-identical to the pre-overhaul copy in
:mod:`repro._legacy.ros2.dds` by ``tests/test_perf_equivalence.py``):

* one write schedules *one* kernel event regardless of reader count.
  The pre-overhaul bus scheduled one event -- and allocated one
  ``functools.partial`` closure -- per (writer, reader) pair.  All
  deliveries of a write happen at the same instant with consecutive
  sequence numbers and no other event can interleave between them
  (every kernel event in the production stack runs at priority 0, and
  anything scheduled during the fanout gets a larger sequence number
  either way), so collapsing them into one event that fans out over the
  reader list in order is observationally identical: sequence numbers
  are not traced;
* reader queues are ``deque(maxlen=depth)`` rings: the oldest-drop on
  overflow happens inside the C ring instead of an explicit
  length-check + ``popleft``.  The ``dropped`` counter is maintained by
  checking fullness *before* the append, which is equivalent because
  the length never exceeds ``maxlen``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional

from .qos import DEFAULT_QOS, QoSProfile

#: Symbol name of the probed write function (Table I, P16).
DDS_WRITE_SYMBOL = "cyclonedds:dds_write_impl"


@dataclass
class Msg:
    """A ROS2 message.

    ``stamp`` models the ``header.stamp`` field used by ``message_filters``
    to synchronize sensor data; ``data`` is an opaque payload.
    """

    stamp: Optional[int] = None
    data: Any = None


class Sample(NamedTuple):
    """A sample as it travels on the wire (one built per write: a
    ``NamedTuple`` keeps hot-loop construction cheap)."""

    payload: Any
    src_ts: int
    kind: str  # "data" | "request" | "response"
    writer_pid: int


class DdsReader:
    """A DataReader bound to one topic, with a bounded KEEP_LAST queue."""

    def __init__(
        self,
        topic: "DdsTopic",
        qos: QoSProfile,
        listener: Callable[["DdsReader"], None],
        kind: str = "data",
    ):
        self.topic = topic
        self.qos = qos
        self.listener = listener
        self.kind = kind
        # KEEP_LAST ring: the deque's maxlen drops the oldest sample on
        # overflow at C level (QoS depth is always >= 1).
        self.queue: Deque[Sample] = deque(maxlen=qos.depth)
        self._depth = qos.depth
        self.dropped = 0
        self.received = 0

    @property
    def has_data(self) -> bool:
        return bool(self.queue)

    def deliver(self, sample: Sample) -> None:
        self.received += 1
        queue = self.queue
        if len(queue) == self._depth:  # full: the append evicts the oldest
            self.dropped += 1
        queue.append(sample)
        self.listener(self)

    def take(self) -> Sample:
        if not self.queue:
            raise RuntimeError(f"take() on empty reader for {self.topic.name!r}")
        return self.queue.popleft()


def _deliver_fanout(readers: tuple, sample: Sample) -> None:
    """Deliver one write to every reader of a multi-reader topic.

    Module-level (not a closure) so the batched write path allocates
    nothing beyond the reader-snapshot tuple.
    """
    for reader in readers:
        reader.deliver(sample)


class DdsWriter:
    """A DataWriter bound to one topic."""

    def __init__(self, bus: "DdsBus", topic: "DdsTopic", kind: str = "data"):
        self.bus = bus
        self.topic = topic
        self.kind = kind
        self.written = 0


class DdsTopic:
    """A named topic connecting writers to readers."""

    def __init__(self, name: str):
        self.name = name
        self.readers: List[DdsReader] = []
        self.writers: List[DdsWriter] = []


class DdsBus:
    """The machine-wide DDS domain."""

    def __init__(self, world, latency_ns: int = 50_000):
        if latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.world = world
        self.latency_ns = latency_ns
        self.topics: Dict[str, DdsTopic] = {}
        self.total_writes = 0
        # The probeable symbol of this "shared object".  Cached: write()
        # inlines the probe trampoline around _dds_write_impl, checking
        # the (live, mutated-in-place) probe lists directly instead of
        # routing through SymbolTable.call's frame + name lookup.
        self._write_symbol = world.symbols.register("cyclonedds", "dds_write_impl")

    def topic(self, name: str) -> DdsTopic:
        top = self.topics.get(name)
        if top is None:
            top = DdsTopic(name)
            self.topics[name] = top
        return top

    def create_writer(self, topic_name: str, kind: str = "data") -> DdsWriter:
        topic = self.topic(topic_name)
        writer = DdsWriter(self, topic, kind=kind)
        topic.writers.append(writer)
        return writer

    def create_reader(
        self,
        topic_name: str,
        listener: Callable[[DdsReader], None],
        qos: QoSProfile = DEFAULT_QOS,
        kind: str = "data",
    ) -> DdsReader:
        topic = self.topic(topic_name)
        reader = DdsReader(topic, qos, listener, kind=kind)
        topic.readers.append(reader)
        return reader

    # ------------------------------------------------------------------

    def write(self, writer: DdsWriter, payload: Any) -> int:
        """Publish ``payload`` through the probed ``dds_write_impl``.

        Returns the source timestamp stamped on the sample.  The call is
        routed through the symbol table so an attached P16 uprobe can
        read the writer's topic, kind and the source timestamp from the
        function arguments -- the same struct traversal the paper's
        eBPF program performs.
        """
        world = self.world
        src_ts = world.kernel._now
        # Inlined SymbolTable.call (one write per traced message makes
        # the frame + name lookup measurable): same contract -- one
        # context serves entry and exit, probes fire around the body.
        symbol = self._write_symbol
        entry = symbol.entry_probes
        exits = symbol.exit_probes
        if entry or exits:
            args = (writer, payload, src_ts)
            ctx = world._probe_context()
            for probe in entry:
                probe(ctx, args)
            result = self._dds_write_impl(writer, payload, src_ts)
            for probe in exits:
                probe(ctx, args, result)
        else:
            self._dds_write_impl(writer, payload, src_ts)
        return src_ts

    def _dds_write_impl(self, writer: DdsWriter, payload: Any, src_ts: int) -> None:
        writer.written += 1
        self.total_writes += 1
        thread = self.world.scheduler._advancing
        sample = tuple.__new__(
            Sample,
            (payload, src_ts, writer.kind, thread.pid if thread is not None else 0),
        )
        readers = writer.topic.readers
        if not readers:
            return
        # One kernel event per write (see module docstring for why this
        # is observationally identical to one event per reader).  The
        # single-reader topic -- the overwhelmingly common case -- posts
        # the delivery directly; fanout snapshots the reader list so a
        # reader created between write and delivery is not included.
        if len(readers) == 1:
            self.world.kernel.post_after(self.latency_ns, readers[0].deliver, (sample,))
        else:
            self.world.kernel.post_after(
                self.latency_ns, _deliver_fanout, (tuple(readers), sample)
            )

    def _current_pid(self) -> int:
        thread = self.world.scheduler._advancing
        return thread.pid if thread is not None else 0

"""The single-threaded ROS2 executor (flattened dispatch loop).

One executor thread per node dispatches all its callbacks sequentially:
a callback runs from start to end before the executor looks at the ready
set again (the model assumed in Sec. II-A).  Dispatch routes through the
middleware symbols of Table I, so attached probes observe:

* ``execute_timer`` / ``execute_subscription`` / ``execute_service`` /
  ``execute_client`` entry and exit (P2/P4, P5/P8, P9/P11, P12/P15),
* ``rcl_timer_call`` (P3), ``rmw_take_int`` (P6), ``rmw_take_request``
  (P10), ``rmw_take_response`` (P13), ``take_type_erased_response``
  (P14) and ``message_filters:operator()`` (P7) inside them.

Ready-set polling order mirrors rclcpp's wait-set ordering: timers,
then subscriptions, then services, then clients.

Hot-loop engineering (this is where most simulated events originate;
the pre-overhaul shape is preserved in :mod:`repro._legacy.ros2` and
pinned byte-identical by ``tests/test_perf_equivalence.py``):

* the historical ``yield from`` trampoline chain (``activity`` ->
  ``SymbolTable.call_gen`` -> ``_execute_*`` -> ``_run_callback`` ->
  user callback) is flattened into :meth:`activity` itself.  Every
  resume of the executor thread used to traverse five generator frames;
  it now traverses two (the activity and the user callback's generator,
  driven inline with ``next``/``send``);
* the ``execute_*`` / sync-operator probe windows are inlined.  Entry
  probes fire before the dispatch body with the same args tuple, exit
  probes fire after it with a *fresh* context (the dispatch body may
  contain scheduling points, so exit happens at a later simulated time)
  -- exactly ``call_gen``'s contract.  When no probe is attached the
  fast path skips context construction entirely;
* the probeable :class:`~repro.tracing.symbols.Symbol` objects are
  cached at construction (``register`` is idempotent and returns the
  identity-stable instance whose probe lists attach/detach mutate in
  place, so cached symbols observe later attachments);
* one :class:`CallbackApi` and one ``MessageInfo`` are reused across
  dispatches -- both are overwritten, never retained, by a dispatch.

Inner plain (non-generator) middleware functions -- ``rcl_timer_call``,
the ``rmw_take_*`` family, ``take_type_erased_response`` -- get the
same inlined probe window: entry and exit fire at one simulated
instant sharing one context, exactly ``SymbolTable.call``'s contract
minus its frame and name lookup.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.threads import Block, Compute
from ..sim.workload import WorkloadModel
from .service import ResponseEnvelope
from .subscription import MessageInfo

#: Block carries no state, so every idle poll yields this one instance
#: instead of allocating a fresh request object.
_BLOCK = Block()


class CallbackApi:
    """Facilities available to user callbacks while they run.

    One instance per executor, passed as the first argument to every
    user callback (it carries no per-dispatch state).
    """

    def __init__(self, node):
        self.node = node
        self.world = node.world

    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.world.now

    def compute(self, duration_ns: int) -> Compute:
        """Request ``duration_ns`` of CPU time: ``yield api.compute(...)``."""
        return Compute(duration_ns)

    def work(self, model: WorkloadModel) -> Compute:
        """Request CPU time drawn from a workload model."""
        return Compute(model.sample(self.world.rng))

    def publish(self, publisher, msg: Any = None) -> int:
        """Publish on a topic from within the running callback."""
        return publisher.publish(msg)

    def call(self, client, data: Any = None) -> int:
        """Send an asynchronous service request from the running callback."""
        return client.call_async(data)


class SingleThreadedExecutor:
    """Dispatch loop bound to one node (and one OS thread)."""

    def __init__(self, node):
        self.node = node
        self.dispatches = 0
        symbols = node.world.symbols
        self._sym_timer = symbols.register("rclcpp", "execute_timer")
        self._sym_sub = symbols.register("rclcpp", "execute_subscription")
        self._sym_srv = symbols.register("rclcpp", "execute_service")
        self._sym_cli = symbols.register("rclcpp", "execute_client")
        self._sym_sync = symbols.register("message_filters", "operator()")
        # Inner plain middleware functions: their probe windows are
        # inlined in activity() too (entry and exit fire at one
        # simulated instant, sharing one context -- SymbolTable.call's
        # exact contract, minus its frame and name lookup per call).
        self._sym_rcl_call = symbols.register("rcl", "rcl_timer_call")
        self._sym_take_int = symbols.register("rmw_cyclonedds_cpp", "rmw_take_int")
        self._sym_take_req = symbols.register("rmw_cyclonedds_cpp", "rmw_take_request")
        self._sym_take_resp = symbols.register("rmw_cyclonedds_cpp", "rmw_take_response")
        self._sym_type_erased = symbols.register("rclcpp", "take_type_erased_response")
        self._api = CallbackApi(node)
        self._msg_info = MessageInfo()
        self._scheduler = node.world.scheduler

    # ------------------------------------------------------------------

    def notify(self) -> None:
        """Wake the executor thread: new data or a timer tick."""
        thread = self.node._thread
        if thread is not None:
            self._scheduler.wakeup(thread)

    # ------------------------------------------------------------------

    def activity(self):
        """The executor thread's activity generator.

        The four dispatch branches repeat the same three motifs inline
        -- probe window (entry probes / body / fresh-context exit
        probes), take-through-``symbols.call``, and a ``next``/``send``
        loop forwarding the user generator's scheduling requests --
        because hoisting any of them into a helper generator would
        reintroduce the trampoline frame this loop exists to remove.
        """
        node = self.node
        world = node.world
        symbols = world.symbols
        provider = symbols._context_provider
        api = self._api
        msg_info = self._msg_info
        # The probe *lists* (not the symbols) are hoisted: attach/detach
        # mutate them in place, so the locals observe later attachments
        # while the per-dispatch attribute loads disappear.
        timer_entry = self._sym_timer.entry_probes
        timer_exit = self._sym_timer.exit_probes
        sub_entry = self._sym_sub.entry_probes
        sub_exit = self._sym_sub.exit_probes
        srv_entry = self._sym_srv.entry_probes
        srv_exit = self._sym_srv.exit_probes
        cli_entry = self._sym_cli.entry_probes
        cli_exit = self._sym_cli.exit_probes
        sync_entry = self._sym_sync.entry_probes
        sync_exit = self._sym_sync.exit_probes
        rcl_entry = self._sym_rcl_call.entry_probes
        rcl_exit = self._sym_rcl_call.exit_probes
        take_int_entry = self._sym_take_int.entry_probes
        take_int_exit = self._sym_take_int.exit_probes
        take_req_entry = self._sym_take_req.entry_probes
        take_req_exit = self._sym_take_req.exit_probes
        take_resp_entry = self._sym_take_resp.entry_probes
        take_resp_exit = self._sym_take_resp.exit_probes
        type_erased_entry = self._sym_type_erased.entry_probes
        type_erased_exit = self._sym_type_erased.exit_probes

        # Live aliases: the node appends later-created entities to these
        # same list objects, so the hoisted names observe them.
        timers = node.timers
        subscriptions = node.subscriptions
        services = node.services
        clients = node.clients

        # Node init: announce name->PID (ROS2-INIT tracer's P1).
        symbols.call("rmw_cyclonedds_cpp:rmw_create_node", node._rmw_create_node, node)
        for timer in node.timers:
            timer._start()

        while True:
            # Inlined _pick_ready (rclcpp wait-set order: timers, subs,
            # services, clients).  Runs once per dispatch *and* once per
            # empty poll before blocking; the method + result tuple were
            # measurable.  for/else falls through to the next entity
            # class only when the previous one had nothing ready.
            for entity in timers:
                if entity.ready:
                    kind = 0
                    break
            else:
                for entity in subscriptions:
                    if entity.reader.queue:
                        kind = 1
                        break
                else:
                    for entity in services:
                        if entity.reader.queue:
                            kind = 2
                            break
                    else:
                        for entity in clients:
                            if entity.reader.queue:
                                kind = 3
                                break
                        else:
                            yield _BLOCK
                            continue
            self.dispatches += 1

            if kind == 0:  # timer
                args = (entity,)
                entry = timer_entry
                exits = timer_exit
                if entry:
                    ctx = provider()
                    for probe in entry:
                        probe(ctx, args)
                ientry = rcl_entry
                iexits = rcl_exit
                if ientry or iexits:
                    ictx = provider()
                    for probe in ientry:
                        probe(ictx, args)
                    iret = entity._rcl_call(entity)
                    for probe in iexits:
                        probe(ictx, args, iret)
                else:
                    entity._rcl_call(entity)
                callback = entity.callback
                if callback is not None:
                    result = callback(api, None)
                    if result is not None and hasattr(result, "__next__"):
                        try:
                            request = next(result)
                            while True:
                                request = result.send((yield request))
                        except StopIteration:
                            pass
                if exits:
                    ctx = provider()
                    for probe in exits:
                        probe(ctx, args, None)

            elif kind == 1:  # subscription
                args = (entity,)
                entry = sub_entry
                exits = sub_exit
                if entry:
                    ctx = provider()
                    for probe in entry:
                        probe(ctx, args)
                ientry = take_int_entry
                iexits = take_int_exit
                if ientry or iexits:
                    iargs = (entity, msg_info)
                    ictx = provider()
                    for probe in ientry:
                        probe(ictx, iargs)
                    payload = entity._rmw_take(entity, msg_info)
                    for probe in iexits:
                        probe(ictx, iargs, payload)
                else:
                    payload = entity._rmw_take(entity, msg_info)
                sync = entity.sync_filter
                if sync is not None:
                    sentry = sync_entry
                    sexits = sync_exit
                    if sentry or sexits:
                        sargs = (entity, payload, api)
                        if sentry:
                            ctx = provider()
                            for probe in sentry:
                                probe(ctx, sargs)
                    ret = None
                    gen = sync.add(entity, payload, api)
                    try:
                        request = next(gen)
                        while True:
                            request = gen.send((yield request))
                    except StopIteration as stop:
                        ret = stop.value
                    if sexits:
                        ctx = provider()
                        for probe in sexits:
                            probe(ctx, sargs, ret)
                else:
                    callback = entity.callback
                    if callback is not None:
                        result = callback(api, payload)
                        if result is not None and hasattr(result, "__next__"):
                            try:
                                request = next(result)
                                while True:
                                    request = result.send((yield request))
                            except StopIteration:
                                pass
                if exits:
                    ctx = provider()
                    for probe in exits:
                        probe(ctx, args, None)

            elif kind == 2:  # service
                args = (entity,)
                entry = srv_entry
                exits = srv_exit
                if entry:
                    ctx = provider()
                    for probe in entry:
                        probe(ctx, args)
                ientry = take_req_entry
                iexits = take_req_exit
                if ientry or iexits:
                    iargs = (entity, msg_info)
                    ictx = provider()
                    for probe in ientry:
                        probe(ictx, iargs)
                    req = entity._rmw_take_request(entity, msg_info)
                    for probe in iexits:
                        probe(ictx, iargs, req)
                else:
                    req = entity._rmw_take_request(entity, msg_info)
                handler = entity.handler
                response_data = None
                if handler is not None:
                    result = handler(api, req.data)
                    if result is not None and hasattr(result, "__next__"):
                        try:
                            request = next(result)
                            while True:
                                request = result.send((yield request))
                        except StopIteration as stop:
                            response_data = stop.value
                    else:
                        response_data = result
                envelope = ResponseEnvelope(
                    client_id=req.client_id, seq=req.seq, data=response_data
                )
                world.dds.write(entity.response_writer, envelope)
                if exits:
                    ctx = provider()
                    for probe in exits:
                        probe(ctx, args, None)

            else:  # client
                args = (entity,)
                entry = cli_entry
                exits = cli_exit
                if entry:
                    ctx = provider()
                    for probe in entry:
                        probe(ctx, args)
                ientry = take_resp_entry
                iexits = take_resp_exit
                if ientry or iexits:
                    iargs = (entity, msg_info)
                    ictx = provider()
                    for probe in ientry:
                        probe(ictx, iargs)
                    envelope = entity._rmw_take_response(entity, msg_info)
                    for probe in iexits:
                        probe(ictx, iargs, envelope)
                else:
                    envelope = entity._rmw_take_response(entity, msg_info)
                ientry = type_erased_entry
                iexits = type_erased_exit
                if ientry or iexits:
                    iargs = (envelope,)
                    ictx = provider()
                    for probe in ientry:
                        probe(ictx, iargs)
                    dispatched = entity._take_type_erased(envelope)
                    for probe in iexits:
                        probe(ictx, iargs, dispatched)
                else:
                    dispatched = entity._take_type_erased(envelope)
                if dispatched:
                    callback = entity.callback
                    if callback is not None:
                        result = callback(api, envelope.data)
                        if result is not None and hasattr(result, "__next__"):
                            try:
                                request = next(result)
                                while True:
                                    request = result.send((yield request))
                            except StopIteration:
                                pass
                if exits:
                    ctx = provider()
                    for probe in exits:
                        probe(ctx, args, None)

    def _pick_ready(self) -> Optional[tuple]:
        """Reference copy of the ready-set scan inlined in activity()
        (kept callable for tests and introspection)."""
        node = self.node
        for timer in node.timers:
            if timer.ready:
                return ("timer", timer)
        for sub in node.subscriptions:
            if sub.reader.queue:
                return ("subscription", sub)
        for service in node.services:
            if service.reader.queue:
                return ("service", service)
        for client in node.clients:
            if client.reader.queue:
                return ("client", client)
        return None

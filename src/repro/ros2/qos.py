"""Quality-of-service profiles for subscriptions and publishers.

Only the QoS dimensions that influence the timing model are simulated:
history depth (queue length before samples are dropped) and reliability
(whether drops are counted as violations).  These match the defaults the
AVP demo uses (``KEEP_LAST`` with small depths on sensor topics).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QoSProfile:
    """Subscription queue behaviour.

    Attributes
    ----------
    depth:
        ``KEEP_LAST`` history depth; the oldest sample is dropped when a
        new one arrives on a full queue.
    reliable:
        Purely informational flag carried into reader statistics.
    """

    depth: int = 10
    reliable: bool = True

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("QoS depth must be >= 1")


#: Default profile used when none is given (rclcpp's ``KeepLast(10)``).
DEFAULT_QOS = QoSProfile()

#: Typical sensor-data profile (shallow queue, best effort).
SENSOR_QOS = QoSProfile(depth=5, reliable=False)

"""ROS2 timers.

A timer marks itself ready at a fixed period on the simulation kernel and
notifies its node's executor.  Dispatch happens through
``rclcpp:execute_timer`` (probes P2/P4), which calls ``rcl:rcl_timer_call``
(probe P3 -- the event carrying the timer callback's ID).
"""

from __future__ import annotations

from typing import Callable


class Timer:
    """A periodic timer callback owned by a node.

    Parameters
    ----------
    node:
        Owning node.
    period_ns:
        Invocation period.
    callback:
        ``callback(api, msg=None)``; may be a generator yielding
        :class:`~repro.sim.threads.Compute` requests.
    cb_id:
        Stable callback identifier (the "address" reported by P3).
    phase_ns:
        Offset of the first tick relative to node start.
    """

    def __init__(
        self,
        node,
        period_ns: int,
        callback: Callable,
        cb_id: str,
        phase_ns: int = 0,
    ):
        if period_ns <= 0:
            raise ValueError("timer period must be positive")
        if phase_ns < 0:
            raise ValueError("timer phase must be >= 0")
        self.node = node
        self.period_ns = period_ns
        self.callback = callback
        self.cb_id = cb_id
        self.phase_ns = phase_ns
        self.ready = False
        self.ticks = 0
        self.dispatched = 0
        self._started = False

    def _start(self) -> None:
        """Arm the first tick (called when the node's executor boots)."""
        if self._started:
            return
        self._started = True
        # Cache the arming call for the per-tick re-arm: the token API
        # (``post_after``) when the kernel has one, else plain
        # ``schedule_after`` so the timer stays usable on every kernel,
        # including the frozen legacy one.
        kernel = self.node.world.kernel
        post_after = getattr(kernel, "post_after", None)
        if post_after is not None:
            self._arm = post_after
        else:
            self._arm = lambda delay, fn: kernel.schedule_after(delay, fn)
        self._arm(self.phase_ns, self._tick)

    def _tick(self) -> None:
        self.ticks += 1
        self.ready = True
        self.node.executor.notify()
        self._arm(self.period_ns, self._tick)

    def _rcl_call(self, timer: "Timer") -> str:
        """``rcl_timer_call``: consume readiness, return the CB id (P3)."""
        self.ready = False
        self.dispatched += 1
        return self.cb_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Timer({self.cb_id}, period={self.period_ns})"

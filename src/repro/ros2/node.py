"""ROS2 nodes.

A node groups callbacks (timers, subscriptions, services, clients) and a
single-threaded executor that dispatches them one at a time from start to
end -- the executor model assumed by the paper (Sec. II-A) and by the
analyses it feeds, e.g. Casini et al. [1].

Each node runs on exactly one OS thread whose PID identifies it in every
trace event; the mapping from node name to PID is announced by
``rmw_create_node`` (probe P1) when the executor thread boots.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..sim.threads import SchedPolicy, ThreadSchedParams
from .client import Client
from .dds import DdsWriter, Msg
from .executor import SingleThreadedExecutor
from .message_filters import TimeSynchronizer
from .qos import DEFAULT_QOS, QoSProfile
from .service import Service
from .subscription import Subscription
from .timer import Timer

#: Middleware functions that live in the simulated shared objects and are
#: therefore probeable.  One entry per distinct symbol of Table I
#: (entry/exit variants attach to the same symbol).
ROS2_SYMBOLS = (
    ("rmw_cyclonedds_cpp", "rmw_create_node"),
    ("rmw_cyclonedds_cpp", "rmw_take_int"),
    ("rmw_cyclonedds_cpp", "rmw_take_request"),
    ("rmw_cyclonedds_cpp", "rmw_take_response"),
    ("rclcpp", "execute_timer"),
    ("rclcpp", "execute_subscription"),
    ("rclcpp", "execute_service"),
    ("rclcpp", "execute_client"),
    ("rclcpp", "take_type_erased_response"),
    ("rcl", "rcl_timer_call"),
    ("message_filters", "operator()"),
)


def register_ros2_symbols(world) -> None:
    """Load the middleware "shared objects" into the world's symbol table."""
    for lib, func in ROS2_SYMBOLS:
        world.symbols.register(lib, func)


class Publisher:
    """Thin rclcpp-style publisher over a DDS writer."""

    def __init__(self, node: "Node", topic: str):
        self.node = node
        self.topic = topic
        self.writer: DdsWriter = node.world.dds.create_writer(topic, kind="data")

    def publish(self, msg: Any = None) -> int:
        """Publish ``msg`` (default: a stamped empty message); returns the
        DDS source timestamp."""
        if msg is None:
            msg = Msg(stamp=self.node.world.now)
        return self.node.world.dds.write(self.writer, msg)


class Node:
    """A ROS2 node: callbacks plus one single-threaded executor.

    Parameters
    ----------
    world:
        The machine this node runs on.
    name:
        Node name (unique per world).
    priority / policy / affinity:
        Scheduling configuration of the executor thread.
    start_delay_ns:
        Extra boot delay relative to ``World.launch``.
    sched_params:
        Optional :class:`~repro.sim.threads.ThreadSchedParams` for the
        executor thread, consumed by the pluggable scheduling policies
        (deadline / expected job length / CFS weight).
    """

    def __init__(
        self,
        world,
        name: str,
        priority: int = 0,
        policy: SchedPolicy = SchedPolicy.OTHER,
        affinity: Optional[Sequence[int]] = None,
        start_delay_ns: int = 0,
        sched_params: Optional[ThreadSchedParams] = None,
    ):
        if any(n.name == name for n in world.nodes):
            raise ValueError(f"duplicate node name {name!r}")
        self.world = world
        self.name = name
        self.priority = priority
        self.policy = policy
        self.affinity = list(affinity) if affinity is not None else None
        self.start_delay_ns = start_delay_ns
        self.sched_params = sched_params
        self.timers: List[Timer] = []
        self.subscriptions: List[Subscription] = []
        self.services: List[Service] = []
        self.clients: List[Client] = []
        self.publishers: List[Publisher] = []
        self.synchronizers: List[TimeSynchronizer] = []
        # Legacy/reference worlds override ``executor_cls`` to pin the
        # frozen pre-overhaul dispatch loop (see repro._legacy.ros2).
        executor_cls = getattr(world, "executor_cls", SingleThreadedExecutor)
        self.executor = executor_cls(self)
        self.pid: Optional[int] = None
        self._thread = None
        self._cb_counter = 0
        register_ros2_symbols(world)
        world.nodes.append(self)

    # -- factory methods ----------------------------------------------------

    def create_publisher(self, topic: str) -> Publisher:
        publisher = Publisher(self, topic)
        self.publishers.append(publisher)
        return publisher

    def create_timer(
        self,
        period_ns: int,
        callback: Callable,
        label: Optional[str] = None,
        phase_ns: int = 0,
    ) -> Timer:
        timer = Timer(
            self, period_ns, callback, cb_id=self._make_cb_id(label, "timer"), phase_ns=phase_ns
        )
        self.timers.append(timer)
        return timer

    def create_subscription(
        self,
        topic: str,
        callback: Optional[Callable] = None,
        qos: QoSProfile = DEFAULT_QOS,
        label: Optional[str] = None,
    ) -> Subscription:
        subscription = Subscription(
            self, topic, callback, cb_id=self._make_cb_id(label, "sub"), qos=qos
        )
        self.subscriptions.append(subscription)
        return subscription

    def create_service(
        self,
        name: str,
        handler: Callable,
        qos: QoSProfile = DEFAULT_QOS,
        label: Optional[str] = None,
    ) -> Service:
        service = Service(
            self, name, handler, cb_id=self._make_cb_id(label, "srv"), qos=qos
        )
        self.services.append(service)
        return service

    def create_client(
        self,
        service_name: str,
        callback: Optional[Callable] = None,
        qos: QoSProfile = DEFAULT_QOS,
        label: Optional[str] = None,
    ) -> Client:
        client = Client(
            self, service_name, callback, cb_id=self._make_cb_id(label, "cli"), qos=qos
        )
        self.clients.append(client)
        return client

    def create_synchronizer(
        self,
        subscriptions: Sequence[Subscription],
        callback: Callable,
        slop_ns: int = 0,
        queue_size: int = 10,
        per_input_work=None,
    ) -> TimeSynchronizer:
        synchronizer = TimeSynchronizer(
            subscriptions,
            callback,
            queue_size=queue_size,
            slop_ns=slop_ns,
            per_input_work=per_input_work,
        )
        self.synchronizers.append(synchronizer)
        return synchronizer

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, start: int) -> None:
        """Create the executor thread (called by ``World.launch``)."""
        # Forwarded only when set: the frozen legacy scheduler (injected
        # by the perf harness) predates the sched_params parameter.
        extra = {} if self.sched_params is None else {"sched_params": self.sched_params}
        self._thread = self.world.scheduler.spawn(
            self.executor.activity(),
            priority=self.priority,
            policy=self.policy,
            affinity=self.affinity,
            name=self.name,
            start=start + self.start_delay_ns,
            **extra,
        )
        self.pid = self._thread.pid

    def _on_data(self, reader) -> None:
        """DDS listener: new sample for one of this node's readers."""
        self.executor.notify()

    def _rmw_create_node(self, node: "Node") -> None:
        """``rmw_create_node`` body; probed as P1."""
        return None

    def _make_cb_id(self, label: Optional[str], kind: str) -> str:
        if label is not None:
            return label
        self._cb_counter += 1
        return f"{self.name}/{kind}{self._cb_counter}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name!r}, pid={self.pid})"

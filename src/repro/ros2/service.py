"""ROS2 services (server side).

Services are implemented over topics, as in real ROS2 (Sec. II-A): a
request is published on ``<service>Request`` and the result on
``<service>Reply``.  The server-side callback is dispatched through
``rclcpp:execute_service`` (probes P9/P11) and reads the request with
``rmw_take_request`` (probe P10, carrying the request's source
timestamp -- the key FindCaller uses to identify which client CB sent
the request).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from .qos import DEFAULT_QOS, QoSProfile
from .subscription import MessageInfo


def request_topic(service_name: str) -> str:
    """Topic carrying requests for ``service_name`` (e.g. ``/sv3Request``)."""
    return f"{service_name}Request"


def reply_topic(service_name: str) -> str:
    """Topic carrying responses for ``service_name`` (e.g. ``/sv3Reply``)."""
    return f"{service_name}Reply"


@dataclass(frozen=True)
class RequestEnvelope:
    """A service request on the wire: payload plus the DDS-level identity
    (client GID + sequence number) used to route the response."""

    client_id: str
    seq: int
    data: Any = None


@dataclass(frozen=True)
class ResponseEnvelope:
    """A service response on the wire, echoing the request identity."""

    client_id: str
    seq: int
    data: Any = None


class Service:
    """A service server and its callback."""

    def __init__(
        self,
        node,
        name: str,
        handler: Callable,
        cb_id: str,
        qos: QoSProfile = DEFAULT_QOS,
    ):
        self.node = node
        self.name = name
        self.handler = handler
        self.cb_id = cb_id
        self.request_topic = request_topic(name)
        self.reply_topic = reply_topic(name)
        self.reader = node.world.dds.create_reader(
            self.request_topic, listener=node._on_data, qos=qos, kind="request"
        )
        self.response_writer = node.world.dds.create_writer(
            self.reply_topic, kind="response"
        )
        self.served = 0

    @property
    def ready(self) -> bool:
        return self.reader.has_data

    def _rmw_take_request(
        self, service: "Service", msg_info: MessageInfo
    ) -> RequestEnvelope:
        """``rmw_take_request``: pop one request, fill ``msg_info.src_ts``."""
        sample = self.reader.take()
        msg_info.src_ts = sample.src_ts
        self.served += 1
        envelope = sample.payload
        if not isinstance(envelope, RequestEnvelope):
            raise TypeError(f"malformed request on {self.request_topic!r}: {envelope!r}")
        return envelope

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Service({self.cb_id}, name={self.name!r})"

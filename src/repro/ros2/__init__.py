"""ROS2 middleware substrate.

Nodes, single-threaded executors, topics over a simulated DDS bus,
timers, subscriptions, services/clients and ``message_filters``-style
data synchronization -- the full application substrate the paper's
tracers observe (it uses ROS2 Foxy + Eclipse CycloneDDS).
"""

from .client import Client
from .dds import DdsBus, DdsReader, DdsWriter, Msg, Sample
from .executor import CallbackApi, SingleThreadedExecutor
from .external import ExternalPublisher
from .message_filters import ApproximateTimeSynchronizer, TimeSynchronizer
from .node import Node, Publisher, register_ros2_symbols
from .qos import DEFAULT_QOS, QoSProfile, SENSOR_QOS
from .service import (
    RequestEnvelope,
    ResponseEnvelope,
    Service,
    reply_topic,
    request_topic,
)
from .subscription import MessageInfo, Subscription
from .timer import Timer

__all__ = [
    "Client",
    "DdsBus",
    "DdsReader",
    "DdsWriter",
    "Msg",
    "Sample",
    "CallbackApi",
    "SingleThreadedExecutor",
    "ExternalPublisher",
    "ApproximateTimeSynchronizer",
    "TimeSynchronizer",
    "Node",
    "Publisher",
    "register_ros2_symbols",
    "DEFAULT_QOS",
    "QoSProfile",
    "SENSOR_QOS",
    "RequestEnvelope",
    "ResponseEnvelope",
    "Service",
    "reply_topic",
    "request_topic",
    "MessageInfo",
    "Subscription",
    "Timer",
]

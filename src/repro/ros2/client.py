"""ROS2 service clients.

Every client of a service subscribes to the shared ``<service>Reply``
topic, so each response wakes *all* client nodes: probes P12 (client CB
start), P13 (``rmw_take_response``) and P15 (client CB end) fire
everywhere, but ``take_type_erased_response`` (probe P14, a uretprobe
reading the return value) returns 1 only in the node whose pending
request matches -- the mechanism Sec. III-A describes for telling the
real dispatch apart from the broadcast.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Set

from .qos import DEFAULT_QOS, QoSProfile
from .service import RequestEnvelope, ResponseEnvelope, reply_topic, request_topic
from .subscription import MessageInfo


class Client:
    """A service client: request writer + response reader + client CB."""

    def __init__(
        self,
        node,
        service_name: str,
        callback: Optional[Callable],
        cb_id: str,
        qos: QoSProfile = DEFAULT_QOS,
    ):
        self.node = node
        self.service_name = service_name
        self.callback = callback
        self.cb_id = cb_id
        self.request_writer = node.world.dds.create_writer(
            request_topic(service_name), kind="request"
        )
        self.reader = node.world.dds.create_reader(
            reply_topic(service_name), listener=node._on_data, qos=qos, kind="response"
        )
        self._seq = 0
        self._pending: Set[int] = set()
        self.calls = 0
        self.dispatched = 0

    @property
    def ready(self) -> bool:
        return self.reader.has_data

    def call_async(self, data: Any = None) -> int:
        """Send a request (non-blocking); returns the sequence number.

        Must be called from callback context (the request's source
        timestamp and writer PID identify the *calling CB* to FindCaller).
        """
        self._seq += 1
        self._pending.add(self._seq)
        self.calls += 1
        envelope = RequestEnvelope(client_id=self.cb_id, seq=self._seq, data=data)
        self.node.world.dds.write(self.request_writer, envelope)
        return self._seq

    def _rmw_take_response(
        self, client: "Client", msg_info: MessageInfo
    ) -> ResponseEnvelope:
        """``rmw_take_response``: pop one response, fill ``msg_info.src_ts``."""
        sample = self.reader.take()
        msg_info.src_ts = sample.src_ts
        envelope = sample.payload
        if not isinstance(envelope, ResponseEnvelope):
            raise TypeError(f"malformed response for {self.service_name!r}: {envelope!r}")
        return envelope

    def _take_type_erased(self, envelope: ResponseEnvelope) -> int:
        """``take_type_erased_response``: 1 iff this client dispatches."""
        if envelope.client_id == self.cb_id and envelope.seq in self._pending:
            self._pending.discard(envelope.seq)
            self.dispatched += 1
            return 1
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Client({self.cb_id}, service={self.service_name!r})"

"""ROS2 subscriptions.

Dispatch goes through ``rclcpp:execute_subscription`` (probes P5/P8); the
data and its source timestamp are read by ``rmw_take_int`` (probe P6).

``rmw_take_int`` writes the source timestamp *by reference* into a
:class:`MessageInfo`, reproducing the situation that forced the paper's
entry+exit pointer-stash technique: the value is unknown at function
entry and only available at exit.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .dds import DdsReader, Sample
from .qos import DEFAULT_QOS, QoSProfile


class MessageInfo:
    """Out-parameter of the ``rmw_take_*`` family (``rmw_message_info_t``).

    ``src_ts`` is ``None`` until the take fills it -- an entry probe
    cannot read the value, only stash the reference.
    """

    __slots__ = ("src_ts",)

    def __init__(self) -> None:
        self.src_ts: Optional[int] = None


class Subscription:
    """A topic subscription and its callback."""

    def __init__(
        self,
        node,
        topic: str,
        callback: Optional[Callable],
        cb_id: str,
        qos: QoSProfile = DEFAULT_QOS,
    ):
        self.node = node
        self.topic = topic
        self.callback = callback
        self.cb_id = cb_id
        self.reader: DdsReader = node.world.dds.create_reader(
            topic, listener=node._on_data, qos=qos, kind="data"
        )
        #: Set by a synchronizer when this subscription feeds sensor fusion.
        self.sync_filter = None
        self.taken = 0

    @property
    def ready(self) -> bool:
        return self.reader.has_data

    def _rmw_take(self, sub: "Subscription", msg_info: MessageInfo) -> Any:
        """``rmw_take_int``: pop one sample, fill ``msg_info.src_ts``."""
        sample: Sample = self.reader.take()
        msg_info.src_ts = sample.src_ts
        self.taken += 1
        return sample.payload

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Subscription({self.cb_id}, topic={self.topic!r})"

"""The ingest worker: a long-running synthesis service over one store.

:class:`SynthesisService` ties the layers together: an
:class:`~repro.service.ingest.IngestSpool` commits arriving segments
(socket ``put`` requests and/or a watched drop directory) into the
store, a :class:`~repro.service.live.LiveSynthesizer` folds each commit
into the incrementally maintained model, and queries are answered from
:class:`~repro.service.state.ServiceState` snapshots taken under the
service lock.  The socket listener is thread-per-connection; ingest and
snapshot-taking serialize on one lock, while snapshot *consumption*
(model rendering, latency scans over immutable committed files) runs
outside it.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from ..store.database import TraceStore
from .ingest import DropDirWatcher, IngestError, IngestSpool
from .live import LiveSynthesizer, ServiceCounters
from .protocol import (
    ProtocolError,
    bind_server_socket,
    recv_message,
    send_message,
)
from .state import MODEL_FORMATS, ServiceState

#: Default drop-dir / store re-scan cadence.
DEFAULT_POLL_INTERVAL_S = 0.5


class SynthesisService:
    """Streaming ingest + incremental synthesis over one trace store."""

    def __init__(
        self,
        directory: str,
        retain_window: Optional[int] = None,
        drop_dir: Optional[str] = None,
        poll_interval: float = DEFAULT_POLL_INTERVAL_S,
        split_services: bool = True,
        model_sync: bool = True,
        log: Optional[Callable[[str], None]] = None,
    ):
        if poll_interval <= 0:
            raise ValueError("poll_interval must be positive")
        self.directory = os.fspath(directory)
        self.poll_interval = poll_interval
        self._log = log if log is not None else (lambda message: None)
        self.store = TraceStore.create(self.directory)
        self.counters = ServiceCounters()
        self.live = LiveSynthesizer(
            self.store,
            retain_window=retain_window,
            split_services=split_services,
            model_sync=model_sync,
            counters=self.counters,
        )
        self.spool = IngestSpool(self.store)
        self.watcher = (
            DropDirWatcher(self.spool, drop_dir, on_reject=self._on_reject)
            if drop_dir is not None
            else None
        )
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._started = time.monotonic()
        self.endpoint: Optional[str] = None
        # Catch up on whatever the store already holds before serving.
        with self._lock:
            caught_up = self.live.refresh()
        if caught_up:
            self._log(f"caught up on {len(caught_up)} stored run(s)")

    def _on_reject(self, run_id: str, error: IngestError) -> None:
        self.counters.segments_rejected += 1
        self._log(f"rejected dropped segment {run_id!r}: {error}")

    # -- ingest ------------------------------------------------------------

    def ingest_bytes(self, run_id: str, data: bytes) -> Dict[str, Any]:
        """Commit + fold one pushed segment (the socket ``put`` path)."""
        with self._lock:
            try:
                result = self.spool.commit_bytes(run_id, data)
            except IngestError:
                self.counters.segments_rejected += 1
                raise
            self.live.ingest(run_id)
        self._log(
            f"ingested {run_id!r}: {result.events} events, "
            f"{result.bytes_written} bytes"
        )
        return {
            "run_id": result.run_id,
            "events": result.events,
            "bytes": result.bytes_written,
        }

    def poll_once(self) -> int:
        """One worker-loop turn: drain the drop dir, then pick up runs
        other processes wrote straight into the store directory.
        Returns how many runs were folded in."""
        with self._lock:
            committed = self.watcher.poll() if self.watcher is not None else []
            for result in committed:
                self.live.ingest(result.run_id)
                self._log(
                    f"ingested dropped {result.run_id!r}: "
                    f"{result.events} events"
                )
            external = self.live.refresh()
        for run_id in external:
            self._log(f"ingested external {run_id!r}")
        return len(committed) + len(external)

    # -- queries -----------------------------------------------------------

    def state(self) -> ServiceState:
        """A consistent snapshot (model built under the lock, consumed
        outside it)."""
        with self._lock:
            return ServiceState(
                directory=self.directory,
                run_ids=self.live.run_ids,
                dag=self.live.model(),
                counters=self.counters.as_dict(),
                retain_window=self.live.retain_window,
                endpoint=self.endpoint,
                uptime_s=time.monotonic() - self._started,
            )

    def handle_request(
        self, payload: Dict[str, Any], body: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        """Dispatch one protocol request; returns ``(response, body)``."""
        command = payload.get("cmd")
        with self._lock:
            self.counters.queries_served += 1
        if command == "ping":
            return {"ok": True, "pong": True}, b""
        if command == "put":
            run_id = payload.get("run_id")
            if not run_id:
                raise IngestError("put needs a run_id")
            return {"ok": True, **self.ingest_bytes(run_id, body)}, b""
        if command == "shutdown":
            self.request_shutdown()
            return {"ok": True, "stopping": True}, b""
        if command == "status":
            return {"ok": True, **self.state().status()}, b""
        if command == "model":
            fmt = payload.get("format", "dot")
            if fmt not in MODEL_FORMATS:
                raise ValueError(
                    f"unknown model format {fmt!r}; expected one of "
                    f"{', '.join(MODEL_FORMATS)}"
                )
            text = self.state().model_text(fmt)
            return {"ok": True, "format": fmt}, text.encode()
        if command == "chains":
            state = self.state()
            chains = state.chains(
                sources=payload.get("sources") or None,
                sinks=payload.get("sinks") or None,
            )
            return (
                {"ok": True, "chains": [list(chain.keys) for chain in chains]},
                state.chains_text(
                    sources=payload.get("sources") or None,
                    sinks=payload.get("sinks") or None,
                ).encode(),
            )
        if command == "latency":
            topics = payload.get("topics")
            if not topics:
                raise ValueError("latency needs topics")
            return {"ok": True, **self.state().latency_summary(topics)}, b""
        if command == "store-info":
            return {"ok": True, **self.state().store_info()}, b""
        raise ValueError(f"unknown command {command!r}")

    # -- lifecycle ---------------------------------------------------------

    def request_shutdown(self) -> None:
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _serve_client(self, conn: socket.socket, peer: str) -> None:
        rfile = conn.makefile("rb")
        wfile = conn.makefile("wb")
        try:
            while not self._stop.is_set():
                message = recv_message(rfile)
                if message is None:
                    break
                payload, body = message
                try:
                    response, response_body = self.handle_request(payload, body)
                except (IngestError, ValueError) as error:
                    response, response_body = (
                        {"ok": False, "error": str(error)},
                        b"",
                    )
                send_message(wfile, response, response_body)
                if payload.get("cmd") == "shutdown":
                    break
        except (ProtocolError, OSError) as error:
            self._log(f"client {peer}: {error}")
        finally:
            for handle in (rfile, wfile, conn):
                try:
                    handle.close()
                except OSError:  # pragma: no cover - teardown best effort
                    pass

    def _poll_loop(self) -> None:
        while not self._stop.wait(self.poll_interval):
            try:
                self.poll_once()
            except Exception as error:  # keep the worker alive
                self._log(f"poll error: {error}")

    def serve_forever(
        self,
        address: str,
        ready: Optional[Callable[[str], None]] = None,
        max_seconds: Optional[float] = None,
    ) -> ServiceCounters:
        """Bind ``address`` and serve until ``shutdown`` (or
        ``max_seconds`` elapses); returns the final counters.

        ``ready`` is called with the actual bound address once the
        socket is listening -- how callers learn an ephemeral port.
        """
        sock, bound = bind_server_socket(address)
        self.endpoint = bound
        self._log(f"listening on {bound}")
        if ready is not None:
            ready(bound)
        poller = threading.Thread(
            target=self._poll_loop, name="repro-serve-poll", daemon=True
        )
        poller.start()
        deadline = (
            time.monotonic() + max_seconds if max_seconds is not None else None
        )
        sock.settimeout(0.2)
        clients = []
        try:
            while not self._stop.is_set():
                if deadline is not None and time.monotonic() >= deadline:
                    self._log(f"max runtime {max_seconds}s reached; stopping")
                    self._stop.set()
                    break
                try:
                    conn, peer = sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                thread = threading.Thread(
                    target=self._serve_client,
                    args=(conn, str(peer)),
                    name="repro-serve-client",
                    daemon=True,
                )
                thread.start()
                clients.append(thread)
        finally:
            self._stop.set()
            sock.close()
            kind_is_unix = not (
                ":" in bound and bound.rsplit(":", 1)[1].isdigit()
            )
            if kind_is_unix:
                try:
                    os.remove(bound)
                except OSError:  # pragma: no cover - already gone
                    pass
            poller.join(timeout=5.0)
            for thread in clients:
                thread.join(timeout=1.0)
        self._log("shutdown complete")
        return self.counters

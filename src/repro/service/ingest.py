"""Segment ingestion: validate, commit atomically, watch a drop dir.

:class:`IngestSpool` is the network/queue-facing twin of
:class:`~repro.store.writer.SegmentSpool`: where the spool *produces*
``.trace.bin`` bytes from live simulation events, the ingest spool
*accepts* already-encoded segment bytes from elsewhere (a socket put,
a file dropped by another process) and commits them into a
:class:`~repro.store.database.TraceStore`.  Every commit fully
structurally validates the bytes first (header magic/version/counts,
section directory bounds, stream integrity -- by constructing a
:class:`~repro.store.reader.SegmentReader` over them) and lands via a
same-directory tmp file + ``os.replace``, so concurrent store readers
never observe a partial or malformed segment.

:class:`DropDirWatcher` polls a drop directory for ``*.trace.bin``
files.  A file that fails validation is *not* rejected immediately --
it may simply still be mid-write by a non-atomic producer -- it is
rejected (renamed aside with a ``.rejected`` suffix) only once a later
poll sees it unchanged and still invalid.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..store.database import TraceStore
from ..store.format import SEGMENT_SUFFIX, StoreFormatError, unpack_header
from ..store.reader import SegmentReader
from ..store.writer import segment_path


class IngestError(ValueError):
    """A segment that must not be committed (bad bytes, bad run id,
    duplicate run)."""


_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


def validate_run_id(run_id: str) -> str:
    """A run id usable as a file stem: no path separators, no leading
    dot, nothing that could escape the store directory."""
    if not isinstance(run_id, str) or not _RUN_ID_RE.match(run_id):
        raise IngestError(
            f"invalid run id {run_id!r}: need a plain file-stem "
            "([A-Za-z0-9._-], not starting with a dot)"
        )
    return run_id


@dataclass(frozen=True)
class IngestResult:
    """One committed segment."""

    run_id: str
    path: str
    events: int
    bytes_written: int


class IngestSpool:
    """Validating, atomically-committing segment acceptor for a store."""

    def __init__(self, store: TraceStore):
        self.store = store
        self.committed = 0

    def validate_bytes(self, run_id: str, data: bytes) -> Tuple[int, int]:
        """Full structural validation; returns ``(format_version,
        events)``.  Raises :class:`IngestError` for anything that must
        not land in the store."""
        validate_run_id(run_id)
        if run_id in self.store:
            raise IngestError(
                f"run {run_id!r} already stored as "
                f"{os.path.basename(self.store.path_of(run_id))!r}"
            )
        try:
            header = unpack_header(data, source=f"<ingest:{run_id}>")
            # Constructing a reader bounds-checks the section directory
            # and stream layout beyond the fixed header; touching the
            # ROS ts range additionally inflates the walk hot path's
            # first section, so a corrupt stream fails here, not later
            # inside synthesis.
            SegmentReader(data, path=f"<ingest:{run_id}>").ros_ts_range()
        except StoreFormatError as error:
            raise IngestError(str(error)) from None
        version, _flags, _n_strings, _n_pids, n_ros, n_sched, n_wakeup = header[:7]
        return version, n_ros + n_sched + n_wakeup

    def commit_bytes(self, run_id: str, data: bytes) -> IngestResult:
        """Validate and atomically land one segment; refreshes the
        store handle so the new run is immediately listable."""
        _version, events = self.validate_bytes(run_id, data)
        dst = segment_path(self.store.directory, run_id)
        staging = f"{dst}.{os.getpid()}.ingest.tmp"
        try:
            with open(staging, "wb") as handle:
                handle.write(data)
            os.replace(staging, dst)
        finally:
            if os.path.exists(staging):
                try:
                    os.remove(staging)
                except OSError:  # pragma: no cover - cleanup best effort
                    pass
        self.store.refresh()
        self.committed += 1
        return IngestResult(
            run_id=run_id, path=dst, events=events, bytes_written=len(data)
        )

    def commit_file(
        self, path: str, run_id: Optional[str] = None, remove: bool = False
    ) -> IngestResult:
        """Commit a segment file from outside the store (run id defaults
        to the file stem); ``remove=True`` deletes the source after a
        successful commit."""
        if run_id is None:
            name = os.path.basename(path)
            if not name.endswith(SEGMENT_SUFFIX):
                raise IngestError(
                    f"{path!r} does not end in {SEGMENT_SUFFIX!r}; "
                    "pass an explicit run id"
                )
            run_id = name[: -len(SEGMENT_SUFFIX)]
        with open(path, "rb") as handle:
            data = handle.read()
        result = self.commit_bytes(run_id, data)
        if remove:
            os.remove(path)
        return result


class DropDirWatcher:
    """Poll a drop directory and commit arriving segments.

    Committed files are removed from the drop dir.  Invalid files are
    held one poll cycle (a non-atomic writer may still be appending)
    and rejected -- renamed to ``<name>.rejected`` -- only when a later
    poll finds them byte-stable and still invalid.
    """

    def __init__(
        self,
        spool: IngestSpool,
        drop_dir: str,
        on_reject: Optional[Callable[[str, IngestError], None]] = None,
    ):
        self.spool = spool
        self.drop_dir = os.fspath(drop_dir)
        self.on_reject = on_reject
        self.rejected = 0
        #: name -> (size, mtime_ns) of the last *failed* validation, so
        #: a second identical failure distinguishes "corrupt" from
        #: "still being written".
        self._failed: Dict[str, Tuple[int, int]] = {}
        os.makedirs(self.drop_dir, exist_ok=True)

    def poll(self) -> List[IngestResult]:
        results: List[IngestResult] = []
        for name in sorted(os.listdir(self.drop_dir)):
            if not name.endswith(SEGMENT_SUFFIX):
                continue
            path = os.path.join(self.drop_dir, name)
            run_id = name[: -len(SEGMENT_SUFFIX)]
            try:
                stat = os.stat(path)
            except OSError:
                continue  # raced with its producer; next poll sees it
            signature = (stat.st_size, stat.st_mtime_ns)
            try:
                result = self.spool.commit_file(path, run_id=run_id)
            except IngestError as error:
                if self._failed.get(name) == signature:
                    del self._failed[name]
                    os.replace(path, f"{path}.rejected")
                    self.rejected += 1
                    if self.on_reject is not None:
                        self.on_reject(run_id, error)
                else:
                    self._failed[name] = signature
                continue
            except OSError:
                continue  # vanished mid-read; next poll settles it
            self._failed.pop(name, None)
            try:
                os.remove(path)
            except OSError:  # pragma: no cover - already gone
                pass
            results.append(result)
        return results

"""The api side of the service's api/worker split.

A :class:`ServiceState` is taken under the service lock at query time
and then answers entirely without it: the run-id list is frozen, the
timing DAG is the maintainer's already-built (cached) model, and any
store reads go against committed segment files, which are immutable --
the ingest worker only ever *adds* runs via atomic rename.  So a slow
``latency`` scan or a large ``model`` export never blocks ingestion,
and a segment that commits mid-query does not shear the answer.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from ..analysis.chains import Chain, enumerate_chains, format_chains
from ..analysis.latency import chain_latencies
from ..analysis.store import latency_index_from_store
from ..core.dag import TimingDag
from ..core.export import dag_to_json, format_edges, format_exec_table, to_dot
from ..store.database import TraceStore

#: ``model`` query output formats.
MODEL_FORMATS = ("dot", "json", "edges", "exec")


class ServiceState:
    """One consistent snapshot of the live service."""

    def __init__(
        self,
        directory: str,
        run_ids: Sequence[str],
        dag: TimingDag,
        counters: Dict[str, Any],
        retain_window: Optional[int],
        endpoint: Optional[str] = None,
        uptime_s: float = 0.0,
    ):
        self.directory = directory
        self.run_ids = list(run_ids)
        self._dag = dag
        self.counters = dict(counters)
        self.retain_window = retain_window
        self.endpoint = endpoint
        self.uptime_s = uptime_s

    # -- model -------------------------------------------------------------

    def model(self) -> TimingDag:
        return self._dag

    def model_text(self, fmt: str = "dot") -> str:
        """The model rendered as ``dot`` / ``json`` / ``edges`` /
        ``exec`` -- the same renderers ``repro synthesize`` writes, so a
        served model diffs byte-for-byte against batch artifacts."""
        if fmt == "dot":
            return to_dot(self._dag)
        if fmt == "json":
            return dag_to_json(self._dag, indent=2)
        if fmt == "edges":
            return format_edges(self._dag)
        if fmt == "exec":
            return format_exec_table(self._dag)
        raise ValueError(
            f"unknown model format {fmt!r}; expected one of "
            f"{', '.join(MODEL_FORMATS)}"
        )

    # -- analyses ----------------------------------------------------------

    def chains(
        self,
        sources: Optional[Sequence[str]] = None,
        sinks: Optional[Sequence[str]] = None,
    ) -> List[Chain]:
        return enumerate_chains(self._dag, sources=sources, sinks=sinks)

    def chains_text(
        self,
        sources: Optional[Sequence[str]] = None,
        sinks: Optional[Sequence[str]] = None,
    ) -> str:
        return format_chains(self._dag, self.chains(sources, sinks))

    def latency_summary(self, topics: Sequence[str]) -> Dict[str, Any]:
        """Chain-latency stats for a topic chain over exactly the
        retained runs (ns, like the analysis CLI)."""
        store = TraceStore(self.directory, allow_empty=True)
        index = latency_index_from_store(store, run_ids=self.run_ids)
        values = [
            latency.latency_ns
            for latency in chain_latencies(index, list(topics))
        ]
        summary: Dict[str, Any] = {
            "topics": list(topics),
            "count": len(values),
        }
        if values:
            summary.update(
                min_ns=min(values),
                max_ns=max(values),
                mean_ns=sum(values) / len(values),
            )
        return summary

    # -- inspection ---------------------------------------------------------

    def store_info(self) -> Dict[str, Any]:
        """Per-run metadata of the retained runs (the served sibling of
        ``repro store-info --json``)."""
        store = TraceStore(self.directory, allow_empty=True)
        runs = []
        for run_id in self.run_ids:
            info = store.run_info(run_id)
            runs.append(
                {
                    "run_id": info.run_id,
                    "format_version": info.format_version,
                    "size_bytes": info.size_bytes,
                    "events": info.events,
                    "ros_events": info.ros_events,
                    "sched_events": info.sched_events,
                    "wakeup_events": info.wakeup_events,
                    "pids": info.pids,
                }
            )
        return {
            "directory": self.directory,
            "runs": runs,
            "total_events": sum(run["events"] for run in runs),
            "total_bytes": sum(run["size_bytes"] for run in runs),
        }

    def status(self) -> Dict[str, Any]:
        return {
            "directory": self.directory,
            "endpoint": self.endpoint,
            "retained_runs": self.run_ids,
            "retain_window": self.retain_window,
            "uptime_s": round(self.uptime_s, 3),
            "counters": dict(self.counters),
        }

    def status_text(self) -> str:
        return json.dumps(self.status(), indent=2, sort_keys=True)

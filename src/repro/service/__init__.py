"""``repro.service``: the live synthesis service.

The batch pipeline (record a store, synthesize it from scratch) turned
into a long-running ingest + query system, in four layers:

* **ingestion** (:mod:`~repro.service.ingest`): :class:`IngestSpool`
  validates and atomically commits ``.trace.bin`` segments arriving
  over the socket or a watched drop directory;
* **incremental maintenance** (:mod:`~repro.service.live`):
  :class:`LiveStoreIndex` / :class:`LiveSynthesizer` fold each commit
  into the maintained walk columns, cross-node tables and sched buckets
  -- byte-identical to a from-scratch ``synthesize_from_store`` at
  every commit point, with windowed eviction for unbounded streams;
* **api/worker split** (:mod:`~repro.service.server` /
  :mod:`~repro.service.state`): :class:`SynthesisService` runs the
  ingest worker and hands out :class:`ServiceState` snapshots that
  answer ``model`` / ``chains`` / ``latency`` / ``store-info`` queries
  off the lock;
* **observability** (:class:`~repro.service.live.ServiceCounters`):
  ingest/eviction/extend-vs-rebuild counters behind the ``status``
  query and ``repro perf``'s ``service.ingest`` bench section.

Quickstart::

    repro serve traces/ --socket 127.0.0.1:7317 --drop-dir incoming/
    repro record avp --runs 16 --push 127.0.0.1:7317
    repro query 127.0.0.1:7317 model --format dot --out live.dot
"""

from .client import ServiceClient, ServiceError
from .ingest import DropDirWatcher, IngestError, IngestResult, IngestSpool
from .live import LiveStoreIndex, LiveSynthesizer, ServiceCounters
from .protocol import ProtocolError, parse_address
from .server import DEFAULT_POLL_INTERVAL_S, SynthesisService
from .state import MODEL_FORMATS, ServiceState

__all__ = [
    "ServiceClient",
    "ServiceError",
    "DropDirWatcher",
    "IngestError",
    "IngestResult",
    "IngestSpool",
    "LiveStoreIndex",
    "LiveSynthesizer",
    "ServiceCounters",
    "ProtocolError",
    "parse_address",
    "DEFAULT_POLL_INTERVAL_S",
    "SynthesisService",
    "MODEL_FORMATS",
    "ServiceState",
]

"""Wire protocol of the synthesis service: JSON lines + binary bodies.

One request or response is a single line of compact JSON followed by an
optional binary body whose length the JSON announces in its ``size``
field::

    {"cmd": "put", "run_id": "run007", "size": 53124}\\n<53124 bytes>
    {"ok": true, "events": 1587}\\n

Responses carry ``ok`` plus either result fields or ``error``.  The
framing is symmetric, so both sides use the same two functions over a
buffered socket file.

Addresses are ``host:port`` TCP endpoints (``127.0.0.1:0`` binds an
ephemeral port -- ``repro serve`` prints the bound address) or, on
platforms with ``AF_UNIX``, any other string as a filesystem socket
path (an explicit ``unix:`` prefix is stripped).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Optional, Tuple

#: Upper bound on one JSON header line; a peer that sends more is
#: framing garbage, not a large request.
MAX_HEADER_BYTES = 1 << 20
#: Upper bound on one binary body (a pushed segment).
MAX_BODY_BYTES = 1 << 31


class ProtocolError(ValueError):
    """Malformed framing from a peer."""


Address = Tuple[str, Any]  # ("tcp", (host, port)) | ("unix", path)


def parse_address(text: str) -> Address:
    if text.startswith("unix:"):
        return "unix", text[len("unix:"):]
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit():
        return "tcp", (host, int(port))
    return "unix", text


def format_address(address: Address) -> str:
    kind, where = address
    if kind == "tcp":
        return f"{where[0]}:{where[1]}"
    return where


def bind_server_socket(text: str) -> Tuple[socket.socket, str]:
    """Bind + listen on ``text``; returns the socket and the *actual*
    bound address string (meaningful for ``host:0`` ephemeral ports)."""
    kind, where = parse_address(text)
    if kind == "tcp":
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(where)
        sock.listen(16)
        host, port = sock.getsockname()[:2]
        return sock, f"{host}:{port}"
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
        raise ProtocolError(f"unix sockets unsupported here: {text!r}")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.bind(where)
    sock.listen(16)
    return sock, where


def connect(text: str, timeout: Optional[float] = None) -> socket.socket:
    kind, where = parse_address(text)
    if kind == "tcp":
        return socket.create_connection(where, timeout=timeout)
    if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
        raise ProtocolError(f"unix sockets unsupported here: {text!r}")
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout is not None:
        sock.settimeout(timeout)
    sock.connect(where)
    return sock


def send_message(wfile, payload: Dict[str, Any], body: bytes = b"") -> None:
    """One framed message: the payload line (with ``size`` set when a
    body follows) then the body bytes."""
    framed = dict(payload)
    if body:
        framed["size"] = len(body)
    else:
        framed.pop("size", None)
    wfile.write(json.dumps(framed, separators=(",", ":")).encode() + b"\n")
    if body:
        wfile.write(body)
    wfile.flush()


def recv_message(rfile) -> Optional[Tuple[Dict[str, Any], bytes]]:
    """The next framed message, or ``None`` on clean EOF."""
    line = rfile.readline(MAX_HEADER_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_HEADER_BYTES:
        raise ProtocolError("header line exceeds limit")
    try:
        payload = json.loads(line)
    except ValueError as error:
        raise ProtocolError(f"bad header line: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("header is not a JSON object")
    size = payload.get("size", 0)
    if not isinstance(size, int) or size < 0 or size > MAX_BODY_BYTES:
        raise ProtocolError(f"bad body size {size!r}")
    body = b""
    if size:
        chunks = []
        remaining = size
        while remaining:
            chunk = rfile.read(remaining)
            if not chunk:
                raise ProtocolError(
                    f"truncated body: got {size - remaining} of {size} bytes"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        body = b"".join(chunks)
    return payload, body

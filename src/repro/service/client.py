"""Client side of the synthesis service protocol.

One :class:`ServiceClient` call is one connection, one framed request,
one framed response -- stateless on the wire, so pushers (``repro
record --push``, ``repro ingest``) and queriers (``repro query``) never
hold the server's accept loop hostage and a crashed client leaves
nothing to clean up.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..store.format import SEGMENT_SUFFIX
from .protocol import connect, recv_message, send_message

DEFAULT_TIMEOUT_S = 30.0


class ServiceError(RuntimeError):
    """The service answered ``ok: false``."""


class ServiceClient:
    """Talk to a ``repro serve`` endpoint at ``address``."""

    def __init__(self, address: str, timeout: float = DEFAULT_TIMEOUT_S):
        self.address = address
        self.timeout = timeout

    def _request(
        self, payload: Dict[str, Any], body: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        sock = connect(self.address, timeout=self.timeout)
        try:
            rfile = sock.makefile("rb")
            wfile = sock.makefile("wb")
            send_message(wfile, payload, body)
            message = recv_message(rfile)
        finally:
            sock.close()
        if message is None:
            raise ServiceError(
                f"service at {self.address!r} closed the connection"
            )
        response, response_body = message
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "service reported an unknown error")
            )
        return response, response_body

    # -- ingest ------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self._request({"cmd": "ping"})[0].get("pong"))

    def push_segment(self, run_id: str, data: bytes) -> Dict[str, Any]:
        return self._request({"cmd": "put", "run_id": run_id}, data)[0]

    def push_file(self, path: str, run_id: Optional[str] = None) -> Dict[str, Any]:
        if run_id is None:
            name = os.path.basename(path)
            if not name.endswith(SEGMENT_SUFFIX):
                raise ServiceError(
                    f"{path!r} does not end in {SEGMENT_SUFFIX!r}; "
                    "pass an explicit run id"
                )
            run_id = name[: -len(SEGMENT_SUFFIX)]
        with open(path, "rb") as handle:
            data = handle.read()
        return self.push_segment(run_id, data)

    # -- queries -----------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        response, _ = self._request({"cmd": "status"})
        response.pop("ok", None)
        return response

    def model(self, fmt: str = "dot") -> str:
        _, body = self._request({"cmd": "model", "format": fmt})
        return body.decode()

    def chains(
        self,
        sources: Optional[Sequence[str]] = None,
        sinks: Optional[Sequence[str]] = None,
    ) -> List[List[str]]:
        payload: Dict[str, Any] = {"cmd": "chains"}
        if sources:
            payload["sources"] = list(sources)
        if sinks:
            payload["sinks"] = list(sinks)
        return self._request(payload)[0]["chains"]

    def chains_text(
        self,
        sources: Optional[Sequence[str]] = None,
        sinks: Optional[Sequence[str]] = None,
    ) -> str:
        payload: Dict[str, Any] = {"cmd": "chains"}
        if sources:
            payload["sources"] = list(sources)
        if sinks:
            payload["sinks"] = list(sinks)
        return self._request(payload)[1].decode()

    def latency(self, topics: Sequence[str]) -> Dict[str, Any]:
        response, _ = self._request({"cmd": "latency", "topics": list(topics)})
        response.pop("ok", None)
        return response

    def store_info(self) -> Dict[str, Any]:
        response, _ = self._request({"cmd": "store-info"})
        response.pop("ok", None)
        return response

    def shutdown(self) -> None:
        self._request({"cmd": "shutdown"})

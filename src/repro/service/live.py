"""Incremental model maintenance: the append-aware store index.

The batch pipeline rebuilds :class:`~repro.store.index.StoreTraceIndex`
from every stored segment on each synthesis.  The live service instead
maintains one :class:`LiveStoreIndex` across segment arrivals:
``extend(reader)`` consumes exactly one more segment's columns with the
association state machine's mutable state (`current_cb`, pending P13
rows, the running stream position, bound walk-column appenders)
persisted between calls -- so consuming segments one at a time *is* the
batch build's per-reader loop, just spread over time, and the resulting
walk columns, cross-node tables and sched buckets are byte-identical to
a from-scratch build at every commit point.

``extend`` is only valid while arrivals keep the batch fast-path
invariant (run ids ascending, ROS time-ranges disjoint in that order --
:func:`~repro.store.index._runs_are_time_ordered` evaluated
incrementally).  An out-of-order or time-overlapping arrival, and any
retention-window eviction, falls back to a full rebuild over the
retained readers (:meth:`LiveStoreIndex.from_readers` -- the exact
batch constructor path, including the k-way heap merge for overlapping
runs).  :class:`LiveSynthesizer` makes that policy decision per
arriving segment and tracks the observability counters.

Sched buckets are always extendable regardless of ROS ordering: the
per-reader buckets fold left with a stable 2-way timestamp merge, which
yields the same sequences as the batch n-way ``heapq.merge`` (ties
prefer the earlier reader in both), with a cheap append fast path when
the arriving bucket starts at-or-after the existing tail.
"""

from __future__ import annotations

from array import array
from bisect import insort
from dataclasses import dataclass
from heapq import merge as _heap_merge
from operator import itemgetter
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core import npcompat
from ..core.dag import TimingDag
from ..core.exec_time import _CLOSES, _OPENS, SchedIndex
from ..core.extraction import EventIndex, _extract_pid_walk
from ..core.synthesis import synthesize_dag
from ..store.database import TraceStore
from ..store.index import StoreTraceIndex, _runs_are_time_ordered


class LiveStoreIndex(StoreTraceIndex):
    """A :class:`StoreTraceIndex` that grows one segment at a time.

    Starts empty; :meth:`extend` appends one reader's stream as the next
    run of the merge order.  All consumption goes through the parent's
    ``_consume_*`` loops (scalar and vectorized), so the maintained
    structures match the batch build bit for bit -- the property the
    service equivalence suite pins for every registry scenario.
    """

    __slots__ = (
        "_current_cb",
        "_pending_p13",
        "_appenders",
        "_next_index",
        "_last_ros_end",
        "_ordered",
        "_sched_buckets",
    )

    def __init__(self):  # pylint: disable=super-init-not-called
        # Deliberately does not call the batch constructor: a live index
        # starts with zero readers and accretes them via extend().
        self.pid_map: Dict[int, Optional[str]] = {}
        self._by_pid: Dict[int, Tuple[List[int], bytearray, List[Any]]] = {}
        self.writes: Dict[Any, List[Tuple[int, Any]]] = {}
        self.writer_cb: Dict[int, Optional[str]] = {}
        self.take_responses: Dict[Any, List[Tuple[int, Any]]] = {}
        self.dispatch_after: Dict[int, bool] = {}
        # Association state threaded through the batch build's
        # per-reader loop, persisted here between extends.
        self._current_cb: Dict[int, Optional[str]] = {}
        self._pending_p13: Dict[int, List[int]] = {}
        self._appenders: Dict[int, tuple] = {}
        self._next_index = 0
        #: ROS ts upper bound of the last extended segment with any ROS
        #: events -- the rolling bound _runs_are_time_ordered tracks.
        self._last_ros_end: Optional[int] = None
        #: False once built over time-overlapping runs (heap-merged
        #: positions are not resumable, so every later arrival rebuilds).
        self._ordered = True
        self._sched_buckets: Dict[int, Tuple[array, bytearray]] = {}
        self.sched = SchedIndex.from_buckets(self._sched_buckets)

    @classmethod
    def from_readers(cls, readers: Sequence[Any]) -> "LiveStoreIndex":
        """Full (re)build over ``readers`` in run-id order -- the batch
        constructor path, landing in a resumable live index when the
        runs keep the time-ordered invariant."""
        index = cls()
        for reader in readers:
            index.pid_map.update(reader.pid_map)
        if _runs_are_time_ordered(readers):
            for reader in readers:
                index._extend_ros(reader)
        else:
            index._ordered = False
            streams = [
                reader.walk_rows(order) for order, reader in enumerate(readers)
            ]
            rows = streams[0] if len(streams) == 1 else _heap_merge(*streams)
            index._next_index = index._consume_rows(
                rows, None, 0, index._current_cb, index._pending_p13,
                index._appenders,
            )
        for reader in readers:
            index._extend_sched_buckets(reader)
        index.sched = SchedIndex.from_buckets(index._sched_buckets)
        return index

    # -- appending ---------------------------------------------------------

    def can_append(self, reader: Any) -> bool:
        """True when ``reader``'s stream may extend this index in place
        (the caller has already established run-id order): the index
        was never heap-merged, and the reader's ROS span starts at or
        after the last consumed span's end -- the incremental form of
        :func:`_runs_are_time_ordered` (a shared boundary timestamp
        stays appendable, merge ties keep run order)."""
        if not self._ordered:
            return False
        span = reader.ros_ts_range()
        if span is None or self._last_ros_end is None:
            return True
        return span[0] >= self._last_ros_end

    def extend(self, reader: Any) -> None:
        """Consume one more segment as the next run of the merge order.

        Caller contract: ``can_append(reader)`` holds and the reader's
        run id sorts after every previously extended run.
        """
        self.pid_map.update(reader.pid_map)
        self._extend_ros(reader)
        self._extend_sched_buckets(reader)
        # from_buckets copies only the dict (the column arrays are
        # shared), so regenerating the SchedIndex view per commit is
        # O(pids), not O(rows).
        self.sched = SchedIndex.from_buckets(self._sched_buckets)

    def _extend_ros(self, reader: Any) -> None:
        """One reader through the batch fast-path dispatch, resuming
        the persisted association state."""
        fastpath = getattr(reader, "walk_fastpath", None)
        if fastpath is None:
            self._next_index = self._consume_rows(
                reader.walk_rows(0), None, self._next_index,
                self._current_cb, self._pending_p13, self._appenders,
            )
        else:
            kind, columns = fastpath()
            if kind >= 2:
                self._next_index = self._consume_columns_v2(
                    columns, None, self._next_index, self._current_cb,
                    self._pending_p13, self._appenders,
                )
            else:
                self._next_index = self._consume_columns(
                    columns, None, self._next_index, self._current_cb,
                    self._pending_p13, self._appenders,
                )
        span = reader.ros_ts_range()
        if span is not None:
            self._last_ros_end = span[1]

    def _extend_sched_buckets(self, reader: Any) -> None:
        """Fold one reader's per-PID sched buckets into the maintained
        ones: plain append when the arriving bucket starts at-or-after
        the existing tail (ties append after, matching merge tie order),
        else a stable 2-way timestamp merge -- the left fold of which
        equals the batch n-way merge."""
        local = self._reader_sched_buckets(reader)
        buckets = self._sched_buckets
        for pid, bucket in local.items():
            existing = buckets.get(pid)
            if existing is None:
                buckets[pid] = bucket
            elif not existing[0] or bucket[0][0] >= existing[0][-1]:
                existing[0].extend(bucket[0])
                existing[1].extend(bucket[1])
            else:
                times = array("q")
                flags = bytearray()
                for ts, flag in _heap_merge(
                    zip(*existing), zip(*bucket), key=itemgetter(0)
                ):
                    times.append(ts)
                    flags.append(flag)
                buckets[pid] = (times, flags)

    @staticmethod
    def _reader_sched_buckets(
        reader: Any,
    ) -> Dict[int, Tuple[array, bytearray]]:
        """One reader's per-PID buckets -- the per-reader half of the
        batch ``_build_sched``, unfiltered."""
        columns = (
            getattr(reader, "sched_pid_columns", None)
            if npcompat.np is not None
            else None
        )
        if columns is not None:
            return StoreTraceIndex._sched_buckets_np(columns(), None)
        local: Dict[int, Tuple[array, bytearray]] = {}
        for ts, prev_pid, next_pid in reader.sched_pid_rows():
            if prev_pid != 0:
                bucket = local.get(prev_pid)
                if bucket is None:
                    bucket = local[prev_pid] = (array("q"), bytearray())
                bucket[0].append(ts)
                bucket[1].append(
                    _CLOSES | _OPENS if next_pid == prev_pid else _CLOSES
                )
            if next_pid != 0 and next_pid != prev_pid:
                bucket = local.get(next_pid)
                if bucket is None:
                    bucket = local[next_pid] = (array("q"), bytearray())
                bucket[0].append(ts)
                bucket[1].append(_OPENS)
        return local


@dataclass
class ServiceCounters:
    """Observability counters of one live service (``status`` query,
    ``repro perf``'s ``service.ingest`` section)."""

    segments_ingested: int = 0
    events_indexed: int = 0
    rows_evicted: int = 0
    runs_evicted: int = 0
    extends: int = 0
    rebuilds: int = 0
    segments_rejected: int = 0
    queries_served: int = 0
    extend_s: float = 0.0
    rebuild_s: float = 0.0
    #: estimated wall-clock the incremental extends saved vs rebuilding
    #: the index from scratch at each of those commits (rebuild rate
    #: measured, or extrapolated from the extends' own per-event cost).
    saved_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "segments_ingested": self.segments_ingested,
            "events_indexed": self.events_indexed,
            "rows_evicted": self.rows_evicted,
            "runs_evicted": self.runs_evicted,
            "extends": self.extends,
            "rebuilds": self.rebuilds,
            "segments_rejected": self.segments_rejected,
            "queries_served": self.queries_served,
            "extend_s": round(self.extend_s, 6),
            "rebuild_s": round(self.rebuild_s, 6),
            "saved_s": round(self.saved_s, 6),
        }


class LiveSynthesizer:
    """Incrementally maintained store synthesis.

    Owns a :class:`LiveStoreIndex` over the runs of ``store`` consumed
    so far and decides, per arriving run, between the in-place
    ``extend`` (arrival keeps run-id + time order) and a full rebuild
    (out-of-order arrival, time overlap, or retention eviction).
    :meth:`model` then runs the serial extraction + synthesis exactly
    as ``synthesize_from_store(store, jobs=1)`` would over the retained
    runs -- the byte-identity contract the service tests pin at every
    commit point.

    ``retain_window`` keeps only the newest N runs (run-id order) in
    the model for unbounded streams; evicted runs stay on disk but
    leave the index (a rebuild over the retained readers -- prefix
    rows cannot be dropped in place, later rows' association state and
    stream positions depend on them).
    """

    def __init__(
        self,
        store: Any,
        retain_window: Optional[int] = None,
        split_services: bool = True,
        model_sync: bool = True,
        counters: Optional[ServiceCounters] = None,
    ):
        if retain_window is not None and retain_window < 1:
            raise ValueError("retain_window must be positive")
        self.store = (
            store
            if isinstance(store, TraceStore)
            else TraceStore(store, allow_empty=True)
        )
        self.retain_window = retain_window
        self.split_services = split_services
        self.model_sync = model_sync
        self.counters = counters if counters is not None else ServiceCounters()
        #: retained run ids, ascending (the synthesis merge order).
        self._consumed: List[str] = []
        #: every run id ever ingested, including since-evicted ones --
        #: refresh() must not re-ingest an evicted run's on-disk file.
        self._seen: set = set()
        self._events_by_run: Dict[str, int] = {}
        self._index = LiveStoreIndex()
        self._dag: Optional[TimingDag] = None
        #: measured full-build seconds per event (updated by rebuilds).
        self._build_rate: Optional[float] = None

    @property
    def run_ids(self) -> List[str]:
        """Retained run ids, ascending."""
        return list(self._consumed)

    @property
    def index(self) -> LiveStoreIndex:
        return self._index

    def refresh(self) -> List[str]:
        """Pick up and ingest runs that appeared in the store directory
        since the last look (second writer processes, the drop-dir
        committer); returns the newly ingested run ids."""
        self.store.refresh()
        new = [r for r in self.store.run_ids() if r not in self._seen]
        for run_id in new:
            self.ingest(run_id)
        return new

    def ingest(self, run_id: str) -> None:
        """Fold one stored run into the maintained model."""
        if run_id in self._seen:
            raise ValueError(f"run {run_id!r} already ingested")
        if run_id not in self.store:
            raise ValueError(
                f"run {run_id!r} is not in store {self.store.directory!r}"
            )
        counters = self.counters
        events = self.store.run_info(run_id).events
        in_order = not self._consumed or run_id > self._consumed[-1]
        if in_order:
            self._consumed.append(run_id)
        else:
            insort(self._consumed, run_id)
        self._seen.add(run_id)
        self._events_by_run[run_id] = events

        evicted: List[str] = []
        if (
            self.retain_window is not None
            and len(self._consumed) > self.retain_window
        ):
            evicted = self._consumed[: len(self._consumed) - self.retain_window]
            self._consumed = self._consumed[len(evicted):]
            for old in evicted:
                counters.rows_evicted += self._events_by_run.pop(old)
            counters.runs_evicted += len(evicted)

        reader = self.store.open(run_id) if run_id in self._consumed else None
        if (
            reader is not None
            and not evicted
            and in_order
            and self._index.can_append(reader)
        ):
            started = perf_counter()
            self._index.extend(reader)
            elapsed = perf_counter() - started
            counters.extends += 1
            counters.extend_s += elapsed
            total = sum(self._events_by_run.values())
            rate = self._build_rate
            if rate is None:
                # No rebuild measured yet: extrapolate from the extends'
                # own per-event cost (a from-scratch build consumes the
                # same columns through the same loops).
                processed = counters.events_indexed + events
                rate = counters.extend_s / processed if processed else 0.0
            counters.saved_s += max(0.0, rate * total - elapsed)
        else:
            self._rebuild()
        counters.segments_ingested += 1
        counters.events_indexed += events
        self._dag = None

    def _rebuild(self) -> None:
        counters = self.counters
        started = perf_counter()
        readers = [self.store.open(run_id) for run_id in self._consumed]
        self._index = LiveStoreIndex.from_readers(readers)
        elapsed = perf_counter() - started
        counters.rebuilds += 1
        counters.rebuild_s += elapsed
        total = sum(self._events_by_run.values())
        if total:
            self._build_rate = elapsed / total

    def model(self) -> TimingDag:
        """The timing DAG over the retained runs -- byte-identical to
        ``synthesize_from_store(store_of_retained_runs, jobs=1)``.
        Cached until the next ingest."""
        if self._dag is None:
            index = self._index
            wanted = sorted(index.pid_map)
            event_index = EventIndex(trace_index=index)
            pid_map = index.pid_map
            cblists = []
            for pid in wanted:
                timestamps, codes, aux = index.walk_for_pid(pid)
                cblists.append(
                    _extract_pid_walk(
                        pid, timestamps, codes, aux, index.sched, event_index,
                        pid_map.get(pid, ""),
                    )
                )
            self._dag = synthesize_dag(
                cblists,
                split_services=self.split_services,
                model_sync=self.model_sync,
            )
        return self._dag

"""Self-checking scenario fuzzer: seeded sampling over spec space.

Every registered scenario is testable because a :class:`ScenarioSpec`
derives its own ground truth; this module closes the loop by *sampling*
specs instead of hand-writing them.  :func:`sample_spec` draws a random
-- but always valid -- application topology (nodes, timer chains,
service calls, synchronizers, external feeds, CPU count, scheduling
policy) from a seeded generator, and :func:`check_spec` runs it through
the full pipeline (build -> trace -> synthesize) and compares the
synthesized DAG against the spec-derived oracle: exact vertex-key set,
exact edge set, exact OR-junction marking, plus the DAG's own structural
invariants.  A mismatch on any sampled scenario is a synthesis bug (or
an oracle bug) by construction.

Sampling is fully deterministic: sample ``index`` under fuzz seed ``S``
is drawn from ``SeedSequence([FUZZ_SALT, S, index])`` and the run's
world seed derives from ``(S, index)`` only, so the same ``--seed``
reproduces byte-identical spec sequences and verdicts at any ``--jobs``
value (the same convention as the batch runner).  The topology draw
never depends on the policy under test -- policies rotate per index --
so a policy-dependent failure isolates to the scheduler, not the
sampler.

Failing specs serialize to replayable JSON (:func:`spec_to_json` /
:func:`spec_from_json`); ``repro fuzz --replay FILE`` re-checks a dump.

Generation is *constructive*: rather than sampling arbitrary component
sets and rejecting invalid ones, each draw builds publishers before
subscribers, wires every client to exactly one caller, and feeds every
synchronizer from a single dual-topic timer (same-instant, same-stamp
publishes, so exact-stamp matching always fires).  Workloads are kept
light relative to timer periods, so every callback activates many times
within the run window under every policy -- a sampled spec that fails
its check therefore indicts the synthesis, not the sampler.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.dag import DagValidationError
from ..core.pipeline import synthesize_from_trace
from ..experiments.runner import RunConfig, run_once
from ..sim.kernel import MSEC
from ..sim.policies import POLICY_NAMES
from ..sim.threads import SchedPolicy
from ..sim.workload import Constant, TruncatedNormal, Uniform, WorkloadModel, ms, us
from .spec import (
    ClientSpec,
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioSpec,
    ServiceSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    TimerSpec,
)

#: Domain-separation salt so fuzz streams never collide with the batch
#: runner's seed arithmetic.
FUZZ_SALT = 0x5CED

#: Default simulated duration per sampled scenario: >= 14 activations of
#: the slowest timer in the menu, plenty for edge recovery.
DEFAULT_FUZZ_DURATION_NS = 1_500 * MSEC

#: Timer/external periods the sampler draws from (ms).  All far above
#: the work budget, so utilization stays low and no callback starves
#: under any policy.
_PERIOD_MENU_MS = (20, 25, 40, 50, 80, 100)

#: Node priorities, weighted toward the SCHED_OTHER default.
_PRIORITY_MENU = (0, 0, 0, 1, 2, 5)


# ----------------------------------------------------------------------
# sampling


def _sample_work(rng: np.random.Generator) -> WorkloadModel:
    """A light workload (<= ~1.5 ms mean) from the JSON-serializable
    model subset."""
    kind = int(rng.integers(0, 3))
    if kind == 0:
        return Constant(us(int(rng.integers(50, 1200))))
    if kind == 1:
        low = us(int(rng.integers(50, 500)))
        return Uniform(low, low + us(int(rng.integers(100, 800))))
    mean = us(int(rng.integers(200, 1000)))
    return TruncatedNormal(
        mean=mean,
        std=us(int(rng.integers(20, 200))),
        low=us(50),
        high=mean + us(1000),
    )


def _sample_period(rng: np.random.Generator) -> int:
    return ms(int(_PERIOD_MENU_MS[int(rng.integers(0, len(_PERIOD_MENU_MS)))]))


def sample_spec(
    seed: int,
    index: int,
    policies: Sequence[str] = POLICY_NAMES,
    duration_ns: int = DEFAULT_FUZZ_DURATION_NS,
) -> ScenarioSpec:
    """Draw sampled scenario ``index`` of fuzz stream ``seed``.

    The scheduling policy rotates over ``policies`` by index; every
    other draw comes from a generator keyed by ``(seed, index)`` only,
    so the same index yields the same topology whichever policies are
    requested.
    """
    rng = np.random.default_rng(np.random.SeedSequence([FUZZ_SALT, seed, index]))
    policy = policies[index % len(policies)]

    num_cpus = int(rng.integers(1, 4))
    n_nodes = int(rng.integers(2, 6))
    nodes: List[NodeSpec] = []
    for i in range(n_nodes):
        affinity: Optional[Tuple[int, ...]] = None
        if num_cpus > 1 and rng.random() < 0.25:
            size = int(rng.integers(1, num_cpus))
            affinity = tuple(
                sorted(int(c) for c in rng.choice(num_cpus, size=size, replace=False))
            )
        priority = int(_PRIORITY_MENU[int(rng.integers(0, len(_PRIORITY_MENU)))])
        thread_policy = SchedPolicy.OTHER
        draw = rng.random()
        if draw < 0.10:
            thread_policy = SchedPolicy.FIFO
            priority = 100 + int(rng.integers(0, 3))
        elif draw < 0.20:
            thread_policy = SchedPolicy.RR
        nodes.append(
            NodeSpec(
                name=f"fz{i}",
                affinity=affinity,
                priority=priority,
                policy=thread_policy,
            )
        )

    def any_node() -> str:
        return f"fz{int(rng.integers(0, n_nodes))}"

    timers: List[TimerSpec] = []
    subscriptions: List[SubscriptionSpec] = []
    services: List[ServiceSpec] = []
    clients: List[ClientSpec] = []
    synchronizers: List[SynchronizerSpec] = []
    externals: List[ExternalPublisherSpec] = []
    counters = {"t": 0, "s": 0, "topic": 0}

    def fresh_topic() -> str:
        counters["topic"] += 1
        return f"/fz/{counters['topic']}"

    def add_chain(root_topic: str, depth: int) -> None:
        """``depth`` subscription hops relaying ``root_topic`` onward."""
        topic = root_topic
        for _ in range(depth):
            counters["s"] += 1
            nxt = fresh_topic() if rng.random() < 0.8 else None
            subscriptions.append(
                SubscriptionSpec(
                    node=any_node(),
                    label=f"S{counters['s']}",
                    topic=topic,
                    work=_sample_work(rng),
                    publishes=(nxt,) if nxt else (),
                    propagate_stamp=bool(rng.random() < 0.5),
                )
            )
            if nxt is None:
                return
            topic = nxt
        # Terminal consumer so the last published topic is never dangling.
        counters["s"] += 1
        subscriptions.append(
            SubscriptionSpec(
                node=any_node(),
                label=f"S{counters['s']}",
                topic=topic,
                work=_sample_work(rng),
            )
        )

    # 1..2 root timer chains.
    chain_roots: List[str] = []
    for _ in range(int(rng.integers(1, 3))):
        counters["t"] += 1
        root = fresh_topic()
        chain_roots.append(root)
        timers.append(
            TimerSpec(
                node=any_node(),
                label=f"T{counters['t']}",
                period_ns=_sample_period(rng),
                work=_sample_work(rng),
                publishes=(root,),
                phase_ns=ms(5 + int(rng.integers(0, 10))),
            )
        )
        add_chain(root, depth=int(rng.integers(0, 3)))

    # Occasionally a second publisher into chain 0's root topic: the
    # multi-publisher case that must surface as OR marking downstream.
    if rng.random() < 0.25:
        counters["t"] += 1
        timers.append(
            TimerSpec(
                node=any_node(),
                label=f"T{counters['t']}",
                period_ns=_sample_period(rng),
                work=_sample_work(rng),
                publishes=(chain_roots[0],),
                phase_ns=ms(5 + int(rng.integers(0, 10))),
            )
        )

    # Optional service chain: a fresh timer calls a client whose reply
    # callback may publish a topic consumed by one more subscriber.
    if rng.random() < 0.45:
        service_name = "/fz/svc"
        services.append(
            ServiceSpec(
                node=any_node(),
                label="SV1",
                service=service_name,
                work=_sample_work(rng),
            )
        )
        counters["t"] += 1
        caller_node = any_node()
        timers.append(
            TimerSpec(
                node=caller_node,
                label=f"T{counters['t']}",
                period_ns=_sample_period(rng),
                work=_sample_work(rng),
                calls="CL1",
                phase_ns=ms(5 + int(rng.integers(0, 10))),
            )
        )
        reply_topic = fresh_topic() if rng.random() < 0.5 else None
        clients.append(
            ClientSpec(
                node=caller_node,
                label="CL1",
                service=service_name,
                work=_sample_work(rng),
                publishes=(reply_topic,) if reply_topic else (),
            )
        )
        if reply_topic:
            add_chain(reply_topic, depth=0)

    # Optional synchronizer fed by one dual-topic timer: both inputs are
    # published in the same callback with the same stamp, so exact-stamp
    # matching (slop 0) always completes a set.
    if rng.random() < 0.35:
        left, right = fresh_topic(), fresh_topic()
        counters["t"] += 1
        timers.append(
            TimerSpec(
                node=any_node(),
                label=f"T{counters['t']}",
                period_ns=_sample_period(rng),
                work=_sample_work(rng),
                publishes=(left, right),
                phase_ns=ms(5 + int(rng.integers(0, 10))),
            )
        )
        fused = fresh_topic() if rng.random() < 0.5 else None
        synchronizers.append(
            SynchronizerSpec(
                node=any_node(),
                inputs=(
                    SyncInputSpec(label="J1", topic=left, work=_sample_work(rng)),
                    SyncInputSpec(label="J2", topic=right),
                ),
                publishes=(fused,) if fused else (),
                work=_sample_work(rng),
                slop_ns=0,
                stamp="now" if rng.random() < 0.5 else "min",
            )
        )
        if fused:
            add_chain(fused, depth=0)

    # Optional external (untraced) feed driving one more chain.
    if rng.random() < 0.40:
        feed = fresh_topic()
        externals.append(
            ExternalPublisherSpec(
                topic=feed,
                period_ns=_sample_period(rng),
                phase_ns=ms(5 + int(rng.integers(0, 10))),
                jitter_ns=us(int(rng.integers(0, 500))),
            )
        )
        add_chain(feed, depth=int(rng.integers(0, 2)))

    spec = ScenarioSpec(
        name=f"fuzz-{seed}-{index}",
        description=f"sampled scenario {index} of fuzz stream {seed} ({policy})",
        nodes=tuple(nodes),
        services=tuple(services),
        timers=tuple(timers),
        subscriptions=tuple(subscriptions),
        clients=tuple(clients),
        synchronizers=tuple(synchronizers),
        external_publishers=tuple(externals),
        num_cpus=num_cpus,
        duration_ns=duration_ns,
        policy=policy,
    )
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# the self-check


def world_seed_for(seed: int, index: int) -> int:
    """World base seed of sample ``index`` -- derived from the fuzz
    stream only, never from worker/shard identity."""
    return (seed * 1_000_003 + index) % (2**31)


def check_spec(
    spec: ScenarioSpec, base_seed: int = 0
) -> Tuple[bool, Tuple[str, ...]]:
    """Run ``spec`` through build -> trace -> synthesize and compare the
    DAG against the spec-derived oracle.  Returns ``(ok, mismatches)``.
    """
    config = RunConfig(
        duration_ns=spec.duration_ns,
        num_cpus=spec.num_cpus,
        base_seed=base_seed,
        sched_policy=spec.policy if spec.policy != "priority" else None,
    )
    result = run_once(lambda world, i: spec.build(world), config)
    dag = synthesize_from_trace(result.trace, pids=result.apps.pids)

    mismatches: List[str] = []
    try:
        dag.validate()
    except DagValidationError as exc:
        mismatches.append(f"dag invariant: {exc}")

    got_vertices = {v.key for v in dag.vertices()}
    want_vertices = spec.expected_vertex_keys()
    for key in sorted(want_vertices - got_vertices):
        mismatches.append(f"missing vertex: {key}")
    for key in sorted(got_vertices - want_vertices):
        mismatches.append(f"unexpected vertex: {key}")

    got_edges = {(e.src, e.dst) for e in dag.edges()}
    want_edges = spec.expected_edge_pairs()
    for src, dst in sorted(want_edges - got_edges):
        mismatches.append(f"missing edge: {src} -> {dst}")
    for src, dst in sorted(got_edges - want_edges):
        mismatches.append(f"unexpected edge: {src} -> {dst}")

    got_or = {v.key for v in dag.vertices() if v.is_or_junction}
    want_or = spec.expected_or_junctions()
    for key in sorted(want_or ^ got_or):
        mismatches.append(f"OR marking mismatch: {key}")

    return (not mismatches, tuple(mismatches))


# ----------------------------------------------------------------------
# spec <-> JSON (replayable failure dumps)


def _workload_to_json(work: Optional[WorkloadModel]) -> Optional[Dict[str, Any]]:
    if work is None:
        return None
    if isinstance(work, Constant):
        return {"kind": "constant", "duration": work.duration}
    if isinstance(work, Uniform):
        return {"kind": "uniform", "low": work.low, "high": work.high}
    if isinstance(work, TruncatedNormal):
        return {
            "kind": "truncated_normal",
            "mean": work.mean,
            "std": work.std,
            "low": work.low,
            "high": work.high,
        }
    raise ValueError(
        f"workload {work!r} is not JSON-serializable; the fuzzer samples "
        f"only Constant/Uniform/TruncatedNormal"
    )


def _workload_from_json(data: Optional[Dict[str, Any]]) -> Optional[WorkloadModel]:
    if data is None:
        return None
    kind = data["kind"]
    if kind == "constant":
        return Constant(data["duration"])
    if kind == "uniform":
        return Uniform(data["low"], data["high"])
    if kind == "truncated_normal":
        return TruncatedNormal(
            mean=data["mean"], std=data["std"], low=data["low"], high=data["high"]
        )
    raise ValueError(f"unknown workload kind {kind!r}")


def spec_to_json(spec: ScenarioSpec) -> Dict[str, Any]:
    """Serialize a spec to a JSON-compatible dict (workloads restricted
    to the fuzzer's model subset)."""
    data = asdict(spec)
    for node in data["nodes"]:
        node["policy"] = node["policy"].name
    for section in ("services", "timers", "subscriptions", "clients"):
        for item in data[section]:
            item["work"] = _workload_to_json(item["work"])
    for sync in data["synchronizers"]:
        sync["work"] = _workload_to_json(sync["work"])
        for member in sync["inputs"]:
            member["work"] = _workload_to_json(member["work"])
    return data


def spec_from_json(data: Dict[str, Any]) -> ScenarioSpec:
    """Rebuild a spec from :func:`spec_to_json` output."""

    def tup(value):
        return tuple(value) if value is not None else None

    spec = ScenarioSpec(
        name=data["name"],
        description=data["description"],
        nodes=tuple(
            NodeSpec(
                name=n["name"],
                affinity=tup(n["affinity"]),
                priority=n["priority"],
                policy=SchedPolicy[n["policy"]],
                start_delay_ns=n["start_delay_ns"],
                deadline_ns=n.get("deadline_ns"),
                weight=n.get("weight"),
            )
            for n in data["nodes"]
        ),
        services=tuple(
            ServiceSpec(
                node=s["node"],
                label=s["label"],
                service=s["service"],
                work=_workload_from_json(s["work"]),
            )
            for s in data["services"]
        ),
        timers=tuple(
            TimerSpec(
                node=t["node"],
                label=t["label"],
                period_ns=t["period_ns"],
                work=_workload_from_json(t["work"]),
                publishes=tuple(t["publishes"]),
                calls=t["calls"],
                phase_ns=t["phase_ns"],
            )
            for t in data["timers"]
        ),
        subscriptions=tuple(
            SubscriptionSpec(
                node=s["node"],
                label=s["label"],
                topic=s["topic"],
                work=_workload_from_json(s["work"]),
                publishes=tuple(s["publishes"]),
                calls=s["calls"],
                propagate_stamp=s["propagate_stamp"],
            )
            for s in data["subscriptions"]
        ),
        clients=tuple(
            ClientSpec(
                node=c["node"],
                label=c["label"],
                service=c["service"],
                work=_workload_from_json(c["work"]),
                publishes=tuple(c["publishes"]),
                calls=c["calls"],
            )
            for c in data["clients"]
        ),
        synchronizers=tuple(
            SynchronizerSpec(
                node=y["node"],
                inputs=tuple(
                    SyncInputSpec(
                        label=m["label"],
                        topic=m["topic"],
                        work=_workload_from_json(m["work"]),
                    )
                    for m in y["inputs"]
                ),
                publishes=tuple(y["publishes"]),
                work=_workload_from_json(y["work"]),
                slop_ns=y["slop_ns"],
                queue_size=y["queue_size"],
                stamp=y["stamp"],
            )
            for y in data["synchronizers"]
        ),
        external_publishers=tuple(
            ExternalPublisherSpec(
                topic=e["topic"],
                period_ns=e["period_ns"],
                phase_ns=e["phase_ns"],
                jitter_ns=e["jitter_ns"],
            )
            for e in data["external_publishers"]
        ),
        num_cpus=data["num_cpus"],
        duration_ns=data["duration_ns"],
        trace_nodes=tup(data["trace_nodes"]),
        policy=data.get("policy", "priority"),
    )
    spec.validate()
    return spec


# ----------------------------------------------------------------------
# the fuzz campaign


@dataclass(frozen=True)
class FuzzVerdict:
    """Outcome of one sampled scenario's self-check."""

    index: int
    seed: int
    policy: str
    scenario: str
    ok: bool
    mismatches: Tuple[str, ...] = ()
    #: JSON dump of the failing spec (None when the check passed).
    spec_json: Optional[str] = None


@dataclass
class FuzzReport:
    """Everything produced by one fuzz campaign."""

    seed: int
    count: int
    policies: Tuple[str, ...]
    jobs: int
    verdicts: List[FuzzVerdict] = field(default_factory=list)

    @property
    def failures(self) -> List[FuzzVerdict]:
        return [v for v in self.verdicts if not v.ok]

    def by_policy(self) -> Dict[str, Tuple[int, int]]:
        """policy -> (passed, failed) counts."""
        stats: Dict[str, Tuple[int, int]] = {}
        for verdict in self.verdicts:
            passed, failed = stats.get(verdict.policy, (0, 0))
            if verdict.ok:
                passed += 1
            else:
                failed += 1
            stats[verdict.policy] = (passed, failed)
        return stats


def check_sample(
    seed: int,
    index: int,
    policies: Sequence[str] = POLICY_NAMES,
    duration_ns: int = DEFAULT_FUZZ_DURATION_NS,
) -> FuzzVerdict:
    """Sample and self-check one scenario; the worker body."""
    spec = sample_spec(seed, index, policies=policies, duration_ns=duration_ns)
    ok, mismatches = check_spec(spec, base_seed=world_seed_for(seed, index))
    return FuzzVerdict(
        index=index,
        seed=seed,
        policy=spec.policy,
        scenario=spec.name,
        ok=ok,
        mismatches=mismatches,
        spec_json=None if ok else json.dumps(spec_to_json(spec), indent=2, sort_keys=True),
    )


def _check_shard(
    args: Tuple[int, List[int], Tuple[str, ...], int],
) -> List[FuzzVerdict]:
    """Check a shard of sample indices (module-level for pickling)."""
    seed, indices, policies, duration_ns = args
    return [
        check_sample(seed, index, policies=policies, duration_ns=duration_ns)
        for index in indices
    ]


def run_fuzz(
    seed: int,
    count: int,
    policies: Optional[Sequence[str]] = None,
    jobs: int = 1,
    duration_ns: int = DEFAULT_FUZZ_DURATION_NS,
) -> FuzzReport:
    """Sample and self-check ``count`` scenarios under fuzz ``seed``.

    ``policies`` restricts the rotation (default: all registered
    policies).  Verdicts are identical for any ``jobs`` value: sampling
    and world seeds derive from ``(seed, index)`` only, and results are
    re-sorted by index.
    """
    if count < 1:
        raise ValueError("need at least one sample")
    if jobs < 1:
        raise ValueError("need at least one job")
    policies = tuple(policies) if policies else POLICY_NAMES
    unknown = [p for p in policies if p not in POLICY_NAMES]
    if unknown:
        raise ValueError(
            f"unknown policies {unknown}; expected a subset of {', '.join(POLICY_NAMES)}"
        )
    indices = list(range(count))
    jobs = min(jobs, count)
    if jobs == 1:
        verdicts = _check_shard((seed, indices, policies, duration_ns))
    else:
        # Round-robin sharding, same as the batch runner.
        from ..experiments.batch import _shard

        shards = _shard(indices, jobs)
        verdicts = []
        with ProcessPoolExecutor(max_workers=len(shards)) as pool:
            for shard_result in pool.map(
                _check_shard,
                [(seed, shard, policies, duration_ns) for shard in shards],
            ):
                verdicts.extend(shard_result)
    verdicts.sort(key=lambda v: v.index)
    return FuzzReport(
        seed=seed, count=count, policies=policies, jobs=jobs, verdicts=verdicts
    )

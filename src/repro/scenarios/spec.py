"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes a complete ROS2 application -- nodes,
timers, subscriptions, services, clients, data synchronizers, external
(untraced) publishers, workload models and scheduling configuration --
as plain data.  From one spec the subsystem derives, without running
anything:

* a ready-to-trace application on a fresh :class:`~repro.world.World`
  (:meth:`ScenarioSpec.build`),
* the exact set of vertex keys and precedence edges the DAG synthesis
  must recover (:meth:`ScenarioSpec.expected_vertex_keys` /
  :meth:`ScenarioSpec.expected_edge_pairs`), following the Sec. IV
  rules: one service vertex per caller, an ``AND`` junction per
  synchronization group, ``OR`` marking for multi-publisher topics.

That second capability is what makes every registered scenario testable
against ground truth: the declared topology *is* the oracle.

Construction order is deliberately deterministic (nodes, then services,
timers, subscriptions, clients, synchronizers, external publishers, each
in declared order) so that a spec builds the same application -- same
PIDs, same executor polling order, same DDS reader order -- on every
run and in every worker process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..ros2 import ExternalPublisher, Msg, Node
from ..ros2.service import request_topic
from ..sim.policies import POLICY_NAMES
from ..sim.threads import SchedPolicy, ThreadSchedParams
from ..sim.workload import WorkloadModel, ms

#: Default first-tick phase: after the runtime tracers attach (the
#: experiment runner's warmup is 2 ms).
DEFAULT_TIMER_PHASE_NS = ms(5)


class ScenarioError(ValueError):
    """The spec violates a scenario invariant (dangling reference,
    duplicate label, dead callback, ...)."""


@dataclass(frozen=True)
class NodeSpec:
    """One ROS2 node and the scheduling setup of its executor thread.

    ``deadline_ns`` / ``weight`` pin the per-thread parameters consumed
    by the pluggable scheduling policies (EDF relative deadline, CFS
    load weight); left None, :meth:`ScenarioSpec.build` derives a
    deadline from the node's driving timer period and lets the policy
    derive the weight from the priority.
    """

    name: str
    affinity: Optional[Tuple[int, ...]] = None
    priority: int = 0
    policy: SchedPolicy = SchedPolicy.OTHER
    start_delay_ns: int = 0
    deadline_ns: Optional[int] = None
    weight: Optional[int] = None


@dataclass(frozen=True)
class TimerSpec:
    """A timer callback: work, then publish / call."""

    node: str
    label: str
    period_ns: int
    work: WorkloadModel
    publishes: Tuple[str, ...] = ()
    calls: Optional[str] = None  # client label invoked after the work
    phase_ns: int = DEFAULT_TIMER_PHASE_NS


@dataclass(frozen=True)
class SubscriptionSpec:
    """A subscriber callback: work, then publish / call.

    ``propagate_stamp`` republishes the incoming ``header.stamp`` (the
    sensor-pipeline convention, e.g. AVP's filter nodes); otherwise
    outputs are stamped with the publication time.
    """

    node: str
    label: str
    topic: str
    work: WorkloadModel
    publishes: Tuple[str, ...] = ()
    calls: Optional[str] = None
    propagate_stamp: bool = True


@dataclass(frozen=True)
class ServiceSpec:
    """A service handler: work, then reply to the caller."""

    node: str
    label: str
    service: str
    work: WorkloadModel


@dataclass(frozen=True)
class ClientSpec:
    """A client-response callback: work, then publish / chained call."""

    node: str
    label: str
    service: str
    work: WorkloadModel
    publishes: Tuple[str, ...] = ()
    calls: Optional[str] = None


@dataclass(frozen=True)
class SyncInputSpec:
    """One member subscription of a data-synchronization group."""

    label: str
    topic: str
    work: Optional[WorkloadModel] = None  # per-input deserialization cost


@dataclass(frozen=True)
class SynchronizerSpec:
    """A data-synchronization group (message_filters-style AND join).

    The fusion work runs inline in whichever member completes the
    matched set; ``stamp`` selects the output stamp policy: ``"min"``
    keeps the oldest member stamp (sensor pipelines), ``"now"`` stamps
    with the fusion time.
    """

    node: str
    inputs: Tuple[SyncInputSpec, ...]
    publishes: Tuple[str, ...] = ()
    work: Optional[WorkloadModel] = None
    slop_ns: int = 0
    queue_size: int = 10
    stamp: str = "min"  # "min" | "now"


@dataclass(frozen=True)
class ExternalPublisherSpec:
    """An untraced feed (sensor / replay tool) driving the application."""

    topic: str
    period_ns: int
    phase_ns: int = 0
    jitter_ns: int = 0


@dataclass
class ScenarioApp:
    """Handles to a built scenario application."""

    spec: "ScenarioSpec"
    nodes: List[Node]
    node_by_name: Dict[str, Node]
    externals: List[ExternalPublisher]

    @property
    def pids(self) -> List[int]:
        """PIDs to synthesize over (honours ``spec.trace_nodes``)."""
        traced = self.spec.traced_node_names()
        return [n.pid for n in self.nodes if n.name in traced]

    @property
    def all_pids(self) -> List[int]:
        return [n.pid for n in self.nodes]

    def node_names(self) -> List[str]:
        return [n.name for n in self.nodes]


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, declarative scenario definition."""

    name: str
    description: str
    nodes: Tuple[NodeSpec, ...]
    services: Tuple[ServiceSpec, ...] = ()
    timers: Tuple[TimerSpec, ...] = ()
    subscriptions: Tuple[SubscriptionSpec, ...] = ()
    clients: Tuple[ClientSpec, ...] = ()
    synchronizers: Tuple[SynchronizerSpec, ...] = ()
    external_publishers: Tuple[ExternalPublisherSpec, ...] = ()
    #: Machine size the scenario is designed for.
    num_cpus: int = 4
    #: Default per-run simulated duration.
    duration_ns: int = 10_000_000_000
    #: Subset of node names the synthesis should model (None: all).
    trace_nodes: Optional[Tuple[str, ...]] = None
    #: Scheduling policy the scenario runs under (a
    #: :data:`repro.sim.policies.POLICY_NAMES` entry).  Ground-truth
    #: derivation is policy-independent -- the topology, and therefore
    #: the expected DAG, never changes with the policy; only the
    #: interleaving (and hence execution times / latencies) does.
    policy: str = "priority"

    # ------------------------------------------------------------------
    # introspection

    def node_names(self) -> Tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    def traced_node_names(self) -> Tuple[str, ...]:
        return self.trace_nodes if self.trace_nodes is not None else self.node_names()

    def callback_labels(self) -> Tuple[str, ...]:
        """Every callback label, in declaration order."""
        labels: List[str] = [s.label for s in self.services]
        labels += [t.label for t in self.timers]
        labels += [s.label for s in self.subscriptions]
        labels += [c.label for c in self.clients]
        for sync in self.synchronizers:
            labels += [i.label for i in sync.inputs]
        return tuple(labels)

    def _callers(self) -> Dict[str, object]:
        """client label -> the (timer/sub/client) spec that calls it."""
        callers: Dict[str, object] = {}
        for spec in (*self.timers, *self.subscriptions, *self.clients):
            if spec.calls is not None:
                if spec.calls in callers:
                    raise ScenarioError(
                        f"{self.name}: client {spec.calls!r} invoked from more "
                        f"than one callback (a client has one response CB per "
                        f"caller; declare one client per caller)"
                    )
                callers[spec.calls] = spec
        return callers

    # ------------------------------------------------------------------
    # validation

    def validate(self) -> None:
        if self.policy not in POLICY_NAMES:
            raise ScenarioError(
                f"{self.name}: unknown scheduling policy {self.policy!r}; "
                f"expected one of {', '.join(POLICY_NAMES)}"
            )
        names = [n.name for n in self.nodes]
        if not names:
            raise ScenarioError(f"{self.name}: scenario needs at least one node")
        if len(set(names)) != len(names):
            raise ScenarioError(f"{self.name}: duplicate node names")
        known = set(names)

        labels = self.callback_labels()
        if len(set(labels)) != len(labels):
            dupes = sorted({l for l in labels if labels.count(l) > 1})
            raise ScenarioError(f"{self.name}: duplicate callback labels {dupes}")

        for spec in (*self.services, *self.timers, *self.subscriptions,
                     *self.clients, *self.synchronizers):
            if spec.node not in known:
                raise ScenarioError(
                    f"{self.name}: component references unknown node {spec.node!r}"
                )

        service_names = [sv.service for sv in self.services]
        if len(set(service_names)) != len(service_names):
            raise ScenarioError(f"{self.name}: duplicate service names")
        services_by_name = {sv.service: sv for sv in self.services}
        client_labels = {c.label for c in self.clients}
        for client in self.clients:
            if client.service not in services_by_name:
                raise ScenarioError(
                    f"{self.name}: client {client.label!r} targets unknown "
                    f"service {client.service!r}"
                )

        callers = self._callers()
        for caller_label, spec in ((lbl, s) for lbl, s in callers.items()):
            if caller_label not in client_labels:
                raise ScenarioError(
                    f"{self.name}: {spec.label!r} calls unknown client "
                    f"{caller_label!r}"
                )
        for client in self.clients:
            if client.label not in callers:
                raise ScenarioError(
                    f"{self.name}: client {client.label!r} is never called "
                    f"(its response callback would be dead)"
                )

        sync_nodes = [sync.node for sync in self.synchronizers]
        if len(set(sync_nodes)) != len(sync_nodes):
            raise ScenarioError(
                f"{self.name}: at most one synchronizer per node (the DAG "
                f"synthesis joins all sync members of a node in one junction)"
            )
        for sync in self.synchronizers:
            if len(sync.inputs) < 2:
                raise ScenarioError(
                    f"{self.name}: synchronizer on {sync.node!r} needs >= 2 inputs"
                )
            if sync.stamp not in ("min", "now"):
                raise ScenarioError(
                    f"{self.name}: synchronizer stamp policy must be 'min' or "
                    f"'now', got {sync.stamp!r}"
                )

        published = {t for spec in (*self.timers, *self.subscriptions, *self.clients)
                     for t in spec.publishes}
        published |= {t for sync in self.synchronizers for t in sync.publishes}
        published |= {e.topic for e in self.external_publishers}
        for sub in self.subscriptions:
            if sub.topic not in published:
                raise ScenarioError(
                    f"{self.name}: subscription {sub.label!r} listens on "
                    f"{sub.topic!r} which nothing publishes"
                )
        for sync in self.synchronizers:
            for member in sync.inputs:
                if member.topic not in published:
                    raise ScenarioError(
                        f"{self.name}: sync input {member.label!r} listens on "
                        f"{member.topic!r} which nothing publishes"
                    )

        if self.trace_nodes is not None:
            unknown = set(self.trace_nodes) - known
            if unknown:
                raise ScenarioError(
                    f"{self.name}: trace_nodes references unknown nodes "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # ground truth (the Sec. IV synthesis rules, applied to the spec)

    def _service_replicas(self) -> Dict[str, List[Tuple[str, str]]]:
        """service label -> [(replica vertex key, caller label)]."""
        callers = self._callers()
        services_by_name = {sv.service: sv for sv in self.services}
        replicas: Dict[str, List[Tuple[str, str]]] = {sv.label: [] for sv in self.services}
        for client in self.clients:
            caller = callers[client.label]
            sv = services_by_name[client.service]
            key = (
                f"{sv.node}/{sv.label}@"
                f"{request_topic(sv.service)}#{caller.label}"
            )
            replicas[sv.label].append((key, caller.label))
        return replicas

    def _junction_key(self, node: str) -> str:
        return f"{node}/&"

    def expected_vertex_keys(self) -> Set[str]:
        """Exact vertex-key set the synthesized DAG must contain."""
        traced = set(self.traced_node_names())
        keys: Set[str] = set()
        for spec in (*self.timers, *self.subscriptions, *self.clients):
            if spec.node in traced:
                keys.add(f"{spec.node}/{spec.label}")
        for sync in self.synchronizers:
            if sync.node in traced:
                keys.update(f"{sync.node}/{member.label}" for member in sync.inputs)
                keys.add(self._junction_key(sync.node))
        for sv in self.services:
            if sv.node in traced:
                keys.update(key for key, _ in self._service_replicas()[sv.label])
        return keys

    def expected_edge_pairs(self) -> Set[Tuple[str, str]]:
        """Exact (src key, dst key) edge set of the synthesized DAG."""
        traced = set(self.traced_node_names())

        # topic -> emitting vertex keys (sync members emit through their
        # AND junction, rule 4).
        emitters: Dict[str, List[str]] = {}
        for spec in (*self.timers, *self.subscriptions, *self.clients):
            for topic in spec.publishes:
                emitters.setdefault(topic, []).append(f"{spec.node}/{spec.label}")
        for sync in self.synchronizers:
            for topic in sync.publishes:
                emitters.setdefault(topic, []).append(self._junction_key(sync.node))

        edges: Set[Tuple[str, str]] = set()
        for sub in self.subscriptions:
            dst = f"{sub.node}/{sub.label}"
            for src in emitters.get(sub.topic, ()):
                src_node = src.split("/")[0]
                if sub.node in traced and src_node in traced:
                    edges.add((src, dst))
        for sync in self.synchronizers:
            jkey = self._junction_key(sync.node)
            for member in sync.inputs:
                mkey = f"{sync.node}/{member.label}"
                for src in emitters.get(member.topic, ()):
                    src_node = src.split("/")[0]
                    if sync.node in traced and src_node in traced:
                        edges.add((src, mkey))
                if sync.node in traced:
                    edges.add((mkey, jkey))

        # service call chains: caller -> per-caller service replica ->
        # client response CB (rule 1).
        callers = self._callers()
        services_by_name = {sv.service: sv for sv in self.services}
        for client in self.clients:
            caller = callers[client.label]
            sv = services_by_name[client.service]
            caller_key = f"{caller.node}/{caller.label}"
            sv_key = (
                f"{sv.node}/{sv.label}@{request_topic(sv.service)}#{caller.label}"
            )
            client_key = f"{client.node}/{client.label}"
            if caller.node in traced and sv.node in traced:
                edges.add((caller_key, sv_key))
            if sv.node in traced and client.node in traced:
                edges.add((sv_key, client_key))
        return edges

    def expected_or_junctions(self) -> Set[str]:
        """Vertex keys that must carry the ``OR`` marking (rule 3).

        Synchronizer members subscribe like any other callback, so a
        multi-publisher topic feeding a sync input marks that member
        vertex too.
        """
        emitters: Dict[str, Set[str]] = {}
        for spec in (*self.timers, *self.subscriptions, *self.clients):
            for topic in spec.publishes:
                emitters.setdefault(topic, set()).add(f"{spec.node}/{spec.label}")
        for sync in self.synchronizers:
            for topic in sync.publishes:
                emitters.setdefault(topic, set()).add(self._junction_key(sync.node))
        traced = set(self.traced_node_names())
        marked: Set[str] = set()
        listeners = [(sub.node, sub.label, sub.topic) for sub in self.subscriptions]
        listeners += [
            (sync.node, member.label, member.topic)
            for sync in self.synchronizers
            for member in sync.inputs
        ]
        for node, label, topic in listeners:
            if node in traced and len(emitters.get(topic, ())) > 1:
                marked.add(f"{node}/{label}")
        return marked

    # ------------------------------------------------------------------
    # construction

    def derived_sched_params(self, node_name: str) -> ThreadSchedParams:
        """Per-thread parameters for ``node_name``'s executor thread.

        The EDF relative deadline is the node's smallest driving timer
        period (a periodic chain stage must finish before its next
        input), falling back to the scenario's smallest period anywhere
        (downstream nodes inherit the pipeline rate), then to the run
        duration.  The PSJF seed estimate is the largest known mean
        work of the node's callbacks.  Explicit ``NodeSpec`` overrides
        win.
        """
        node = next(n for n in self.nodes if n.name == node_name)
        deadline = node.deadline_ns
        if deadline is None:
            own = [t.period_ns for t in self.timers if t.node == node_name]
            everywhere = [t.period_ns for t in self.timers]
            everywhere += [e.period_ns for e in self.external_publishers]
            if own:
                deadline = min(own)
            elif everywhere:
                deadline = min(everywhere)
            else:
                deadline = self.duration_ns
        expected: Optional[int] = None
        for spec in (*self.services, *self.timers, *self.subscriptions, *self.clients):
            if spec.node != node_name:
                continue
            lo, hi = spec.work.bounds()
            if lo is not None and hi is not None:
                mid = (lo + hi) // 2
                if expected is None or mid > expected:
                    expected = mid
        return ThreadSchedParams(
            deadline_ns=deadline, expected_ns=expected, weight=node.weight
        )

    def build(self, world) -> ScenarioApp:
        """Instantiate the scenario on ``world`` (deterministic order)."""
        self.validate()
        node_by_name: Dict[str, Node] = {}
        for ns in self.nodes:
            # Derived params only matter to the non-default policies;
            # omitting them under "priority" keeps the build compatible
            # with the frozen legacy substrate the perf harness injects.
            params = (
                self.derived_sched_params(ns.name)
                if self.policy != "priority"
                else None
            )
            node_by_name[ns.name] = Node(
                world,
                ns.name,
                priority=ns.priority,
                policy=ns.policy,
                affinity=list(ns.affinity) if ns.affinity is not None else None,
                start_delay_ns=ns.start_delay_ns,
                sched_params=params,
            )
        # Late-binding client registry: callbacks resolve the client at
        # call time, so declaration order never constrains call graphs.
        clients_by_label: Dict[str, object] = {}

        for sv in self.services:
            node_by_name[sv.node].create_service(
                sv.service, _service_handler(sv.work), label=sv.label
            )
        for t in self.timers:
            node = node_by_name[t.node]
            pubs = [node.create_publisher(topic) for topic in t.publishes]
            node.create_timer(
                t.period_ns,
                _emitter_callback(t.work, pubs, t.calls, clients_by_label, "now"),
                label=t.label,
                phase_ns=t.phase_ns,
            )
        for s in self.subscriptions:
            node = node_by_name[s.node]
            pubs = [node.create_publisher(topic) for topic in s.publishes]
            stamp = "propagate" if s.propagate_stamp else "now"
            node.create_subscription(
                s.topic,
                _emitter_callback(s.work, pubs, s.calls, clients_by_label, stamp),
                label=s.label,
            )
        for c in self.clients:
            node = node_by_name[c.node]
            pubs = [node.create_publisher(topic) for topic in c.publishes]
            clients_by_label[c.label] = node.create_client(
                c.service,
                _emitter_callback(c.work, pubs, c.calls, clients_by_label, "now"),
                label=c.label,
            )
        for sync in self.synchronizers:
            node = node_by_name[sync.node]
            pubs = [node.create_publisher(topic) for topic in sync.publishes]
            members = [
                node.create_subscription(member.topic, label=member.label)
                for member in sync.inputs
            ]
            per_input = {
                member.label: member.work
                for member in sync.inputs
                if member.work is not None
            }
            node.create_synchronizer(
                members,
                _fusion_callback(sync.work, pubs, sync.stamp),
                slop_ns=sync.slop_ns,
                queue_size=sync.queue_size,
                per_input_work=per_input or None,
            )
        externals: List[ExternalPublisher] = []
        for e in self.external_publishers:
            publisher = ExternalPublisher(
                world, e.topic, e.period_ns, phase_ns=e.phase_ns, jitter_ns=e.jitter_ns
            )
            publisher.start()
            externals.append(publisher)
        return ScenarioApp(
            spec=self,
            nodes=[node_by_name[ns.name] for ns in self.nodes],
            node_by_name=node_by_name,
            externals=externals,
        )

    def with_overrides(self, **changes) -> "ScenarioSpec":
        """A copy with some top-level fields replaced."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# callback factories (plain closures so built apps stay picklable-free)


def _service_handler(work: WorkloadModel):
    def handler(api, request):
        yield api.work(work)
        return request

    return handler


def _emitter_callback(work, pubs, calls, clients_by_label, stamp_mode):
    """The generic timer/subscriber/client body: work, publish, call."""

    def callback(api, msg):
        yield api.work(work)
        if pubs:
            stamp = api.now
            if stamp_mode == "propagate" and isinstance(msg, Msg) and msg.stamp is not None:
                stamp = msg.stamp
            for pub in pubs:
                api.publish(pub, Msg(stamp=stamp))
        if calls is not None:
            api.call(clients_by_label[calls], calls)

    return callback


def _fusion_callback(work, pubs, stamp_mode):
    """The fusion body run by the sync member completing a match."""

    def callback(api, msgs):
        if work is not None:
            yield api.work(work)
        stamps = [m.stamp for m in msgs if isinstance(m, Msg) and m.stamp is not None]
        stamp = min(stamps) if (stamp_mode == "min" and stamps) else api.now
        for pub in pubs:
            api.publish(pub, Msg(stamp=stamp))

    return callback


# ----------------------------------------------------------------------


def combine_specs(
    name: str,
    description: str,
    specs: Sequence[ScenarioSpec],
    num_cpus: Optional[int] = None,
    duration_ns: Optional[int] = None,
    trace_nodes: Optional[Sequence[str]] = None,
    policy: Optional[str] = None,
) -> ScenarioSpec:
    """Concatenate scenarios into one machine-wide deployment.

    Used e.g. to co-locate AVP and SYN for the interference study: the
    combined spec builds both applications on one world, in declaration
    order, and ``trace_nodes`` restricts synthesis to one of them.
    """
    if not specs:
        raise ScenarioError("combine_specs needs at least one spec")
    combined = ScenarioSpec(
        name=name,
        description=description,
        nodes=tuple(n for s in specs for n in s.nodes),
        services=tuple(sv for s in specs for sv in s.services),
        timers=tuple(t for s in specs for t in s.timers),
        subscriptions=tuple(sub for s in specs for sub in s.subscriptions),
        clients=tuple(c for s in specs for c in s.clients),
        synchronizers=tuple(sync for s in specs for sync in s.synchronizers),
        external_publishers=tuple(e for s in specs for e in s.external_publishers),
        num_cpus=num_cpus if num_cpus is not None else max(s.num_cpus for s in specs),
        duration_ns=(
            duration_ns if duration_ns is not None
            else max(s.duration_ns for s in specs)
        ),
        trace_nodes=tuple(trace_nodes) if trace_nodes is not None else None,
        policy=policy if policy is not None else specs[0].policy,
    )
    combined.validate()
    return combined

"""Declarative scenarios: specs, the registry, and the built-in library.

``ScenarioSpec`` describes an application as data; the registry maps
names to parameterizable spec factories; the library registers the
paper's applications plus additional stress workloads.  The library
module is imported lazily by the registry accessors (so that
:mod:`repro.apps` can itself be expressed in terms of specs without an
import cycle) -- use :func:`scenario_names` / :func:`get_scenario` /
:func:`build_scenario_spec` rather than importing it directly.
"""

from .fuzz import (
    FuzzReport,
    FuzzVerdict,
    check_sample,
    check_spec,
    run_fuzz,
    sample_spec,
    spec_from_json,
    spec_to_json,
)
from .registry import (
    ScenarioEntry,
    build_scenario_spec,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .spec import (
    ClientSpec,
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioApp,
    ScenarioError,
    ScenarioSpec,
    ServiceSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    TimerSpec,
    combine_specs,
)

__all__ = [
    "FuzzReport",
    "FuzzVerdict",
    "check_sample",
    "check_spec",
    "run_fuzz",
    "sample_spec",
    "spec_from_json",
    "spec_to_json",
    "ScenarioEntry",
    "build_scenario_spec",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "ClientSpec",
    "ExternalPublisherSpec",
    "NodeSpec",
    "ScenarioApp",
    "ScenarioError",
    "ScenarioSpec",
    "ServiceSpec",
    "SubscriptionSpec",
    "SyncInputSpec",
    "SynchronizerSpec",
    "TimerSpec",
    "combine_specs",
]

"""The built-in scenario library.

Registers the paper's two evaluation applications (re-expressed as
declarative specs in :mod:`repro.apps.avp` / :mod:`repro.apps.syn`),
their concurrent interference deployment (the Table II / Fig. 4
workload), and four new workloads that stress different structural
corners of the synthesis pipeline:

``sensor-fusion``
    a multi-rate sensor-fusion pipeline: two external sensors at
    different rates joined by an AND synchronizer, plus a camera chain
    merging into the tracker output so the planner input is a genuine
    OR junction;
``service-mesh``
    a service-heavy client/server mesh where two frontends share a
    gateway and an auth service -- every shared service must replicate
    per caller to keep the chains disjoint;
``overload``
    an overload/starvation stressor: a single CPU at ~105 % nominal
    utilisation, exercising measurement under heavy preemption;
``deep-pipeline``
    a long processing chain (one timer, eight subscriber hops) spread
    round-robin over four nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps.avp import LIDAR_PERIOD, avp_spec, default_workloads
from ..apps.syn import syn_spec
from ..sim.kernel import SEC
from ..sim.workload import Constant, TruncatedNormal, Uniform, ms
from .registry import register_scenario
from .spec import (
    ExternalPublisherSpec,
    NodeSpec,
    ScenarioSpec,
    SubscriptionSpec,
    SyncInputSpec,
    SynchronizerSpec,
    ServiceSpec,
    ClientSpec,
    TimerSpec,
    combine_specs,
)

#: Per-node CPU affinities of the AVP nodes in the interference study
#: (the Table II machine layout).
AVP_AFFINITY: Dict[str, List[int]] = {
    "filter_transform_vlp16_front": [0],
    "filter_transform_vlp16_rear": [1],
    "point_cloud_fusion": [2],
    "voxel_grid_cloud_node": [2],
    "p2d_ndt_localizer_node": [3],
}

#: CPUs SYN shares with AVP to create interference.
SYN_AFFINITY: List[int] = [1, 3]


@register_scenario("syn", "the paper's synthetic application (Fig. 3a): "
                          "16 callbacks of every kind across 6 nodes")
def _syn(load_factor: float = 1.0) -> ScenarioSpec:
    return syn_spec(load_factor=load_factor)


@register_scenario("avp", "Autoware AVP LIDAR localization chain (Fig. 3b)")
def _avp(duration_ns: int = 10 * SEC) -> ScenarioSpec:
    samples_per_run = max(1, duration_ns // LIDAR_PERIOD)
    spec = avp_spec(workloads=default_workloads(samples_per_run=samples_per_run))
    return spec.with_overrides(duration_ns=duration_ns)


def _syn_load_factor(
    run_index: int, runs: int, load_range: Tuple[float, float]
) -> float:
    lo, hi = load_range
    if runs <= 1:
        return lo
    return lo + (hi - lo) * run_index / (runs - 1)


@register_scenario(
    "avp-interference",
    "AVP + SYN co-located on 4 CPUs, SYN load swept across runs "
    "(the Table II / Fig. 4 deployment); synthesis models AVP only",
)
def _avp_interference(
    run_index: int = 0,
    runs: int = 50,
    duration_ns: int = 10 * SEC,
    syn_load_range: Tuple[float, float] = (0.5, 2.5),
) -> ScenarioSpec:
    samples_per_run = max(1, duration_ns // LIDAR_PERIOD)
    avp = avp_spec(
        workloads=default_workloads(samples_per_run=samples_per_run),
        affinity=AVP_AFFINITY,
    )
    syn = syn_spec(
        load_factor=_syn_load_factor(run_index, runs, syn_load_range),
        affinity=tuple(SYN_AFFINITY),
    )
    return combine_specs(
        "avp-interference",
        "AVP localization under SYN interference",
        [avp, syn],
        num_cpus=4,
        duration_ns=duration_ns,
        trace_nodes=avp.node_names(),
    )


@register_scenario(
    "sensor-fusion",
    "multi-rate LIDAR+radar AND-fusion with a camera chain merging at "
    "the tracker, making the planner input an OR junction",
)
def _sensor_fusion() -> ScenarioSpec:
    return ScenarioSpec(
        name="sensor-fusion",
        description="multi-rate sensor fusion pipeline",
        nodes=(
            NodeSpec("lidar_preproc"),
            NodeSpec("radar_preproc"),
            NodeSpec("fusion_core"),
            NodeSpec("camera_driver"),
            NodeSpec("object_tracker"),
            NodeSpec("motion_planner"),
        ),
        timers=(
            TimerSpec(
                node="camera_driver",
                label="CAM",
                period_ns=ms(60),
                work=TruncatedNormal(ms(2.0), ms(0.3), ms(1.2), ms(2.8)),
                publishes=("/camera/detections",),
            ),
        ),
        subscriptions=(
            SubscriptionSpec(
                node="lidar_preproc",
                label="LP",
                topic="/lidar/raw",
                work=TruncatedNormal(ms(4.0), ms(0.6), ms(2.5), ms(6.0)),
                publishes=("/lidar/points",),
            ),
            SubscriptionSpec(
                node="radar_preproc",
                label="RP",
                topic="/radar/raw",
                work=TruncatedNormal(ms(1.5), ms(0.2), ms(1.0), ms(2.2)),
                publishes=("/radar/points",),
            ),
            SubscriptionSpec(
                node="object_tracker",
                label="TRK_F",
                topic="/fused/objects",
                work=TruncatedNormal(ms(3.0), ms(0.4), ms(2.0), ms(4.5)),
                publishes=("/tracks",),
            ),
            SubscriptionSpec(
                node="object_tracker",
                label="TRK_C",
                topic="/camera/detections",
                work=TruncatedNormal(ms(1.2), ms(0.2), ms(0.8), ms(1.8)),
                publishes=("/tracks",),
            ),
            SubscriptionSpec(
                node="motion_planner",
                label="PLAN",
                topic="/tracks",
                work=TruncatedNormal(ms(2.5), ms(0.4), ms(1.5), ms(4.0)),
            ),
        ),
        synchronizers=(
            SynchronizerSpec(
                node="fusion_core",
                inputs=(
                    SyncInputSpec("FU_L", "/lidar/points", Constant(ms(0.4))),
                    SyncInputSpec("FU_R", "/radar/points", Constant(ms(0.3))),
                ),
                publishes=("/fused/objects",),
                work=TruncatedNormal(ms(2.2), ms(0.3), ms(1.5), ms(3.2)),
                slop_ns=ms(80),
                queue_size=10,
                stamp="min",
            ),
        ),
        external_publishers=(
            ExternalPublisherSpec("/lidar/raw", ms(100), jitter_ns=int(ms(0.5))),
            ExternalPublisherSpec(
                "/radar/raw", ms(150), phase_ns=ms(3), jitter_ns=int(ms(0.5))
            ),
        ),
        num_cpus=4,
        duration_ns=10 * SEC,
    )


@register_scenario(
    "service-mesh",
    "service-heavy client/server mesh: two frontends share a gateway and "
    "an auth service, forcing per-caller service replication",
)
def _service_mesh() -> ScenarioSpec:
    return ScenarioSpec(
        name="service-mesh",
        description="client/server mesh with shared services",
        nodes=(
            NodeSpec("frontend_a"),
            NodeSpec("frontend_b"),
            NodeSpec("gateway"),
            NodeSpec("auth"),
            NodeSpec("audit_log"),
        ),
        services=(
            ServiceSpec("gateway", "GW", "/gateway", Constant(ms(2.0))),
            ServiceSpec("auth", "AUTH", "/auth", Constant(ms(1.4))),
        ),
        timers=(
            TimerSpec(
                node="frontend_a",
                label="REQ_A",
                period_ns=ms(80),
                work=Constant(ms(1.0)),
                calls="GW_A",
            ),
            TimerSpec(
                node="frontend_b",
                label="REQ_B",
                period_ns=ms(120),
                work=Constant(ms(1.2)),
                calls="GW_B",
            ),
        ),
        subscriptions=(
            SubscriptionSpec(
                node="audit_log",
                label="LOG_A",
                topic="/frontend_a/result",
                work=Constant(ms(0.5)),
            ),
            SubscriptionSpec(
                node="audit_log",
                label="LOG_B",
                topic="/frontend_b/result",
                work=Constant(ms(0.5)),
            ),
        ),
        clients=(
            ClientSpec(
                node="frontend_a",
                label="GW_A",
                service="/gateway",
                work=Constant(ms(0.8)),
                calls="AUTH_A",
            ),
            ClientSpec(
                node="frontend_b",
                label="GW_B",
                service="/gateway",
                work=Constant(ms(0.9)),
                calls="AUTH_B",
            ),
            ClientSpec(
                node="frontend_a",
                label="AUTH_A",
                service="/auth",
                work=Constant(ms(0.6)),
                publishes=("/frontend_a/result",),
            ),
            ClientSpec(
                node="frontend_b",
                label="AUTH_B",
                service="/auth",
                work=Constant(ms(0.7)),
                publishes=("/frontend_b/result",),
            ),
        ),
        num_cpus=4,
        duration_ns=10 * SEC,
    )


@register_scenario(
    "overload",
    "overload/starvation stressor: one CPU at ~105% nominal utilisation "
    "(a hog timer preempting a producer/worker/sink chain)",
)
def _overload() -> ScenarioSpec:
    return ScenarioSpec(
        name="overload",
        description="single-CPU overload with a greedy hog timer",
        nodes=(
            NodeSpec("cpu_hog"),
            NodeSpec("producer"),
            NodeSpec("worker"),
            NodeSpec("sink"),
        ),
        timers=(
            TimerSpec(
                node="cpu_hog",
                label="HOG",
                period_ns=ms(20),
                work=Uniform(ms(12.0), ms(14.0)),
            ),
            TimerSpec(
                node="producer",
                label="PROD",
                period_ns=ms(50),
                work=Constant(ms(8.0)),
                publishes=("/work/items",),
                phase_ns=ms(7),
            ),
        ),
        subscriptions=(
            SubscriptionSpec(
                node="worker",
                label="WORK",
                topic="/work/items",
                work=Uniform(ms(8.0), ms(12.0)),
                publishes=("/work/done",),
            ),
            SubscriptionSpec(
                node="sink",
                label="DONE",
                topic="/work/done",
                work=Constant(ms(2.0)),
            ),
        ),
        num_cpus=1,
        duration_ns=5 * SEC,
    )


@register_scenario(
    "deep-pipeline",
    "a deep processing chain: one 10 Hz timer feeding eight subscriber "
    "hops spread round-robin over four nodes",
)
def _deep_pipeline(depth: int = 8) -> ScenarioSpec:
    if depth < 1:
        raise ValueError("depth must be >= 1")
    nodes = tuple(NodeSpec(f"stage_{i}") for i in range(4))
    subs = []
    for hop in range(depth):
        publishes = (f"/deep/{hop + 1}",) if hop < depth - 1 else ()
        subs.append(
            SubscriptionSpec(
                node=f"stage_{(hop + 1) % 4}",
                label=f"S{hop + 1}",
                topic=f"/deep/{hop}",
                work=TruncatedNormal(ms(1.5), ms(0.25), ms(0.8), ms(2.5)),
                publishes=publishes,
            )
        )
    return ScenarioSpec(
        name="deep-pipeline",
        description=f"{depth}-hop processing chain",
        nodes=nodes,
        timers=(
            TimerSpec(
                node="stage_0",
                label="SRC",
                period_ns=ms(100),
                work=Constant(ms(1.0)),
                publishes=("/deep/0",),
            ),
        ),
        subscriptions=tuple(subs),
        num_cpus=4,
        duration_ns=10 * SEC,
    )

"""The scenario registry: named, parameterizable scenario factories.

A factory is a plain function returning a :class:`ScenarioSpec`.  Its
keyword parameters are the scenario's knobs; the batch runner passes
``run_index`` / ``runs`` / ``duration_ns`` to factories that declare
them, which is how per-run parameter sweeps (e.g. the Table II
interference study) stay declarative and picklable: worker processes
rebuild the spec from ``(name, params, run_index)`` instead of shipping
closures across process boundaries.

The built-in library (:mod:`repro.scenarios.library`) registers itself
lazily on first access, so importing :mod:`repro.apps` (which the
library itself imports) never recurses through this module.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .spec import ScenarioSpec

Factory = Callable[..., ScenarioSpec]

_REGISTRY: Dict[str, "ScenarioEntry"] = {}
_LIBRARY_LOADED = False


@dataclass(frozen=True)
class ScenarioEntry:
    """One registered scenario."""

    name: str
    summary: str
    factory: Factory
    tags: Tuple[str, ...] = field(default=())


def register_scenario(name: str, summary: str, tags: Tuple[str, ...] = ()):
    """Decorator: register ``factory`` under ``name``."""

    def decorator(factory: Factory) -> Factory:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} already registered")
        _REGISTRY[name] = ScenarioEntry(
            name=name, summary=summary, factory=factory, tags=tuple(tags)
        )
        return factory

    return decorator


def _ensure_library() -> None:
    global _LIBRARY_LOADED
    if _LIBRARY_LOADED:
        return
    # A failed library import must stay visible on every call (not
    # silently yield a partial registry), and its partial registrations
    # must be rolled back so the re-import can register them again.
    before = set(_REGISTRY)
    try:
        from . import library  # noqa: F401  (registers on import)
    except BaseException:
        for name in set(_REGISTRY) - before:
            del _REGISTRY[name]
        raise
    _LIBRARY_LOADED = True


def scenario_names() -> List[str]:
    _ensure_library()
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioEntry:
    _ensure_library()
    entry = _REGISTRY.get(name)
    if entry is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return entry


def build_scenario_spec(
    name: str,
    run_index: Optional[int] = None,
    runs: Optional[int] = None,
    duration_ns: Optional[int] = None,
    policy: Optional[str] = None,
    **params,
) -> ScenarioSpec:
    """Instantiate a registered scenario's spec.

    ``run_index`` / ``runs`` / ``duration_ns`` are forwarded only to
    factories that declare them; unknown ``params`` raise immediately
    with the factory's actual signature in the message.  ``policy``
    overrides the spec's scheduling policy after construction (every
    scenario's ground truth is policy-independent, so any registered
    scenario can run under any policy).
    """
    entry = get_scenario(name)
    signature = inspect.signature(entry.factory)
    accepts_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD
        for p in signature.parameters.values()
    )
    kwargs = dict(params)
    for key, value in (
        ("run_index", run_index),
        ("runs", runs),
        ("duration_ns", duration_ns),
    ):
        if value is not None and (accepts_kwargs or key in signature.parameters):
            kwargs[key] = value
    if not accepts_kwargs:
        unknown = set(kwargs) - set(signature.parameters)
        if unknown:
            raise TypeError(
                f"scenario {name!r} does not accept parameters "
                f"{sorted(unknown)}; signature: {signature}"
            )
    spec = entry.factory(**kwargs)
    if policy is not None and policy != spec.policy:
        spec = spec.with_overrides(policy=policy)
    spec.validate()
    return spec

"""Frozen pre-optimization :class:`TracingSession` (perf baseline).

Verbatim copy of the pre-change session driver, wired to the frozen
tracer/BPF stack in :mod:`repro._legacy.tracing`.  The :class:`Trace`
data containers are shared with the production code (they are plain
data; the hot paths this package freezes are the tracer/probe/kernel
call chains, not the containers).  Do not optimize.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...tracing.events import P1_CREATE_NODE, TraceEvent
from ...tracing.session import Trace, TraceSegment
from .bpf import Bpf
from .tracers import KernelTracer, Ros2InitTracer, Ros2RtTracer


class TracingSession:
    """Drives the three (frozen) tracers against one world."""

    def __init__(
        self,
        world,
        kernel_filter: bool = True,
        rt_buffer_capacity: int = 1 << 20,
        kernel_buffer_capacity: int = 1 << 21,
        record_wakeups: bool = False,
    ):
        self.world = world
        self.bpf = Bpf(world.symbols, world.tracepoints)
        self.init_tracer = Ros2InitTracer(self.bpf)
        self.rt_tracer = Ros2RtTracer(self.bpf, buffer_capacity=rt_buffer_capacity)
        self.kernel_tracer = KernelTracer(
            self.bpf,
            filtered=kernel_filter,
            buffer_capacity=kernel_buffer_capacity,
            record_wakeups=record_wakeups,
        )
        self.segments: List[TraceSegment] = []
        self._init_events: List[TraceEvent] = []
        self._segment_start: Optional[int] = None
        self._runtime_started_ts: Optional[int] = None

    # -- TR-IN ------------------------------------------------------------

    def start_init(self) -> None:
        self.init_tracer.start()

    def stop_init(self) -> None:
        self._init_events.extend(self.init_tracer.poll())
        self.init_tracer.stop()

    # -- TR-RT + TR-KN ------------------------------------------------------

    def start_runtime(self) -> None:
        self.rt_tracer.start()
        self.kernel_tracer.start()
        self._segment_start = self.world.now
        if self._runtime_started_ts is None:
            self._runtime_started_ts = self.world.now

    def rotate(self) -> TraceSegment:
        """Save the current buffers as a segment; keep collecting."""
        if self._segment_start is None:
            raise RuntimeError("runtime tracers not started")
        segment = TraceSegment(
            index=len(self.segments),
            start_ts=self._segment_start,
            stop_ts=self.world.now,
            ros_events=self.rt_tracer.poll(),
            sched_events=self.kernel_tracer.poll(),
            wakeup_events=self.kernel_tracer.poll_wakeups(),
        )
        self.segments.append(segment)
        self._segment_start = self.world.now
        return segment

    def stop_runtime(self) -> None:
        if self._segment_start is not None:
            self.rotate()
            self._segment_start = None
        self.rt_tracer.stop()
        self.kernel_tracer.stop()

    # -- results ----------------------------------------------------------

    def pid_map(self) -> Dict[int, str]:
        self._init_events.extend(self.init_tracer.poll())
        return {
            e.pid: e.get("node")
            for e in self._init_events
            if e.probe == P1_CREATE_NODE
        }

    def trace(self) -> Trace:
        """Merge the init events and all segments into one trace."""
        trace = Trace(pid_map=self.pid_map())
        trace.ros_events.extend(self._init_events)
        for segment in self.segments:
            trace.ros_events.extend(segment.ros_events)
            trace.sched_events.extend(segment.sched_events)
            trace.wakeup_events.extend(segment.wakeup_events)
        if self.segments:
            trace.start_ts = self.segments[0].start_ts
            trace.stop_ts = self.segments[-1].stop_ts
        return trace.sort()

"""Frozen pre-optimization copy (perf baseline; see repro._legacy). Do not optimize.

The paper's probe suite: Table I (P1..P16) as eBPF programs.

Each probe is an entry/exit handler attached to a middleware symbol; it
traverses the probed function's argument structures (node, timer,
subscription, service, client, writer objects) to extract exactly the
fields Table I lists, then submits a :class:`TraceEvent` into a perf
buffer.

The srcTS technique of Sec. III-A is reproduced literally for
``rmw_take_int`` / ``rmw_take_request`` / ``rmw_take_response``: the
source timestamp is written *by reference* into the ``rmw_message_info``
out-parameter and is unknown at function entry, so the entry probe
stashes the reference in a BPF map keyed by PID and the exit probe reads
the value through the stashed reference before submitting the event.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .bpf import Bpf, BpfMap, PerfBuffer
from ...tracing.events import (
    P1_CREATE_NODE,
    P2_TIMER_START,
    P3_TIMER_CALL,
    P4_TIMER_END,
    P5_SUB_START,
    P6_TAKE,
    P7_SYNC_OP,
    P8_SUB_END,
    P9_SERVICE_START,
    P10_TAKE_REQUEST,
    P11_SERVICE_END,
    P12_CLIENT_START,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P15_CLIENT_END,
    P16_DDS_WRITE,
    TraceEvent,
)
from .overhead import event_size_bytes
from .symbols import ProbeContext

#: Name of the BPF map sharing discovered ROS2 PIDs between the
#: ROS2-INIT tracer and the kernel tracer (Sec. III-B).
ROS2_PIDS_MAP = "ros2_pids"

#: Name of the BPF map used by the srcTS entry/exit pointer stash.
SRCTS_STASH_MAP = "srcts_stash"


def _submit(buffer: PerfBuffer, event: TraceEvent) -> None:
    buffer.submit(event, size=event_size_bytes(event))


class InitProbes:
    """P1: node-creation probe used by the ROS2-INIT tracer."""

    def __init__(self, bpf: Bpf, buffer: PerfBuffer):
        self.bpf = bpf
        self.buffer = buffer
        self.pid_map: BpfMap = bpf.get_table(ROS2_PIDS_MAP)

    def attach(self) -> None:
        self.bpf.attach_uprobe(
            "rmw_cyclonedds_cpp:rmw_create_node", self._on_create_node, name="P1"
        )

    def _on_create_node(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        node = args[0]
        # Share the PID with the kernel tracer through the BPF map.
        self.pid_map.update(ctx.pid, 1)
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P1_CREATE_NODE,
                data={"node": node.name},
            ),
        )


class RuntimeProbes:
    """P2..P16: the runtime probes used by the ROS2-RT tracer."""

    def __init__(self, bpf: Bpf, buffer: PerfBuffer):
        self.bpf = bpf
        self.buffer = buffer
        self.srcts_stash: BpfMap = bpf.get_table(SRCTS_STASH_MAP)

    def attach(self) -> None:
        attach_u = self.bpf.attach_uprobe
        attach_r = self.bpf.attach_uretprobe
        # Timer callbacks: P2 (start), P3 (ID), P4 (end).
        attach_u("rclcpp:execute_timer", self._timer_entry, name="P2")
        attach_u("rcl:rcl_timer_call", self._timer_call, name="P3")
        attach_r("rclcpp:execute_timer", self._timer_exit, name="P4")
        # Subscriber callbacks: P5 (start), P6 (take), P7 (sync), P8 (end).
        attach_u("rclcpp:execute_subscription", self._sub_entry, name="P5")
        attach_u("rmw_cyclonedds_cpp:rmw_take_int", self._take_entry, name="P6.entry")
        attach_r("rmw_cyclonedds_cpp:rmw_take_int", self._take_int_exit, name="P6")
        attach_u("message_filters:operator()", self._sync_operator, name="P7")
        attach_r("rclcpp:execute_subscription", self._sub_exit, name="P8")
        # Service callbacks: P9 (start), P10 (take request), P11 (end).
        attach_u("rclcpp:execute_service", self._service_entry, name="P9")
        attach_u(
            "rmw_cyclonedds_cpp:rmw_take_request", self._take_entry, name="P10.entry"
        )
        attach_r(
            "rmw_cyclonedds_cpp:rmw_take_request", self._take_request_exit, name="P10"
        )
        attach_r("rclcpp:execute_service", self._service_exit, name="P11")
        # Client callbacks: P12 (start), P13 (take response), P14
        # (dispatch decision), P15 (end).
        attach_u("rclcpp:execute_client", self._client_entry, name="P12")
        attach_u(
            "rmw_cyclonedds_cpp:rmw_take_response", self._take_entry, name="P13.entry"
        )
        attach_r(
            "rmw_cyclonedds_cpp:rmw_take_response", self._take_response_exit, name="P13"
        )
        attach_r(
            "rclcpp:take_type_erased_response", self._take_type_erased_exit, name="P14"
        )
        attach_r("rclcpp:execute_client", self._client_exit, name="P15")
        # DDS writes: P16.
        attach_u("cyclonedds:dds_write_impl", self._dds_write, name="P16")

    # -- execute_* start/end ---------------------------------------------

    def _timer_entry(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P2_TIMER_START))

    def _timer_exit(self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P4_TIMER_END))

    def _sub_entry(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P5_SUB_START))

    def _sub_exit(self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P8_SUB_END))

    def _service_entry(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P9_SERVICE_START))

    def _service_exit(self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P11_SERVICE_END))

    def _client_entry(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P12_CLIENT_START))

    def _client_exit(self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any) -> None:
        _submit(self.buffer, TraceEvent(ts=ctx.ts, pid=ctx.pid, probe=P15_CLIENT_END))

    # -- timer ID ----------------------------------------------------------

    def _timer_call(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        timer = args[0]
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P3_TIMER_CALL,
                data={"cb_id": timer.cb_id},
            ),
        )

    # -- the srcTS entry/exit stash ----------------------------------------

    def _take_entry(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        """Entry of any rmw_take_*: the srcTS out-parameter is not filled
        yet; stash its address (here: the object reference), keyed by PID."""
        msg_info = args[-1]
        self.srcts_stash.update(ctx.pid, msg_info)

    def _pop_src_ts(self, ctx: ProbeContext) -> Optional[int]:
        msg_info = self.srcts_stash.lookup(ctx.pid)
        self.srcts_stash.delete(ctx.pid)
        return None if msg_info is None else msg_info.src_ts

    def _take_int_exit(self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any) -> None:
        sub = args[0]
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P6_TAKE,
                data={
                    "cb_id": sub.cb_id,
                    "topic": sub.topic,
                    "src_ts": self._pop_src_ts(ctx),
                },
            ),
        )

    def _take_request_exit(
        self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any
    ) -> None:
        service = args[0]
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P10_TAKE_REQUEST,
                data={
                    "cb_id": service.cb_id,
                    "topic": service.request_topic,
                    "service": service.name,
                    "src_ts": self._pop_src_ts(ctx),
                },
            ),
        )

    def _take_response_exit(
        self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any
    ) -> None:
        client = args[0]
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P13_TAKE_RESPONSE,
                data={
                    "cb_id": client.cb_id,
                    "topic": client.reader.topic.name,
                    "service": client.service_name,
                    "src_ts": self._pop_src_ts(ctx),
                },
            ),
        )

    def _take_type_erased_exit(
        self, ctx: ProbeContext, args: Tuple[Any, ...], ret: Any
    ) -> None:
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P14_TAKE_TYPE_ERASED,
                data={"will_dispatch": int(bool(ret))},
            ),
        )

    # -- sync + writes ---------------------------------------------------

    def _sync_operator(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        sub = args[0]
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P7_SYNC_OP,
                data={"cb_id": sub.cb_id},
            ),
        )

    def _dds_write(self, ctx: ProbeContext, args: Tuple[Any, ...]) -> None:
        writer, _payload, src_ts = args
        _submit(
            self.buffer,
            TraceEvent(
                ts=ctx.ts,
                pid=ctx.pid,
                probe=P16_DDS_WRITE,
                data={
                    "topic": writer.topic.name,
                    "src_ts": src_ts,
                    "kind": writer.kind,
                },
            ),
        )

"""Frozen pre-optimization copy (perf baseline; see repro._legacy). Do not optimize.

The three tracers of the proposed framework (Fig. 1).

* :class:`Ros2InitTracer` (TR-IN) -- attaches P1 and records node
  creation, discovering the node-name -> PID mapping.  It publishes the
  discovered PIDs into the ``ros2_pids`` BPF map consumed by the kernel
  tracer's in-kernel filter.
* :class:`Ros2RtTracer` (TR-RT) -- attaches P2..P16 and records the
  runtime ROS2 events.
* :class:`KernelTracer` (TR-KN) -- attaches to ``sched:sched_switch``
  and records only events involving ROS2 PIDs (unless filtering is
  disabled, the configuration used by the filtering ablation; the paper
  reports that PID filtering cuts the kernel-trace footprint by 3x or
  more).

Tracers attach on ``start`` and detach on ``stop``; their perf buffers
can be drained (``poll``) any number of times in between, which is what
the segmented collection of Fig. 2 builds on.
"""

from __future__ import annotations

from typing import Any, List

from .bpf import Bpf, BpfProgram, PerfBuffer
from ...tracing.events import TraceEvent
from .overhead import SCHED_EVENT_BYTES
from .probes import ROS2_PIDS_MAP, InitProbes, RuntimeProbes


class _TracerBase:
    """Attach/detach lifecycle shared by all tracers."""

    def __init__(self) -> None:
        self._programs: List[BpfProgram] = []
        self.running = False

    def start(self) -> None:
        if self.running:
            raise RuntimeError(f"{type(self).__name__} already running")
        self.running = True
        self._attach()

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        for program in self._programs:
            if program._detach is not None:
                program._detach()
                program._detach = None
        self._programs.clear()

    def _attach(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Ros2InitTracer(_TracerBase):
    """TR-IN: node-initialization tracer (probe P1)."""

    def __init__(self, bpf: Bpf, buffer_capacity: int = 1 << 12):
        super().__init__()
        self.bpf = bpf
        self.buffer: PerfBuffer = bpf.open_perf_buffer("ros2_init", buffer_capacity)
        self._probes = InitProbes(bpf, self.buffer)

    def _attach(self) -> None:
        before = len(self.bpf.programs)
        self._probes.attach()
        self._programs = self.bpf.programs[before:]

    def poll(self) -> List[TraceEvent]:
        return self.buffer.poll()

    def discovered_pids(self) -> List[int]:
        """PIDs currently in the shared ``ros2_pids`` map."""
        return [pid for pid, _ in self.bpf.get_table(ROS2_PIDS_MAP).items()]


class Ros2RtTracer(_TracerBase):
    """TR-RT: runtime ROS2 tracer (probes P2..P16)."""

    def __init__(self, bpf: Bpf, buffer_capacity: int = 1 << 20):
        super().__init__()
        self.bpf = bpf
        self.buffer: PerfBuffer = bpf.open_perf_buffer("ros2_rt", buffer_capacity)
        self._probes = RuntimeProbes(bpf, self.buffer)

    def _attach(self) -> None:
        before = len(self.bpf.programs)
        self._probes.attach()
        self._programs = self.bpf.programs[before:]

    def poll(self) -> List[TraceEvent]:
        return self.buffer.poll()


class KernelTracer(_TracerBase):
    """TR-KN: sched_switch tracer with in-kernel PID filtering."""

    def __init__(
        self,
        bpf: Bpf,
        filtered: bool = True,
        buffer_capacity: int = 1 << 21,
        record_wakeups: bool = False,
    ):
        super().__init__()
        self.bpf = bpf
        self.filtered = filtered
        self.record_wakeups = record_wakeups
        self.buffer: PerfBuffer = bpf.open_perf_buffer("sched", buffer_capacity)
        self.wakeup_buffer: PerfBuffer = bpf.open_perf_buffer(
            "sched_wakeup", buffer_capacity
        )
        self.pid_map = bpf.get_table(ROS2_PIDS_MAP)
        #: All tracepoint firings, including filtered-out ones -- the
        #: denominator of the footprint-reduction ablation.
        self.seen = 0

    def _attach(self) -> None:
        program = self.bpf.attach_tracepoint(
            "sched:sched_switch", self._on_switch, name="TRKN.sched_switch"
        )
        self._programs = [program]
        if self.record_wakeups:
            # The paper's proposed extension (Sec. VII): trace
            # sched_wakeup to measure callback waiting times.
            self._programs.append(
                self.bpf.attach_tracepoint(
                    "sched:sched_wakeup", self._on_wakeup, name="TRKN.sched_wakeup"
                )
            )

    def _on_switch(self, record: Any) -> None:
        self.seen += 1
        if self.filtered:
            if record.prev_pid not in self.pid_map and record.next_pid not in self.pid_map:
                return
        self.buffer.submit(record, size=SCHED_EVENT_BYTES)

    def _on_wakeup(self, record: Any) -> None:
        if self.filtered and record.pid not in self.pid_map:
            return
        self.wakeup_buffer.submit(record, size=SCHED_EVENT_BYTES)

    def poll(self) -> List[Any]:
        return self.buffer.poll()

    def poll_wakeups(self) -> List[Any]:
        return self.wakeup_buffer.poll()

"""Tracing-overhead accounting (trace size and probe CPU usage).

The paper reports two overhead figures for a 60 s SYN+AVP run: ~9 MB of
trace data, and probe CPU usage of 0.008 cores (from ``bpftool``), i.e.
~0.3 % of the application load.  This module computes the equivalents:

* per-event encoded sizes (fixed header + payload fields) summed over
  the perf-buffer traffic,
* probe CPU cores from the per-program ``run_time_ns`` counters divided
  by elapsed time,
* application load from the scheduler's per-thread CPU accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

#: Fixed per-event header: timestamp (8) + pid (4) + probe id (4) +
#: perf record framing (~16), mirroring compact binary trace encodings.
EVENT_HEADER_BYTES = 32

#: Encoded size of a sched_switch record (two pids, prios, states, comms).
SCHED_EVENT_BYTES = 60


def event_size_bytes(event: Any) -> int:
    """Encoded size of a userspace :class:`TraceEvent`."""
    size = EVENT_HEADER_BYTES
    data = getattr(event, "data", None) or {}
    for key, value in data.items():
        if isinstance(value, str):
            size += len(value) + 1
        else:
            size += 8
    return size


@dataclass(frozen=True)
class OverheadReport:
    """Overhead of one tracing run, in the units the paper reports."""

    elapsed_ns: int
    trace_bytes: int
    probe_run_cnt: int
    probe_time_ns: int
    app_cpu_ns: int

    @property
    def trace_mb(self) -> float:
        return self.trace_bytes / 1e6

    @property
    def probe_cores(self) -> float:
        """Average CPU cores consumed by the probes (bpftool's view)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.probe_time_ns / self.elapsed_ns

    @property
    def app_cores(self) -> float:
        """Average CPU cores consumed by the traced applications."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.app_cpu_ns / self.elapsed_ns

    @property
    def probe_share_of_app(self) -> float:
        """Probe load relative to application load (the paper's 0.3 %)."""
        if self.app_cpu_ns <= 0:
            return 0.0
        return self.probe_time_ns / self.app_cpu_ns

    def summary(self) -> str:
        return (
            f"elapsed {self.elapsed_ns / 1e9:.1f}s: "
            f"{self.trace_mb:.2f} MB trace data, "
            f"{self.probe_run_cnt} probe firings using "
            f"{self.probe_cores:.4f} CPU cores "
            f"({100 * self.probe_share_of_app:.2f}% of app load "
            f"{self.app_cores:.3f} cores)"
        )


def measure_overhead(
    bpfs: Iterable[Any],
    world,
    elapsed_ns: int,
    app_pids: Optional[Iterable[int]] = None,
    extra_trace_bytes: int = 0,
) -> OverheadReport:
    """Build an :class:`OverheadReport` from BPF front ends and the world.

    Parameters
    ----------
    bpfs:
        The :class:`~repro.tracing.bpf.Bpf` instances whose programs and
        perf buffers took part in the run.
    world:
        The simulated machine (for per-thread CPU accounting).
    elapsed_ns:
        Traced wall-clock duration.
    app_pids:
        PIDs counted as application load; default: every spawned thread.
    extra_trace_bytes:
        Additional stored bytes (e.g. kernel trace encoded separately).
    """
    bpfs = list(bpfs)
    trace_bytes = extra_trace_bytes + sum(
        buffer.bytes_submitted for bpf in bpfs for buffer in bpf.perf_buffers.values()
    )
    probe_run_cnt = sum(bpf.total_run_cnt() for bpf in bpfs)
    probe_time_ns = sum(bpf.total_run_time_ns() for bpf in bpfs)
    threads = world.scheduler.threads()
    if app_pids is not None:
        wanted = set(app_pids)
        threads = [t for t in threads if t.pid in wanted]
    app_cpu_ns = sum(t.cpu_time for t in threads)
    return OverheadReport(
        elapsed_ns=elapsed_ns,
        trace_bytes=trace_bytes,
        probe_run_cnt=probe_run_cnt,
        probe_time_ns=probe_time_ns,
        app_cpu_ns=app_cpu_ns,
    )

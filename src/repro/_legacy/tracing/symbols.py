"""Function-symbol table: the attachment surface for uprobes.

On the real system, eBPF uprobes patch a breakpoint into the entry (and,
for uretprobes, the return trampoline) of a function inside a shared
object such as ``librclcpp.so``.  The traced libraries are *not modified
or recompiled* -- the paper's central argument against LTTng-style
instrumentation.

The simulator reproduces that contract: every middleware function that
would live in a ``.so`` is registered here under its ``lib:function``
name, and executes through :meth:`SymbolTable.call` /
:meth:`SymbolTable.call_gen` -- the analogue of the uprobe trampoline.
Probes attach and detach at runtime by symbol name; the middleware code
has no knowledge of which probes, if any, are attached.  Probe handlers
receive the function's live arguments (entry) or return value (exit),
exactly the information flow of real uprobes/uretprobes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: handler(ctx, args) for entry probes.
EntryHandler = Callable[["ProbeContext", Tuple[Any, ...]], None]
#: handler(ctx, args, retval) for exit probes.
ExitHandler = Callable[["ProbeContext", Tuple[Any, ...], Any], None]


class SymbolLookupError(KeyError):
    """Raised when attaching to / invoking an unknown symbol, like a
    failed ``bcc`` symbol resolution."""


@dataclass(frozen=True)
class ProbeContext:
    """Per-firing context: what ``bpf_get_current_*`` helpers expose."""

    ts: int
    pid: int
    cpu: Optional[int]
    comm: str


@dataclass
class Symbol:
    """A probeable function in a simulated shared object."""

    lib: str
    func: str
    entry_probes: List[EntryHandler] = field(default_factory=list)
    exit_probes: List[ExitHandler] = field(default_factory=list)

    @property
    def qualified(self) -> str:
        return f"{self.lib}:{self.func}"


class SymbolTable:
    """Registry of middleware symbols plus the trampoline dispatcher.

    Parameters
    ----------
    context_provider:
        Zero-argument callable returning the current :class:`ProbeContext`
        (simulated clock + running thread).  Supplied by the ``World``.
    """

    def __init__(self, context_provider: Callable[[], ProbeContext]):
        self._symbols: Dict[str, Symbol] = {}
        self._context_provider = context_provider

    # -- registration (done by the middleware "shared objects") ----------

    def register(self, lib: str, func: str) -> Symbol:
        """Register a probeable function.  Idempotent per name."""
        qualified = f"{lib}:{func}"
        symbol = self._symbols.get(qualified)
        if symbol is None:
            symbol = Symbol(lib=lib, func=func)
            self._symbols[qualified] = symbol
        return symbol

    def lookup(self, qualified: str) -> Symbol:
        try:
            return self._symbols[qualified]
        except KeyError:
            raise SymbolLookupError(
                f"symbol {qualified!r} not found in any loaded library "
                f"(known: {sorted(self._symbols)})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._symbols)

    # -- probe attachment -------------------------------------------------

    def attach_entry(self, qualified: str, handler: EntryHandler) -> Callable[[], None]:
        symbol = self.lookup(qualified)
        symbol.entry_probes.append(handler)

        def detach() -> None:
            if handler in symbol.entry_probes:
                symbol.entry_probes.remove(handler)

        return detach

    def attach_exit(self, qualified: str, handler: ExitHandler) -> Callable[[], None]:
        symbol = self.lookup(qualified)
        symbol.exit_probes.append(handler)

        def detach() -> None:
            if handler in symbol.exit_probes:
                symbol.exit_probes.remove(handler)

        return detach

    # -- trampolines -------------------------------------------------------

    def call(self, qualified: str, fn: Callable[..., Any], *args: Any) -> Any:
        """Invoke a plain middleware function through the probe trampoline."""
        symbol = self.lookup(qualified)
        if symbol.entry_probes:
            ctx = self._context_provider()
            for probe in list(symbol.entry_probes):
                probe(ctx, args)
        result = fn(*args)
        if symbol.exit_probes:
            ctx = self._context_provider()
            for probe in list(symbol.exit_probes):
                probe(ctx, args, result)
        return result

    def call_gen(self, qualified: str, fn: Callable[..., Any], *args: Any):
        """Invoke a *generator* middleware function through the trampoline.

        Entry probes fire when the traced thread enters the function; exit
        probes fire at its return -- which, for functions that contain
        scheduling points (``execute_*``), happens at a later simulated
        time.  Use with ``yield from`` inside an activity.
        """
        symbol = self.lookup(qualified)
        if symbol.entry_probes:
            ctx = self._context_provider()
            for probe in list(symbol.entry_probes):
                probe(ctx, args)
        result = yield from fn(*args)
        if symbol.exit_probes:
            ctx = self._context_provider()
            for probe in list(symbol.exit_probes):
                probe(ctx, args, result)
        return result

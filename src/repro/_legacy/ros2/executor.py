"""Frozen pre-optimization copy (perf baseline; see repro._legacy.ros2). Do not optimize.

The single-threaded ROS2 executor as it stood before the flattened
dispatch loop: every dispatch routes through ``SymbolTable.call_gen``
and a nested ``yield from`` chain (``activity`` -> ``call_gen`` ->
``_execute_*`` -> ``_run_callback`` -> user callback).

One executor thread per node dispatches all its callbacks sequentially:
a callback runs from start to end before the executor looks at the ready
set again (the model assumed in Sec. II-A).  Dispatch routes through the
middleware symbols of Table I, so attached probes observe:

* ``execute_timer`` / ``execute_subscription`` / ``execute_service`` /
  ``execute_client`` entry and exit (P2/P4, P5/P8, P9/P11, P12/P15),
* ``rcl_timer_call`` (P3), ``rmw_take_int`` (P6), ``rmw_take_request``
  (P10), ``rmw_take_response`` (P13), ``take_type_erased_response``
  (P14) and ``message_filters:operator()`` (P7) inside them.

Ready-set polling order mirrors rclcpp's wait-set ordering: timers,
then subscriptions, then services, then clients.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ...sim.threads import Block, Compute
from ...sim.workload import WorkloadModel
from ...ros2.message_filters import SYNC_OPERATOR_SYMBOL
from ...ros2.subscription import MessageInfo
from ...ros2.service import ResponseEnvelope


class CallbackApi:
    """Facilities available to user callbacks while they run.

    Instances are created per dispatch and passed as the first argument
    to every user callback.
    """

    def __init__(self, node):
        self.node = node
        self.world = node.world

    @property
    def now(self) -> int:
        """Current simulated time (ns)."""
        return self.world.now

    def compute(self, duration_ns: int) -> Compute:
        """Request ``duration_ns`` of CPU time: ``yield api.compute(...)``."""
        return Compute(duration_ns)

    def work(self, model: WorkloadModel) -> Compute:
        """Request CPU time drawn from a workload model."""
        return Compute(model.sample(self.world.rng))

    def publish(self, publisher, msg: Any = None) -> int:
        """Publish on a topic from within the running callback."""
        return publisher.publish(msg)

    def call(self, client, data: Any = None) -> int:
        """Send an asynchronous service request from the running callback."""
        return client.call_async(data)


class SingleThreadedExecutor:
    """Dispatch loop bound to one node (and one OS thread)."""

    def __init__(self, node):
        self.node = node
        self.dispatches = 0

    # ------------------------------------------------------------------

    def notify(self) -> None:
        """Wake the executor thread: new data or a timer tick."""
        thread = self.node._thread
        if thread is not None:
            self.node.world.scheduler.wakeup(thread)

    # ------------------------------------------------------------------

    def activity(self):
        """The executor thread's activity generator."""
        world = self.node.world
        # Node init: announce name->PID (ROS2-INIT tracer's P1).
        world.symbols.call(
            "rmw_cyclonedds_cpp:rmw_create_node", self.node._rmw_create_node, self.node
        )
        for timer in self.node.timers:
            timer._start()
        while True:
            item = self._pick_ready()
            if item is None:
                yield Block()
                continue
            self.dispatches += 1
            kind, entity = item
            if kind == "timer":
                yield from world.symbols.call_gen(
                    "rclcpp:execute_timer", self._execute_timer, entity
                )
            elif kind == "subscription":
                yield from world.symbols.call_gen(
                    "rclcpp:execute_subscription", self._execute_subscription, entity
                )
            elif kind == "service":
                yield from world.symbols.call_gen(
                    "rclcpp:execute_service", self._execute_service, entity
                )
            else:
                yield from world.symbols.call_gen(
                    "rclcpp:execute_client", self._execute_client, entity
                )

    def _pick_ready(self) -> Optional[tuple]:
        node = self.node
        for timer in node.timers:
            if timer.ready:
                return ("timer", timer)
        for sub in node.subscriptions:
            if sub.reader.queue:
                return ("subscription", sub)
        for service in node.services:
            if service.reader.queue:
                return ("service", service)
        for client in node.clients:
            if client.reader.queue:
                return ("client", client)
        return None

    # -- per-kind dispatch bodies (the probed execute_* functions) -----------

    def _execute_timer(self, timer):
        world = self.node.world
        world.symbols.call("rcl:rcl_timer_call", timer._rcl_call, timer)
        api = CallbackApi(self.node)
        yield from self._run_callback(timer.callback, api, None)

    def _execute_subscription(self, sub):
        world = self.node.world
        msg_info = MessageInfo()
        payload = world.symbols.call(
            "rmw_cyclonedds_cpp:rmw_take_int", sub._rmw_take, sub, msg_info
        )
        api = CallbackApi(self.node)
        if sub.sync_filter is not None:
            yield from world.symbols.call_gen(
                SYNC_OPERATOR_SYMBOL, sub.sync_filter.add, sub, payload, api
            )
        else:
            yield from self._run_callback(sub.callback, api, payload)

    def _execute_service(self, service):
        world = self.node.world
        msg_info = MessageInfo()
        request = world.symbols.call(
            "rmw_cyclonedds_cpp:rmw_take_request",
            service._rmw_take_request,
            service,
            msg_info,
        )
        api = CallbackApi(self.node)
        response_data = yield from self._run_callback(
            service.handler, api, request.data
        )
        envelope = ResponseEnvelope(
            client_id=request.client_id, seq=request.seq, data=response_data
        )
        world.dds.write(service.response_writer, envelope)

    def _execute_client(self, client):
        world = self.node.world
        msg_info = MessageInfo()
        envelope = world.symbols.call(
            "rmw_cyclonedds_cpp:rmw_take_response",
            client._rmw_take_response,
            client,
            msg_info,
        )
        dispatched = world.symbols.call(
            "rclcpp:take_type_erased_response", client._take_type_erased, envelope
        )
        if dispatched:
            api = CallbackApi(self.node)
            yield from self._run_callback(client.callback, api, envelope.data)

    # ------------------------------------------------------------------

    @staticmethod
    def _run_callback(callback: Optional[Callable], api: CallbackApi, msg: Any):
        """Run a user callback: plain function or compute-yielding
        generator; returns the callback's return value."""
        if callback is None:
            return None
        result = callback(api, msg)
        if result is not None and hasattr(result, "__next__"):
            value = yield from result
            return value
        return result

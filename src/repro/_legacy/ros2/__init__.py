"""Frozen pre-optimization ROS2 executor + DDS bus (PR 10 freeze).

Verbatim copies of :mod:`repro.ros2.executor` and :mod:`repro.ros2.dds`
as they stood *before* the simulator hot-loop overhaul (flattened
executor dispatch, per-write DDS delivery batching).  They extend the
PR-2 freeze in :mod:`repro._legacy`: the legacy ``World`` wires them in
so the perf harness and the equivalence pins compare the optimized
stack against the genuinely unoptimized call chains.

Shared *data* classes (``Compute``/``Block``, ``MessageInfo``,
``ResponseEnvelope``, QoS profiles) are imported from the production
tree -- they are plain containers, and the live scheduler dispatches on
their exact types.  Do not optimize anything in this package.
"""

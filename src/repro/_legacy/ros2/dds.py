"""Frozen pre-optimization copy (perf baseline; see repro._legacy.ros2). Do not optimize.

The simulated DDS layer as it stood before per-write delivery batching:
``_dds_write_impl`` schedules one kernel event -- and allocates one
``functools.partial`` closure -- per (writer, reader) pair, and the
reader queue drops oldest samples with an explicit Python-level length
check instead of a bounded ring.

All ROS2 communication -- topics, service requests and service responses
-- flows through this bus, mirroring the layered architecture described
in Sec. II-A.  The single choke point is ``dds_write_impl``, the function
the paper probes as **P16**.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, Deque, Dict, List, NamedTuple, Optional

from ...ros2.qos import DEFAULT_QOS, QoSProfile

#: Symbol name of the probed write function (Table I, P16).
DDS_WRITE_SYMBOL = "cyclonedds:dds_write_impl"


@dataclass
class Msg:
    """A ROS2 message (see :class:`repro.ros2.dds.Msg`)."""

    stamp: Optional[int] = None
    data: Any = None


class Sample(NamedTuple):
    """A sample as it travels on the wire."""

    payload: Any
    src_ts: int
    kind: str  # "data" | "request" | "response"
    writer_pid: int


class DdsReader:
    """A DataReader bound to one topic, with a bounded KEEP_LAST queue."""

    def __init__(
        self,
        topic: "DdsTopic",
        qos: QoSProfile,
        listener: Callable[["DdsReader"], None],
        kind: str = "data",
    ):
        self.topic = topic
        self.qos = qos
        self.listener = listener
        self.kind = kind
        self.queue: Deque[Sample] = deque()
        self.dropped = 0
        self.received = 0

    @property
    def has_data(self) -> bool:
        return bool(self.queue)

    def deliver(self, sample: Sample) -> None:
        self.received += 1
        if len(self.queue) >= self.qos.depth:
            self.queue.popleft()
            self.dropped += 1
        self.queue.append(sample)
        self.listener(self)

    def take(self) -> Sample:
        if not self.queue:
            raise RuntimeError(f"take() on empty reader for {self.topic.name!r}")
        return self.queue.popleft()


class DdsWriter:
    """A DataWriter bound to one topic."""

    def __init__(self, bus: "DdsBus", topic: "DdsTopic", kind: str = "data"):
        self.bus = bus
        self.topic = topic
        self.kind = kind
        self.written = 0


class DdsTopic:
    """A named topic connecting writers to readers."""

    def __init__(self, name: str):
        self.name = name
        self.readers: List[DdsReader] = []
        self.writers: List[DdsWriter] = []


class DdsBus:
    """The machine-wide DDS domain."""

    def __init__(self, world, latency_ns: int = 50_000):
        if latency_ns < 0:
            raise ValueError("latency must be >= 0")
        self.world = world
        self.latency_ns = latency_ns
        self.topics: Dict[str, DdsTopic] = {}
        self.total_writes = 0
        # The probeable symbol of this "shared object".
        world.symbols.register("cyclonedds", "dds_write_impl")

    def topic(self, name: str) -> DdsTopic:
        top = self.topics.get(name)
        if top is None:
            top = DdsTopic(name)
            self.topics[name] = top
        return top

    def create_writer(self, topic_name: str, kind: str = "data") -> DdsWriter:
        topic = self.topic(topic_name)
        writer = DdsWriter(self, topic, kind=kind)
        topic.writers.append(writer)
        return writer

    def create_reader(
        self,
        topic_name: str,
        listener: Callable[[DdsReader], None],
        qos: QoSProfile = DEFAULT_QOS,
        kind: str = "data",
    ) -> DdsReader:
        topic = self.topic(topic_name)
        reader = DdsReader(topic, qos, listener, kind=kind)
        topic.readers.append(reader)
        return reader

    # ------------------------------------------------------------------

    def write(self, writer: DdsWriter, payload: Any) -> int:
        """Publish ``payload`` through the probed ``dds_write_impl``."""
        src_ts = self.world.now
        self.world.symbols.call(
            DDS_WRITE_SYMBOL, self._dds_write_impl, writer, payload, src_ts
        )
        return src_ts

    def _dds_write_impl(self, writer: DdsWriter, payload: Any, src_ts: int) -> None:
        writer.written += 1
        self.total_writes += 1
        pid = self._current_pid()
        sample = Sample(payload, src_ts, writer.kind, pid)
        schedule_after = self.world.kernel.schedule_after
        latency = self.latency_ns
        for reader in writer.topic.readers:
            schedule_after(latency, partial(reader.deliver, sample))

    def _current_pid(self) -> int:
        thread = self.world.scheduler._advancing
        return thread.pid if thread is not None else 0

"""Frozen pre-TraceIndex Alg. 1 (perf baseline / equivalence reference).

This is the extraction pipeline exactly as it stood before the
single-pass :class:`repro.core.index.TraceIndex` layer: a full-stream
re-sort per PID, an ``id(event)``-keyed :class:`EventIndex`, and the
object-walking :class:`SchedIndex` of :mod:`repro._legacy.exec_time`.
The golden equivalence tests pin the optimized pipeline to this one;
the perf harness measures speedups against it.  Do not optimize.

Alg. 1: extract callback attributes for each ROS2 node from traces.

The algorithm exploits the single-threaded executor model: within one
PID, every event between a CB-start and the next CB-end describes one
execution of one callback.  It walks the node's ROS2 events in
chronological order, assembling :class:`CallbackInstance` objects and
folding them into a :class:`CBList`.

Cross-node lookups follow the paper:

* **FindCaller** (service requests) -- the ``dds_write`` event with the
  same topic and source timestamp as the ``take_request`` identifies the
  caller's PID; the ``timer_call``/``take`` event preceding that write
  (and following the caller's last CB start) provides the caller CB's ID.
* **FindClient** (service responses) -- the ``take_response`` events
  with the same topic and source timestamp as the ``dds_write`` locate
  the candidate clients; the chronologically next
  ``take_type_erased_response`` per candidate PID tells which client
  actually dispatched.

Topic names on service request/response paths are qualified with the
caller/client CB ID (the paper's concatenation), which is what later
splits a shared service into per-caller vertices.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..tracing.events import (
    P3_TIMER_CALL,
    P6_TAKE,
    P7_SYNC_OP,
    P10_TAKE_REQUEST,
    P13_TAKE_RESPONSE,
    P14_TAKE_TYPE_ERASED,
    P16_DDS_WRITE,
    TraceEvent,
)
from ..tracing.session import Trace
from .exec_time import SchedIndex
from ..core.records import CallbackInstance, CBList

#: Separator used when qualifying a service topic with a CB id.
TOPIC_ID_SEPARATOR = "#"


def cat(topic: str, cb_id: Optional[str]) -> str:
    """The paper's topic-name concatenation (unknown ids stay visible)."""
    return f"{topic}{TOPIC_ID_SEPARATOR}{cb_id if cb_id is not None else '?'}"


_ID_EVENT_PROBES = {P3_TIMER_CALL, P6_TAKE, P10_TAKE_REQUEST, P13_TAKE_RESPONSE}


class EventIndex:
    """Cross-node lookup structures shared by all per-PID extractions."""

    def __init__(self, ros_events: Sequence[TraceEvent]):
        events = sorted(ros_events, key=lambda e: e.ts)
        #: (topic, src_ts) -> dds_write events
        self._writes: Dict[Tuple[str, int], List[TraceEvent]] = {}
        #: Cursor per key: two periodic callers can write the same request
        #: topic at the same nanosecond, so the k-th take of a key is
        #: matched with the k-th write (FIFO delivery order).
        self._caller_cursor: Dict[Tuple[str, int], int] = {}
        #: (topic, src_ts) -> take_response events
        self._take_responses: Dict[Tuple[str, int], List[TraceEvent]] = {}
        #: id(write event) -> CB id active in the writer at write time
        self._writer_cb: Dict[int, Optional[str]] = {}
        #: id(take_response event) -> will_dispatch of the next P14 (same PID)
        self._dispatch_after: Dict[int, bool] = {}

        current_cb: Dict[int, Optional[str]] = {}
        pending_p13: Dict[int, List[TraceEvent]] = {}
        for event in events:
            pid = event.pid
            if event.is_cb_start():
                current_cb[pid] = None
            elif event.probe in _ID_EVENT_PROBES:
                current_cb[pid] = event.get("cb_id")
                if event.probe == P13_TAKE_RESPONSE:
                    pending_p13.setdefault(pid, []).append(event)
                    key = (event.get("topic"), event.get("src_ts"))
                    self._take_responses.setdefault(key, []).append(event)
                elif event.probe == P6_TAKE:
                    pass
            if event.probe == P16_DDS_WRITE:
                self._writer_cb[id(event)] = current_cb.get(pid)
                key = (event.get("topic"), event.get("src_ts"))
                self._writes.setdefault(key, []).append(event)
            elif event.probe == P14_TAKE_TYPE_ERASED:
                for p13 in pending_p13.pop(pid, []):
                    self._dispatch_after[id(p13)] = bool(event.get("will_dispatch"))

    def find_caller(self, take_request_event: TraceEvent) -> Optional[str]:
        """ID of the caller CB that produced this service request.

        When several writes share (topic, src_ts) -- periodic callers
        phase-aligning on the simulator's discrete clock -- successive
        lookups consume successive writes, preserving FIFO order.
        """
        key = (take_request_event.get("topic"), take_request_event.get("src_ts"))
        writes = [w for w in self._writes.get(key, []) if w.get("kind") == "request"]
        if not writes:
            return None
        cursor = self._caller_cursor.get(key, 0)
        write = writes[min(cursor, len(writes) - 1)]
        self._caller_cursor[key] = cursor + 1
        return self._writer_cb.get(id(write))

    def find_client(self, write_event: TraceEvent) -> Optional[str]:
        """ID of the client CB that will dispatch this service response."""
        key = (write_event.get("topic"), write_event.get("src_ts"))
        for take in self._take_responses.get(key, []):
            if self._dispatch_after.get(id(take)):
                return take.get("cb_id")
        return None


def extract_callbacks(
    pid: int,
    ros_events: Sequence[TraceEvent],
    sched_index: SchedIndex,
    node_name: str = "",
    event_index: Optional[EventIndex] = None,
) -> CBList:
    """Alg. 1 for one ROS2 node.

    Parameters
    ----------
    pid:
        PID of the node's executor thread.
    ros_events:
        All ROS2 events of the trace (the algorithm filters by PID, but
        FindCaller / FindClient need the full stream).
    sched_index:
        Indexed ``sched_switch`` events for Alg. 2.
    node_name:
        Name from the ROS2-INIT trace (cosmetic; PIDs are the identity).
    event_index:
        Pre-built :class:`EventIndex`; built on demand when omitted.
    """
    index = event_index if event_index is not None else EventIndex(ros_events)
    cblist = CBList(pid, node_name)
    instance: Optional[CallbackInstance] = None

    for event in sorted((e for e in ros_events if e.pid == pid), key=lambda e: e.ts):
        if event.is_cb_start():
            instance = CallbackInstance(cb_type=event.cb_type(), start=event.ts)
        elif event.probe == P3_TIMER_CALL and instance is not None:
            instance.cb_id = event.get("cb_id")
        elif event.is_take() and instance is not None:
            instance.cb_id = event.get("cb_id")
            if event.probe == P13_TAKE_RESPONSE:
                instance.intopic = cat(event.get("topic"), instance.cb_id)
            elif event.probe == P10_TAKE_REQUEST:
                instance.intopic = cat(event.get("topic"), index.find_caller(event))
            else:
                instance.intopic = event.get("topic")
        elif event.probe == P16_DDS_WRITE and instance is not None:
            if event.get("kind") == "request":
                top_out = cat(event.get("topic"), instance.cb_id)
            elif event.get("kind") == "response":
                top_out = cat(event.get("topic"), index.find_client(event))
            else:
                top_out = event.get("topic")
            instance.outtopics.append(top_out)
        elif event.probe == P14_TAKE_TYPE_ERASED and not event.get("will_dispatch"):
            # Client CB will not dispatch here: drop the instance.
            instance = None
        elif event.probe == P7_SYNC_OP and instance is not None:
            instance.is_sync_subscriber = True
        elif event.is_cb_end() and instance is not None:
            instance.end = event.ts
            instance.exec_time = sched_index.exec_time(instance.start, event.ts, pid)
            if instance.cb_id is not None:
                cblist.add(instance)
            instance = None
    return cblist


def extract_all(trace: Trace, pids: Optional[Iterable[int]] = None) -> List[CBList]:
    """Run Alg. 1 for every (or the given) node PIDs of a trace."""
    sched_index = SchedIndex(trace.sched_events)
    event_index = EventIndex(trace.ros_events)
    wanted = sorted(pids) if pids is not None else trace.pids()
    return [
        extract_callbacks(
            pid,
            trace.ros_events,
            sched_index,
            node_name=trace.pid_map.get(pid, ""),
            event_index=event_index,
        )
        for pid in wanted
    ]

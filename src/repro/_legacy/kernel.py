"""Frozen pre-tuple-heap simulation kernel (perf baseline reference).

This kernel pushes :class:`EventHandle` objects onto the heap, so every
sift comparison calls ``EventHandle.__lt__`` (which builds two tuples),
and cancelled events linger until popped.  The optimized
:mod:`repro.sim.kernel` replaced both; this copy stays as the perf
baseline.  Do not optimize.

Discrete-event simulation kernel.

The kernel is the clock of the simulated machine.  All other substrates
(the CPU scheduler in :mod:`repro.sim.scheduler`, the DDS bus in
:mod:`repro.ros2.dds`, ROS2 timers, ...) schedule work on a single shared
:class:`SimKernel` instance.  Simulated time is an integer number of
nanoseconds, mirroring ``CLOCK_MONOTONIC`` on the Linux box used in the
paper.

Events are plain callables ordered by ``(time, priority, sequence)``.  The
sequence number makes ordering of same-timestamp events deterministic
(FIFO), which in turn makes every experiment in this repository
reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

#: One microsecond / millisecond / second expressed in kernel ticks (ns).
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000


class EventHandle:
    """Handle returned by :meth:`SimKernel.schedule`.

    Holds enough state to cancel the event before it fires.  Cancelling a
    handle twice, or after the event fired, is a harmless no-op; this is
    the behaviour preemption logic in the scheduler relies on.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: int, priority: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn: Optional[Callable[[], None]] = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.fn = None

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return not self.cancelled and self.fn is not None

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time}, seq={self.seq}, {state})"


class SimKernel:
    """Deterministic discrete-event simulation kernel.

    Example
    -------
    >>> k = SimKernel()
    >>> fired = []
    >>> _ = k.schedule_at(10, lambda: fired.append(k.now))
    >>> _ = k.schedule_after(5, lambda: fired.append(k.now))
    >>> k.run()
    >>> fired
    [5, 10]
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError("start time must be >= 0")
        self._now = start
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    def schedule_at(
        self, time: int, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run at absolute time ``time``.

        ``priority`` breaks ties between events with equal timestamps;
        lower values run first.  Scheduling in the past raises
        ``ValueError`` -- a kernel never travels backwards.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} (now={self._now}): time is in the past"
            )
        self._seq += 1
        handle = EventHandle(time, priority, self._seq, fn)
        heapq.heappush(self._queue, handle)
        return handle

    def schedule_after(
        self, delay: int, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Schedule ``fn`` to run ``delay`` nanoseconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, fn, priority)

    def pending_count(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for h in self._queue if h.pending)

    def step(self) -> bool:
        """Run the next pending event.  Returns False when queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if not handle.pending:
                continue
            fn = handle.fn
            handle.fn = None
            self._now = handle.time
            assert fn is not None
            fn()
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` events have fired.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so back-to-back ``run``
        calls observe a monotonically advancing clock.  Returns the number
        of events that fired.
        """
        if self._running:
            raise RuntimeError("SimKernel.run() is not reentrant")
        self._running = True
        fired = 0
        try:
            while self._queue:
                if max_events is not None and fired >= max_events:
                    break
                head = self._peek()
                if head is None:
                    break
                if until is not None and head.time > until:
                    break
                self.step()
                fired += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return fired

    def _peek(self) -> Optional[EventHandle]:
        while self._queue and not self._queue[0].pending:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimKernel(now={self._now}, pending={self.pending_count()})"

"""Frozen pre-optimization reference implementations (PR 2).

Verbatim copies of the simulation kernel, scheduler, Alg. 1 extraction
and Alg. 2 exec-time index as they stood *before* the single-pass
:class:`repro.core.index.TraceIndex` layer and the sim hot-loop
overhaul.  They exist for two purposes only:

1. **Equivalence pinning** -- the golden tests in
   ``tests/test_perf_equivalence.py`` assert that the optimized pipeline
   produces byte-identical DAGs, exec tables and DOT exports;
2. **Perf baseline** -- ``repro perf`` / ``benchmarks/perf`` measure the
   optimized paths against these to compute the speedups recorded in
   ``BENCH_2.json``.

Nothing in production code may import from this package, and nothing in
it may be optimized: its value is that it does not change.
"""

from .exec_time import SchedIndex as LegacySchedIndex
from .exec_time import get_exec_time as legacy_get_exec_time
from .extraction import EventIndex as LegacyEventIndex
from .extraction import extract_all as legacy_extract_all
from .extraction import extract_callbacks as legacy_extract_callbacks
from .kernel import EventHandle as LegacyEventHandle
from .kernel import SimKernel as LegacySimKernel
from .scheduler import Scheduler as LegacyScheduler

__all__ = [
    "LegacyEventHandle",
    "LegacyEventIndex",
    "LegacySchedIndex",
    "LegacyScheduler",
    "LegacySimKernel",
    "legacy_extract_all",
    "legacy_extract_callbacks",
    "legacy_get_exec_time",
]

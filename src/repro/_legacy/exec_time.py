"""Frozen pre-columnar Alg. 2 (perf baseline / equivalence reference).

The :class:`SchedIndex` here buckets :class:`SchedSwitch` *objects* and
folds by attribute access -- the implementation this PR replaced with
columnar ``array('q')`` buckets.  Kept verbatim so equivalence tests and
the perf harness can compare against it.  Do not optimize.

Alg. 2: execution-time measurement from ``sched_switch`` folding.

A callback's start/end timestamps (from ROS2 events) bound a window in
which the executor thread may be preempted or migrated.  Alg. 2 walks
the ``sched_switch`` stream and sums only the *execution segments* --
intervals in which the thread actually owns a CPU:

* the window opens with the thread running (the CB-start probe fired in
  its context), so the first segment starts at ``start``;
* ``prev_pid == PID`` closes a segment, ``next_pid == PID`` opens one;
* the window closes with the thread running, so the last segment ends
  at ``end``.

Boundary refinement over the paper's pseudocode: the paper iterates
events with ``start < t < end`` strictly and unconditionally closes the
final segment at ``end``.  On a discrete-time simulator a dispatch can
coincide *exactly* with the CB-end probe (the thread resumes and
finishes the callback at the same nanosecond), which would leave a
stale segment start and over-count.  Both implementations therefore
track an explicit running flag with inclusive boundaries; on real
traces (where probe instructions always execute strictly after the
dispatch) the two formulations are identical.

:func:`get_exec_time` is the direct one-shot translation;
:class:`SchedIndex` is the production fast path (a per-PID index with
binary search) computing identical results -- equivalence is enforced
by property-based tests.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Sequence

from ..sim.scheduler import SchedSwitch


def _fold_segments(
    start: int, end: int, pid: int, events: Iterable[SchedSwitch]
) -> int:
    """Shared folding core: sum execution segments inside [start, end].

    ``events`` must be time-ordered and may contain unrelated PIDs.
    """
    exec_time = 0
    last_start = start
    running = True  # the CB-start probe fired in the thread's context
    for event in events:
        if event.ts < start:
            continue
        if event.ts > end:
            break
        if event.prev_pid == pid and running:
            exec_time += event.ts - last_start
            running = False
        elif event.next_pid == pid and not running:
            last_start = event.ts
            running = True
    if running:
        exec_time += end - last_start
    return exec_time


def get_exec_time(
    start: int, end: int, pid: int, sched_events: Sequence[SchedSwitch]
) -> int:
    """Alg. 2 over a raw event list (sorted internally, as the paper's
    line 3 does)."""
    if end < start:
        raise ValueError(f"end {end} precedes start {start}")
    return _fold_segments(
        start, end, pid, sorted(sched_events, key=lambda e: e.ts)
    )


class SchedIndex:
    """Per-PID index over sched_switch events for fast Alg. 2 queries.

    Events are bucketed by the PIDs they mention and kept sorted; a
    window query binary-searches the bucket, making per-instance cost
    O(log n + segments) instead of O(n).
    """

    def __init__(self, sched_events: Iterable[SchedSwitch]):
        self._by_pid: Dict[int, List[SchedSwitch]] = {}
        for event in sched_events:
            if event.prev_pid != 0:
                self._by_pid.setdefault(event.prev_pid, []).append(event)
            if event.next_pid != 0 and event.next_pid != event.prev_pid:
                self._by_pid.setdefault(event.next_pid, []).append(event)
        self._times: Dict[int, List[int]] = {}
        for pid, events in self._by_pid.items():
            events.sort(key=lambda e: e.ts)
            self._times[pid] = [e.ts for e in events]

    def pids(self) -> List[int]:
        return sorted(self._by_pid)

    def events_for(self, pid: int) -> List[SchedSwitch]:
        return list(self._by_pid.get(pid, []))

    def exec_time(self, start: int, end: int, pid: int) -> int:
        """Alg. 2 over the indexed window (identical result, fast)."""
        if end < start:
            raise ValueError(f"end {end} precedes start {start}")
        events = self._by_pid.get(pid)
        if not events:
            return end - start
        times = self._times[pid]
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_right(times, end)
        return _fold_segments(start, end, pid, events[lo:hi])

    def preemption_time(self, start: int, end: int, pid: int) -> int:
        """Time inside the window the thread did *not* run."""
        return (end - start) - self.exec_time(start, end, pid)

"""Frozen pre-optimization copy (perf baseline; see repro._legacy). Do not optimize.

Wires the whole frozen substrate stack together: the PR-2 freeze of the
kernel/scheduler/tracing chain plus the PR-10 freeze of the executor and
DDS bus (:mod:`repro._legacy.ros2`), so ``repro perf`` measures the
optimized tree against genuinely unoptimized hot loops.

The simulated machine: clock, CPUs, middleware symbols and DDS bus.

A :class:`World` is the top-level container every experiment starts from.
It owns:

* the discrete-event kernel (the machine's clock),
* the CPU scheduler (with its ``sched_switch`` / ``sched_wakeup``
  tracepoints),
* the symbol table of the simulated middleware shared objects (the
  attachment surface for uprobes),
* the DDS bus over which all ROS2 communication flows,
* a seeded random generator driving every stochastic model.

Typical use::

    world = World(num_cpus=4, seed=7)
    node = Node(world, "point_cloud_fusion")
    ...
    world.launch()          # spawn executor threads
    world.run(for_ns=80 * SEC)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .kernel import SimKernel
from .scheduler import DEFAULT_TIMESLICE, Scheduler
from .tracing.symbols import ProbeContext, SymbolTable

#: Default one-way DDS delivery latency (intra-host CycloneDDS is in the
#: tens-of-microseconds range for point-cloud-sized payloads).
DEFAULT_DDS_LATENCY_NS = 50_000


class World:
    """A simulated machine hosting ROS2 applications.

    Parameters
    ----------
    num_cpus:
        CPUs of the machine (the paper's testbed is a 12-core Ryzen; the
        evaluation configs pick smaller affinity sets to create
        interference).
    seed:
        Seed for the world-wide random generator.
    timeslice:
        Round-robin quantum of the scheduler.
    dds_latency_ns:
        Constant one-way topic delivery latency.
    start_time_ns / first_pid:
        Clock and PID bases.  Successive runs of a multi-run experiment
        use disjoint bases so their traces can be merged into one stream
        (Fig. 2's "merge traces" strategy) exactly as successive runs on
        a real machine -- whose uptime clock and PID counter both keep
        advancing -- can.
    """

    def __init__(
        self,
        num_cpus: int = 4,
        seed: int = 0,
        timeslice: int = DEFAULT_TIMESLICE,
        dds_latency_ns: int = DEFAULT_DDS_LATENCY_NS,
        start_time_ns: int = 0,
        first_pid: int = 1,
    ):
        self.kernel = SimKernel(start=start_time_ns)
        self.scheduler = Scheduler(
            self.kernel, num_cpus=num_cpus, timeslice=timeslice, first_pid=first_pid
        )
        self.rng = np.random.default_rng(seed)
        self.symbols = SymbolTable(self._probe_context)
        #: Kernel tracepoints exposed to the BPF layer.
        self.tracepoints: Dict[str, Callable] = {
            "sched:sched_switch": self.scheduler.on_sched_switch,
            "sched:sched_wakeup": self.scheduler.on_sched_wakeup,
        }
        # Frozen DDS bus + executor (imports here avoid a package cycle
        # at import time).  Nodes consult ``executor_cls`` so a node
        # built on a legacy world gets the pre-overhaul dispatch loop.
        from .ros2.dds import DdsBus
        from .ros2.executor import SingleThreadedExecutor

        self.dds = DdsBus(self, latency_ns=dds_latency_ns)
        self.executor_cls = SingleThreadedExecutor
        #: Nodes registered on this world (populated by Node.__init__).
        self.nodes: List = []
        self._launched = False

    # ------------------------------------------------------------------

    @property
    def now(self) -> int:
        return self.kernel.now

    def _probe_context(self) -> ProbeContext:
        thread = self.scheduler.current_thread
        if thread is None:
            # Fired from interrupt/kernel context (e.g. an external
            # publisher): no current task.
            return ProbeContext(ts=self.kernel.now, pid=0, cpu=None, comm="")
        return ProbeContext(
            ts=self.kernel.now,
            pid=thread.pid,
            cpu=thread.cpu,
            comm=thread.name,
        )

    # ------------------------------------------------------------------

    def launch(self, start: int = 0) -> None:
        """Spawn one executor thread per registered node.

        Node threads start at ``start`` (plus each node's configured
        extra delay) and immediately announce themselves through
        ``rmw_create_node`` -- the event the ROS2-INIT tracer records.
        """
        if self._launched:
            raise RuntimeError("world already launched")
        self._launched = True
        for node in self.nodes:
            node._spawn(start)

    def run(self, for_ns: Optional[int] = None, until: Optional[int] = None) -> None:
        """Advance simulated time.

        Exactly one of ``for_ns`` / ``until`` must be given.
        """
        if (for_ns is None) == (until is None):
            raise ValueError("specify exactly one of for_ns / until")
        target = self.kernel.now + for_ns if for_ns is not None else until
        self.kernel.run(until=target)

    def fresh_rng(self, salt: int) -> np.random.Generator:
        """Derive an independent generator (stable across runs)."""
        return np.random.default_rng(np.random.SeedSequence([salt]))

"""Performance harness: the ``repro perf`` benchmarks and CI gate."""

from .bench import (
    BENCH_SCENARIO,
    PROFILE_SECTIONS,
    SCALES,
    BenchScale,
    bench_jobs_scaling,
    bench_service_ingest,
    bench_sim,
    bench_store,
    bench_synthesis,
    bench_table2_batch,
    check_regression,
    format_report,
    measure_baseline_batch,
    profile_section,
    run_perf_suite,
    write_payload,
)

__all__ = [
    "BENCH_SCENARIO",
    "PROFILE_SECTIONS",
    "SCALES",
    "BenchScale",
    "bench_jobs_scaling",
    "bench_service_ingest",
    "bench_sim",
    "bench_store",
    "bench_synthesis",
    "bench_table2_batch",
    "check_regression",
    "format_report",
    "measure_baseline_batch",
    "profile_section",
    "run_perf_suite",
    "write_payload",
]
